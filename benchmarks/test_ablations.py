"""Benchmark: design-choice ablations (zero-latency switching, forwarding,
DMA bandwidth, cooperative chaining)."""

from repro.experiments import ablations


def test_ablations(benchmark):
    result = benchmark.pedantic(ablations.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert result.metric("switching scheme preserves gain").measured == 1.0
    assert result.metric("chaining speedup").measured > 1.0
