"""Benchmark: the multi-bit DNN extension study (paper future work)."""

from repro.experiments import extension_multibit


def test_extension(benchmark):
    result = benchmark.pedantic(extension_multibit.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert result.metric("8-bit matches float (within 1 point)").measured == 1.0
    assert result.metric("BNN storage advantage vs 8-bit").measured > 6.0
