"""Benchmark: regenerate Fig 7 (chip specification table)."""

from repro.experiments import fig07_specs


def test_fig07(benchmark):
    result = benchmark.pedantic(fig07_specs.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert abs(result.metric("nominal frequency").deviation) < 1e-3
    assert abs(result.metric("on-chip SRAM").deviation) < 0.10
