"""Benchmark: regenerate Fig 9: voltage sweep.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import fig09_voltage_sweep


def test_fig09(benchmark):
    result = benchmark.pedantic(fig09_voltage_sweep.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert abs(result.metric("frequency at 1 V").deviation) < 1e-3
