"""Benchmark: regenerate Fig 10: NCPU area/frequency overhead.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import fig10_overhead


def test_fig10(benchmark):
    result = benchmark.pedantic(fig10_overhead.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert abs(result.metric("core area overhead").deviation) < 0.01
