"""Benchmark: regenerate Fig 11: power overhead per instruction/program.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import fig11_power_overhead


def test_fig11(benchmark):
    result = benchmark.pedantic(fig11_power_overhead.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert abs(result.metric("average per-instruction overhead").deviation) < 1e-3
