"""Benchmark: regenerate Fig 12: area reduction and energy saving.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import fig12_area_energy


def test_fig12(benchmark):
    result = benchmark.pedantic(fig12_area_energy.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert abs(result.metric("area saving").deviation) < 0.01
