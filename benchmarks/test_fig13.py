"""Benchmark: regenerate Fig 13: utilization timelines.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import fig13_utilization_timeline


def test_fig13(benchmark):
    result = benchmark.pedantic(fig13_utilization_timeline.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert abs(result.metric("improvement at 70% CPU fraction (batch 2)").deviation) < 0.01
