"""Benchmark: regenerate Fig 14: batch-size sweep.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import fig14_batch_sweep


def test_fig14(benchmark):
    result = benchmark.pedantic(fig14_batch_sweep.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert result.metric("decline is monotone").measured == 1.0
