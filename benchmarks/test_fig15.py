"""Benchmark: regenerate Fig 15: workload breakdown.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import fig15_breakdown


def test_fig15(benchmark):
    result = benchmark.pedantic(fig15_breakdown.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert result.metric("image CPU fraction").measured > 70
