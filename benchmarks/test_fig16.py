"""Benchmark: regenerate Fig 16: power traces.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import fig16_power_trace


def test_fig16(benchmark):
    result = benchmark.pedantic(fig16_power_trace.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert abs(result.metric("end-to-end improvement").deviation) < 0.02
