"""Benchmark: regenerate Fig 17: end-to-end use cases.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import fig17_end_to_end


def test_fig17(benchmark):
    result = benchmark.pedantic(fig17_end_to_end.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert abs(result.metric("image improvement (paper fraction)").deviation) < 0.02
