"""Benchmark: regenerate Fig 18: accelerator-size sweep.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import fig18_accelerator_size


def test_fig18(benchmark):
    result = benchmark.pedantic(fig18_accelerator_size.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert result.metric("saving monotone decreasing").measured == 1.0
