"""Benchmark: regenerate Fig 19: NALU experiment.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import fig19_nalu


def test_fig19(benchmark):
    result = benchmark.pedantic(fig19_nalu.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert result.metric("add learns (error < 5 %)").measured == 1.0
