"""Benchmarks of the library itself (not paper figures): simulator
throughput, assembler speed, BNN inference rate.

These run real multi-round pytest-benchmark measurements so regressions in
the hot paths (the pipeline's cycle loop, the assembler's two passes, the
vectorized BNN forward) are visible.
"""

import numpy as np

from repro.bnn import BNNAccelerator, BNNModel, binarize_sign
from repro.cpu import FlatMemory, FunctionalCPU, PipelinedCPU
from repro.isa import assemble
from repro.workloads.dhrystone import dhrystone_asm

_LOOP = """
    li a0, 0
    li a1, 2000
loop:
    addi a0, a0, 1
    andi t0, a0, 7
    xor t1, t0, a0
    bne a0, a1, loop
    ebreak
"""


def test_pipeline_simulation_rate(benchmark):
    program = assemble(_LOOP)

    def run():
        cpu = PipelinedCPU(program, memory=FlatMemory(size=256))
        return cpu.run().stats.cycles

    cycles = benchmark(run)
    assert cycles > 8000
    rate = cycles / benchmark.stats.stats.mean
    print(f"\npipeline simulation rate: {rate / 1e3:.0f} kcycles/s")


def test_functional_simulation_rate(benchmark):
    program = assemble(_LOOP)

    def run():
        cpu = FunctionalCPU(program, memory=FlatMemory(size=256))
        return cpu.run().stats.instructions

    instructions = benchmark(run)
    assert instructions > 8000
    rate = instructions / benchmark.stats.stats.mean
    print(f"\nfunctional simulation rate: {rate / 1e3:.0f} kinstr/s")


def test_assembler_throughput(benchmark):
    source = dhrystone_asm(iterations=10)

    def run():
        return len(assemble(source).words)

    words = benchmark(run)
    assert words > 100


def test_bnn_inference_throughput(benchmark):
    model = BNNModel.paper_topology(input_size=256)
    accelerator = BNNAccelerator()
    rng = np.random.default_rng(0)
    batch = binarize_sign(rng.standard_normal((64, 256)))

    def run():
        predictions, timing = accelerator.infer_batch(model, batch,
                                                      stream_weights=False)
        return len(predictions)

    count = benchmark(run)
    assert count == 64


def test_scheduler_throughput(benchmark):
    from repro.core import SchedulerConfig, compare_end_to_end, items_for_fraction

    items = items_for_fraction(0.7, 100)
    config = SchedulerConfig(offload_cycles=940)

    def run():
        return compare_end_to_end(items, config).improvement

    improvement = benchmark(run)
    assert 0.3 < improvement < 0.5
