"""Benchmark: regenerate Table I: motion detection latency/energy.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import table1_motion


def test_table1(benchmark):
    result = benchmark.pedantic(table1_motion.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert result.metric("accelerated meets 5 ms deadline").measured == 1.0
