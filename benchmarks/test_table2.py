"""Benchmark: regenerate Table II: microcontroller comparison (Dhrystone).

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import table2_mcu


def test_table2(benchmark):
    result = benchmark.pedantic(table2_mcu.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert abs(result.metric("DMIPS/MHz").deviation) < 0.15
