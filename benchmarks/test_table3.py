"""Benchmark: regenerate Table III: ML accelerator comparison.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import table3_accel


def test_table3(benchmark):
    result = benchmark.pedantic(table3_accel.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert abs(result.metric("TOPS/W at 1 V").deviation) < 0.01
