"""Benchmark: regenerate Table IV: core utilization.

Runs the experiment once under pytest-benchmark and prints the paper-vs-
measured table; `pytest benchmarks/ --benchmark-only` regenerates every
table and figure of the paper's evaluation.
"""

from repro.experiments import table4_utilization


def test_table4(benchmark):
    result = benchmark.pedantic(table4_utilization.run, rounds=1, iterations=1)
    print()
    print(result.to_table())
    assert result.metric("NCPU0 utilization").measured > 99.0
