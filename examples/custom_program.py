"""Writing your own programs against the NCPU's custom RISC-V extension.

Shows the assembler (labels, pseudo-instructions, the five custom NCPU
instructions), the disassembler, pipeline statistics, and two NCPU cores
communicating through the shared incoherent L2 with ``sw_l2``/``lw_l2``.

Run:  python examples/custom_program.py
"""

from repro.core import NCPUSoC
from repro.cpu import run_pipelined
from repro.isa import assemble, disassemble

# ---- assembling and inspecting --------------------------------------------
source = """
    # compute the 10th Fibonacci number
    li   a0, 0
    li   a1, 1
    li   t0, 10
fib:
    add  t1, a0, a1
    mv   a0, a1
    mv   a1, t1
    addi t0, t0, -1
    bnez t0, fib
    ebreak
"""
program = assemble(source)
print("disassembly:")
for line in disassemble(program.words[:6]):
    print("  " + line)

cpu, result = run_pipelined(program)
stats = result.stats
print(f"\nfib(10) = {cpu.regs.read(10)}")
print(f"cycles={stats.cycles} instructions={stats.instructions} "
      f"IPC={stats.ipc:.3f} stalls={stats.stalls} flush-slots={stats.flushes}")
print("instruction mix:", dict(stats.instr_counts))

# ---- two cores talking through the shared L2 ------------------------------
soc = NCPUSoC(n_cores=2)

producer = assemble("""
    li   a0, 0
    li   a1, 1
    li   t0, 16
loop:
    add  t1, a0, a1
    mv   a0, a1
    mv   a1, t1
    addi t0, t0, -1
    bnez t0, loop
    sw_l2 a0, 0x80(zero)    # publish fib(18) to the global L2
    li   a0, 1
    sw_l2 a0, 0x84(zero)    # set the ready flag
    ebreak
""")

consumer = assemble("""
wait:
    lw_l2 t0, 0x84(zero)    # software-managed synchronization
    beqz  t0, wait
    lw_l2 a0, 0x80(zero)
    slli  a0, a0, 1         # double it, because we can
    ebreak
""")

soc.core(0).run_cpu_program(producer)
soc.core(1).run_cpu_program(consumer)
value = soc.core(1).registers.read(10)
print(f"\ncore1 read fib(18)={value // 2} from L2 and doubled it to {value}")
print(f"L2 traffic: core0 wrote {soc.core(0).env.l2_writes} words, "
      f"core1 issued {soc.core(1).env.l2_reads} reads")
