"""Design-space exploration with the calibrated models (Figs 9/12/18).

Three sweeps a system designer would actually run:

1. accelerator width: area saving vs BNN accuracy (the paper's Fig 18
   trade-off that picked 100 neurons/layer),
2. supply voltage: where the NCPU's area saving becomes an energy saving
   (Fig 12b's crossover),
3. zero-latency switching ablation: what the transition scheme is worth.

Run:  python examples/design_space.py     (~15 s: trains two BNN widths)
"""

from repro.core import SchedulerConfig, compare_end_to_end, items_for_fraction
from repro.experiments.models import mnist_model
from repro.power import (
    area_saving,
    bnn_tops_per_watt,
    frequency_model,
    ncpu_energy_saving,
)

# ---- 1. accelerator width -------------------------------------------------
print("accelerator width trade-off (Fig 18):")
print(f"  {'neurons':>8}  {'area saving':>12}  {'accuracy':>9}")
for width in (50, 100, 200):
    trained = mnist_model(width=width)
    print(f"  {width:>8}  {area_saving(width):>11.1%}  "
          f"{trained.test_accuracy:>8.1%}")
print("  -> the paper picks 100: the accuracy knee vs the saving cliff")

# ---- 2. voltage scaling -----------------------------------------------------
print("\nvoltage scaling (Figs 9 and 12b):")
print(f"  {'V':>5}  {'f (MHz)':>8}  {'TOPS/W':>7}  {'NCPU energy vs CPU+BNN':>23}")
freq = frequency_model()
for voltage in (1.0, 0.8, 0.6, 0.5, 0.45, 0.4):
    saving = ncpu_energy_saving(voltage)
    direction = "saves" if saving > 0 else "costs"
    print(f"  {voltage:>5.2f}  {freq.f_mhz(voltage):>8.0f}  "
          f"{bnn_tops_per_watt(voltage):>7.2f}  "
          f"{direction} {abs(saving):>6.1%}")
print("  -> below the crossover the 35.7% area saving pays rent as leakage")

# ---- 3. zero-latency switching ablation -------------------------------------
print("\nzero-latency switching ablation (section V.A):")
items = items_for_fraction(0.70, 4)
for zero_latency in (True, False):
    config = SchedulerConfig(switch_cycles=4, weight_stream_cycles=1400,
                             zero_latency=zero_latency)
    comparison = compare_end_to_end(items, config)
    label = "enabled " if zero_latency else "disabled"
    print(f"  scheme {label}: 2xNCPU improvement "
          f"{comparison.improvement:.1%}")
print("  -> hiding the weight stream behind inference preserves the gain")
