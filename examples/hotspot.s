# Trace/profile demo: a hot inner loop with a load-use hazard and a
# taken branch, so `--profile` shows retired, <stall:load_use>, and
# <flush:control> rows and the Perfetto lanes show the bubbles.
#
#   python -m repro run examples/hotspot.s --trace trace.json --profile
#
    addi a0, x0, 0          # sum
    addi a1, x0, 256        # data pointer
    addi a5, x0, 16         # store 16 words first
fill:
    sw   a5, 0(a1)
    addi a1, a1, 4
    addi a5, a5, -1
    bne  a5, x0, fill
    addi a1, x0, 256        # rewind
    addi a5, x0, 16
sum:
    lw   a2, 0(a1)          # load-use hazard: a2 consumed next cycle
    add  a0, a0, a2
    addi a1, a1, 4
    addi a5, a5, -1
    bne  a5, x0, sum        # taken 15 times -> control flushes
    halt
