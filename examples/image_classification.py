"""The paper's image-classification use case, end to end.

A raw RGB frame is pre-processed by real RV32I assembly (resize, grayscale
filter, normalization) running on the NCPU's banked SRAM, the core flips
into BNN mode with ``trans_bnn``, and the 4x100 binary network classifies
the digit — all data staying local, which is the paper's whole point.

The script then compares the two-core NCPU SoC against the conventional
CPU + accelerator baseline on a batch of frames (paper Fig 16/17: 43 %
end-to-end speedup), and finally classifies a large evaluation set through
both functional engines — the accurate int32-matmul path and the batched
bit-packed fast path — to show they agree bit-for-bit while the fast
engine delivers an order of magnitude more host throughput.

Run:  python examples/image_classification.py     (~30 s: trains the BNN)
"""

import time

import numpy as np

from repro.bnn import BNNAccelerator, synthetic_mnist
from repro.core import NCPUCore, SchedulerConfig, compare_end_to_end
from repro.experiments.models import image_use_case
from repro.isa import assemble
from repro.workloads import image_pipeline as ip
from repro.workloads import layout

print("training the image BNN on the synthetic-MNIST stand-in ...")
use_case = image_use_case()
print(f"  4x100 BNN accuracy: {use_case.accuracy:.1%}")

# ---- single-core functional flow -----------------------------------------
dataset = synthetic_mnist(n_samples=12, seed=42)
core = NCPUCore()
core.load_model(use_case.model)

correct = 0
for image, label in zip(dataset.images, dataset.labels):
    raw = ip.synthesize_raw_frame(image.reshape(16, 16))
    ip.write_raw_frame(core.memory.data_memory(), raw, base=layout.RAW_BASE)
    source = """
        li a0, 256
        mv_neu 0, a0
        li a0, 1
        mv_neu 1, a0
    """ + ip.full_pipeline_asm(ip.ImageShape(32, 32), finish="trans_bnn")
    run = core.run_cpu_program(assemble(source))
    assert run.stop_reason == "trans_bnn"
    prediction = core.run_bnn()[0]
    core.switch_to_cpu()
    correct += int(prediction == label)

print(f"single NCPU core, full assembly pipeline: "
      f"{correct}/{len(dataset)} digits correct, "
      f"{core.clock} total cycles, utilization {core.utilization():.1%}")

# ---- two-core NCPU vs heterogeneous baseline ------------------------------
items = use_case.items(batch=2)
comparison = compare_end_to_end(items, SchedulerConfig())
print(f"\nbatch of 2 frames "
      f"(CPU fraction {use_case.cpu_fraction:.0%} measured):")
print(f"  CPU+BNN baseline : {comparison.baseline.end:>8} cycles")
print(f"  2x NCPU          : {comparison.ncpu_dual.end:>8} cycles "
      f"({comparison.improvement:.1%} faster)")
print(f"  1x NCPU          : {comparison.ncpu_single.end:>8} cycles "
      f"({comparison.single_core_degradation:+.1%} vs baseline, "
      f"at 35.7% less silicon)")

utils = comparison.ncpu_dual.utilizations()
print(f"  NCPU utilizations: "
      f"{', '.join(f'{k}={v:.1%}' for k, v in utils.items())}")

# ---- batched fast-path engine ---------------------------------------------
eval_set = synthetic_mnist(n_samples=1024, seed=7)
eval_inputs = eval_set.binarized()
accelerator = BNNAccelerator()
print(f"\nclassifying {len(eval_set)} frames with both functional engines:")
engine_predictions = {}
for engine in ("accurate", "fast"):
    start = time.perf_counter()
    batch_predictions, timing = accelerator.infer_batch(
        use_case.model, eval_inputs, engine=engine)
    wall = time.perf_counter() - start
    engine_predictions[engine] = batch_predictions
    accuracy = float(np.mean(batch_predictions == eval_set.labels))
    print(f"  engine={engine:<8s}: {len(eval_set) / wall:>10,.0f} "
          f"inferences/s host throughput, accuracy {accuracy:.1%}, "
          f"{timing.total_cycles:,} simulated cycles")
assert np.array_equal(engine_predictions["fast"],
                      engine_predictions["accurate"])
print("  engines agree bit-for-bit (see docs/PERFORMANCE.md)")
