"""The paper's human-motion-detection use case (Table I + Fig 15b/17).

Accelerometer windows are reduced to mean / histogram / MAV features by
real assembly on the pipeline, binarized against training thresholds, and
classified by the BNN.  The script reproduces Table I's real-time argument:
a standalone CPU doing the inference in software misses the 5 ms deadline;
with the BNN engine the deadline holds with an order of magnitude less
energy.

Run:  python examples/motion_detection.py     (~20 s: trains the BNN)
"""

import numpy as np

from repro.bnn import synthetic_motion, naive_inference_cycles
from repro.core import NCPUCore
from repro.experiments.models import motion_artifacts, motion_use_case
from repro.isa import assemble
from repro.power import cpu_profile, bnn_profile, frequency_model
from repro.workloads import motion_features as mf

DEADLINE_MS = 5.0
VOLTAGE = 0.4  # the ultra-low-power operating point (18 MHz)

print("training the motion BNN on the synthetic Ninapro stand-in ...")
artifacts = motion_artifacts()
use_case = motion_use_case()
print(f"  gesture classification accuracy: {artifacts.test_accuracy:.1%}")

# ---- functional single-gesture flow on the NCPU core ----------------------
gestures = synthetic_motion(n_samples=8, seed=99)
core = NCPUCore()
core.load_model(artifacts.model)

correct = 0
for trace, label in zip(gestures.traces, gestures.labels):
    window = mf.quantize_trace(trace)
    data = core.memory.data_memory()
    mf.write_window(data, window)
    mf.write_thresholds(data, artifacts.thresholds)
    source = f"""
        li a0, {mf.N_FEATURES}
        mv_neu 0, a0
        li a0, 1
        mv_neu 1, a0
    """ + mf.full_motion_asm(64, finish="trans_bnn")
    run = core.run_cpu_program(assemble(source))
    assert run.stop_reason == "trans_bnn"
    prediction = core.run_bnn()[0]
    core.switch_to_cpu()
    correct += int(prediction == label)

print(f"NCPU core, full assembly feature pipeline: "
      f"{correct}/{len(gestures)} gestures correct")

# ---- Table I: the real-time latency/energy argument ------------------------
f_hz = frequency_model().f_hz(VOLTAGE)
feature_cycles = use_case.cpu_cycles
software_cycles = naive_inference_cycles(artifacts.model).cycles
accel_cycles = use_case.bnn_cycles

standalone_ms = (feature_cycles + software_cycles) / f_hz * 1e3
accel_ms = (feature_cycles + accel_cycles) / f_hz * 1e3
standalone_uj = cpu_profile().energy_j(feature_cycles + software_cycles,
                                       VOLTAGE) * 1e6
accel_uj = (cpu_profile().energy_j(feature_cycles, VOLTAGE)
            + bnn_profile().energy_j(accel_cycles, VOLTAGE)) * 1e6

print(f"\nreal-time detection at {VOLTAGE} V "
      f"({f_hz / 1e6:.0f} MHz), {DEADLINE_MS} ms deadline:")
print(f"  standalone CPU : {standalone_ms:7.2f} ms  {standalone_uj:7.2f} uJ  "
      f"{'MISSES' if standalone_ms > DEADLINE_MS else 'meets'} deadline")
print(f"  CPU + BNN acc  : {accel_ms:7.2f} ms  {accel_uj:7.2f} uJ  "
      f"{'MISSES' if accel_ms > DEADLINE_MS else 'meets'} deadline")
print(f"  speedup {standalone_ms / accel_ms:.0f}x, "
      f"energy saving {standalone_uj / accel_uj:.0f}x")
