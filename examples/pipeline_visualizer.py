"""Watching the 5-stage pipeline work: diagrams, hazards, and ablations.

Prints classic pipeline diagrams (one row per cycle, one column per stage)
for straight-line code, a load-use hazard, a taken branch, and the same
dependent chain with the forwarding network ablated — the NeuroEX
forwarding paths of paper section IV.A made visible.

Run:  python examples/pipeline_visualizer.py
"""

from repro.cpu import PipelinedCPU
from repro.cpu.trace import PipelineTrace, render_diagram
from repro.isa import assemble


def show(title, source, **kwargs):
    trace = PipelineTrace()
    cpu = PipelinedCPU(assemble(source), trace=trace, **kwargs)
    result = cpu.run()
    print(f"== {title} "
          f"({result.stats.instructions} instr, {result.stats.cycles} cycles, "
          f"{result.stats.stalls} stalls, {result.stats.flushes} flush slots)")
    print(render_diagram(trace, count=14))
    print()


show("straight-line code fills the pipe", """
    li a0, 1
    li a1, 2
    li a2, 3
    ebreak
""")

show("load-use hazard: one interlock bubble", """
    li a1, 64
    sw a1, 0(a1)
    lw a2, 0(a1)
    addi a3, a2, 1
    ebreak
""")

show("taken branch: two squashed slots", """
    li a0, 1
    beq a0, a0, over
    li a1, 99
    li a2, 99
over:
    ebreak
""")

show("dependent chain WITH forwarding (section IV.A paths)", """
    li a0, 1
    addi a1, a0, 1
    addi a2, a1, 1
    ebreak
""")

show("the same chain with the forwarding network ablated", """
    li a0, 1
    addi a1, a0, 1
    addi a2, a1, 1
    ebreak
""", forwarding=False)
