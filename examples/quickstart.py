"""Quickstart: the four layers of the library in ~80 lines.

1. assemble and run RISC-V code on the cycle-accurate 5-stage pipeline,
2. train a small binary neural network and run it on the accelerator model,
3. put both on one reconfigurable NCPU core and switch modes with the
   custom ``trans_bnn`` instruction,
4. classify a whole batch through the bit-packed fast engine and compare
   host throughput against the accurate engine (identical predictions).

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro.bnn import BNNAccelerator, binarize_sign, train_bnn
from repro.bnn.quantize import pack_bits, sign_to_bits
from repro.core import NCPUCore
from repro.cpu import run_pipelined
from repro.isa import assemble

# ---- 1. a RISC-V program on the pipeline --------------------------------
program = assemble("""
    li   a0, 0          # sum
    li   a1, 1          # i
    li   a2, 101
loop:
    add  a0, a0, a1
    addi a1, a1, 1
    bne  a1, a2, loop
    ebreak
""")
cpu, result = run_pipelined(program)
print(f"sum(1..100) = {cpu.regs.read(10)}  "
      f"({result.stats.instructions} instructions, "
      f"{result.stats.cycles} cycles, IPC {result.stats.ipc:.2f})")

# ---- 2. a binary neural network on the accelerator ----------------------
rng = np.random.default_rng(0)
x = np.where(rng.standard_normal((600, 32)) > 0, 1, -1)
labels = (x[:, :16].sum(axis=1) > x[:, 16:].sum(axis=1)).astype(np.int64)
model = train_bnn(x, labels, [32, 32, 32, 2], epochs=15, seed=0)
print(f"trained BNN accuracy: {model.accuracy(x, labels):.1%}")

accelerator = BNNAccelerator()
sample = binarize_sign(rng.standard_normal(32))
inference = accelerator.infer(model, sample)
print(f"accelerator: class {inference.prediction} in "
      f"{inference.cycles} cycles ({inference.macs} binary MACs)")

# ---- 3. both on one reconfigurable NCPU core -----------------------------
core = NCPUCore()
core.load_model(model)

# CPU mode: compute something, configure the BNN run, then switch modes
core.memory.banks["image"].write_words(
    0, [int(w) for w in pack_bits(sign_to_bits(sample))])
run = core.run_cpu_program(assemble("""
    li a0, 32
    mv_neu 0, a0        # transition neuron 0: input size
    li a0, 1
    mv_neu 1, a0        # transition neuron 1: batch of 1
    trans_bnn           # zero-latency switch into BNN mode
"""))
assert run.stop_reason == "trans_bnn"
predictions = core.run_bnn()
core.switch_to_cpu()
print(f"NCPU core: mode-switched and classified -> class {predictions[0]}, "
      f"total {core.clock} cycles, utilization {core.utilization():.1%}")

# ---- 4. batched inference on the fast engine -----------------------------
batch = np.where(rng.standard_normal((2000, 32)) > 0, 1, -1).astype(np.int8)
results = {}
for engine in ("accurate", "fast"):
    start = time.perf_counter()
    batch_predictions, timing = accelerator.infer_batch(
        model, batch, engine=engine)
    wall = time.perf_counter() - start
    results[engine] = batch_predictions
    print(f"engine={engine:<8s}: {len(batch) / wall:>10,.0f} inferences/s "
          f"host throughput ({timing.cycles_per_inference:.0f} simulated "
          f"cycles/inference either way)")
assert np.array_equal(results["fast"], results["accurate"])
print("fast and accurate engines agree bit-for-bit on all "
      f"{len(batch)} predictions")
