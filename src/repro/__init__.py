"""repro — a reproduction of *NCPU: An Embedded Neural CPU Architecture on
Resource-Constrained Low Power Devices for Real-time End-to-End Performance*
(MICRO 2020).

Subpackages:

* :mod:`repro.isa` — RV32I + NCPU custom extension, assembler/disassembler.
* :mod:`repro.cpu` — functional and cycle-accurate 5-stage pipeline simulators.
* :mod:`repro.bnn` — binary neural network model, trainer, datasets,
  cycle-level accelerator.
* :mod:`repro.mem` — SRAM banks, address arbiter, DMA, shared L2.
* :mod:`repro.core` — the reconfigurable NCPU core, SoCs, discrete-event
  end-to-end execution.
* :mod:`repro.power` — 65 nm technology/area/energy models and metrics.
* :mod:`repro.workloads` — image pre-processing, motion features, Dhrystone-
  and MiBench-like kernels (reference Python + RV32I assembly).
* :mod:`repro.nalu` — Neural ALU experiment (paper section VIII.C).
* :mod:`repro.experiments` — one module per paper table/figure.
"""

__version__ = "1.0.0"
