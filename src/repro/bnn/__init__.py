"""Binary neural network: model, training, datasets, and accelerator timing."""

from repro.bnn.accelerator import (
    AcceleratorConfig,
    BatchTiming,
    BNNAccelerator,
    InferenceResult,
    LAYER_OVERHEAD_CYCLES,
)
from repro.bnn.batched import (
    PackedLayer,
    PackedModel,
    batched_predict,
    batched_scores,
    pack_bits64,
    pack_sign_rows,
    packed_model,
    popcount64,
    predict_with_engine,
)
from repro.bnn.datasets import (
    Dataset,
    MotionDataset,
    digit_template,
    synthetic_mnist,
    synthetic_motion,
)
from repro.bnn.model import BNNLayer, BNNModel
from repro.bnn.quantize import (
    binarize_sign,
    bits_to_sign,
    pack_bits,
    popcount32,
    sign_to_bits,
    unpack_bits,
    xnor_popcount,
)
from repro.bnn.reference import (
    SoftwareBNNEstimate,
    naive_inference_cycles,
    packed_inference_cycles,
    software_inference_cycles,
)
from repro.bnn.training import BNNTrainer, TrainingHistory, train_bnn

__all__ = [
    "AcceleratorConfig",
    "BatchTiming",
    "BNNAccelerator",
    "InferenceResult",
    "LAYER_OVERHEAD_CYCLES",
    "Dataset",
    "MotionDataset",
    "digit_template",
    "synthetic_mnist",
    "synthetic_motion",
    "BNNLayer",
    "BNNModel",
    "PackedLayer",
    "PackedModel",
    "batched_predict",
    "batched_scores",
    "pack_bits64",
    "pack_sign_rows",
    "packed_model",
    "popcount64",
    "predict_with_engine",
    "binarize_sign",
    "bits_to_sign",
    "pack_bits",
    "popcount32",
    "sign_to_bits",
    "unpack_bits",
    "xnor_popcount",
    "SoftwareBNNEstimate",
    "naive_inference_cycles",
    "packed_inference_cycles",
    "software_inference_cycles",
    "BNNTrainer",
    "TrainingHistory",
    "train_bnn",
]
