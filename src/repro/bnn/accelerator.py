"""Cycle-level model of the BNN accelerator (paper Fig 2).

The fabricated accelerator is a 4-deep pipeline of neuron layers with
``neurons_per_layer`` XNOR neurons each (100 on the chip).  Every cycle, one
input value is broadcast to all neurons of a layer, so a layer's compute time
is its fan-in (plus a small fixed overhead for bias add / sign / handoff).
Layers are pipelined: while layer 2 digests image *i*, layer 1 can start
image *i+1*, giving a steady-state interval equal to the slowest layer.

Deeper logical networks wrap back to the first physical layer (paper
section IV.A), which forfeits cross-image pipelining.

Weight residency follows section V.A: layer-1 weights stay resident in a
local SRAM bank; the remaining layers stream from global L2 via DMA, and the
zero-latency transition scheme overlaps that streaming with inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.bnn.model import BNNModel
from repro.errors import ConfigurationError
from repro.sim import get_session

#: fixed per-layer pipeline overhead (bias add, sign, output handoff)
LAYER_OVERHEAD_CYCLES = 4


@dataclass(frozen=True)
class AcceleratorConfig:
    """Physical parameters of the accelerator array."""

    neurons_per_layer: int = 100
    n_physical_layers: int = 4
    #: DMA bandwidth for weight streaming, 32-bit words per core cycle
    dma_words_per_cycle: float = 0.5
    #: number of layers whose weights stay resident in local SRAM
    resident_layers: int = 1

    def __post_init__(self):
        if self.neurons_per_layer <= 0 or self.n_physical_layers <= 0:
            raise ConfigurationError("array dimensions must be positive")
        if self.dma_words_per_cycle <= 0:
            raise ConfigurationError("DMA bandwidth must be positive")

    @property
    def peak_macs_per_cycle(self) -> int:
        """All physical neurons firing at once (paper's TOPS accounting)."""
        return self.neurons_per_layer * self.n_physical_layers


@dataclass
class InferenceResult:
    """Functional + timing outcome of classifying one input."""

    prediction: int
    scores: np.ndarray
    cycles: int
    macs: int
    layer_cycles: List[int]


@dataclass
class BatchTiming:
    """Timing of a pipelined batch of inferences."""

    n_inputs: int
    latency_cycles: int  # first result
    total_cycles: int  # last result
    interval_cycles: int
    macs: int
    weight_stream_cycles: int

    @property
    def cycles_per_inference(self) -> float:
        return self.total_cycles / self.n_inputs if self.n_inputs else 0.0


class BNNAccelerator:
    """Executes a :class:`BNNModel` with the chip's timing behaviour."""

    def __init__(self, config: Optional[AcceleratorConfig] = None):
        self.config = config if config is not None else AcceleratorConfig()

    # -- structural checks ----------------------------------------------
    def check_model(self, model: BNNModel) -> None:
        too_wide = max(layer.fan_out for layer in model.layers)
        if too_wide > self.config.neurons_per_layer:
            raise ConfigurationError(
                f"model layer width {too_wide} exceeds the array's "
                f"{self.config.neurons_per_layer} neurons per layer"
            )

    def wraps(self, model: BNNModel) -> bool:
        """True when the logical depth exceeds the physical pipeline."""
        return model.n_layers > self.config.n_physical_layers

    # -- timing ----------------------------------------------------------
    def layer_cycles(self, model: BNNModel) -> List[int]:
        """Per-layer compute time: one broadcast input per cycle."""
        return [layer.fan_in + LAYER_OVERHEAD_CYCLES for layer in model.layers]

    def layer_macs(self, model: BNNModel) -> List[int]:
        """Per-layer MAC counts (one XNOR-popcount step == one MAC)."""
        return [layer.fan_in * layer.fan_out for layer in model.layers]

    def latency_cycles(self, model: BNNModel) -> int:
        """Cycles from input available to classification committed."""
        return sum(self.layer_cycles(model))

    def interval_cycles(self, model: BNNModel) -> int:
        """Steady-state cycles between results for back-to-back inputs."""
        if self.wraps(model):
            return self.latency_cycles(model)  # wrapping blocks pipelining
        return max(self.layer_cycles(model))

    def weight_stream_cycles(self, model: BNNModel) -> int:
        """DMA cycles to stream the non-resident layers' weights from L2."""
        streamed = model.layers[self.config.resident_layers:]
        words = sum(layer.weight_bytes // 4 for layer in streamed)
        return int(np.ceil(words / self.config.dma_words_per_cycle))

    def batch_timing(self, model: BNNModel, n_inputs: int,
                     stream_weights: bool = True) -> BatchTiming:
        """Timing for classifying ``n_inputs`` back-to-back.

        With the zero-latency transition scheme the weight streaming overlaps
        inference (layer-1 weights are resident so image 1 can start
        immediately); the batch therefore takes
        ``max(compute, weight streaming)`` rather than their sum.
        """
        self.check_model(model)
        if n_inputs <= 0:
            raise ConfigurationError("batch size must be positive")
        latency = self.latency_cycles(model)
        interval = self.interval_cycles(model)
        compute = latency + (n_inputs - 1) * interval
        stream = self.weight_stream_cycles(model) if stream_weights else 0
        total = max(compute, stream)
        timing = BatchTiming(
            n_inputs=n_inputs,
            latency_cycles=latency,
            total_cycles=total,
            interval_cycles=interval,
            macs=model.total_macs * n_inputs,
            weight_stream_cycles=stream,
        )
        registry = get_session().stats
        scope = registry.scope("bnn")
        scope.incr("batches")
        scope.incr("inferences", n_inputs)
        scope.incr("cycles", total)
        scope.incr("macs", timing.macs)
        if stream:
            scope.incr("weight_stream_cycles", stream)
        registry.emit("bnn.batch", n_inputs=n_inputs, latency_cycles=latency,
                      total_cycles=total, interval_cycles=interval,
                      weight_stream_cycles=stream,
                      layer_cycles=self.layer_cycles(model),
                      layer_macs=self.layer_macs(model))
        return timing

    # -- functional execution --------------------------------------------
    def infer(self, model: BNNModel, x_sign: np.ndarray) -> InferenceResult:
        """Classify one sign-domain input with full timing accounting."""
        self.check_model(model)
        scores = model.scores(x_sign)
        result = InferenceResult(
            prediction=int(np.argmax(scores)),
            scores=scores,
            cycles=self.latency_cycles(model),
            macs=model.total_macs,
            layer_cycles=self.layer_cycles(model),
        )
        registry = get_session().stats
        scope = registry.scope("bnn")
        scope.incr("inferences")
        scope.incr("cycles", result.cycles)
        scope.incr("macs", result.macs)
        registry.emit("bnn.infer", prediction=result.prediction,
                      cycles=result.cycles, macs=result.macs,
                      layer_cycles=result.layer_cycles,
                      layer_macs=self.layer_macs(model))
        return result

    def infer_batch(self, model: BNNModel, x_signs: Sequence[np.ndarray],
                    stream_weights: bool = True,
                    engine: Optional[str] = None):
        """Classify a batch; returns ``(predictions, BatchTiming)``.

        ``engine`` selects the functional kernel through the
        :mod:`repro.engine` registry — any registered name (``accurate``,
        ``fast``, ``parallel``, ...) or engine object; ``None`` follows
        the session's ``SimConfig.engine``.  Every engine classifies
        identically, and the timing/probe accounting (``bnn.batch``,
        cycle/MAC counters) is engine-independent — the fast engines
        change how long the *simulation* takes, never what it reports.
        """
        from repro.engine import resolve_engine

        predictions = resolve_engine(engine).predict(model,
                                                     np.asarray(x_signs))
        timing = self.batch_timing(model, len(x_signs),
                                   stream_weights=stream_weights)
        return predictions, timing

    # -- throughput metrics ----------------------------------------------
    def effective_macs_per_cycle(self, model: BNNModel, n_inputs: int = 100) -> float:
        timing = self.batch_timing(model, n_inputs, stream_weights=False)
        return timing.macs / timing.total_cycles

    def peak_ops_per_cycle(self) -> int:
        """Peak binary ops/cycle; the paper counts one MAC as one op."""
        return self.config.peak_macs_per_cycle
