"""Bit-packed batched XNOR-popcount inference (the BNN fast path).

The scalar path (:meth:`BNNModel.scores`) evaluates one image at a time
with int32 matmuls.  Real binary accelerators instead pack signs into
machine words and replace the multiply-accumulate with XNOR + popcount
over wide registers (XNOR Neural Engine, XNORBIN); this module mirrors
that in numpy: weights and activations live in little-endian **uint64**
words and whole image batches flow through all layers at once.

The arithmetic is exact, not approximate.  For sign vectors ``a, b`` of
length ``n`` packed with equal zero padding,

    dot(a, b) = n - 2 * popcount(a XOR b)

because padding bits are equal in both operands and therefore never
contribute to the XOR.  Every pre-activation is computed in integers, so
:func:`batched_scores` is **bit-identical** to the scalar path — the
differential suite in ``tests/bnn/test_batched_equivalence.py`` pins
this for every topology shape.

This module is the BNN half of the registered ``fast`` engine:
:class:`BatchedBNNHalf` plugs the kernels into the
:class:`~repro.engine.ExecutionEngine` assembled in
:mod:`repro.cpu.fastpath`.  Callers normally go through
:meth:`BNNAccelerator.infer_batch(..., engine=...)
<repro.bnn.accelerator.BNNAccelerator.infer_batch>` or
:func:`predict_with_engine`, which resolve through the engine registry
and default to the session's ``SimConfig.engine`` (``repro run
--engine fast``, ``REPRO_ENGINE``).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.bnn import quantize as q
from repro.bnn.model import BNNModel
from repro.errors import ConfigurationError

#: bits per packed word of the fast path (the scalar accelerator model
#: packs uint32; the software fast path uses the widest numpy integer)
WORD_BITS = 64

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def popcount64(words: np.ndarray) -> np.ndarray:
    """Per-element population count of uint64 values (int64 result)."""
    words = np.asarray(words, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).astype(np.int64)
    # numpy < 2.0 fallback: count per byte through the uint32 table path
    as_u32 = words.view(np.uint32).reshape(words.shape + (2,))
    return q.popcount32(as_u32).sum(axis=-1)


def pack_bits64(bits: np.ndarray) -> np.ndarray:
    """Pack a trailing axis of {0,1} into little-endian uint64 words.

    The 64-bit twin of :func:`repro.bnn.quantize.pack_bits`: the last
    axis is zero-padded up to a multiple of 64 and bit ``i`` of word
    ``w`` holds element ``64*w + i``.
    """
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    n = bits.shape[-1]
    n_words = (n + WORD_BITS - 1) // WORD_BITS
    padded = np.zeros(bits.shape[:-1] + (n_words * WORD_BITS,), dtype=np.uint8)
    padded[..., :n] = bits
    packed_bytes = np.packbits(padded, axis=-1, bitorder="little")
    return packed_bytes.view(np.uint64)


def pack_sign_rows(x_signs: np.ndarray) -> np.ndarray:
    """Pack sign-domain rows ``(batch, n)`` into ``(batch, words)`` uint64."""
    return pack_bits64(q.sign_to_bits(x_signs))


@dataclass(frozen=True)
class PackedLayer:
    """One layer's weights bit-packed for the batched kernel."""

    words: np.ndarray  # (fan_out, n_words) uint64
    bias: np.ndarray  # (fan_out,) int32
    fan_in: int
    fan_out: int

    def pre_activation(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Integer pre-activations ``W x + b`` for a packed input batch.

        ``packed_inputs`` is ``(batch, n_words)`` uint64; the result is
        ``(batch, fan_out)`` int64, exactly equal to the sign-domain
        matmul of the scalar path.
        """
        words = self.words
        if _HAS_BITWISE_COUNT:
            # word-at-a-time over 2-D contiguous arrays: ~9x faster than
            # one 3-D (batch, fan_out, n_words) broadcast on typical sizes
            mismatches = np.bitwise_count(
                packed_inputs[:, 0, None] ^ words[None, :, 0]
            ).astype(np.int64)
            for w in range(1, words.shape[1]):
                mismatches += np.bitwise_count(
                    packed_inputs[:, w, None] ^ words[None, :, w])
        else:
            xor = packed_inputs[:, None, :] ^ words[None, :, :]
            mismatches = popcount64(xor).sum(axis=-1)
        return self.fan_in - 2 * mismatches + self.bias.astype(np.int64)


class PackedModel:
    """A :class:`BNNModel` lowered to packed uint64 weight words."""

    def __init__(self, layers: List[PackedLayer]):
        if not layers:
            raise ConfigurationError("PackedModel needs at least one layer")
        self.layers = list(layers)

    @classmethod
    def from_model(cls, model: BNNModel) -> "PackedModel":
        layers = []
        for layer in model.layers:
            layers.append(PackedLayer(
                words=pack_bits64(q.sign_to_bits(layer.weights)),
                bias=layer.bias.astype(np.int32),
                fan_in=layer.fan_in,
                fan_out=layer.fan_out,
            ))
        return cls(layers)

    @property
    def input_size(self) -> int:
        return self.layers[0].fan_in

    @property
    def n_classes(self) -> int:
        return self.layers[-1].fan_out

    def scores(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Class scores ``(batch, n_classes)`` for a packed input batch."""
        activation = packed_inputs
        for layer in self.layers[:-1]:
            pre = layer.pre_activation(activation)
            activation = pack_bits64((pre >= 0).astype(np.uint8))
        return self.layers[-1].pre_activation(activation).astype(np.int32)


#: packed-weight cache: packing is O(weights) and models are immutable in
#: practice, so one packed copy per live model instance is kept (weakly —
#: dropping the model drops its packed twin)
_PACKED_CACHE: "weakref.WeakKeyDictionary[BNNModel, PackedModel]" = \
    weakref.WeakKeyDictionary()


def packed_model(model: BNNModel) -> PackedModel:
    """The (cached) :class:`PackedModel` lowering of ``model``."""
    packed = _PACKED_CACHE.get(model)
    if packed is None:
        packed = PackedModel.from_model(model)
        _PACKED_CACHE[model] = packed
    return packed


def _as_sign_batch(model: BNNModel, x_signs: np.ndarray) -> np.ndarray:
    x = q.check_sign_domain(np.atleast_2d(np.asarray(x_signs)))
    if x.ndim != 2:
        raise ConfigurationError("batched input must be (batch, input_size)")
    if x.shape[1] != model.input_size:
        raise ConfigurationError(
            f"input size {x.shape[1]} != model input {model.input_size}")
    return x


def encode_batch(model: BNNModel, x_signs: np.ndarray) -> np.ndarray:
    """Validate a sign batch against ``model`` and bit-pack its rows.

    The one input-encoding step of the fast path, shared by the serial
    kernels and the parallel engine's shard workers so both sides encode
    identically (same validation, same packing).
    """
    return pack_sign_rows(_as_sign_batch(model, x_signs))


def batched_scores(model: BNNModel, x_signs: np.ndarray) -> np.ndarray:
    """Integer class scores ``(batch, n_classes)``, bit-identical to the
    scalar path (``np.stack([model.scores(x) for x in x_signs])``)."""
    return packed_model(model).scores(encode_batch(model, x_signs))


def batched_predict(model: BNNModel, x_signs: np.ndarray) -> np.ndarray:
    """Vectorized argmax classification through the packed kernels."""
    return np.argmax(batched_scores(model, x_signs), axis=1)


def batched_hidden_forward(model: BNNModel, x_signs: np.ndarray) -> np.ndarray:
    """Sign activations after *every* layer through the packed kernels.

    Bit-identical to :meth:`BNNModel.hidden_forward_batch` — the integer
    pre-activations are exact, so thresholding at zero lands on the same
    signs.  Used when this model is the front half of a two-core chain.
    """
    x = _as_sign_batch(model, x_signs)
    packed = pack_sign_rows(x)
    bits = np.zeros((x.shape[0], 0), dtype=np.uint8)
    for layer in packed_model(model).layers:
        bits = (layer.pre_activation(packed) >= 0).astype(np.uint8)
        packed = pack_bits64(bits)
    return q.bits_to_sign(bits)


class BatchedBNNHalf:
    """BNN half of the ``fast`` engine (mixin for ExecutionEngine).

    Pure functions of the model and inputs: no session stats, no probe
    emissions — the accounting contract lives in the accelerator timing
    model and is engine-independent.
    """

    def scores(self, model: BNNModel, x_signs: np.ndarray) -> np.ndarray:
        return batched_scores(model, x_signs)

    def predict(self, model: BNNModel, x_signs: np.ndarray) -> np.ndarray:
        return batched_predict(model, x_signs)

    def hidden_forward(self, model: BNNModel,
                       x_signs: np.ndarray) -> np.ndarray:
        return batched_hidden_forward(model, x_signs)


def predict_with_engine(model: BNNModel, x_signs: np.ndarray,
                        engine: Optional[str] = None) -> np.ndarray:
    """Classify a batch with the selected engine.

    ``engine=None`` resolves to the session's ``SimConfig.engine``; any
    registered engine name (or engine object) works.  Every engine
    returns identical predictions (the equivalence suites pin the logits
    bit-for-bit), so this only changes host-side speed.
    """
    from repro.engine import resolve_engine

    return resolve_engine(engine).predict(model, np.asarray(x_signs))
