"""Synthetic datasets standing in for MNIST and the Ninapro motion database.

The evaluation machine has no network access, so the paper's datasets are
replaced by deterministic generators that exercise the same code paths
(DESIGN.md section 2):

* :func:`synthetic_mnist` — 10-class digit-glyph images, 16x16 grayscale,
  with random shifts and pixel noise.  Difficulty is tuned so the paper's
  4x100 BNN lands near its reported 94.8 % accuracy and accuracy grows
  monotonically with network width (paper Fig 18).
* :func:`synthetic_motion` — 6-channel accelerometer-like traces for simple
  motion classes, with noise tuned so the BNN lands near the paper's 74 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.bnn import quantize as q
from repro.errors import ConfigurationError

# 7x5 digit glyphs (classic bitmap font)
_DIGIT_GLYPHS = [
    ["01110", "10001", "10011", "10101", "11001", "10001", "01110"],  # 0
    ["00100", "01100", "00100", "00100", "00100", "00100", "01110"],  # 1
    ["01110", "10001", "00001", "00010", "00100", "01000", "11111"],  # 2
    ["11111", "00010", "00100", "00010", "00001", "10001", "01110"],  # 3
    ["00010", "00110", "01010", "10010", "11111", "00010", "00010"],  # 4
    ["11111", "10000", "11110", "00001", "00001", "10001", "01110"],  # 5
    ["00110", "01000", "10000", "11110", "10001", "10001", "01110"],  # 6
    ["11111", "00001", "00010", "00100", "01000", "01000", "01000"],  # 7
    ["01110", "10001", "10001", "01110", "10001", "10001", "01110"],  # 8
    ["01110", "10001", "10001", "01111", "00001", "00010", "01100"],  # 9
]


def digit_template(digit: int, size: int = 16, scale: int = 2) -> np.ndarray:
    """Render the glyph for ``digit`` into a ``size`` x ``size`` float image."""
    if not 0 <= digit <= 9:
        raise ConfigurationError(f"digit {digit} out of range [0, 9]")
    glyph = np.array([[int(c) for c in row] for row in _DIGIT_GLYPHS[digit]],
                     dtype=np.float64)
    glyph = np.kron(glyph, np.ones((scale, scale)))
    image = np.zeros((size, size))
    rows, cols = glyph.shape
    if rows > size or cols > size:
        raise ConfigurationError(f"glyph {rows}x{cols} does not fit in {size}x{size}")
    top = (size - rows) // 2
    left = (size - cols) // 2
    image[top:top + rows, left:left + cols] = glyph
    return image


@dataclass
class Dataset:
    """A labelled dataset with train/test split helpers.

    ``images`` holds real-valued feature vectors in [0, 1] (flattened);
    ``labels`` the integer classes.
    """

    images: np.ndarray  # (n_samples, n_features) float64 in [0,1]
    labels: np.ndarray  # (n_samples,) int64
    n_classes: int
    name: str = "dataset"

    def __post_init__(self):
        if len(self.images) != len(self.labels):
            raise ConfigurationError("images and labels must align")

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def n_features(self) -> int:
        return self.images.shape[1]

    def binarized(self, threshold: float = 0.5) -> np.ndarray:
        """Sign-domain inputs for the BNN, shape (n_samples, n_features)."""
        return q.binarize_sign(self.images - threshold)

    def split(self, train_fraction: float = 0.8,
              rng: np.random.Generator | None = None
              ) -> Tuple["Dataset", "Dataset"]:
        rng = rng if rng is not None else np.random.default_rng(0)
        order = rng.permutation(len(self))
        cut = int(train_fraction * len(self))
        train_idx, test_idx = order[:cut], order[cut:]
        return (
            Dataset(self.images[train_idx], self.labels[train_idx],
                    self.n_classes, self.name + "/train"),
            Dataset(self.images[test_idx], self.labels[test_idx],
                    self.n_classes, self.name + "/test"),
        )


def synthetic_mnist(
    n_samples: int = 5000,
    size: int = 16,
    max_shift: int = 2,
    noise_flip: float = 0.08,
    seed: int = 0,
) -> Dataset:
    """Generate the MNIST stand-in: shifted noisy digit glyphs.

    Args:
        n_samples: total samples (classes balanced).
        size: image edge length (the chip's 4 kB image memory comfortably
            holds a 16x16 binary image per the paper's small-model regime).
        max_shift: uniform random translation in pixels.
        noise_flip: per-pixel probability of flipping a binarized pixel;
            this is the difficulty knob.
        seed: RNG seed (deterministic dataset).
    """
    rng = np.random.default_rng(seed)
    templates = [digit_template(d, size=size) for d in range(10)]
    images = np.empty((n_samples, size * size))
    labels = rng.integers(0, 10, size=n_samples)
    for index, label in enumerate(labels):
        image = templates[label]
        dr, dc = rng.integers(-max_shift, max_shift + 1, size=2)
        image = np.roll(np.roll(image, dr, axis=0), dc, axis=1)
        flips = rng.random((size, size)) < noise_flip
        image = np.abs(image - flips)  # flip pixels
        # mild amplitude jitter keeps the data non-trivially analog
        image = np.clip(image * rng.uniform(0.7, 1.0) + rng.uniform(0, 0.15), 0, 1)
        images[index] = image.reshape(-1)
    return Dataset(images=images, labels=labels.astype(np.int64), n_classes=10,
                   name="synthetic-mnist")


#: per-class motion signatures: (base offsets cycle, frequency, amplitude)
_MOTION_CLASSES = 6
_MOTION_CHANNELS = 6


def synthetic_motion(
    n_samples: int = 3000,
    length: int = 64,
    noise_sigma: float = 4.2,
    seed: int = 0,
) -> "MotionDataset":
    """Generate the Ninapro stand-in: 6-channel motion windows, 6 gestures.

    Each gesture has a characteristic per-channel DC offset, oscillation
    frequency and amplitude; ``noise_sigma`` is the difficulty knob tuned so
    the feature+BNN pipeline lands near the paper's 74 % accuracy.
    """
    rng = np.random.default_rng(seed)
    class_rng = np.random.default_rng(12345)  # fixed class signatures
    offsets = class_rng.uniform(-1, 1, size=(_MOTION_CLASSES, _MOTION_CHANNELS))
    freqs = class_rng.uniform(1, 6, size=(_MOTION_CLASSES, _MOTION_CHANNELS))
    amps = class_rng.uniform(0.3, 1.2, size=(_MOTION_CLASSES, _MOTION_CHANNELS))

    t = np.linspace(0, 1, length, endpoint=False)
    traces = np.empty((n_samples, _MOTION_CHANNELS, length))
    labels = rng.integers(0, _MOTION_CLASSES, size=n_samples)
    for index, label in enumerate(labels):
        phase = rng.uniform(0, 2 * np.pi, size=_MOTION_CHANNELS)
        clean = (offsets[label][:, None]
                 + amps[label][:, None]
                 * np.sin(2 * np.pi * freqs[label][:, None] * t + phase[:, None]))
        noisy = clean + rng.normal(0, noise_sigma, size=clean.shape)
        traces[index] = noisy
    return MotionDataset(traces=traces, labels=labels.astype(np.int64),
                         n_classes=_MOTION_CLASSES)


#: keyword-spotting stand-in: classes of 1-D "audio" bursts
_KEYWORD_CLASSES = 4


def synthetic_keywords(
    n_samples: int = 2000,
    length: int = 256,
    noise_sigma: float = 0.3,
    seed: int = 0,
) -> "AudioDataset":
    """Generate the voice-detection stand-in (paper section III cites BNN
    voice/keyword detection chips as a target application).

    Each keyword class has a characteristic temporal envelope (attack /
    sustain / decay position) and a dominant oscillation frequency; class 0
    is background (noise only).  Windows are mono, ``length`` samples.
    """
    rng = np.random.default_rng(seed)
    class_rng = np.random.default_rng(777)
    freqs = class_rng.uniform(4, 24, size=_KEYWORD_CLASSES)
    centers = class_rng.uniform(0.25, 0.75, size=_KEYWORD_CLASSES)
    widths = class_rng.uniform(0.08, 0.2, size=_KEYWORD_CLASSES)

    t = np.linspace(0, 1, length, endpoint=False)
    signals = np.empty((n_samples, length))
    labels = rng.integers(0, _KEYWORD_CLASSES, size=n_samples)
    for index, label in enumerate(labels):
        noise = rng.normal(0, noise_sigma, size=length)
        if label == 0:
            signals[index] = noise
            continue
        envelope = np.exp(-0.5 * ((t - centers[label]) / widths[label]) ** 2)
        phase = rng.uniform(0, 2 * np.pi)
        tone = np.sin(2 * np.pi * freqs[label] * t + phase)
        signals[index] = envelope * tone * rng.uniform(0.8, 1.3) + noise
    return AudioDataset(signals=signals, labels=labels.astype(np.int64),
                        n_classes=_KEYWORD_CLASSES)


@dataclass
class AudioDataset:
    """Raw 1-D audio-like windows (pre feature extraction)."""

    signals: np.ndarray  # (n_samples, length)
    labels: np.ndarray
    n_classes: int

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def length(self) -> int:
        return self.signals.shape[1]

    def to_feature_dataset(self, extractor) -> Dataset:
        """Run ``extractor(signal) -> feature vector`` over every sample."""
        features = np.array([extractor(signal) for signal in self.signals])
        lo = features.min(axis=0, keepdims=True)
        hi = features.max(axis=0, keepdims=True)
        span = np.where(hi - lo == 0, 1.0, hi - lo)
        normalized = (features - lo) / span
        return Dataset(images=normalized, labels=self.labels,
                       n_classes=self.n_classes, name="synthetic-keywords")


@dataclass
class MotionDataset:
    """Raw multi-channel motion traces (pre feature extraction)."""

    traces: np.ndarray  # (n_samples, channels, length)
    labels: np.ndarray
    n_classes: int

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def n_channels(self) -> int:
        return self.traces.shape[1]

    @property
    def length(self) -> int:
        return self.traces.shape[2]

    def to_feature_dataset(self, extractor) -> Dataset:
        """Run ``extractor(trace) -> feature vector`` over every sample.

        The extractor is the same mean/histogram pipeline the CPU runs in the
        motion use case (:mod:`repro.workloads.motion_features`).
        """
        features = np.array([extractor(trace) for trace in self.traces])
        lo = features.min(axis=0, keepdims=True)
        hi = features.max(axis=0, keepdims=True)
        span = np.where(hi - lo == 0, 1.0, hi - lo)
        normalized = (features - lo) / span
        return Dataset(images=normalized, labels=self.labels,
                       n_classes=self.n_classes, name="synthetic-motion")
