"""The binarized fully-connected network model (paper section III).

A :class:`BNNModel` is a stack of fully-connected binary layers.  Hidden
layers compute ``sign(W x + b)`` with W, x in {-1, +1} and integer bias b;
the output layer keeps its integer pre-activations and classification takes
the argmax (the chip reads the winning class out of the output memory).

The model matches the paper's hardware: 4 layers, ``neurons_per_layer``
neurons each (100 in the fabricated chip), binary input image, per-neuron
bias from the bias memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.bnn import quantize as q
from repro.errors import ConfigurationError


@dataclass
class BNNLayer:
    """One binary fully-connected layer: ``weights`` is (fan_out, fan_in)."""

    weights: np.ndarray  # int8 in {-1,+1}
    bias: np.ndarray  # integer thresholds, shape (fan_out,)

    def __post_init__(self):
        self.weights = q.check_sign_domain(self.weights)
        self.bias = np.asarray(self.bias, dtype=np.int32)
        if self.weights.ndim != 2:
            raise ConfigurationError("layer weights must be 2-D (fan_out, fan_in)")
        if self.bias.shape != (self.weights.shape[0],):
            raise ConfigurationError(
                f"bias shape {self.bias.shape} does not match fan_out "
                f"{self.weights.shape[0]}"
            )

    @property
    def fan_in(self) -> int:
        return self.weights.shape[1]

    @property
    def fan_out(self) -> int:
        return self.weights.shape[0]

    @property
    def macs(self) -> int:
        """Binary multiply-accumulates per forward pass."""
        return self.fan_in * self.fan_out

    def pre_activation(self, x_sign: np.ndarray) -> np.ndarray:
        """Integer pre-activations ``W x + b`` for sign-domain input."""
        x_sign = np.asarray(x_sign)
        return self.weights.astype(np.int32) @ x_sign.astype(np.int32) + self.bias

    def forward(self, x_sign: np.ndarray) -> np.ndarray:
        """Binary activation ``sign(W x + b)``."""
        return q.binarize_sign(self.pre_activation(x_sign))

    def packed_weights(self) -> np.ndarray:
        """Weights bit-packed per neuron, shape (fan_out, ceil(fan_in/32))."""
        return q.pack_bits(q.sign_to_bits(self.weights))

    @property
    def weight_bytes(self) -> int:
        """SRAM bytes to store this layer's packed weights."""
        return self.fan_out * 4 * ((self.fan_in + 31) // 32)


class BNNModel:
    """A multi-layer binary network.

    Args:
        layers: the stacked :class:`BNNLayer` objects.  The final layer is the
            classifier; its integer pre-activations are the class scores.
    """

    def __init__(self, layers: Sequence[BNNLayer]):
        if not layers:
            raise ConfigurationError("BNNModel needs at least one layer")
        for previous, current in zip(layers, layers[1:]):
            if previous.fan_out != current.fan_in:
                raise ConfigurationError(
                    f"layer fan-out {previous.fan_out} does not feed fan-in "
                    f"{current.fan_in}"
                )
        self.layers: List[BNNLayer] = list(layers)

    # -- topology ------------------------------------------------------
    @property
    def input_size(self) -> int:
        return self.layers[0].fan_in

    @property
    def n_classes(self) -> int:
        return self.layers[-1].fan_out

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers)

    # -- inference -----------------------------------------------------
    def binarize_input(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binarize a real-valued input vector (pixels in [0,1]) to signs."""
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        if x.size != self.input_size:
            raise ConfigurationError(
                f"input size {x.size} != model input {self.input_size}"
            )
        return q.binarize_sign(x - threshold)

    def scores(self, x_sign: np.ndarray) -> np.ndarray:
        """Integer class scores for one sign-domain input vector."""
        activation = q.check_sign_domain(x_sign)
        for layer in self.layers[:-1]:
            activation = layer.forward(activation)
        return self.layers[-1].pre_activation(activation)

    def predict(self, x_sign: np.ndarray) -> int:
        return int(np.argmax(self.scores(x_sign)))

    def predict_batch(self, x_signs: np.ndarray) -> np.ndarray:
        """Vectorized prediction; ``x_signs`` is (n_samples, input_size)."""
        activation = np.asarray(x_signs, dtype=np.int32).T  # (features, samples)
        for layer in self.layers[:-1]:
            pre = layer.weights.astype(np.int32) @ activation + layer.bias[:, None]
            activation = np.where(pre >= 0, 1, -1).astype(np.int32)
        scores = self.layers[-1].weights.astype(np.int32) @ activation \
            + self.layers[-1].bias[:, None]
        return np.argmax(scores, axis=0)

    def accuracy(self, x_signs: np.ndarray, labels: np.ndarray) -> float:
        predictions = self.predict_batch(x_signs)
        return float(np.mean(predictions == np.asarray(labels)))

    def hidden_forward_batch(self, x_signs: np.ndarray) -> np.ndarray:
        """Sign activations after *every* layer (including the last).

        Used when this model is the front half of a two-core chain (paper
        section VI.A: "form a deeper neural network accelerator by
        connecting these two NCPU cores in series") — the downstream core
        consumes binary activations, not integer scores.
        """
        activation = np.asarray(x_signs, dtype=np.int32).T
        for layer in self.layers:
            pre = layer.weights.astype(np.int32) @ activation + layer.bias[:, None]
            activation = np.where(pre >= 0, 1, -1).astype(np.int32)
        return activation.T.astype(np.int8)

    # -- restructuring helpers -------------------------------------------
    def split(self, front_layers: int) -> Tuple["BNNModel", "BNNModel"]:
        """Split into (front, back) sub-models for two-core chaining."""
        if not 0 < front_layers < self.n_layers:
            raise ConfigurationError(
                f"cannot split a {self.n_layers}-layer model at "
                f"{front_layers}"
            )
        return (BNNModel(self.layers[:front_layers]),
                BNNModel(self.layers[front_layers:]))

    def truncated(self, n_layers: int) -> "BNNModel":
        """The first ``n_layers`` as a standalone classifier.

        Smaller networks are supported "by configuring NCPU layers using
        the developed ISA" (paper section VIII.A); the truncated model's
        final layer supplies the class scores.
        """
        if not 0 < n_layers <= self.n_layers:
            raise ConfigurationError(
                f"cannot truncate a {self.n_layers}-layer model to "
                f"{n_layers}"
            )
        return BNNModel(self.layers[:n_layers])

    # -- construction helpers ------------------------------------------
    @classmethod
    def random(cls, layer_sizes: Sequence[int], rng: np.random.Generator) -> "BNNModel":
        """A random model with the given ``[input, h1, ..., classes]`` sizes."""
        if len(layer_sizes) < 2:
            raise ConfigurationError("need at least input and output sizes")
        layers = []
        for fan_in, fan_out in zip(layer_sizes, layer_sizes[1:]):
            weights = q.binarize_sign(rng.standard_normal((fan_out, fan_in)))
            bias = np.zeros(fan_out, dtype=np.int32)
            layers.append(BNNLayer(weights=weights, bias=bias))
        return cls(layers)

    @classmethod
    def paper_topology(cls, input_size: int, neurons_per_layer: int = 100,
                       n_classes: int = 10,
                       rng: np.random.Generator | None = None) -> "BNNModel":
        """The chip's 4-layer topology: 3 hidden layers + classifier."""
        rng = rng if rng is not None else np.random.default_rng(0)
        sizes = [input_size, neurons_per_layer, neurons_per_layer,
                 neurons_per_layer, n_classes]
        return cls.random(sizes, rng)
