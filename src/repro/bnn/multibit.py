"""Multi-bit quantized networks — the paper's future-work extension.

Section VIII.A: "Supporting multi-bit and complex DNN is definitely a
future research direction."  Also section III's motivating claim: BNN loses
only a few accuracy points against multi-bit networks while costing
10-100x less storage and compute.  This module makes both quantifiable:

* :class:`FloatMLP` — a small ReLU MLP trained with Adam (the float
  reference),
* :func:`quantize_model` — symmetric post-training quantization to any bit
  width, producing a pure-integer :class:`QuantizedModel`,
* :class:`MultiBitAcceleratorModel` — the NCPU-style neuron array running
  multi-bit MACs bit-serially: a ``b``-bit layer takes ``b`` passes of the
  binary datapath, weight storage grows ``b``-fold, and the neuron cell
  grows with the wider accumulator.

The extension experiment compares accuracy / cycles / storage across
{float, 8-bit, 4-bit, 2-bit, binary}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.bnn.model import BNNModel
from repro.errors import ConfigurationError, TrainingError


class FloatMLP:
    """A plain ReLU MLP trained with Adam (numpy)."""

    def __init__(self, layer_sizes: Sequence[int], seed: int = 0):
        if len(layer_sizes) < 2:
            raise ConfigurationError("need at least input and output sizes")
        rng = np.random.default_rng(seed)
        self.sizes = list(layer_sizes)
        self.weights = [
            rng.standard_normal((fan_out, fan_in)) * np.sqrt(2.0 / fan_in)
            for fan_in, fan_out in zip(layer_sizes, layer_sizes[1:])
        ]
        self.biases = [np.zeros(fan_out) for fan_out in layer_sizes[1:]]

    def _forward(self, x: np.ndarray):
        activations = [x]
        pres = []
        current = x
        last = len(self.weights) - 1
        for index, (w, b) in enumerate(zip(self.weights, self.biases)):
            pre = current @ w.T + b
            pres.append(pre)
            current = pre if index == last else np.maximum(pre, 0.0)
            activations.append(current)
        return activations, pres

    def predict_batch(self, x: np.ndarray) -> np.ndarray:
        _, pres = self._forward(np.asarray(x, dtype=np.float64))
        return np.argmax(pres[-1], axis=1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict_batch(x) == np.asarray(labels)))

    def train(self, x: np.ndarray, labels: np.ndarray, epochs: int = 15,
              batch_size: int = 64, learning_rate: float = 1e-3,
              seed: int = 1) -> List[float]:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(labels)
        rng = np.random.default_rng(seed)
        params = self.weights + self.biases
        m = [np.zeros_like(p) for p in params]
        v = [np.zeros_like(p) for p in params]
        step = 0
        losses = []
        for _ in range(epochs):
            order = rng.permutation(len(x))
            epoch_loss = 0.0
            for start in range(0, len(x), batch_size):
                batch = order[start:start + batch_size]
                xb, yb = x[batch], y[batch]
                activations, pres = self._forward(xb)
                scores = pres[-1] - pres[-1].max(axis=1, keepdims=True)
                exp = np.exp(scores)
                probs = exp / exp.sum(axis=1, keepdims=True)
                epoch_loss -= float(
                    np.log(probs[np.arange(len(batch)), yb] + 1e-12).sum())
                grad = probs
                grad[np.arange(len(batch)), yb] -= 1.0
                grad /= len(batch)

                grads_w: List[np.ndarray] = [None] * len(self.weights)
                grads_b: List[np.ndarray] = [None] * len(self.biases)
                for index in reversed(range(len(self.weights))):
                    grads_w[index] = grad.T @ activations[index]
                    grads_b[index] = grad.sum(axis=0)
                    if index > 0:
                        grad = (grad @ self.weights[index]) \
                            * (pres[index - 1] > 0)
                grads = grads_w + grads_b
                step += 1
                c1 = 1 - 0.9 ** step
                c2 = 1 - 0.999 ** step
                for i, (p, g) in enumerate(zip(params, grads)):
                    m[i] = 0.9 * m[i] + 0.1 * g
                    v[i] = 0.999 * v[i] + 0.001 * g ** 2
                    p -= learning_rate * (m[i] / c1) / (np.sqrt(v[i] / c2)
                                                        + 1e-8)
            epoch_loss /= len(x)
            if not np.isfinite(epoch_loss):
                raise TrainingError("float MLP diverged")
            losses.append(epoch_loss)
        return losses


@dataclass
class QuantizedLayer:
    """Symmetric integer layer: int weights, right-shift requantization."""

    weights: np.ndarray  # int32, |w| < 2^(bits-1)
    bias: np.ndarray  # int32 (pre-activation scale)
    shift: int  # requantization right-shift for the activation
    bits: int

    @property
    def fan_in(self) -> int:
        return self.weights.shape[1]

    @property
    def fan_out(self) -> int:
        return self.weights.shape[0]

    @property
    def weight_bytes(self) -> int:
        return self.fan_out * self.fan_in * self.bits // 8 \
            if self.bits >= 8 else (self.fan_out * self.fan_in * self.bits + 7) // 8


class QuantizedModel:
    """A stack of :class:`QuantizedLayer` with ReLU between layers."""

    def __init__(self, layers: Sequence[QuantizedLayer], bits: int):
        if not layers:
            raise ConfigurationError("QuantizedModel needs layers")
        self.layers = list(layers)
        self.bits = bits
        self._activation_peak = (1 << bits) - 1

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def input_size(self) -> int:
        return self.layers[0].fan_in

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.fan_in * layer.fan_out for layer in self.layers)

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        """Map [0, 1] features onto the unsigned activation grid."""
        x = np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)
        return np.round(x * self._activation_peak).astype(np.int64)

    def predict_batch(self, x_unit: np.ndarray) -> np.ndarray:
        """Classify inputs given as real values in [0, 1]."""
        activation = self.quantize_input(x_unit).T
        last = len(self.layers) - 1
        for index, layer in enumerate(self.layers):
            pre = layer.weights.astype(np.int64) @ activation \
                + layer.bias[:, None]
            if index == last:
                activation = pre
            else:
                activation = np.clip(pre >> layer.shift, 0,
                                     self._activation_peak)
        return np.argmax(activation, axis=0)

    def accuracy(self, x_unit: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict_batch(x_unit)
                             == np.asarray(labels)))


def quantize_model(mlp: FloatMLP, bits: int,
                   calibration: np.ndarray) -> QuantizedModel:
    """Symmetric post-training quantization of a trained float MLP.

    Weight scale per layer from the max |w|; activation requantization
    shifts chosen from the calibration batch so the inter-layer values fit
    the ``bits``-bit unsigned grid.
    """
    if not 2 <= bits <= 8:
        raise ConfigurationError("supported widths: 2..8 bits")
    peak = (1 << bits) - 1
    w_peak = (1 << (bits - 1)) - 1

    layers: List[QuantizedLayer] = []
    activations = np.clip(np.asarray(calibration, dtype=np.float64), 0, 1)
    act_scale = peak  # current activation LSB count per unit value
    current = activations
    last = len(mlp.weights) - 1
    for index, (w, b) in enumerate(zip(mlp.weights, mlp.biases)):
        w_scale = w_peak / (np.abs(w).max() or 1.0)
        wq = np.round(w * w_scale).astype(np.int64)
        bq = np.round(b * w_scale * act_scale).astype(np.int64)

        pre_float = current @ w.T + b  # float reference pre-activation
        if index == last:
            layers.append(QuantizedLayer(weights=wq, bias=bq, shift=0,
                                         bits=bits))
            break
        relu = np.maximum(pre_float, 0.0)
        out_peak = np.percentile(relu, 99.5) or 1.0
        # integer pre-activation scale is w_scale * act_scale; choose the
        # shift so out_peak maps near the top of the next grid
        target_scale = peak / out_peak
        raw_scale = w_scale * act_scale
        shift = max(0, int(round(np.log2(raw_scale / target_scale))))
        layers.append(QuantizedLayer(weights=wq, bias=bq, shift=shift,
                                     bits=bits))
        act_scale = raw_scale / (1 << shift)
        current = np.minimum(relu, out_peak)
    return QuantizedModel(layers, bits=bits)


@dataclass(frozen=True)
class MultiBitTiming:
    """Cycle/storage model of a b-bit network on the NCPU neuron array."""

    bits: int
    latency_cycles: int
    interval_cycles: int
    weight_bytes: int
    neuron_area_scale: float


def multibit_timing(model: QuantizedModel,
                    layer_overhead: int = 4) -> MultiBitTiming:
    """Bit-serial execution on the binary array: ``bits`` passes per layer.

    The neuron cell reuses the XNOR/adder datapath ``bits`` times per
    input (one per weight bit) with a widened accumulator — the paper's
    suggested path to multi-bit support.
    """
    per_layer = [layer.fan_in * model.bits + layer_overhead
                 for layer in model.layers]
    latency = sum(per_layer)
    interval = max(per_layer) if model.n_layers <= 4 else latency
    area_scale = 1.0 + 0.15 * (model.bits - 1)  # accumulator widening
    return MultiBitTiming(bits=model.bits, latency_cycles=latency,
                          interval_cycles=interval,
                          weight_bytes=model.weight_bytes,
                          neuron_area_scale=area_scale)


def bnn_timing_equivalent(model: BNNModel,
                          layer_overhead: int = 4) -> MultiBitTiming:
    """The binary point of the same trade-off curve."""
    per_layer = [layer.fan_in + layer_overhead for layer in model.layers]
    latency = sum(per_layer)
    interval = max(per_layer) if model.n_layers <= 4 else latency
    return MultiBitTiming(bits=1, latency_cycles=latency,
                          interval_cycles=interval,
                          weight_bytes=model.weight_bytes,
                          neuron_area_scale=1.0)
