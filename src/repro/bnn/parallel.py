"""Process-sharded whole-batch BNN inference (the ``parallel`` engine).

The bit-packed kernels in :mod:`repro.bnn.batched` are embarrassingly
parallel across batch rows: every image's scores depend only on that
image's packed bits and the (shared, immutable) packed weights.  This
module shards a whole-batch inference call across a
:class:`~concurrent.futures.ProcessPoolExecutor` — chunked work
distribution with a serial fallback when the batch is too small for the
fan-out overhead to pay — and registers the result as the ``parallel``
engine through the same seam every other backend uses.

Exactness is free: chunks are concatenated in submission order and each
chunk runs the very same packed kernels, so scores are **bit-identical**
to the ``fast`` and ``accurate`` engines (the three-way differential
suite pins this).  Worker processes never touch the parent's
:class:`~repro.sim.StatsRegistry`; cycle/MAC accounting stays in the
accelerator timing model, engine-independent.  The parent-side shard
loop *does* emit ``bnn.parallel.shard``/``merge``/``fallback`` probe
events so the fan-out cost (pickle + IPC + queue wait) is observable —
the ``repro.obs`` layer and the trace bridge consume them.

Two shard transports exist.  The default **shared-memory** transport
packs the whole batch once in the parent, copies the packed uint64 rows
into a :class:`multiprocessing.shared_memory.SharedMemory` segment, and
sends workers only ``(segment name, shape, start, stop)`` — each worker
maps a zero-copy ndarray view over its ``[start:stop)`` row range, so
input rows are never pickled.  When shared memory is unavailable (or
disabled via ``REPRO_PARALLEL_SHM=0``) the original **pickling**
transport ships each chunk's rows through the pool's pickle channel.
Both transports run the same packed kernels and are bit-identical; every
``bnn.parallel.shard``/``merge`` probe carries a ``transport`` field so
the difference stays observable.  See ``docs/KERNELS.md`` for the wire
protocol.

Tuning knobs: ``REPRO_PARALLEL_WORKERS`` caps the pool size (default:
host CPU count), ``REPRO_PARALLEL_SHM=0`` forces the pickling
transport, and batches below :data:`MIN_PARALLEL_BATCH` rows (or hosts
with one usable CPU) take the serial path.  See ``docs/PERFORMANCE.md``
for when sharding pays off.
"""

from __future__ import annotations

import atexit
import itertools
import logging
import os
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bnn.batched import (
    PackedModel,
    batched_scores,
    encode_batch,
    pack_sign_rows,
    _as_sign_batch,
)
from repro.bnn.model import BNNModel
from repro.cpu.fastpath import FastEngine
from repro.engine import EngineCapabilities, register_engine
from repro.errors import ConfigurationError

logger = logging.getLogger(__name__)

#: environment variable capping the shard pool size (default: CPU count)
PARALLEL_WORKERS_ENV_VAR = "REPRO_PARALLEL_WORKERS"

#: batches smaller than this run serially — fan-out (pickle + IPC) costs
#: more than it saves on small batches
MIN_PARALLEL_BATCH = 512

#: never split the batch into chunks smaller than this many rows
MIN_CHUNK_ROWS = 128

#: chunks per worker; >1 smooths load imbalance across chunks
CHUNKS_PER_WORKER = 2

#: environment variable disabling the shared-memory shard transport
#: (``0``/``false``/``no``/``off`` force the pickling transport)
PARALLEL_SHM_ENV_VAR = "REPRO_PARALLEL_SHM"


def _shared_memory_module():
    """``multiprocessing.shared_memory`` or ``None`` when unavailable."""
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - stdlib since 3.8
        return None
    return shared_memory


def shm_default(environ=None) -> bool:
    """Whether the shared-memory transport is enabled for this process."""
    env = os.environ if environ is None else environ
    raw = env.get(PARALLEL_SHM_ENV_VAR, "").strip().lower()
    if raw in ("0", "false", "no", "off"):
        return False
    return _shared_memory_module() is not None


def default_workers(environ=None) -> int:
    """Shard pool size: ``REPRO_PARALLEL_WORKERS`` or the host CPU count."""
    env = os.environ if environ is None else environ
    raw = env.get(PARALLEL_WORKERS_ENV_VAR, "").strip()
    if raw:
        try:
            workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{PARALLEL_WORKERS_ENV_VAR}={raw!r} is not an integer")
        if workers < 1:
            raise ConfigurationError(
                f"{PARALLEL_WORKERS_ENV_VAR} must be >= 1, got {workers}")
        return workers
    return os.cpu_count() or 1


def chunk_bounds(n_rows: int, workers: int,
                 min_chunk: int = MIN_CHUNK_ROWS) -> List[Tuple[int, int]]:
    """``(start, stop)`` row ranges splitting ``n_rows`` across ``workers``.

    Aims for :data:`CHUNKS_PER_WORKER` chunks per worker but never cuts a
    chunk below ``min_chunk`` rows; remainders spread one extra row per
    leading chunk so sizes differ by at most one.
    """
    if n_rows <= 0:
        return []
    target = max(1, workers) * CHUNKS_PER_WORKER
    n_chunks = max(1, min(target, n_rows // max(1, min_chunk)))
    base, extra = divmod(n_rows, n_chunks)
    bounds = []
    start = 0
    for index in range(n_chunks):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


# -- worker side ----------------------------------------------------------
#: per-worker packed-model cache keyed by the parent's model token, so a
#: pool reused across calls re-packs each model once per worker, not once
#: per chunk
_WORKER_PACKED: Dict[str, PackedModel] = {}


def _score_chunk(token: str, model: BNNModel,
                 rows: np.ndarray) -> Tuple[np.ndarray, float, float]:
    """Score one shard; returns ``(scores, worker_start_s, compute_s)``.

    ``worker_start_s`` is the worker's ``perf_counter`` on entry — on
    Linux that is CLOCK_MONOTONIC, system-wide, so the parent can
    subtract its own submit timestamp to measure queue wait.
    """
    worker_start = time.perf_counter()
    packed = _WORKER_PACKED.get(token)
    if packed is None:
        packed = PackedModel.from_model(model)
        _WORKER_PACKED[token] = packed
    scores = packed.scores(encode_batch(model, rows))
    return scores, worker_start, time.perf_counter() - worker_start


def _attach_shm_untracked(name: str):
    """Attach to an existing shared-memory segment without tracking it.

    The parent owns the segment's lifetime (it unlinks after the merge),
    but Python 3.11's ``SharedMemory`` registers every *attach* with the
    resource tracker (bpo-38119), which makes worker trackers warn about
    — or double-unregister — a segment they never owned.  Suppressing
    the registration for the duration of the attach sidesteps both.
    """
    shared_memory = _shared_memory_module()
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _score_chunk_shm(token: str, model: BNNModel, shm_name: str,
                     shape: Tuple[int, int], start: int,
                     stop: int) -> Tuple[np.ndarray, float, float]:
    """Score rows ``[start:stop)`` of the shared packed batch.

    The zero-copy twin of :func:`_score_chunk`: the parent already
    validated and bit-packed the whole batch into the named shared-memory
    segment, so this worker only maps a uint64 view over its row range —
    no input rows cross the pickle channel.
    """
    worker_start = time.perf_counter()
    packed = _WORKER_PACKED.get(token)
    if packed is None:
        packed = PackedModel.from_model(model)
        _WORKER_PACKED[token] = packed
    shm = _attach_shm_untracked(shm_name)
    try:
        view = np.ndarray(shape, dtype=np.uint64, buffer=shm.buf)
        scores = packed.scores(view[start:stop])
        del view  # drop buffer exports so close() cannot raise
    finally:
        shm.close()
    return scores, worker_start, time.perf_counter() - worker_start


# -- parent side ----------------------------------------------------------
#: stable per-model tokens (weak — dropping the model drops its token);
#: the parent pid is folded in so forked children never collide
_MODEL_TOKENS: "weakref.WeakKeyDictionary[BNNModel, str]" = \
    weakref.WeakKeyDictionary()
_TOKEN_COUNTER = itertools.count()

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _model_token(model: BNNModel) -> str:
    token = _MODEL_TOKENS.get(model)
    if token is None:
        token = f"{os.getpid()}-{next(_TOKEN_COUNTER)}"
        _MODEL_TOKENS[model] = token
    return token


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared shard pool (respawned when the worker count changes)."""
    global _POOL, _POOL_WORKERS
    if _POOL is None or _POOL_WORKERS != workers:
        shutdown_pool()
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the shard pool (tests; also registered at exit)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


#: the serial fallback logs once per process, not once per batch
_FALLBACK_LOGGED = False


def _note_fallback(n_rows: int, reason: str) -> None:
    """Surface a serial fallback: probe event always, log line once."""
    global _FALLBACK_LOGGED
    from repro.sim import get_session

    get_session().stats.emit("bnn.parallel.fallback",
                             rows=int(n_rows), reason=reason)
    if not _FALLBACK_LOGGED:
        _FALLBACK_LOGGED = True
        logger.info(
            "parallel engine taking the serial fallback (%s, batch=%d); "
            "further fallbacks are probe-only", reason, n_rows)


def _collect_chunks(stats, futures, transport: str) -> List[np.ndarray]:
    """Await shard futures in submission order, emitting one
    ``bnn.parallel.shard`` probe per chunk."""
    chunks = []
    for shard, (future, submit_start, submit_end, rows) in \
            enumerate(futures):
        scores, worker_start, compute_s = future.result()
        chunks.append(scores)
        stats.emit("bnn.parallel.shard", shard=shard, rows=int(rows),
                   transport=transport,
                   serialize_s=submit_end - submit_start,
                   queue_wait_s=max(0.0, worker_start - submit_end),
                   compute_s=compute_s)
    return chunks


def _scatter_shm(pool, stats, token: str, model: BNNModel, x: np.ndarray,
                 bounds: List[Tuple[int, int]]) -> List[np.ndarray]:
    """Shared-memory scatter: pack once, ship only segment name + offsets.

    The parent validates and bit-packs the whole batch, copies the
    packed rows into a fresh shared-memory segment and submits
    ``(name, shape, start, stop)`` per chunk.  The segment is closed and
    unlinked after every shard result has been merged — workers hold
    their own short-lived mappings.
    """
    shared_memory = _shared_memory_module()
    packed = pack_sign_rows(x)  # x is already validated against model
    shm = shared_memory.SharedMemory(create=True,
                                     size=max(1, packed.nbytes))
    try:
        view = np.ndarray(packed.shape, dtype=np.uint64, buffer=shm.buf)
        view[:] = packed
        del view  # drop buffer exports so close() cannot raise
        futures = []
        for start, stop in bounds:
            submit_start = time.perf_counter()
            future = pool.submit(_score_chunk_shm, token, model, shm.name,
                                 packed.shape, start, stop)
            submit_end = time.perf_counter()
            futures.append((future, submit_start, submit_end, stop - start))
        return _collect_chunks(stats, futures, "shm")
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def parallel_scores(model: BNNModel, x_signs: np.ndarray, *,
                    workers: Optional[int] = None,
                    min_batch: int = MIN_PARALLEL_BATCH,
                    use_shm: Optional[bool] = None) -> np.ndarray:
    """Integer class scores, sharded across host processes.

    Bit-identical to :func:`~repro.bnn.batched.batched_scores`; falls
    back to the serial kernels when the batch is below ``min_batch``,
    only one worker is available, or the chunker cannot produce at least
    two chunks.  A fallback emits a ``bnn.parallel.fallback`` probe (and
    a once-per-process log line); the sharded path emits one
    ``bnn.parallel.shard`` event per chunk carrying its transport
    (``shm``/``pickle``) and serialize / queue-wait / compute wall
    seconds, plus a closing ``bnn.parallel.merge`` — the obs layer and
    the trace bridge turn these into per-worker attribution.

    ``use_shm`` forces the shard transport; ``None`` follows
    :func:`shm_default` (shared memory when available, unless
    ``REPRO_PARALLEL_SHM=0``).
    """
    from repro.sim import get_session

    x = _as_sign_batch(model, x_signs)
    n_workers = default_workers() if workers is None else workers
    bounds = chunk_bounds(len(x), n_workers)
    if n_workers <= 1:
        _note_fallback(len(x), "one usable worker")
        return batched_scores(model, x)
    if len(x) < min_batch:
        _note_fallback(len(x), f"batch below min_batch={min_batch}")
        return batched_scores(model, x)
    if len(bounds) <= 1:
        _note_fallback(len(x), "batch fits a single chunk")
        return batched_scores(model, x)
    stats = get_session().stats
    token = _model_token(model)
    pool = _get_pool(n_workers)
    if use_shm is None:
        use_shm = shm_default()
    use_shm = bool(use_shm) and _shared_memory_module() is not None
    if use_shm:
        transport = "shm"
        chunks = _scatter_shm(pool, stats, token, model, x, bounds)
    else:
        transport = "pickle"
        futures = []
        for start, stop in bounds:
            submit_start = time.perf_counter()
            future = pool.submit(_score_chunk, token, model, x[start:stop])
            submit_end = time.perf_counter()
            futures.append((future, submit_start, submit_end, stop - start))
        chunks = _collect_chunks(stats, futures, "pickle")
    merge_start = time.perf_counter()
    merged = np.concatenate(chunks, axis=0)
    stats.emit("bnn.parallel.merge", shards=len(chunks),
               rows=int(len(merged)), transport=transport,
               merge_s=time.perf_counter() - merge_start)
    return merged


def parallel_predict(model: BNNModel, x_signs: np.ndarray, *,
                     workers: Optional[int] = None,
                     min_batch: int = MIN_PARALLEL_BATCH) -> np.ndarray:
    """Sharded argmax classification (exactly ``argmax(parallel_scores)``)."""
    return np.argmax(parallel_scores(model, x_signs, workers=workers,
                                     min_batch=min_batch), axis=1)


@register_engine
class ParallelEngine(FastEngine):
    """The ``parallel`` engine: fast engine + process-sharded inference.

    Whole-batch ``scores``/``predict`` fan out across the shard pool;
    ``hidden_forward`` and the CPU half are inherited from the fast
    engine (chained-inference activations are consumed immediately by
    the next core, so sharding them buys nothing).  Registered through
    the same seam as every other backend — adding it touched no core
    code, which is the point of the registry.
    """

    name = "parallel"
    description = ("fast engine with whole-batch BNN inference sharded "
                   "across host processes (serial fallback for small "
                   "batches)")
    capabilities = EngineCapabilities(
        timing_accurate=False, functional=True, batched=True, sharded=True,
        phase_attribution=True)

    def scores(self, model: BNNModel, x_signs: np.ndarray) -> np.ndarray:
        return parallel_scores(model, x_signs)

    def predict(self, model: BNNModel, x_signs: np.ndarray) -> np.ndarray:
        return parallel_predict(model, x_signs)
