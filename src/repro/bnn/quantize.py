"""Binarization and bit-packing utilities for the BNN.

The paper's BNN (section III) constrains weights and activations to
{-1, +1}; multipliers become XNOR gates and accumulation becomes popcount.
We keep two representations:

* *sign domain*: numpy arrays with values in {-1, +1} (int8) — used by the
  model math;
* *bit domain*: packed uint32 words with bit 1 ≡ +1, bit 0 ≡ −1 — used by the
  accelerator model and by the generated RISC-V software kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def binarize_sign(values: np.ndarray) -> np.ndarray:
    """Map real values to {-1, +1} with sign(0) == +1 (paper's sign function)."""
    return np.where(np.asarray(values) >= 0, 1, -1).astype(np.int8)


def check_sign_domain(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values)
    # Two cheap comparisons instead of np.isin: ~20x faster on large
    # batches and this guard sits on every engine's scoring path.
    if np.any((values != 1) & (values != -1)):
        raise ConfigurationError("array is not in the {-1,+1} sign domain")
    return values.astype(np.int8)


def sign_to_bits(values: np.ndarray) -> np.ndarray:
    """{-1,+1} -> {0,1} (uint8)."""
    return (check_sign_domain(values) > 0).astype(np.uint8)


def bits_to_sign(bits: np.ndarray) -> np.ndarray:
    """{0,1} -> {-1,+1} (int8)."""
    return np.where(np.asarray(bits) > 0, 1, -1).astype(np.int8)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a trailing axis of {0,1} into little-endian uint32 words.

    The last axis length is padded up to a multiple of 32 with zeros; bit ``i``
    of word ``w`` holds element ``32*w + i``.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    n = bits.shape[-1]
    n_words = (n + 31) // 32
    padded = np.zeros(bits.shape[:-1] + (n_words * 32,), dtype=np.uint8)
    padded[..., :n] = bits
    shaped = padded.reshape(bits.shape[:-1] + (n_words, 32))
    weights = (1 << np.arange(32, dtype=np.uint64)).astype(np.uint64)
    return (shaped.astype(np.uint64) * weights).sum(axis=-1).astype(np.uint32)


def unpack_bits(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: recover the first ``n`` bits."""
    words = np.asarray(words, dtype=np.uint32)
    if words.shape[-1] * 32 < n:
        raise ConfigurationError(
            f"{words.shape[-1]} words hold {words.shape[-1] * 32} bits < {n}"
        )
    expanded = (words[..., :, None] >> np.arange(32, dtype=np.uint32)) & 1
    flat = expanded.reshape(words.shape[:-1] + (-1,))
    return flat[..., :n].astype(np.uint8)


def xnor_popcount(a_words: np.ndarray, b_words: np.ndarray, n_bits: int) -> np.ndarray:
    """Count matching bit positions of two packed operands over ``n_bits``.

    This is the neuron dot-product primitive: for sign vectors a, b,
    ``dot(a, b) = 2 * xnor_popcount(a, b) - n_bits``.
    """
    a_words = np.asarray(a_words, dtype=np.uint32)
    b_words = np.asarray(b_words, dtype=np.uint32)
    xnor = ~(a_words ^ b_words)
    n_words = (n_bits + 31) // 32
    # mask padding in the last word so it never counts as a match
    mask = np.full(n_words, 0xFFFFFFFF, dtype=np.uint32)
    tail = n_bits % 32
    if tail:
        mask[-1] = (1 << tail) - 1
    masked = (xnor & mask).astype(np.uint32)
    return popcount32(masked).sum(axis=-1)


_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def popcount32(words: np.ndarray) -> np.ndarray:
    """Per-element population count of uint32 values."""
    words = np.asarray(words, dtype=np.uint32)
    view = words[..., None] >> np.array([0, 8, 16, 24], dtype=np.uint32)
    return _POPCOUNT_TABLE[(view & 0xFF).astype(np.uint8)].sum(axis=-1).astype(np.int64)


def sign_dot(a_sign: np.ndarray, b_sign: np.ndarray) -> int:
    """Reference dot product in the sign domain (for cross-checks)."""
    return int(np.dot(check_sign_domain(a_sign).astype(np.int32),
                      check_sign_domain(b_sign).astype(np.int32)))
