"""Cycle-cost model for running BNN inference *in software* on the RV32I CPU.

Table 1 of the paper compares a standalone CPU doing BNN inference in
software against the accelerator.  This module provides analytic cycle
estimates for two software implementations:

* ``naive``  — int8 weights, scalar multiply-accumulate loop (what a simple
  C compiler emits; the paper's standalone-CPU baseline),
* ``packed`` — bit-packed weights with XNOR + SWAR popcount (an optimized
  hand-written kernel).

The constants are *measured* from the actual generated assembly kernels in
:mod:`repro.workloads.bnn_kernels` running on the cycle-accurate pipeline —
the unit tests cross-validate the model against the simulator, so these are
not free parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bnn.model import BNNModel

# Per-element costs measured on the 5-stage pipeline by least-squares over
# the generated kernels of five model shapes (see
# tests/workloads/test_bnn_kernels.py, which asserts the analytic model
# tracks the simulator within a tight tolerance).
NAIVE_CYCLES_PER_MAC = 13.0  # lb weight, lw act, mul, accumulate, loop
NAIVE_CYCLES_PER_NEURON = 14.8  # bias load, sign, store activation
PACKED_CYCLES_PER_WORD = 32.9  # lw x2, xnor, SWAR popcount, accumulate, loop
PACKED_CYCLES_PER_NEURON = 23.6
FIXED_OVERHEAD_CYCLES = 66.0  # setup/argmax


@dataclass(frozen=True)
class SoftwareBNNEstimate:
    """Estimated cycles for one software inference."""

    cycles: int
    implementation: str
    macs: int

    def speedup_vs(self, accelerator_cycles: int) -> float:
        return self.cycles / accelerator_cycles


def naive_inference_cycles(model: BNNModel) -> SoftwareBNNEstimate:
    """Scalar int8 MAC loop (the unoptimized CPU baseline)."""
    cycles = FIXED_OVERHEAD_CYCLES
    for layer in model.layers:
        cycles += layer.macs * NAIVE_CYCLES_PER_MAC
        cycles += layer.fan_out * NAIVE_CYCLES_PER_NEURON
    return SoftwareBNNEstimate(cycles=int(round(cycles)), implementation="naive",
                               macs=model.total_macs)


def packed_inference_cycles(model: BNNModel) -> SoftwareBNNEstimate:
    """Bit-packed XNOR/popcount kernel (optimized software)."""
    cycles = FIXED_OVERHEAD_CYCLES
    for layer in model.layers:
        words_per_neuron = (layer.fan_in + 31) // 32
        cycles += layer.fan_out * words_per_neuron * PACKED_CYCLES_PER_WORD
        cycles += layer.fan_out * PACKED_CYCLES_PER_NEURON
    return SoftwareBNNEstimate(cycles=int(cycles), implementation="packed",
                               macs=model.total_macs)


def software_inference_cycles(model: BNNModel,
                              implementation: str = "naive") -> SoftwareBNNEstimate:
    if implementation == "naive":
        return naive_inference_cycles(model)
    if implementation == "packed":
        return packed_inference_cycles(model)
    raise ValueError(f"unknown implementation {implementation!r}")
