"""Straight-through-estimator training for the binarized network.

Implements the standard BNN training recipe (Hubara et al., the paper's
ref [39]) in pure numpy:

* real-valued *shadow* weights, binarized with sign() on the forward pass,
* sign() activations with the straight-through estimator; because there is
  no batch norm, pre-activations are O(sqrt(fan_in)), so the STE pass-through
  window is scaled per layer (``|pre| <= sqrt(fan_in)``) instead of the
  textbook ``|pre| <= 1``,
* softmax cross-entropy on the scaled output scores,
* Adam on the shadow weights, which are clipped to [-1, 1].

Training exports a pure integer :class:`~repro.bnn.model.BNNModel` that the
accelerator and software kernels execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.bnn.model import BNNLayer, BNNModel
from repro.errors import ConfigurationError, TrainingError


@dataclass
class TrainingHistory:
    """Per-epoch loss/accuracy curves."""

    loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)


class _Adam:
    """Minimal Adam optimizer for a list of parameter arrays."""

    def __init__(self, params: List[np.ndarray], lr: float,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        self.lr, self.beta1, self.beta2, self.eps = lr, beta1, beta2, eps
        self.m = [np.zeros_like(p) for p in params]
        self.v = [np.zeros_like(p) for p in params]
        self.t = 0

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        self.t += 1
        correction1 = 1 - self.beta1 ** self.t
        correction2 = 1 - self.beta2 ** self.t
        for index, (param, grad) in enumerate(zip(params, grads)):
            self.m[index] = self.beta1 * self.m[index] + (1 - self.beta1) * grad
            self.v[index] = self.beta2 * self.v[index] + (1 - self.beta2) * grad ** 2
            m_hat = self.m[index] / correction1
            v_hat = self.v[index] / correction2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class BNNTrainer:
    """Trains a multi-layer BNN with the straight-through estimator."""

    def __init__(
        self,
        layer_sizes: Sequence[int],
        learning_rate: float = 0.01,
        seed: int = 0,
    ):
        if len(layer_sizes) < 2:
            raise ConfigurationError("need at least input and output sizes")
        self.layer_sizes = list(layer_sizes)
        rng = np.random.default_rng(seed)
        self.shadow = [
            rng.uniform(-1, 1, size=(fan_out, fan_in))
            for fan_in, fan_out in zip(layer_sizes, layer_sizes[1:])
        ]
        self.bias = [np.zeros(fan_out) for fan_out in layer_sizes[1:]]
        self._optimizer = _Adam(self.shadow + self.bias, lr=learning_rate)
        #: per-layer STE pass-through half-width (pre-activation scale)
        self._ste_clip = [np.sqrt(fan_in) for fan_in in layer_sizes[:-1]]

    # ------------------------------------------------------------------
    @staticmethod
    def _sign(values: np.ndarray) -> np.ndarray:
        return np.where(values >= 0, 1.0, -1.0)

    def _forward(self, x: np.ndarray):
        """Forward pass; returns (activations, pre_activations)."""
        activations = [x]
        pres = []
        current = x
        last = len(self.shadow) - 1
        for index, (shadow, bias) in enumerate(zip(self.shadow, self.bias)):
            w_bin = self._sign(shadow)
            pre = current @ w_bin.T + bias
            pres.append(pre)
            current = pre if index == last else self._sign(pre)
            activations.append(current)
        return activations, pres

    def train(
        self,
        x_signs: np.ndarray,
        labels: np.ndarray,
        epochs: int = 20,
        batch_size: int = 64,
        seed: int = 1,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Run Adam over ``(x_signs, labels)``; inputs are in {-1,+1}."""
        x = np.asarray(x_signs, dtype=np.float64)
        y = np.asarray(labels)
        if x.ndim != 2 or x.shape[1] != self.layer_sizes[0]:
            raise ConfigurationError(
                f"input shape {x.shape} does not match input size "
                f"{self.layer_sizes[0]}"
            )
        n_classes = self.layer_sizes[-1]
        if y.min() < 0 or y.max() >= n_classes:
            raise ConfigurationError("labels out of range for the output layer")

        rng = np.random.default_rng(seed)
        history = TrainingHistory()
        scale = 1.0 / np.sqrt(self.layer_sizes[-2])

        for _ in range(epochs):
            order = rng.permutation(len(x))
            epoch_loss = 0.0
            correct = 0
            for start in range(0, len(x), batch_size):
                batch = order[start:start + batch_size]
                xb, yb = x[batch], y[batch]
                activations, pres = self._forward(xb)
                scores = pres[-1] * scale
                scores -= scores.max(axis=1, keepdims=True)
                exp = np.exp(scores)
                probs = exp / exp.sum(axis=1, keepdims=True)
                batch_n = len(batch)
                epoch_loss -= float(
                    np.log(probs[np.arange(batch_n), yb] + 1e-12).sum()
                )
                correct += int((np.argmax(scores, axis=1) == yb).sum())

                grad = probs
                grad[np.arange(batch_n), yb] -= 1.0
                grad *= scale / batch_n

                grads_w: List[np.ndarray] = [None] * len(self.shadow)
                grads_b: List[np.ndarray] = [None] * len(self.bias)
                for index in reversed(range(len(self.shadow))):
                    w_bin = self._sign(self.shadow[index])
                    grads_w[index] = grad.T @ activations[index]
                    grads_b[index] = grad.sum(axis=0)
                    if index > 0:
                        grad_in = grad @ w_bin
                        clip = self._ste_clip[index]
                        grad = grad_in * (np.abs(pres[index - 1]) <= clip)
                self._optimizer.step(self.shadow + self.bias, grads_w + grads_b)
                for index in range(len(self.shadow)):
                    np.clip(self.shadow[index], -1.0, 1.0,
                            out=self.shadow[index])

            epoch_loss /= len(x)
            if not np.isfinite(epoch_loss):
                raise TrainingError("loss diverged to non-finite values")
            history.loss.append(epoch_loss)
            history.train_accuracy.append(correct / len(x))
            if verbose:
                print(f"epoch loss={epoch_loss:.4f} "
                      f"acc={history.train_accuracy[-1]:.3f}")
        return history

    def export_model(self) -> BNNModel:
        """Freeze the trained weights into an integer :class:`BNNModel`."""
        layers = []
        for shadow, bias in zip(self.shadow, self.bias):
            layers.append(BNNLayer(
                weights=self._sign(shadow).astype(np.int8),
                bias=np.round(bias).astype(np.int32),
            ))
        return BNNModel(layers)


def train_bnn(
    x_signs: np.ndarray,
    labels: np.ndarray,
    layer_sizes: Sequence[int],
    epochs: int = 20,
    learning_rate: float = 0.01,
    batch_size: int = 64,
    seed: int = 0,
) -> BNNModel:
    """One-call helper: train and export a BNN."""
    trainer = BNNTrainer(layer_sizes, learning_rate=learning_rate, seed=seed)
    trainer.train(x_signs, labels, epochs=epochs, batch_size=batch_size,
                  seed=seed + 1)
    return trainer.export_model()
