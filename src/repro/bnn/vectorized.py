"""Whole-batch vectorized BNN kernels (the ``numpy`` engine).

:mod:`repro.bnn.batched` already bit-packs signs into uint64 words, but
its inner loop still walks packed words one at a time in Python.  This
module pushes the *entire* batch through each layer as a handful of
ndarray operations, with two interchangeable scoring strategies (both
bit-identical to the scalar path — the four-way differential suites pin
scores, predictions and hidden activations against every other engine):

``packed``
    The XNOR-popcount evaluated as one 3-D uint64 broadcast per layer:
    ``packed_inputs[:, None, :] ^ words[None, :, :]`` followed by a
    whole-array popcount (``np.bitwise_count`` when numpy provides it,
    otherwise a 16-bit lookup table of :data:`LUT_BITS` → 65536 bytes)
    and a sum over the word axis.  Sign/threshold are array ops.

``gemm``
    The same arithmetic re-expressed as a float32 matmul so BLAS does
    the heavy lifting.  With ±1 weights ``W`` and sign inputs written as
    ``x = 2a − 1`` for ``a ∈ {0,1}``, the pre-activation collapses to
    ``W·x + b = 2·(a @ Wᵀ) − rowsum(W) + b``, and thresholding at zero
    becomes ``a @ Wᵀ ≥ (rowsum(W) − b) / 2``.  Every partial sum is an
    integer
    with magnitude ≤ fan_in, and float32 represents integers exactly up
    to 2**24, so the matmul is exact whenever
    ``fan_in < GEMM_MAX_FAN_IN`` — the ``auto`` strategy falls back to
    ``packed`` beyond that bound (and the thresholds are half-integers,
    which float32 also represents exactly at these magnitudes).

Strategy selection: ``auto`` (default) picks ``gemm`` when exactness is
guaranteed; ``REPRO_NUMPY_STRATEGY`` (:data:`STRATEGY_ENV_VAR`) or the
``strategy=`` keyword forces either kernel.

The registered ``numpy`` engine subclasses the ``fast`` engine, so its
CPU half is the superblock interpreter of :mod:`repro.cpu.fastpath` and
only the BNN scoring path differs.  See ``docs/KERNELS.md`` for the
layout and decision tables (lint-checked by ``tools/check_docs.py``).
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.bnn import quantize as q
from repro.bnn.batched import (
    WORD_BITS,
    _as_sign_batch,
    pack_bits64,
    pack_sign_rows,
    packed_model,
)
from repro.bnn.model import BNNModel
from repro.cpu.fastpath import FastEngine
from repro.engine import EngineCapabilities, register_engine
from repro.errors import ConfigurationError

#: bits per popcount lookup-table index (table size = 2**LUT_BITS bytes)
LUT_BITS = 16

#: largest fan-in for which the float32 GEMM strategy is exact: every
#: partial sum is an integer of magnitude < 2**24 (float32's exact
#: integer range), with headroom for the half-integer thresholds
GEMM_MAX_FAN_IN = 1 << 23

#: environment variable forcing a scoring strategy (auto | gemm | packed)
STRATEGY_ENV_VAR = "REPRO_NUMPY_STRATEGY"

#: recognised strategy names
STRATEGIES = ("auto", "gemm", "packed")

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

_POPCOUNT16: Optional[np.ndarray] = None


def _popcount16_table() -> np.ndarray:
    """The lazily-built 2**LUT_BITS-entry uint8 popcount table."""
    global _POPCOUNT16
    if _POPCOUNT16 is None:
        halves = np.arange(1 << LUT_BITS, dtype=np.uint16)
        as_bytes = halves[:, None].view(np.uint8)
        _POPCOUNT16 = q._POPCOUNT_TABLE[as_bytes].sum(
            axis=-1).astype(np.uint8)
    return _POPCOUNT16


def popcount64_lut16(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of uint64 via four 16-bit table gathers.

    The whole-array fallback when ``np.bitwise_count`` is unavailable;
    bit-identical to :func:`repro.bnn.batched.popcount64`.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    halves = words[..., None].view(np.uint16)
    return _popcount16_table()[halves].sum(axis=-1, dtype=np.int64)


def _popcount_array(words: np.ndarray) -> np.ndarray:
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).astype(np.int64)
    return popcount64_lut16(words)


def resolve_strategy(strategy: Optional[str] = None,
                     environ=None) -> str:
    """Resolve the scoring strategy: explicit arg > env var > ``auto``."""
    if strategy is None:
        env = os.environ if environ is None else environ
        strategy = env.get(STRATEGY_ENV_VAR, "").strip() or "auto"
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown numpy-engine strategy {strategy!r}; "
            f"choose one of: {', '.join(STRATEGIES)}")
    return strategy


def pick_strategy(max_fan_in: int, strategy: Optional[str] = None) -> str:
    """The concrete kernel for a model whose widest layer is ``max_fan_in``.

    ``auto`` resolves to ``gemm`` while the float32 matmul is provably
    exact (``max_fan_in < GEMM_MAX_FAN_IN``), else ``packed``.
    """
    resolved = resolve_strategy(strategy)
    if resolved != "auto":
        return resolved
    return "gemm" if max_fan_in < GEMM_MAX_FAN_IN else "packed"


@dataclass(frozen=True)
class _GemmLayer:
    """One layer lowered for the float32 GEMM kernel."""

    weights_t: np.ndarray  # (fan_in, fan_out) float32, ±1, C-contiguous
    weight_sums: np.ndarray  # (fan_out,) float32 — row sums of W
    bias: np.ndarray  # (fan_out,) float32
    thresholds: np.ndarray  # (fan_out,) float32 — (sums − bias) / 2


class VectorizedModel:
    """A :class:`BNNModel` lowered for the whole-batch kernels."""

    def __init__(self, model: BNNModel):
        layers: List[_GemmLayer] = []
        for layer in model.layers:
            weights = layer.weights.astype(np.float32)
            sums = weights.sum(axis=1, dtype=np.float32)
            bias = layer.bias.astype(np.float32)
            layers.append(_GemmLayer(
                weights_t=np.ascontiguousarray(weights.T),
                weight_sums=sums,
                bias=bias,
                thresholds=(sums - bias) / np.float32(2.0),
            ))
        self.gemm_layers = layers
        self.max_fan_in = max(layer.fan_in for layer in model.layers)
        # the packed strategy reuses the fast engine's lowering (and its
        # per-model cache), so both engines score from the same words
        self.packed = packed_model(model)

    # -- gemm kernels ------------------------------------------------------
    def _gemm_bits(self, x01: np.ndarray, layers: List[_GemmLayer]
                   ) -> np.ndarray:
        for layer in layers:
            x01 = (x01 @ layer.weights_t >= layer.thresholds).astype(
                np.float32)
        return x01

    def gemm_scores(self, x01: np.ndarray) -> np.ndarray:
        bits = self._gemm_bits(x01, self.gemm_layers[:-1])
        last = self.gemm_layers[-1]
        pre = np.float32(2.0) * (bits @ last.weights_t)
        # exact: every term is an integer within float32's exact range
        return (pre - last.weight_sums + last.bias).astype(np.int32)

    def gemm_hidden(self, x01: np.ndarray) -> np.ndarray:
        bits = self._gemm_bits(x01, self.gemm_layers)
        return q.bits_to_sign(bits.astype(np.uint8))

    # -- packed kernels ----------------------------------------------------
    def _packed_pre(self, layer, packed_inputs: np.ndarray) -> np.ndarray:
        """Whole-batch pre-activations as one 3-D uint64 broadcast."""
        xor = packed_inputs[:, None, :] ^ layer.words[None, :, :]
        mismatches = _popcount_array(xor).sum(axis=-1)
        return layer.fan_in - 2 * mismatches + layer.bias.astype(np.int64)

    def packed_scores(self, packed_inputs: np.ndarray) -> np.ndarray:
        activation = packed_inputs
        for layer in self.packed.layers[:-1]:
            pre = self._packed_pre(layer, activation)
            activation = pack_bits64((pre >= 0).astype(np.uint8))
        return self._packed_pre(self.packed.layers[-1],
                                activation).astype(np.int32)

    def packed_hidden(self, packed_inputs: np.ndarray,
                      batch: int) -> np.ndarray:
        bits = np.zeros((batch, 0), dtype=np.uint8)
        for layer in self.packed.layers:
            bits = (self._packed_pre(layer, packed_inputs) >= 0).astype(
                np.uint8)
            packed_inputs = pack_bits64(bits)
        return q.bits_to_sign(bits)


#: lowered-model cache, weak like the fast engine's packed cache
_VECTORIZED_CACHE: "weakref.WeakKeyDictionary[BNNModel, VectorizedModel]" = \
    weakref.WeakKeyDictionary()


def vectorized_model(model: BNNModel) -> VectorizedModel:
    """The (cached) :class:`VectorizedModel` lowering of ``model``."""
    lowered = _VECTORIZED_CACHE.get(model)
    if lowered is None:
        lowered = VectorizedModel(model)
        _VECTORIZED_CACHE[model] = lowered
    return lowered


def _as_unit_batch(x: np.ndarray) -> np.ndarray:
    """Validated sign rows → float32 {0,1} rows for the GEMM kernel."""
    return (x > 0).astype(np.float32)


def vectorized_scores(model: BNNModel, x_signs: np.ndarray,
                      strategy: Optional[str] = None) -> np.ndarray:
    """Integer class scores ``(batch, n_classes)``, bit-identical to the
    scalar path and to :func:`repro.bnn.batched.batched_scores`."""
    x = _as_sign_batch(model, x_signs)
    lowered = vectorized_model(model)
    if pick_strategy(lowered.max_fan_in, strategy) == "gemm":
        return lowered.gemm_scores(_as_unit_batch(x))
    return lowered.packed_scores(pack_sign_rows(x))


def vectorized_predict(model: BNNModel, x_signs: np.ndarray,
                       strategy: Optional[str] = None) -> np.ndarray:
    """Vectorized argmax classification through the whole-batch kernels."""
    return np.argmax(vectorized_scores(model, x_signs, strategy), axis=1)


def vectorized_hidden_forward(model: BNNModel, x_signs: np.ndarray,
                              strategy: Optional[str] = None) -> np.ndarray:
    """Sign activations after *every* layer, bit-identical to
    :meth:`BNNModel.hidden_forward_batch`."""
    x = _as_sign_batch(model, x_signs)
    lowered = vectorized_model(model)
    if pick_strategy(lowered.max_fan_in, strategy) == "gemm":
        return lowered.gemm_hidden(_as_unit_batch(x))
    return lowered.packed_hidden(pack_sign_rows(x), x.shape[0])


class VectorizedBNNHalf:
    """BNN half of the ``numpy`` engine (mixin for ExecutionEngine)."""

    def scores(self, model: BNNModel, x_signs: np.ndarray) -> np.ndarray:
        return vectorized_scores(model, x_signs)

    def predict(self, model: BNNModel, x_signs: np.ndarray) -> np.ndarray:
        return vectorized_predict(model, x_signs)

    def hidden_forward(self, model: BNNModel,
                       x_signs: np.ndarray) -> np.ndarray:
        return vectorized_hidden_forward(model, x_signs)


@register_engine
class NumpyEngine(VectorizedBNNHalf, FastEngine):
    """The ``numpy`` engine: whole-batch ndarray BNN kernels on top of
    the fast engine's superblock CPU interpreter."""

    name = "numpy"
    description = ("whole-batch vectorized BNN kernels (float32 GEMM or "
                   "3-D packed XNOR-popcount) over the fast CPU interpreter")
    capabilities = EngineCapabilities(
        timing_accurate=False, functional=True, batched=True, sharded=False,
        phase_attribution=True)
