"""Command-line interface: assemble, disassemble, run, and reproduce.

Usage::

    python -m repro asm prog.s [-o prog.hex] [--base 0x0]
    python -m repro dis prog.hex [--base 0x0]
    python -m repro run prog.s [--functional] [--engine NAME]
    python -m repro run --scenario examples/scenarios/dhrystone.json
    python -m repro experiments [PATTERN ...] [--engine NAME] [--profile NAME]
    python -m repro bench [PATTERN ...] [--quick] [--profile NAME]
    python -m repro scenario validate FILE [FILE ...]
    python -m repro scenario show FILE
    python -m repro fuzz [--count N] [--seed S]
    python -m repro serve [--scenario FILE] [--rate RPS] [--requests N]
    python -m repro loadgen [--arrival poisson] [--rate RPS] [--json]
    python -m repro attribute --scenario FILE [--engine NAME ...]
    python -m repro info [--json]

Progress chatter goes through the ``repro`` logger to stderr (``-v`` /
``--quiet`` / ``REPRO_LOG=level``); machine-readable documents
(``--json``, ``--stats-json``, ``--metrics-out``) own stdout.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.isa import assemble, disassemble
from repro.logutil import configure_logging, get_logger

logger = get_logger("cli")


def _read_text(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _parse_base(text: str) -> int:
    return int(text, 0)


def engine_choices() -> tuple:
    """Registered engine names for ``--engine`` (sorted, registry-fed)."""
    from repro.engine import engine_names

    return engine_names()


def profile_choices() -> tuple:
    """Registered device-profile names for ``--profile`` (sorted)."""
    from repro.power import profile_names

    return profile_names()


def cmd_asm(args: argparse.Namespace) -> int:
    program = assemble(_read_text(args.file), base=args.base)
    lines = [f"{word:08x}" for word in program.words]
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"{len(program.words)} words -> {args.output}")
    else:
        print("\n".join(lines))
    return 0


def cmd_dis(args: argparse.Namespace) -> int:
    words = [int(line, 16) for line in _read_text(args.file).split()]
    for line in disassemble(words, base=args.base):
        print(line)
    return 0


def _load_cli_scenario(args: argparse.Namespace):
    """Load ``--scenario FILE`` with CLI flags folded over file fields.

    Returns ``None`` when no ``--scenario`` was given.  File problems
    (missing path, malformed JSON, schema violations) raise
    :class:`~repro.errors.ConfigurationError`, which :func:`main` turns
    into a clean exit 2.
    """
    if not getattr(args, "scenario", None):
        return None
    from repro.scenario import Scenario

    scenario = Scenario.from_file(args.scenario)
    if getattr(args, "engine", None):
        scenario = scenario.with_engine(name=args.engine)
    if getattr(args, "functional", False):
        scenario = scenario.with_engine(prefer_functional=True)
    if getattr(args, "device_profile", None):
        scenario = scenario.with_profile(name=args.device_profile)
    return scenario


def cmd_run(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.engine import resolve_engine
    from repro.errors import ConfigurationError
    from repro.sim import SimSession, get_session, set_session

    scenario = _load_cli_scenario(args)
    if scenario is not None:
        # the scenario becomes the session config: its seed/engine apply
        # and the config hash (hence every cached artifact) keys on it
        set_session(SimSession.from_scenario(scenario))
    session = get_session()
    if args.engine and args.engine != session.config.engine:
        # engine changes no architectural result, so swapping it on the
        # live session keeps the stats registry and cache intact
        session.config = dataclasses.replace(session.config,
                                             engine=args.engine)
    if (args.device_profile
            and args.device_profile != session.config.profile):
        # replace() re-runs __post_init__, so a typo'd name aborts here
        # with the registered-profile list (exit 2)
        session.config = dataclasses.replace(session.config,
                                             profile=args.device_profile)
    engine = resolve_engine(args.engine)

    if args.file is None:
        if scenario is None:
            raise ConfigurationError(
                "repro run: provide a program file, or --scenario FILE")
        if scenario.workload.kind == "bnn":
            # BNN scenarios have no program to assemble: classify the
            # scenario's seeded input batch through the accelerator's
            # engine-dispatched path and report the summary
            from repro.scenario.materialize import (
                run_scenario,
                scenario_signature,
            )

            summary = run_scenario(scenario, engine=session.config.engine)
            if args.stats_json:
                print(json.dumps(summary, indent=2, sort_keys=True))
                return 0
            _, detail = scenario_signature(scenario)
            print(f"scenario: {scenario.name} ({detail}) "
                  f"engine={summary['engine']}")
            print(f"batch={summary['batch_size']} "
                  f"total_cycles={summary['total_cycles']} "
                  f"macs={summary['macs']}")
            return 0
        from repro.scenario.materialize import build_program

        program = build_program(scenario)
    else:
        program = assemble(_read_text(args.file), base=args.base)
    prefer_functional = args.functional or (
        scenario is not None and scenario.engine.prefer_functional)

    tracer = None
    if args.trace or args.trace_jsonl or args.profile:
        from repro.trace import install_tracer

        # unbounded + unsampled so the profiler's attribution is exact
        tracer = install_tracer(get_session(), capacity=None)

    recorder = None
    if args.metrics_out or args.metrics_json:
        from repro.metrics import MetricsRecorder

        # snapshot-diff based: nothing touches the simulator hot path
        recorder = MetricsRecorder(get_session())
        recorder.__enter__()

    try:
        # the engine owns CPU construction and the step/cycle limit
        # semantics (fast engines count retired instructions, the
        # accurate pipeline counts cycles)
        cpu, result = engine.run_program(program, limit=args.max_cycles,
                                         prefer_functional=prefer_functional)
    finally:
        if recorder is not None:
            recorder.__exit__(None, None, None)
        if tracer is not None:
            from repro.trace import uninstall_tracer

            # detach so repeated in-process calls don't stack bridges;
            # the captured events stay readable for the exports below
            uninstall_tracer(get_session())
    exit_code = 0 if result.stop_reason in ("halt", "trans_bnn") else 1

    # with --stats-json, stdout carries exactly one parseable JSON document;
    # the human-readable summary moves to stderr
    out = sys.stderr if args.stats_json else sys.stdout
    stats = result.stats
    print(f"stop: {result.stop_reason} at pc={result.pc:#x}", file=out)
    print(f"cycles={stats.cycles} instructions={stats.instructions} "
          f"ipc={stats.ipc:.3f} stalls={stats.stalls} flushes={stats.flushes}",
          file=out)
    if args.regs:
        for index in range(0, 32, 4):
            row = "  ".join(f"x{i:<2}={cpu.regs.read(i):>10}"
                            for i in range(index, index + 4))
            print(row, file=out)

    if tracer is not None:
        from repro.trace import (
            build_report,
            render_report,
            write_chrome_trace,
            write_jsonl,
        )

        if args.trace:
            payload = write_chrome_trace(tracer, args.trace)
            logger.info("trace: %d events -> %s",
                        payload["otherData"]["n_events"], args.trace)
        if args.trace_jsonl:
            count = write_jsonl(tracer, args.trace_jsonl)
            logger.info("trace: %d events -> %s", count, args.trace_jsonl)
        if args.profile:
            print(render_report(build_report(tracer)), file=out)

    if recorder is not None:
        from repro.metrics import write_json, write_openmetrics

        collection = recorder.collection
        if args.metrics_out:
            write_openmetrics(collection, args.metrics_out)
            logger.info("metrics: %d series -> %s", len(collection),
                        args.metrics_out)
        if args.metrics_json:
            write_json(collection, args.metrics_json)
            logger.info("metrics: %d series -> %s", len(collection),
                        args.metrics_json)

    if args.stats_json:
        # printed before the non-zero exit path, stop reason included, so
        # scripted callers always get one parseable document on stdout
        payload = {"stop_reason": result.stop_reason, "pc": result.pc,
                   "exit_code": exit_code}
        payload.update(get_session().stats.as_dict())
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
    return exit_code


def cmd_experiments(args: argparse.Namespace) -> int:
    import dataclasses
    import os

    from repro.core.events import Timeline
    from repro.experiments.runner import (
        render_json,
        render_markdown,
        run_selected,
        select,
    )
    from repro.sim import (
        ENGINE_ENV_VAR,
        PROFILE_ENV_VAR,
        SimConfig,
        SimSession,
        set_session,
    )
    from repro.viz import render_timeline

    # fail fast: a bad REPRO_ENGINE or REPRO_PROFILE aborts here with the
    # registered list, before any experiment assembles programs or trains
    # models
    base = SimConfig.from_env()
    scenario = _load_cli_scenario(args)
    if scenario is not None:
        set_session(SimSession(SimConfig.from_scenario(
            scenario,
            cache_dir=args.cache_dir or base.cache_dir)))
        # parallel workers (-j) are separate processes; the environment
        # variables carry the engine/profile choice across the fork/spawn
        os.environ[ENGINE_ENV_VAR] = scenario.engine.name
        os.environ[PROFILE_ENV_VAR] = scenario.device.profile
    elif args.cache_dir or args.engine or args.device_profile:
        set_session(SimSession(dataclasses.replace(
            base,
            cache_dir=args.cache_dir or base.cache_dir,
            engine=args.engine or base.engine,
            profile=args.device_profile or base.profile,
        )))
    if args.engine:
        os.environ[ENGINE_ENV_VAR] = args.engine
    if args.device_profile:
        os.environ[PROFILE_ENV_VAR] = args.device_profile
    if args.patterns and not select(args.patterns):
        logger.error("no experiments match %r", " ".join(args.patterns))
        return 1
    results = run_selected(args.patterns or None,
                           use_cache=not args.no_cache, jobs=args.jobs,
                           trace_dir=args.trace_dir)
    if args.metrics_dir:
        from repro.experiments.runner import write_experiment_metrics

        written = write_experiment_metrics(results, args.metrics_dir)
        logger.info("metrics: %d documents -> %s", len(written),
                    args.metrics_dir)
    if args.json:
        print(render_json(results))
        return 0
    if args.markdown:
        print(render_markdown(results))
        return 0
    for result in results:
        print(result.to_table())
        if args.draw:
            for name, value in result.series.items():
                if isinstance(value, Timeline):
                    print(f"\n{name}:")
                    print(render_timeline(value))
                elif isinstance(value, dict):
                    for sub_name, sub_value in value.items():
                        if isinstance(sub_value, Timeline):
                            print(f"\n{name} / {sub_name}:")
                            print(render_timeline(sub_value))
        print()
    return 0


def chip_specs() -> dict:
    """The modelled chip specifications as a flat, JSON-ready mapping.

    Pinned to the NCPU 65 nm profile: these are the paper test chip's
    datasheet numbers (fixed 1.0 V / 0.4 V anchor points), not a
    function of the session's active device profile.
    """
    from repro.bnn import BNNAccelerator
    from repro.power import (
        DEFAULT_PROFILE,
        area_saving,
        bnn_profile,
        bnn_tops_per_watt,
        cpu_profile,
        frequency_model,
        heterogeneous_area,
        ncpu_area,
    )

    freq = frequency_model(DEFAULT_PROFILE)
    bnn = bnn_profile(DEFAULT_PROFILE)
    cpu = cpu_profile(DEFAULT_PROFILE)
    accelerator = BNNAccelerator()
    return {
        "technology_nm": 65,
        "frequency_mhz_at_1v": freq.f_mhz(1.0),
        "frequency_mhz_at_0v4": freq.f_mhz(0.4),
        "bnn_power_mw_at_1v": bnn.total_power_w(1.0) * 1e3,
        "bnn_power_mw_at_0v4": bnn.total_power_w(0.4) * 1e3,
        "cpu_power_mw_at_1v": cpu.total_power_w(1.0) * 1e3,
        "cpu_power_mw_at_0v4": cpu.total_power_w(0.4) * 1e3,
        "bnn_tops_per_watt_at_1v": bnn_tops_per_watt(
            1.0, device=DEFAULT_PROFILE),
        "bnn_tops_per_watt_at_0v4": bnn_tops_per_watt(
            0.4, device=DEFAULT_PROFILE),
        "ncpu_core_area_mm2": ncpu_area(100).total_mm2,
        "cpu_plus_bnn_area_mm2": heterogeneous_area(100).total_mm2,
        "area_saving_fraction": area_saving(100),
        "accelerator_physical_layers":
            accelerator.config.n_physical_layers,
        "accelerator_neurons_per_layer":
            accelerator.config.neurons_per_layer,
        "accelerator_peak_macs_per_cycle":
            accelerator.peak_ops_per_cycle(),
    }


def cmd_info(args: argparse.Namespace) -> int:
    import json

    from repro.engine import engine_table
    from repro.power import profile_table
    from repro.sim import get_session

    if args.json:
        # shares the run-manifest serializer so specs and metrics carry
        # the same identity block, and the registry serializers so the
        # engine/profile lists cannot drift from what actually dispatches
        from repro.metrics import RunManifest

        document = {
            "schema": "repro-info/1",
            "manifest": RunManifest.collect().as_dict(),
            "specs": chip_specs(),
            "engines": {
                "active": get_session().config.engine,
                "registered": engine_table(),
            },
            "profiles": {
                "active": get_session().config.profile,
                "registered": profile_table(),
            },
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0

    from repro.bnn import BNNAccelerator
    from repro.power import (
        DEFAULT_PROFILE,
        area_saving,
        bnn_profile,
        bnn_tops_per_watt,
        cpu_profile,
        frequency_model,
        heterogeneous_area,
        ncpu_area,
    )

    # spec block pinned to the paper chip (see chip_specs)
    freq = frequency_model(DEFAULT_PROFILE)
    bnn = bnn_profile(DEFAULT_PROFILE)
    cpu = cpu_profile(DEFAULT_PROFILE)
    print("NCPU reproduction — modelled chip specifications (65 nm)")
    print(f"  nominal frequency  : {freq.f_mhz(1.0):.0f} MHz at 1.0 V")
    print(f"  low-power point    : {freq.f_mhz(0.4):.0f} MHz at 0.4 V")
    print(f"  BNN power          : {bnn.total_power_w(1.0) * 1e3:.0f} mW "
          f"(1 V), {bnn.total_power_w(0.4) * 1e3:.1f} mW (0.4 V)")
    print(f"  CPU power          : {cpu.total_power_w(1.0) * 1e3:.0f} mW "
          f"(1 V), {cpu.total_power_w(0.4) * 1e3:.1f} mW (0.4 V)")
    print(f"  BNN efficiency     : "
          f"{bnn_tops_per_watt(1.0, device=DEFAULT_PROFILE):.2f} TOPS/W "
          f"(1 V), {bnn_tops_per_watt(0.4, device=DEFAULT_PROFILE):.2f} "
          f"TOPS/W (0.4 V peak)")
    print(f"  NCPU core area     : {ncpu_area(100).total_mm2:.3f} mm^2")
    print(f"  CPU+BNN baseline   : {heterogeneous_area(100).total_mm2:.3f} mm^2")
    print(f"  area saving        : {area_saving(100):.1%}")
    accelerator = BNNAccelerator()
    print(f"  accelerator array  : {accelerator.config.n_physical_layers} layers x "
          f"{accelerator.config.neurons_per_layer} neurons "
          f"({accelerator.peak_ops_per_cycle()} MACs/cycle)")
    active = get_session().config.engine
    print("execution engines (active marked *):")
    for entry in engine_table():
        marker = "*" if entry["name"] == active else " "
        # every capability flag, yes/no, in declaration order — so the
        # absence of a capability is as visible as its presence
        flags = ", ".join(f"{flag}={'yes' if value else 'no'}"
                          for flag, value in entry["capabilities"].items())
        print(f"  {marker} {entry['name']:<9}: {entry['description']}")
        print(f"    {'':>9}  [{flags}]")
    active_profile = get_session().config.profile
    print("device profiles (active marked *):")
    for entry in profile_table():
        marker = "*" if entry["name"] == active_profile else " "
        low, high = entry["vdd_range_v"]
        flags = ", ".join(f"{flag}={'yes' if value else 'no'}"
                          for flag, value in entry["flags"].items())
        print(f"  {marker} {entry['name']:<16}: {entry['title']}")
        print(f"    {'':>16}  {entry['technology_nm']:g} nm, "
              f"{low:g}-{high:g} V, {entry['f_nominal_mhz']:g} MHz, "
              f"{entry['accel_ops_per_cycle']} MACs/cycle")
        print(f"    {'':>16}  [{flags}]")
    _ = args
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.metrics import (
        all_benchmarks,
        run_benchmarks,
        write_bench_file,
    )
    from repro.metrics.bench import select as select_benchmarks
    from repro.sim import SimConfig

    # fail fast: surface a bad REPRO_ENGINE (with the registered-engine
    # list) before any benchmark assembles its kernel
    SimConfig.from_env()
    scenario = _load_cli_scenario(args)
    if args.list:
        for name, spec in sorted(all_benchmarks().items()):
            print(f"{name}: {spec.help} [{spec.unit}]")
        return 0
    if args.patterns and not select_benchmarks(args.patterns):
        logger.error("no benchmarks match %r", " ".join(args.patterns))
        return 1
    doc = run_benchmarks(args.patterns or None, repeats=args.repeats,
                         warmup=args.warmup, quick=args.quick,
                         with_experiments=not args.no_experiments,
                         scenario=scenario,
                         profile=args.device_profile)
    if not args.no_write:
        path = write_bench_file(doc, args.out_dir)
        logger.info("bench: trajectory -> %s", path)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    rows = [("benchmark", "median", "min", "iqr", "throughput")]
    for name, result in sorted(doc["benchmarks"].items()):
        wall = result["wall_s"]
        rows.append((name, f"{wall['median']:.4f}s", f"{wall['min']:.4f}s",
                     f"{wall['iqr']:.4f}s",
                     f"{result['throughput']['median']:.0f} "
                     f"{result['throughput']['unit']}"))
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    for row in rows:
        print("  ".join(cell.ljust(width)
                        for cell, width in zip(row, widths)).rstrip())
    if doc["experiments"]:
        print(f"(+ {len(doc['experiments'])} paper-anchor experiment "
              f"metrics recorded)")
    return 0


def cmd_attribute(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        attribute_chained,
        attribute_scenario,
        attribution_document,
        render_attribution,
    )
    from repro.scenario import Scenario
    from repro.sim import SimSession, get_session, set_session

    scenario = Scenario.from_file(args.scenario)
    if args.device_profile:
        scenario = scenario.with_profile(name=args.device_profile)
    set_session(SimSession.from_scenario(scenario))
    session = get_session()

    tracer = None
    if args.trace:
        from repro.trace import install_tracer

        tracer = install_tracer(session, capacity=None)
    recorder = None
    if args.metrics_out or args.metrics_json:
        from repro.metrics import MetricsRecorder

        recorder = MetricsRecorder(session)
        recorder.__enter__()

    # --engine repeats for A/B; default is the scenario's own engine
    engines = args.engine or [scenario.engine.name]
    runs = []
    try:
        for name in engines:
            runs.append(attribute_scenario(scenario, engine=name))
            if args.chained:
                runs.append(attribute_chained(scenario, engine=name))
    finally:
        if recorder is not None:
            recorder.__exit__(None, None, None)
        if tracer is not None:
            from repro.trace import uninstall_tracer

            uninstall_tracer(session)

    document = attribution_document(runs, scenario)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        logger.info("attribution: %d runs -> %s", len(runs), args.out)
    if tracer is not None and args.trace:
        from repro.trace import write_chrome_trace

        payload = write_chrome_trace(tracer, args.trace)
        logger.info("trace: %d events -> %s",
                    payload["otherData"]["n_events"], args.trace)
    if recorder is not None:
        collection = recorder.collection
        for attribution in runs:
            collection.add_phase_attribution(attribution)
        from repro.metrics import write_json, write_openmetrics

        if args.metrics_out:
            write_openmetrics(collection, args.metrics_out)
            logger.info("metrics: %d series -> %s", len(collection),
                        args.metrics_out)
        if args.metrics_json:
            write_json(collection, args.metrics_json)
            logger.info("metrics: %d series -> %s", len(collection),
                        args.metrics_json)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_attribution(runs), end="")
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenario import Scenario
    from repro.scenario.materialize import scenario_signature

    if args.action == "validate":
        for path in args.files:
            scenario = Scenario.from_file(path)
            kind, detail = scenario_signature(scenario)
            print(f"ok: {path} — {scenario.name} "
                  f"[{kind}: {detail}, engine={scenario.engine.name}, "
                  f"hash {scenario.hash}]")
        return 0
    # show: one canonical JSON document on stdout
    print(Scenario.from_file(args.file).to_json())
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.scenario.fuzz import fuzz
    from repro.scenario.materialize import scenario_signature

    def progress(result) -> None:
        kind, detail = scenario_signature(result.scenario)
        status = "ok" if result.ok else "MISMATCH"
        logger.info("fuzz %s: %s (%s) %s", result.scenario.name, kind,
                    detail, status)

    from repro.engine import ensure_known

    engines = [name for token in (args.engines or [])
               for name in token.split(",") if name]
    for name in engines:
        ensure_known(name)
    results = fuzz(count=args.count, seed=args.seed,
                   engines=engines or None,
                   kinds=tuple(args.kind) if args.kind else ("bnn", "cpu"),
                   on_result=progress)
    failures = [result for result in results if not result.ok]
    if args.json:
        print(json.dumps([result.to_dict() for result in results],
                         indent=2, sort_keys=True))
    else:
        engines = ", ".join(results[0].engines) if results else "-"
        print(f"fuzz: {len(results)} scenarios x [{engines}] — "
              f"{len(results) - len(failures)} agreed, "
              f"{len(failures)} mismatched (seed {args.seed})")
        for result in failures:
            _, detail = scenario_signature(result.scenario)
            print(f"  {result.scenario.name} ({detail}):")
            for mismatch in result.mismatches:
                print(f"    {mismatch}")
    return 1 if failures else 0


def _serve_scenario_from_args(args: argparse.Namespace):
    """The serve scenario: file (or default) with serve flags folded in."""
    from repro.scenario import Scenario

    scenario = (Scenario.from_file(args.scenario) if args.scenario
                else Scenario(name="serve"))
    if getattr(args, "engine", None):
        scenario = scenario.with_engine(name=args.engine)
    return scenario.with_serve(
        arrival=args.arrival, rate_rps=args.rate, requests=args.requests,
        burst_factor=args.burst_factor, batch_window_ms=args.batch_window,
        max_batch=args.max_batch, max_queue_depth=args.max_queue_depth,
        timeout_ms=args.timeout, latency_budget_ms=args.budget,
        slo_target=args.slo_target)


def cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.serve import (
        add_serve_metrics,
        render_slo_report,
        serve_scenario,
        validate_slo_report,
        write_slo_report,
    )
    from repro.sim import SimSession, get_session, set_session

    scenario = _serve_scenario_from_args(args)
    set_session(SimSession.from_scenario(scenario))
    session = get_session()

    tracer = None
    if args.trace or args.trace_jsonl:
        from repro.trace import install_tracer

        # unbounded: a wrapped ring buffer would silently lose request
        # lanes (the dropped count would say so, but keep them all)
        tracer = install_tracer(session, capacity=None)
    recorder = None
    if args.metrics_out or args.metrics_json:
        from repro.metrics import MetricsRecorder

        recorder = MetricsRecorder(session)
        recorder.__enter__()

    try:
        report, server = serve_scenario(scenario, session=session,
                                        with_server=True)
    finally:
        if recorder is not None:
            recorder.__exit__(None, None, None)
        if tracer is not None:
            from repro.trace import uninstall_tracer

            uninstall_tracer(session)

    validate_slo_report(report)
    spec = scenario.serve
    if args.out:
        write_slo_report(report, args.out)
        logger.info("serve: SLO report -> %s", args.out)
    if tracer is not None:
        from repro.trace import write_chrome_trace, write_jsonl

        if args.trace:
            payload = write_chrome_trace(tracer, args.trace)
            logger.info("trace: %d events -> %s",
                        payload["otherData"]["n_events"], args.trace)
        if args.trace_jsonl:
            count = write_jsonl(tracer, args.trace_jsonl)
            logger.info("trace: %d events -> %s", count, args.trace_jsonl)
    if recorder is not None:
        from repro.metrics import write_json, write_openmetrics

        collection = recorder.collection
        add_serve_metrics(
            collection, server.recorder,
            budget_s=spec.latency_budget_ms / 1e3, wall_s=server.wall_s,
            labels={"engine": server.engine.name,
                    "arrival": spec.arrival},
            trace_dropped=tracer.dropped if tracer is not None else 0)
        if args.metrics_out:
            write_openmetrics(collection, args.metrics_out)
            logger.info("metrics: %d series -> %s", len(collection),
                        args.metrics_out)
        if args.metrics_json:
            write_json(collection, args.metrics_json)
            logger.info("metrics: %d series -> %s", len(collection),
                        args.metrics_json)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_slo_report(report), end="")
    met = report["slo"]["met"]
    if args.check_slo and not met:
        logger.error("serve: SLO MISSED (attainment %.4f < target %.4f)",
                     report["slo"]["attainment"], report["slo"]["target"])
        return 1
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.serve import arrival_offsets, summarize_offsets

    offsets = arrival_offsets(args.arrival, args.rate, args.requests,
                              seed=args.seed,
                              burst_factor=args.burst_factor)
    summary = summarize_offsets(offsets)
    if args.json:
        print(json.dumps({"schema": "repro-loadgen/1",
                          "arrival": args.arrival, "rate_rps": args.rate,
                          "seed": args.seed,
                          "burst_factor": args.burst_factor,
                          "summary": summary, "offsets_s": offsets},
                         indent=2, sort_keys=True))
        return 0
    print(f"loadgen: {args.arrival} x{args.requests} at {args.rate:g} rps "
          f"(seed {args.seed})")
    print(f"  duration={summary['duration_s']:.4f}s "
          f"achieved={summary['mean_rate_rps']:.1f} rps "
          f"gaps=[{summary['min_gap_s'] * 1e3:.3f}, "
          f"{summary['max_gap_s'] * 1e3:.3f}] ms")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NCPU (MICRO 2020) reproduction toolkit",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more status chatter on stderr (-v info, "
                             "-vv debug); REPRO_LOG=level sets the default")
    parser.add_argument("--quiet", action="store_true",
                        help="only errors on stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    # resolved once: every subparser shares the same registry-fed tuples
    # instead of re-importing the registries per --engine/--profile flag
    engines = engine_choices()
    profiles = profile_choices()

    asm = sub.add_parser("asm", help="assemble a RISC-V source file")
    asm.add_argument("file")
    asm.add_argument("-o", "--output")
    asm.add_argument("--base", type=_parse_base, default=0)
    asm.set_defaults(func=cmd_asm)

    dis = sub.add_parser("dis", help="disassemble a hex word file")
    dis.add_argument("file")
    dis.add_argument("--base", type=_parse_base, default=0)
    dis.set_defaults(func=cmd_dis)

    run = sub.add_parser("run", help="assemble and execute a program "
                                     "(or a declarative scenario)")
    run.add_argument("file", nargs="?",
                     help="assembly source to run; optional with "
                          "--scenario (the scenario's workload runs)")
    run.add_argument("--scenario", metavar="FILE",
                     help="scenario JSON driving the run (engine, seed, "
                          "workload); explicit flags and the positional "
                          "file override scenario fields")
    run.add_argument("--base", type=_parse_base, default=0)
    run.add_argument("--functional", action="store_true",
                     help="use the functional ISS instead of the pipeline")
    run.add_argument("--engine", choices=engines,
                     help="execution engine: 'accurate' (default) keeps the "
                          "cycle-accurate pipeline / functional ISS, the "
                          "others swap in faster host-side backends with "
                          "identical architectural results; REPRO_ENGINE "
                          "sets the default")
    run.add_argument("--device-profile", choices=profiles,
                     metavar="NAME", dest="device_profile",
                     help="device profile pricing the power models "
                          "(default ncpu-65nm, or the scenario's "
                          "device.profile; REPRO_PROFILE sets the "
                          "session default). NOTE: --profile here is the "
                          "hot-spot profiler flag, not a device choice")
    run.add_argument("--regs", action="store_true",
                     help="dump the register file after the run")
    run.add_argument("--stats-json", action="store_true",
                     help="print one JSON document (stop reason + stats "
                          "registry) on stdout; summary moves to stderr")
    run.add_argument("--trace", metavar="PATH",
                     help="write a Chrome/Perfetto trace-event JSON "
                          "(load in ui.perfetto.dev)")
    run.add_argument("--trace-jsonl", metavar="PATH",
                     help="write the raw event stream as JSONL")
    run.add_argument("--profile", action="store_true",
                     help="print hot-spot / stall-attribution / layer "
                          "profile (pipelined runs)")
    run.add_argument("--metrics-out", metavar="PATH",
                     help="write OpenMetrics text exposition of the run "
                          "(stats-registry deltas + wall time, manifest-"
                          "labelled)")
    run.add_argument("--metrics-json", metavar="PATH",
                     help="write the same metrics as a stable-ordered "
                          "JSON document")
    run.add_argument("--max-cycles", type=int, default=10_000_000)
    run.set_defaults(func=cmd_run)

    exp = sub.add_parser("experiments",
                         help="reproduce the paper's tables/figures")
    exp.add_argument("patterns", nargs="*",
                     help="substring filters, e.g. fig13 table2")
    exp.add_argument("--draw", action="store_true",
                     help="render any timelines as ASCII lanes")
    exp.add_argument("-j", "--jobs", type=int, default=1,
                     help="run experiments in N parallel processes")
    exp.add_argument("--json", action="store_true",
                     help="emit machine-readable JSON results")
    exp.add_argument("--markdown", action="store_true",
                     help="emit EXPERIMENTS.md-style markdown")
    exp.add_argument("--no-cache", action="store_true",
                     help="ignore and do not update the artifact cache")
    exp.add_argument("--cache-dir",
                     help="artifact cache root (default ~/.cache/repro, "
                          "or $REPRO_CACHE_DIR)")
    exp.add_argument("--trace-dir", metavar="DIR",
                     help="trace each executed experiment into "
                          "DIR/<name>.trace.json (Perfetto format)")
    exp.add_argument("--metrics-dir", metavar="DIR",
                     help="write per-experiment metrics JSON plus an "
                          "aggregate OpenMetrics file into DIR")
    exp.add_argument("--scenario", metavar="FILE",
                     help="scenario JSON configuring the session (engine, "
                          "seed); --engine and --cache-dir override its "
                          "fields")
    exp.add_argument("--engine", choices=engines,
                     help="execution engine for the session (the fast "
                          "engines swap in batched BNN kernels; results "
                          "are identical)")
    exp.add_argument("--profile", "--device-profile", choices=profiles,
                     metavar="NAME", dest="device_profile",
                     help="device profile pricing the power models "
                          "(default: the scenario's device.profile, else "
                          "ncpu-65nm); changes physical results — paper "
                          "anchors only hold on the default")
    exp.set_defaults(func=cmd_experiments)

    benchp = sub.add_parser("bench",
                            help="run the registered micro-benchmarks and "
                                 "write a BENCH_<timestamp>.json")
    benchp.add_argument("patterns", nargs="*",
                        help="substring filters, e.g. cpu dma")
    benchp.add_argument("--list", action="store_true",
                        help="list the registered benchmarks and exit")
    benchp.add_argument("--quick", action="store_true",
                        help="smoke mode: small workloads, <=2 repeats, "
                             "no warmup")
    benchp.add_argument("--repeats", type=int, default=5,
                        help="timed repeats per benchmark (default 5)")
    benchp.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup runs per benchmark (default 1)")
    benchp.add_argument("--out-dir", default=".",
                        help="directory for the BENCH trajectory file "
                             "(default: repo root / cwd)")
    benchp.add_argument("--no-write", action="store_true",
                        help="measure only; do not write a BENCH file")
    benchp.add_argument("--no-experiments", action="store_true",
                        help="skip the paper-anchor experiment metrics")
    benchp.add_argument("--scenario", metavar="FILE",
                        help="scenario JSON configuring the bench session "
                             "(engine, seed); recorded in the BENCH "
                             "document")
    benchp.add_argument("--profile", "--device-profile", choices=profiles,
                        metavar="NAME", dest="device_profile",
                        help="device profile for the measurement sessions "
                             "and anchor experiments (recorded in the "
                             "BENCH document; baseline.json expectations "
                             "only hold on the default)")
    benchp.add_argument("--json", action="store_true",
                        help="print the BENCH document on stdout")
    benchp.set_defaults(func=cmd_bench)

    scen = sub.add_parser("scenario",
                          help="validate or canonicalize scenario JSON "
                               "files")
    scen_sub = scen.add_subparsers(dest="action", required=True)
    scen_validate = scen_sub.add_parser(
        "validate", help="validate scenario files against the schema")
    scen_validate.add_argument("files", nargs="+", metavar="FILE")
    scen_validate.set_defaults(func=cmd_scenario)
    scen_show = scen_sub.add_parser(
        "show", help="print one scenario's canonical JSON form")
    scen_show.add_argument("file", metavar="FILE")
    scen_show.set_defaults(func=cmd_scenario)

    fuzz = sub.add_parser("fuzz",
                          help="differentially fuzz random scenarios "
                               "across every registered engine")
    fuzz.add_argument("--count", type=int, default=25,
                      help="number of random scenarios (default 25)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="fuzzer seed; the same seed replays the same "
                           "scenario sequence (default 0)")
    fuzz.add_argument("--engines", nargs="+", metavar="NAME",
                      help="engines to compare, space- or comma-separated "
                           "(default: every registered engine; first is "
                           "the oracle)")
    fuzz.add_argument("--kind", nargs="+", choices=("bnn", "cpu"),
                      help="restrict generated workload kinds")
    fuzz.add_argument("--json", action="store_true",
                      help="print per-scenario results as JSON")
    fuzz.set_defaults(func=cmd_fuzz)

    serve = sub.add_parser("serve",
                           help="serve a BNN scenario under an open-loop "
                                "arrival schedule and report SLO "
                                "attainment")
    serve.add_argument("--scenario", metavar="FILE",
                       help="scenario JSON with an optional 'serve' block "
                            "(default: the built-in paper-shaped BNN "
                            "scenario); serve flags below override its "
                            "fields")
    serve.add_argument("--engine", choices=engines,
                       help="execution engine batches dispatch to "
                            "(default: the scenario's engine)")
    serve.add_argument("--requests", type=int,
                       help="number of requests to drive")
    serve.add_argument("--rate", type=float, metavar="RPS",
                       help="mean arrival rate in requests/second")
    serve.add_argument("--arrival", choices=("poisson", "uniform",
                                             "bursty"),
                       help="arrival process (default poisson)")
    serve.add_argument("--burst-factor", type=float, metavar="F",
                       help="bursty ON-window rate multiplier")
    serve.add_argument("--batch-window", type=float, metavar="MS",
                       help="batching window: max wait after the first "
                            "request of a batch")
    serve.add_argument("--max-batch", type=int, metavar="N",
                       help="max requests coalesced into one engine batch")
    serve.add_argument("--max-queue-depth", type=int, metavar="N",
                       help="queue depth beyond which requests are shed")
    serve.add_argument("--timeout", type=float, metavar="MS",
                       help="queue age beyond which requests time out")
    serve.add_argument("--budget", type=float, metavar="MS",
                       help="per-request latency budget the SLO gates on")
    serve.add_argument("--slo-target", type=float, metavar="FRACTION",
                       help="required fraction of requests within budget")
    serve.add_argument("--check-slo", action="store_true",
                       help="exit 1 when the SLO target is missed")
    serve.add_argument("--out", metavar="PATH",
                       help="write the SLO report JSON document to PATH")
    serve.add_argument("--json", action="store_true",
                       help="print the SLO report JSON on stdout instead "
                            "of markdown")
    serve.add_argument("--trace", metavar="PATH",
                       help="write a Chrome/Perfetto trace with "
                            "per-request lifecycle lanes (serve.reqNN), "
                            "batch spans and queue-depth counters")
    serve.add_argument("--trace-jsonl", metavar="PATH",
                       help="write the raw event stream as JSONL")
    serve.add_argument("--metrics-out", metavar="PATH",
                       help="write OpenMetrics text exposition: latency "
                            "quantiles, per-phase quantiles, admission "
                            "counters, queue gauges")
    serve.add_argument("--metrics-json", metavar="PATH",
                       help="write the same metrics as a stable-ordered "
                            "JSON document")
    serve.set_defaults(func=cmd_serve)

    load = sub.add_parser("loadgen",
                          help="preview a deterministic open-loop arrival "
                               "schedule (no server)")
    load.add_argument("--arrival", choices=("poisson", "uniform", "bursty"),
                      default="poisson",
                      help="arrival process (default poisson)")
    load.add_argument("--rate", type=float, default=500.0, metavar="RPS",
                      help="mean arrival rate in requests/second "
                           "(default 500)")
    load.add_argument("--requests", type=int, default=64,
                      help="schedule length (default 64)")
    load.add_argument("--seed", type=int, default=0,
                      help="schedule seed; same tuple replays the same "
                           "offsets (default 0)")
    load.add_argument("--burst-factor", type=float, default=4.0,
                      metavar="F",
                      help="bursty ON-window rate multiplier (default 4)")
    load.add_argument("--json", action="store_true",
                      help="print the schedule (offsets + summary) as "
                           "JSON")
    load.set_defaults(func=cmd_loadgen)

    att = sub.add_parser("attribute",
                         help="split a scenario run into the six obs "
                              "phases (simulated cycles + host wall time)")
    att.add_argument("--scenario", metavar="FILE", required=True,
                     help="scenario JSON naming the workload to attribute")
    att.add_argument("--engine", action="append", choices=engines,
                     metavar="NAME",
                     help="engine to attribute; repeat for an A/B "
                          "comparison across engines (default: the "
                          "scenario's engine)")
    att.add_argument("--profile", "--device-profile", choices=profiles,
                     metavar="NAME", dest="device_profile",
                     help="device profile the attributed runs are priced "
                          "under (default: the scenario's device.profile)")
    att.add_argument("--chained", action="store_true",
                     help="also attribute a two-core chained end-to-end "
                          "inference (bnn scenarios with >= 2 layers)")
    att.add_argument("--json", action="store_true",
                     help="print the attribution document as JSON instead "
                          "of markdown tables")
    att.add_argument("--out", metavar="PATH",
                     help="also write the attribution JSON document to "
                          "PATH")
    att.add_argument("--trace", metavar="PATH",
                     help="write a Chrome/Perfetto trace of the attributed "
                          "runs (obs.* phase tracks + bnn.parallel.* "
                          "shard lanes)")
    att.add_argument("--metrics-out", metavar="PATH",
                     help="write OpenMetrics gauges/histograms of the "
                          "attribution (per-phase cycles, wall seconds, "
                          "fractions, shard samples)")
    att.add_argument("--metrics-json", metavar="PATH",
                     help="write the same metrics as a stable-ordered "
                          "JSON document")
    att.set_defaults(func=cmd_attribute)

    info = sub.add_parser("info", help="print the modelled chip specs")
    info.add_argument("--json", action="store_true",
                      help="emit the specs as machine-readable JSON "
                           "(with the run manifest)")
    info.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(verbosity=args.verbose, quiet=args.quiet)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
