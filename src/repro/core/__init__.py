"""The paper's primary contribution: the reconfigurable NCPU core and SoCs."""

from repro.core.events import BNN, CPU, DMA, IDLE, SWITCH, Segment, Timeline
from repro.core.ncpu import NCPUCore
from repro.core.scheduler import (
    EndToEndComparison,
    Item,
    SchedulerConfig,
    compare_end_to_end,
    items_for_fraction,
    simulate_heterogeneous,
    simulate_ncpu,
    simulate_single_ncpu,
)
from repro.core.soc import BNNAcceleratorDevice, HeterogeneousSoC, NCPUSoC
from repro.core.transition import (
    PIPELINE_SWITCH_CYCLES,
    TN_BATCH,
    TN_INPUT_SIZE,
    TransitionPolicy,
)
from repro.mem.memory_map import CoreMode

__all__ = [
    "Segment",
    "Timeline",
    "CPU",
    "BNN",
    "IDLE",
    "DMA",
    "SWITCH",
    "NCPUCore",
    "CoreMode",
    "Item",
    "SchedulerConfig",
    "EndToEndComparison",
    "compare_end_to_end",
    "items_for_fraction",
    "simulate_heterogeneous",
    "simulate_ncpu",
    "simulate_single_ncpu",
    "NCPUSoC",
    "HeterogeneousSoC",
    "BNNAcceleratorDevice",
    "TransitionPolicy",
    "PIPELINE_SWITCH_CYCLES",
    "TN_BATCH",
    "TN_INPUT_SIZE",
]
