"""Execution timelines: segments, utilization, and power traces.

Every system-level experiment (Figs 13, 14, 16, 17, Table 4) reduces to a
:class:`Timeline`: per-core segments of CPU work, BNN work, DMA transfer and
idleness, measured in cycles.  Utilization and the oscilloscope-style power
traces (Fig 16) derive from it.

Timelines participate in the shared instrumentation layer: every
:meth:`Timeline.add` bumps the session :class:`~repro.sim.StatsRegistry`
(``timeline.segments``, ``timeline.<kind>_cycles``) and emits a
``timeline.segment`` probe event; utilization queries publish per-core
gauges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim import get_session

#: segment kinds
CPU = "cpu"
BNN = "bnn"
IDLE = "idle"
DMA = "dma"
SWITCH = "switch"

_ACTIVE_KINDS = (CPU, BNN, SWITCH)


@dataclass(frozen=True)
class Segment:
    """One contiguous activity of one core."""

    core: str
    kind: str
    start: int
    end: int
    label: str = ""

    def __post_init__(self):
        if self.end < self.start:
            raise ConfigurationError(
                f"segment for {self.core} ends before it starts "
                f"({self.start}..{self.end})"
            )

    @property
    def cycles(self) -> int:
        return self.end - self.start


@dataclass
class Timeline:
    """A set of per-core segments over a common cycle axis."""

    segments: List[Segment] = field(default_factory=list)
    #: per-core sorted-segment cache; rebuilt when ``segments`` grows
    _by_core_cache: Dict[str, List[Segment]] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _cache_size: int = field(default=-1, init=False, repr=False, compare=False)

    def add(self, core: str, kind: str, start: int, end: int,
            label: str = "") -> Segment:
        segment = Segment(core=core, kind=kind, start=start, end=end, label=label)
        self.segments.append(segment)
        stats = get_session().stats
        stats.incr("timeline.segments")
        stats.incr(f"timeline.{kind}_cycles", segment.cycles)
        stats.emit("timeline.segment", core=core, kind=kind,
                   start=start, end=end, label=label)
        return segment

    @property
    def end(self) -> int:
        return max((s.end for s in self.segments), default=0)

    def _by_core(self) -> Dict[str, List[Segment]]:
        """Per-core segments sorted by start, memoized until ``segments``
        changes length (covers both :meth:`add` and direct extension)."""
        if self._cache_size != len(self.segments):
            by_core: Dict[str, List[Segment]] = {}
            for segment in self.segments:
                by_core.setdefault(segment.core, []).append(segment)
            for ordered in by_core.values():
                ordered.sort(key=lambda s: s.start)
            self._by_core_cache = by_core
            self._cache_size = len(self.segments)
        return self._by_core_cache

    def core_names(self) -> List[str]:
        return list(self._by_core())

    def core_segments(self, core: str) -> List[Segment]:
        """Sorted segments of one core.  The returned list is a shared
        cache — treat it as read-only."""
        return self._by_core().get(core, [])

    # -- utilization ----------------------------------------------------
    def busy_cycles(self, core: str, kinds: Tuple[str, ...] = _ACTIVE_KINDS) -> int:
        return sum(s.cycles for s in self.core_segments(core)
                   if s.kind in kinds)

    def utilization(self, core: str) -> float:
        """Fraction of the total makespan this core spends doing real work."""
        total = self.end
        if total == 0:
            return 0.0
        return self.busy_cycles(core) / total

    def utilizations(self) -> Dict[str, float]:
        utils = {core: self.utilization(core) for core in self.core_names()}
        stats = get_session().stats
        for core, value in utils.items():
            stats.set_gauge(f"timeline.utilization.{core}", value)
        return utils

    # -- power trace ------------------------------------------------------
    def _segment_power_mw(self, segment: Segment, voltage: float, f_hz: float,
                          reconfigurable: bool, profile=None) -> float:
        from repro.power import core_power_w

        if segment.kind in (CPU, SWITCH):
            mode, active = "cpu", True
        elif segment.kind == BNN:
            mode, active = "bnn", True
        else:
            mode, active = "cpu", False
        return core_power_w(mode, voltage, f_hz,
                            reconfigurable=reconfigurable,
                            active=active, profile=profile) * 1e3

    def power_trace(self, voltage: float, f_hz: float,
                    reconfigurable: bool = True,
                    resolution: Optional[int] = None,
                    profile=None,
                    ) -> Dict[str, List[Tuple[float, float]]]:
        """Per-core (time_us, power_mw) traces (Fig 16 style).

        By default each segment contributes a two-point staircase step at
        its mode's power (idle periods contribute leakage only).  With
        ``resolution`` set, each core's trace is instead resampled onto
        ``resolution`` evenly spaced time points across the full makespan
        — the fixed-rate form an oscilloscope capture (or a plotting
        frontend) wants.  ``profile`` selects the device profile whose
        fitted power models price each segment (the session's default
        when ``None``); the per-profile models are memoized, so sweeping
        a trace over many voltages never re-runs the solver.
        """
        if resolution is not None and resolution < 2:
            raise ConfigurationError("power_trace resolution must be >= 2")

        traces: Dict[str, List[Tuple[float, float]]] = {}
        for core in self.core_names():
            points: List[Tuple[float, float]] = []
            for segment in self.core_segments(core):
                power_mw = self._segment_power_mw(segment, voltage, f_hz,
                                                  reconfigurable, profile)
                start_us = segment.start / f_hz * 1e6
                end_us = segment.end / f_hz * 1e6
                points.append((start_us, power_mw))
                points.append((end_us, power_mw))
            traces[core] = points
        if resolution is None:
            return traces
        return {core: self._resample(core, voltage, f_hz,
                                     reconfigurable, resolution, profile)
                for core in traces}

    def _resample(self, core: str, voltage: float, f_hz: float,
                  reconfigurable: bool, resolution: int,
                  profile=None) -> List[Tuple[float, float]]:
        """Sample one core's step function at uniform time points."""
        from repro.power import core_power_w

        end_us = self.end / f_hz * 1e6
        #: power when no segment covers the sample (gap == idle leakage)
        gap_mw = core_power_w("cpu", voltage, f_hz,
                              reconfigurable=reconfigurable,
                              active=False, profile=profile) * 1e3
        segments = self.core_segments(core)
        points: List[Tuple[float, float]] = []
        cursor = 0
        for index in range(resolution):
            t_us = end_us * index / (resolution - 1)
            t_cycles = t_us * f_hz / 1e6
            while cursor < len(segments) and segments[cursor].end < t_cycles:
                cursor += 1
            covering = None
            for segment in segments[cursor:]:
                if segment.start > t_cycles:
                    break
                if segment.start <= t_cycles <= segment.end:
                    covering = segment
                    break
            if covering is None:
                points.append((t_us, gap_mw))
            else:
                points.append((t_us, self._segment_power_mw(
                    covering, voltage, f_hz, reconfigurable, profile)))
        return points

    def validate_no_overlap(self) -> None:
        """Sanity check: a core never does two things at once."""
        for core in self.core_names():
            ordered = self.core_segments(core)
            for left, right in zip(ordered, ordered[1:]):
                if right.start < left.end:
                    raise ConfigurationError(
                        f"core {core}: segment {right} overlaps {left}"
                    )
