"""Execution timelines: segments, utilization, and power traces.

Every system-level experiment (Figs 13, 14, 16, 17, Table 4) reduces to a
:class:`Timeline`: per-core segments of CPU work, BNN work, DMA transfer and
idleness, measured in cycles.  Utilization and the oscilloscope-style power
traces (Fig 16) derive from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError

#: segment kinds
CPU = "cpu"
BNN = "bnn"
IDLE = "idle"
DMA = "dma"
SWITCH = "switch"

_ACTIVE_KINDS = (CPU, BNN, SWITCH)


@dataclass(frozen=True)
class Segment:
    """One contiguous activity of one core."""

    core: str
    kind: str
    start: int
    end: int
    label: str = ""

    def __post_init__(self):
        if self.end < self.start:
            raise ConfigurationError(
                f"segment for {self.core} ends before it starts "
                f"({self.start}..{self.end})"
            )

    @property
    def cycles(self) -> int:
        return self.end - self.start


@dataclass
class Timeline:
    """A set of per-core segments over a common cycle axis."""

    segments: List[Segment] = field(default_factory=list)

    def add(self, core: str, kind: str, start: int, end: int,
            label: str = "") -> Segment:
        segment = Segment(core=core, kind=kind, start=start, end=end, label=label)
        self.segments.append(segment)
        return segment

    @property
    def end(self) -> int:
        return max((s.end for s in self.segments), default=0)

    def core_names(self) -> List[str]:
        seen = []
        for segment in self.segments:
            if segment.core not in seen:
                seen.append(segment.core)
        return seen

    def core_segments(self, core: str) -> List[Segment]:
        return sorted((s for s in self.segments if s.core == core),
                      key=lambda s: s.start)

    # -- utilization ----------------------------------------------------
    def busy_cycles(self, core: str, kinds: Tuple[str, ...] = _ACTIVE_KINDS) -> int:
        return sum(s.cycles for s in self.segments
                   if s.core == core and s.kind in kinds)

    def utilization(self, core: str) -> float:
        """Fraction of the total makespan this core spends doing real work."""
        total = self.end
        if total == 0:
            return 0.0
        return self.busy_cycles(core) / total

    def utilizations(self) -> Dict[str, float]:
        return {core: self.utilization(core) for core in self.core_names()}

    # -- power trace ------------------------------------------------------
    def power_trace(self, voltage: float, f_hz: float,
                    reconfigurable: bool = True,
                    resolution: int = 64) -> Dict[str, List[Tuple[float, float]]]:
        """Per-core (time_us, power_mw) staircase traces (Fig 16 style).

        Each segment contributes its mode's power at the given voltage and
        clock; idle periods contribute leakage only.
        """
        from repro.power import core_power_w

        traces: Dict[str, List[Tuple[float, float]]] = {}
        for core in self.core_names():
            points: List[Tuple[float, float]] = []
            for segment in self.core_segments(core):
                if segment.kind in (CPU, SWITCH):
                    mode, active = "cpu", True
                elif segment.kind == BNN:
                    mode, active = "bnn", True
                else:
                    mode, active = "cpu", False
                power_mw = core_power_w(mode, voltage, f_hz,
                                        reconfigurable=reconfigurable,
                                        active=active) * 1e3
                start_us = segment.start / f_hz * 1e6
                end_us = segment.end / f_hz * 1e6
                points.append((start_us, power_mw))
                points.append((end_us, power_mw))
            traces[core] = points
        _ = resolution
        return traces

    def validate_no_overlap(self) -> None:
        """Sanity check: a core never does two things at once."""
        for core in self.core_names():
            ordered = self.core_segments(core)
            for left, right in zip(ordered, ordered[1:]):
                if right.start < left.end:
                    raise ConfigurationError(
                        f"core {core}: segment {right} overlaps {left}"
                    )
