"""The reconfigurable NCPU core (paper sections IV-V).

One :class:`NCPUCore` owns the banked SRAM (:class:`repro.mem.NCPUMemory`),
a core environment (transition neurons, L2 hooks), a local cycle clock, and
a :class:`~repro.core.events.Timeline`.  It can:

* run RV32I programs on the cycle-accurate 5-stage pipeline against the
  reused SRAM banks (CPU mode),
* flip into BNN mode when a program executes ``trans_bnn`` (or explicitly),
  classify the bit-packed inputs sitting in the image memory, and write the
  winning classes into the output memory,
* flip back and keep executing — data stays local the whole time, which is
  the paper's core end-to-end argument.

This is the *functional fidelity* path: real instructions against real
banks, real XNOR/popcount inference from the banks' contents.  The
multi-core latency experiments use the faster phase-level scheduler in
:mod:`repro.core.scheduler`, calibrated by cycle counts measured here.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bnn import quantize as q
from repro.bnn.accelerator import AcceleratorConfig, BNNAccelerator
from repro.bnn.model import BNNModel
from repro.core import events
from repro.core.transition import (
    TN_BATCH,
    TN_INPUT_SIZE,
    TN_LAYERS,
    TransitionPolicy,
)
from repro.cpu import CoreEnv, PipelinedCPU, RunResult
from repro.cpu.memory import DataMemory
from repro.errors import ConfigurationError, SimulationError
from repro.isa import Program
from repro.mem.memory_map import CoreMode, NCPUMemory
from repro.sim import get_session


class NCPUCore:
    """One reconfigurable Neural CPU core."""

    def __init__(
        self,
        name: str = "ncpu0",
        l2: Optional[DataMemory] = None,
        accelerator_config: Optional[AcceleratorConfig] = None,
        transition_policy: Optional[TransitionPolicy] = None,
        engine=None,
    ):
        from repro.engine import resolve_engine

        self.name = name
        self.memory = NCPUMemory()
        self.env = CoreEnv(l2=l2)
        self.accelerator = BNNAccelerator(accelerator_config)
        self.policy = transition_policy if transition_policy is not None \
            else TransitionPolicy()
        self.timeline = events.Timeline()
        self.clock = 0
        self.model: Optional[BNNModel] = None
        self.registers = None  # regfile of the most recent CPU-mode run
        self._weight_stream_pending = 0
        #: pinned engine (name or object); None tracks the session config
        self._engine = resolve_engine(engine) if engine is not None else None

    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The resolved execution engine driving this core's BNN mode.

        Pinned at construction when ``engine=`` was given; otherwise the
        session's ``SimConfig.engine`` is resolved on each access, so a
        core built before ``use_session(engine=...)`` still honours it.
        """
        from repro.engine import resolve_engine

        return self._engine if self._engine is not None else resolve_engine()

    @property
    def mode(self) -> CoreMode:
        return self.memory.mode

    def _advance(self, cycles: int, kind: str, label: str = "") -> None:
        if cycles < 0:
            raise ConfigurationError("cannot advance the clock backwards")
        if cycles:
            self.timeline.add(self.name, kind, self.clock, self.clock + cycles,
                              label)
            self.clock += cycles

    def idle(self, cycles: int) -> None:
        """Model waiting (e.g. for a sensor) as explicit idle time."""
        self._advance(cycles, events.IDLE)

    # -- model management ------------------------------------------------
    def load_model(self, model: BNNModel) -> None:
        """Place a BNN's weights/biases into the local banks.

        The non-resident layers' DMA streaming cost is remembered and
        charged (or hidden) at the next mode switch per the zero-latency
        policy.
        """
        self.accelerator.check_model(model)
        self.memory.load_model(model)
        self.model = model
        self._weight_stream_pending = self.accelerator.weight_stream_cycles(model)

    # -- CPU mode ----------------------------------------------------------
    def run_cpu_program(self, program: Program,
                        max_cycles: int = 50_000_000,
                        label: str = "") -> RunResult:
        """Execute a program on the pipeline against the banked data cache.

        If the program executes ``trans_bnn``, the core switches to BNN mode
        (charging the transition cost) and the result's ``stop_reason``
        says so; the caller then typically calls :meth:`run_bnn`.
        """
        if self.mode is not CoreMode.CPU:
            raise SimulationError(f"{self.name} is in BNN mode; switch first")
        # CPU mode always runs the cycle-accurate pipeline: the core's
        # clock and timeline are the timing oracle the experiments (and
        # the fast-path calibration) are pinned against, so the engine
        # seam only swaps the BNN inference math, never CPU-mode timing.
        cpu = PipelinedCPU(program, memory=self.memory.data_memory(),
                           env=self.env)
        result = cpu.run(max_cycles=max_cycles)
        self.registers = cpu.regs  # architectural state of the last run
        self._advance(result.stats.cycles, events.CPU, label or "program")
        if result.stop_reason == "trans_bnn":
            self._switch_to_bnn()
        return result

    def _switch_to_bnn(self) -> None:
        cost = self.policy.to_bnn_cycles(
            0 if self.policy.hides_weight_stream() else self._weight_stream_pending
        )
        self._advance(cost, events.SWITCH, "trans_bnn")
        self.memory.set_mode(CoreMode.BNN)
        get_session().stats.emit("soc.mode_switch", core=self.name, to="bnn",
                                 cycle=self.clock, cost=cost)

    def switch_to_cpu(self) -> None:
        if self.mode is CoreMode.CPU:
            return
        cost = self.policy.to_cpu_cycles()
        self._advance(cost, events.SWITCH, "trans_cpu")
        self.memory.set_mode(CoreMode.CPU)
        get_session().stats.emit("soc.mode_switch", core=self.name, to="cpu",
                                 cycle=self.clock, cost=cost)

    def switch_to_bnn(self) -> None:
        """Explicit switch (normally driven by the trans_bnn instruction)."""
        if self.mode is CoreMode.BNN:
            return
        self._switch_to_bnn()

    # -- BNN mode ----------------------------------------------------------
    def _read_packed_inputs(self, n_inputs: int, input_bits: int) -> np.ndarray:
        bank = self.memory.banks["image"]
        words_per_input = (input_bits + 31) // 32
        needed = 4 * words_per_input * n_inputs
        if needed > bank.size:
            raise ConfigurationError(
                f"{n_inputs} x {input_bits}-bit inputs exceed the image memory"
            )
        inputs = []
        for index in range(n_inputs):
            base = bank.base + 4 * words_per_input * index
            words = np.array(bank.read_words(base, words_per_input),
                             dtype=np.uint32)
            inputs.append(q.bits_to_sign(q.unpack_bits(words, input_bits)))
        return np.array(inputs)

    def run_bnn(self, n_inputs: Optional[int] = None) -> List[int]:
        """Classify the packed inputs in the image memory (BNN mode).

        The batch size and input size come from the transition neurons when
        set (``mv_neu``), mirroring how the chip's CPU-mode code configures
        the following BNN run; explicit arguments override.
        """
        if self.mode is not CoreMode.BNN:
            raise SimulationError(f"{self.name} is in CPU mode; switch first")
        if self.model is None:
            raise SimulationError("no BNN model loaded")
        # smaller networks are configured through the ISA (transition
        # neuron 2 limits the active layer count, paper section VIII.A)
        active_layers = self.env.transition_neurons[TN_LAYERS]
        model = (self.model.truncated(active_layers)
                 if 0 < active_layers < self.model.n_layers else self.model)
        input_bits = self.env.transition_neurons[TN_INPUT_SIZE] \
            or model.input_size
        if input_bits != model.input_size:
            raise ConfigurationError(
                f"transition neuron input size {input_bits} does not match "
                f"the loaded model ({model.input_size})"
            )
        if n_inputs is None:
            n_inputs = self.env.transition_neurons[TN_BATCH] or 1

        x_signs = self._read_packed_inputs(n_inputs, input_bits)
        # engine-aware: the resolved engine's BNN half does the math (the
        # fast/parallel engines swap in bit-packed batched kernels);
        # predictions are identical either way, only host speed changes
        predictions = self.engine.predict(model, x_signs)
        timing = self.accelerator.batch_timing(
            model, n_inputs,
            stream_weights=self.policy.hides_weight_stream()
            and self._weight_stream_pending > 0,
        )
        self._weight_stream_pending = 0
        self._advance(timing.total_cycles, events.BNN,
                      f"infer x{n_inputs}")
        for index, prediction in enumerate(predictions):
            self.memory.write_result(index, int(prediction))
        return [int(p) for p in predictions]

    def read_results(self, count: int) -> List[int]:
        return [self.memory.read_result(i) for i in range(count)]

    # -- accounting ---------------------------------------------------------
    def utilization(self) -> float:
        return self.timeline.utilization(self.name)
