"""Discrete-event schedulers for the end-to-end experiments.

Two system organizations process a stream of *items* (images or gesture
windows), each with a CPU phase (pre-processing) and a BNN phase
(inference):

* :func:`simulate_heterogeneous` — the conventional SoC: one CPU core plus
  one BNN accelerator.  The CPU pre-processes item *i+1* while the
  accelerator classifies item *i*, but every item must first be *offloaded*
  (DMA from the CPU's memory into the accelerator's scratchpad), which
  blocks the CPU (no coherent interface on a low-cost SoC; paper section I).
* :func:`simulate_ncpu` — the two-core NCPU SoC: items are divided across
  cores; each core pre-processes all of its items into the local image
  memory, flips into BNN mode (zero-latency switching), and classifies them
  — there is no offload because the data never moves.

Both return a :class:`~repro.core.events.Timeline`, from which the paper's
speedups (Figs 13/14/17), utilizations (Table 4), and power traces (Fig 16)
are computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.events import BNN, CPU, DMA, IDLE, SWITCH, Timeline
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Item:
    """One unit of end-to-end work."""

    cpu_cycles: int
    bnn_cycles: int

    def __post_init__(self):
        if self.cpu_cycles < 0 or self.bnn_cycles < 0:
            raise ConfigurationError("item phases must be non-negative")

    @property
    def total_cycles(self) -> int:
        return self.cpu_cycles + self.bnn_cycles

    @property
    def cpu_fraction(self) -> float:
        return self.cpu_cycles / self.total_cycles if self.total_cycles else 0.0


def items_for_fraction(cpu_fraction: float, n_items: int,
                       item_cycles: int = 10_000) -> List[Item]:
    """A batch of identical items with the given CPU-work fraction (Fig 13)."""
    if not 0 < cpu_fraction < 1:
        raise ConfigurationError("cpu_fraction must be in (0, 1)")
    cpu = round(item_cycles * cpu_fraction)
    return [Item(cpu_cycles=cpu, bnn_cycles=item_cycles - cpu)] * n_items


@dataclass
class SchedulerConfig:
    """Cost knobs for the two organizations.

    ``offload_cycles`` is the per-item DMA cost the heterogeneous baseline
    pays to push a pre-processed item into the accelerator (it blocks the
    CPU).  ``switch_cycles`` is the NCPU's per-mode-switch cost — a handful
    of cycles for the ``trans_bnn`` instruction and pipeline drain under the
    zero-latency scheme, or the full weight-stream time when the scheme is
    disabled (ablation).
    """

    offload_cycles: int = 0
    switch_cycles: int = 4
    weight_stream_cycles: int = 0
    zero_latency: bool = True

    def effective_switch_to_bnn(self) -> int:
        if self.zero_latency:
            return self.switch_cycles
        return self.switch_cycles + self.weight_stream_cycles


def simulate_heterogeneous(items: Sequence[Item],
                           config: SchedulerConfig | None = None) -> Timeline:
    """One CPU + one BNN accelerator with pipelined offload."""
    config = config if config is not None else SchedulerConfig()
    timeline = Timeline()
    cpu_free = 0
    bnn_free = 0
    for index, item in enumerate(items):
        cpu_start = cpu_free
        cpu_end = cpu_start + item.cpu_cycles
        timeline.add("cpu", CPU, cpu_start, cpu_end, f"item{index}")
        # offload DMA blocks the CPU (software-managed, incoherent memory)
        dma_end = cpu_end + config.offload_cycles
        if config.offload_cycles:
            timeline.add("cpu", DMA, cpu_end, dma_end, f"offload{index}")
        cpu_free = dma_end
        bnn_start = max(dma_end, bnn_free)
        if bnn_start > bnn_free:
            timeline.add("bnn", IDLE, bnn_free, bnn_start)
        bnn_end = bnn_start + item.bnn_cycles
        timeline.add("bnn", BNN, bnn_start, bnn_end, f"item{index}")
        bnn_free = bnn_end
    if cpu_free < timeline.end:
        timeline.add("cpu", IDLE, cpu_free, timeline.end)
    return timeline


def _split_round_robin(items: Sequence[Item], n_cores: int) -> List[List[Item]]:
    shares: List[List[Item]] = [[] for _ in range(n_cores)]
    for index, item in enumerate(items):
        shares[index % n_cores].append(item)
    return shares


def _split_lpt(items: Sequence[Item], n_cores: int) -> List[List[Item]]:
    """Longest-processing-time-first: place each item (heaviest first) on
    the currently least-loaded core.  Balances heterogeneous batches that
    round-robin splits badly."""
    shares: List[List[Item]] = [[] for _ in range(n_cores)]
    loads = [0] * n_cores
    order = sorted(range(len(items)),
                   key=lambda i: items[i].total_cycles, reverse=True)
    for index in order:
        target = min(range(n_cores), key=lambda c: loads[c])
        shares[target].append(items[index])
        loads[target] += items[index].total_cycles
    return shares


_SPLIT_POLICIES = {"round_robin": _split_round_robin, "lpt": _split_lpt}


def simulate_ncpu(items: Sequence[Item], n_cores: int = 2,
                  config: SchedulerConfig | None = None,
                  policy: str = "round_robin") -> Timeline:
    """Two (or n) NCPU cores, each running CPU-then-BNN on its share.

    ``policy`` selects how items are divided across cores:
    ``"round_robin"`` (the paper's streaming arrival order) or ``"lpt"``
    (longest-processing-time-first, better for heterogeneous batches).
    """
    config = config if config is not None else SchedulerConfig()
    if n_cores < 1:
        raise ConfigurationError("need at least one core")
    splitter = _SPLIT_POLICIES.get(policy)
    if splitter is None:
        raise ConfigurationError(
            f"unknown policy {policy!r}; know {sorted(_SPLIT_POLICIES)}")
    timeline = Timeline()
    shares = splitter(items, n_cores)
    for core_index, share in enumerate(shares):
        name = f"ncpu{core_index}"
        now = 0
        if not share:
            continue
        for item in share:
            timeline.add(name, CPU, now, now + item.cpu_cycles)
            now += item.cpu_cycles
        switch = config.effective_switch_to_bnn()
        if switch:
            timeline.add(name, SWITCH, now, now + switch, "trans_bnn")
            now += switch
        for item in share:
            timeline.add(name, BNN, now, now + item.bnn_cycles)
            now += item.bnn_cycles
        # return to CPU mode to post-process / wait for the next batch
        if config.switch_cycles:
            timeline.add(name, SWITCH, now, now + config.switch_cycles,
                         "trans_cpu")
            now += config.switch_cycles
    end = timeline.end
    for core_index in range(n_cores):
        name = f"ncpu{core_index}"
        busy_end = max((s.end for s in timeline.core_segments(name)), default=0)
        if busy_end < end:
            timeline.add(name, IDLE, busy_end, end)
    return timeline


def simulate_single_ncpu(items: Sequence[Item],
                         config: SchedulerConfig | None = None) -> Timeline:
    """One NCPU core doing everything serially (Fig 17's '1 NCPU' bar)."""
    return simulate_ncpu(items, n_cores=1, config=config)


@dataclass
class EndToEndComparison:
    """Latency comparison between the organizations for one item batch."""

    baseline: Timeline
    ncpu_dual: Timeline
    ncpu_single: Timeline
    config: SchedulerConfig = field(default_factory=SchedulerConfig)

    @property
    def improvement(self) -> float:
        """Fractional latency reduction of 2xNCPU vs. the baseline."""
        return 1.0 - self.ncpu_dual.end / self.baseline.end

    @property
    def single_core_degradation(self) -> float:
        """Fractional latency increase of 1 NCPU vs. the baseline."""
        return self.ncpu_single.end / self.baseline.end - 1.0


def compare_end_to_end(items: Sequence[Item],
                       config: SchedulerConfig | None = None,
                       n_cores: int = 2) -> EndToEndComparison:
    config = config if config is not None else SchedulerConfig()
    return EndToEndComparison(
        baseline=simulate_heterogeneous(items, config),
        ncpu_dual=simulate_ncpu(items, n_cores=n_cores, config=config),
        ncpu_single=simulate_single_ncpu(items, config),
        config=config,
    )
