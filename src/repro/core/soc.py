"""System-on-chip models: the two-core NCPU SoC and the heterogeneous
baseline (paper Fig 6).

* :class:`NCPUSoC` — N reconfigurable cores sharing an incoherent L2 through
  the write-through ``sw_l2``/``lw_l2`` instructions and a DMA engine.
* :class:`HeterogeneousSoC` — the conventional organization: one CPU core
  plus one standalone BNN accelerator with its own scratchpad.  Inputs must
  be *offloaded* (DMA'd) into the accelerator, and the accelerator runs
  concurrently with the CPU's work on the next item.

Both execute real programs/models (functional fidelity) while tracking
per-core cycle clocks and timelines.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bnn import quantize as q
from repro.bnn.accelerator import AcceleratorConfig, BNNAccelerator
from repro.bnn.model import BNNModel
from repro.core import events
from repro.core.ncpu import NCPUCore
from repro.core.transition import TransitionPolicy
from repro.cpu import CoreEnv, PipelinedCPU, RunResult
from repro.cpu.memory import FlatMemory
from repro.errors import ConfigurationError, SimulationError
from repro.isa import Program
from repro.mem.bus import DEFAULT_L2_BYTES, SharedL2, SystemBus
from repro.mem.dma import DMAEngine
from repro.sim import get_session


class NCPUSoC:
    """The fabricated two-core NCPU system."""

    def __init__(
        self,
        n_cores: int = 2,
        l2_bytes: int = DEFAULT_L2_BYTES,
        accelerator_config: Optional[AcceleratorConfig] = None,
        transition_policy: Optional[TransitionPolicy] = None,
        engine=None,
    ):
        if n_cores < 1:
            raise ConfigurationError("need at least one core")
        self.l2 = SharedL2(size=l2_bytes)
        self.bus = SystemBus(self.l2)
        self.dma = DMAEngine()
        self.bus.register_client("dma")
        self.cores: List[NCPUCore] = []
        for index in range(n_cores):
            core = NCPUCore(name=f"ncpu{index}", l2=self.l2,
                            accelerator_config=accelerator_config,
                            transition_policy=transition_policy,
                            engine=engine)
            self.bus.register_client(core.name)
            self.cores.append(core)

    def core(self, index: int) -> NCPUCore:
        return self.cores[index]

    def load_model_all(self, model: BNNModel) -> None:
        for core in self.cores:
            core.load_model(model)

    def merged_timeline(self) -> events.Timeline:
        timeline = events.Timeline()
        for core in self.cores:
            timeline.segments.extend(core.timeline.segments)
        return timeline

    @property
    def makespan(self) -> int:
        return max((core.clock for core in self.cores), default=0)

    def utilizations(self) -> dict:
        """Per-core busy fraction over the SoC makespan."""
        span = self.makespan
        if span == 0:
            utils = {core.name: 0.0 for core in self.cores}
        else:
            utils = {core.name: core.timeline.busy_cycles(core.name) / span
                     for core in self.cores}
        stats = get_session().stats
        for name, value in utils.items():
            stats.set_gauge(f"soc.utilization.{name}", value)
        return utils

    # -- cooperative mode ---------------------------------------------------
    def run_chained_inference(self, model: BNNModel, x_signs,
                              split_at: Optional[int] = None):
        """Run a deep BNN with the two cores connected in series.

        Paper section VI.A: the cores can "operate cooperatively, e.g. form
        a deeper neural network accelerator by connecting these two NCPU
        cores in series".  Core 0 evaluates the front layers, the DMA moves
        the packed binary activations into core 1's image memory, and
        core 1 finishes the network.  Inference is pipelined across the
        batch: core 0 starts image *i+1* while core 1 digests image *i*.

        Returns ``(predictions, makespan_cycles)``.
        """
        import numpy as np

        from repro.bnn import quantize as q_mod

        if len(self.cores) < 2:
            raise ConfigurationError("chained inference needs two cores")
        x_signs = np.asarray(x_signs)
        if x_signs.ndim == 1:
            x_signs = x_signs[None, :]
        n_inputs = len(x_signs)
        split = split_at if split_at is not None else (model.n_layers + 1) // 2
        front, back = model.split(split)
        core0, core1 = self.cores[0], self.cores[1]
        core0.load_model(front)
        core1.load_model(back)

        # functional path: real bank writes at each hop; the resolved
        # engine supplies the (bit-identical) forward math for both halves
        engine = core0.engine
        activations = engine.hidden_forward(front, x_signs)
        predictions = engine.predict(back, activations)
        words_per_act = (front.n_classes + 31) // 32
        for index in range(n_inputs):
            packed = q_mod.pack_bits(q_mod.sign_to_bits(activations[index]))
            core1.memory.banks["image"].write_words(
                4 * words_per_act * index, [int(w) for w in packed])
            core1.memory.write_result(index, int(predictions[index]))

        # timing: a three-stage pipeline (front / DMA / back)
        front_interval = core0.accelerator.interval_cycles(front)
        back_interval = core1.accelerator.interval_cycles(back)
        dma_cycles = self.dma.transfer_cycles(words_per_act)
        front_latency = core0.accelerator.latency_cycles(front)
        back_latency = core1.accelerator.latency_cycles(back)
        bottleneck = max(front_interval, back_interval, dma_cycles)
        makespan = (front_latency + dma_cycles + back_latency
                    + (n_inputs - 1) * bottleneck)

        start0 = core0.clock
        core0.timeline.add(core0.name, events.BNN, start0,
                           start0 + front_latency + (n_inputs - 1) * bottleneck,
                           f"chained front x{n_inputs}")
        core0.clock = start0 + front_latency + (n_inputs - 1) * bottleneck
        start1 = core1.clock + front_latency + dma_cycles
        core1.timeline.add(core1.name, events.IDLE, core1.clock, start1,
                           "waiting on chained front")
        core1.timeline.add(core1.name, events.BNN, start1,
                           start1 + back_latency + (n_inputs - 1) * bottleneck,
                           f"chained back x{n_inputs}")
        core1.clock = start1 + back_latency + (n_inputs - 1) * bottleneck
        self.bus.account("dma", words_per_act * n_inputs)
        return [int(p) for p in predictions], makespan


class BNNAcceleratorDevice:
    """A standalone BNN accelerator with a private input scratchpad."""

    def __init__(self, config: Optional[AcceleratorConfig] = None):
        self.accelerator = BNNAccelerator(config)
        self.scratchpad = FlatMemory(size=8 * 1024)
        self.model: Optional[BNNModel] = None
        self.free_at = 0
        self.results: List[int] = []

    def load_model(self, model: BNNModel) -> None:
        self.accelerator.check_model(model)
        self.model = model

    def classify_packed(self, start_cycle: int, n_inputs: int) -> int:
        """Run inference on the scratchpad contents; returns finish cycle."""
        if self.model is None:
            raise SimulationError("accelerator has no model loaded")
        words_per_input = (self.model.input_size + 31) // 32
        signs = []
        for index in range(n_inputs):
            words = np.array(
                self.scratchpad.read_words(4 * words_per_input * index,
                                           words_per_input),
                dtype=np.uint32,
            )
            signs.append(q.bits_to_sign(q.unpack_bits(words,
                                                      self.model.input_size)))
        predictions = self.model.predict_batch(np.array(signs))
        self.results.extend(int(p) for p in predictions)
        timing = self.accelerator.batch_timing(self.model, n_inputs,
                                               stream_weights=False)
        begin = max(start_cycle, self.free_at)
        self.free_at = begin + timing.total_cycles
        return self.free_at


class HeterogeneousSoC:
    """The conventional CPU + BNN-accelerator baseline."""

    def __init__(self, accelerator_config: Optional[AcceleratorConfig] = None,
                 memory_bytes: int = 1 << 17):
        self.cpu_memory = FlatMemory(size=memory_bytes)
        self.l2 = SharedL2()
        self.env = CoreEnv(l2=self.l2)
        self.device = BNNAcceleratorDevice(accelerator_config)
        self.dma = DMAEngine()
        self.timeline = events.Timeline()
        self.cpu_clock = 0

    # -- CPU side ---------------------------------------------------------
    def run_cpu_program(self, program: Program,
                        max_cycles: int = 50_000_000,
                        label: str = "") -> RunResult:
        cpu = PipelinedCPU(program, memory=self.cpu_memory, env=self.env)
        result = cpu.run(max_cycles=max_cycles)
        self.timeline.add("cpu", events.CPU, self.cpu_clock,
                          self.cpu_clock + result.stats.cycles,
                          label or "program")
        self.cpu_clock += result.stats.cycles
        return result

    # -- offload + accelerate ----------------------------------------------
    def offload_and_classify(self, packed_addr: int, n_inputs: int = 1) -> None:
        """DMA the packed input to the accelerator, then launch it.

        The DMA blocks the CPU (software-managed offload on an incoherent
        low-cost SoC); the accelerator then runs concurrently.
        """
        if self.device.model is None:
            raise SimulationError("accelerator has no model loaded")
        words_per_input = (self.device.model.input_size + 31) // 32
        total_words = words_per_input * n_inputs
        cycles = self.dma.copy(self.cpu_memory, packed_addr,
                               self.device.scratchpad, 0, total_words,
                               description="offload")
        self.timeline.add("cpu", events.DMA, self.cpu_clock,
                          self.cpu_clock + cycles, "offload")
        self.cpu_clock += cycles
        start = self.cpu_clock
        previous_free = max(self.device.free_at, 0)
        if start > previous_free and previous_free < start:
            self.timeline.add("bnn", events.IDLE, previous_free, start)
        finish = self.device.classify_packed(start, n_inputs)
        self.timeline.add("bnn", events.BNN, max(start, previous_free), finish,
                          f"infer x{n_inputs}")

    # -- accounting ---------------------------------------------------------
    @property
    def makespan(self) -> int:
        return max(self.cpu_clock, self.device.free_at)

    def results(self) -> List[int]:
        return list(self.device.results)

    def utilizations(self) -> dict:
        span = self.makespan
        if span == 0:
            utils = {"cpu": 0.0, "bnn": 0.0}
        else:
            utils = {
                "cpu": self.timeline.busy_cycles("cpu") / span,
                "bnn": self.timeline.busy_cycles("bnn") / span,
            }
        stats = get_session().stats
        for name, value in utils.items():
            stats.set_gauge(f"soc.utilization.{name}", value)
        return utils
