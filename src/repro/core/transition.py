"""Zero-latency mode switching (paper section V.A).

The transition costs between CPU and BNN operation:

* **CPU -> BNN**: the ``trans_bnn`` instruction drains the pipeline (a few
  cycles).  Layer-1 weights are resident in their SRAM bank, so inference
  starts immediately while the DMA streams the remaining layers' weights
  behind it — under the zero-latency scheme that streaming is *hidden*
  (the accelerator's batch timing already overlaps it).  With the scheme
  disabled (ablation), the core waits for the full weight stream first.
* **BNN -> CPU**: while the last image is inferred, the DMA preloads the
  CPU's initial data into the data cache, so resuming costs only the
  pipeline refill; disabled, the core waits for the preload.

Transition neurons (written by ``mv_neu``) carry the BNN run configuration
across the switch:

* neuron 0 — input size in bits (0 means "the loaded model's input size"),
* neuron 1 — number of images to classify from the image memory (0 = 1).
"""

from __future__ import annotations

from dataclasses import dataclass

#: pipeline drain/refill cost of a mode switch (the trans_bnn instruction
#: plus restarting the 5-stage pipe)
PIPELINE_SWITCH_CYCLES = 4

TN_INPUT_SIZE = 0
TN_BATCH = 1
#: neuron 2 — number of active neural layers (0 = the full loaded model);
#: smaller networks are configured through the ISA (paper section VIII.A)
TN_LAYERS = 2


@dataclass(frozen=True)
class TransitionPolicy:
    """Cost model for mode transitions."""

    zero_latency: bool = True
    dcache_preload_words: int = 256  # CPU initial data preloaded from L2

    def to_bnn_cycles(self, weight_stream_cycles: int) -> int:
        """Cycles the core is neither computing CPU nor BNN work."""
        if self.zero_latency:
            return PIPELINE_SWITCH_CYCLES
        return PIPELINE_SWITCH_CYCLES + weight_stream_cycles

    def to_cpu_cycles(self, dma_words_per_cycle: float = 0.5) -> int:
        if self.zero_latency:
            return PIPELINE_SWITCH_CYCLES
        preload = int(self.dcache_preload_words / dma_words_per_cycle)
        return PIPELINE_SWITCH_CYCLES + preload

    def hides_weight_stream(self) -> bool:
        """Whether weight streaming overlaps inference (scheme enabled)."""
        return self.zero_latency
