"""CPU simulators: functional golden model and cycle-accurate 5-stage pipeline."""

from repro.cpu.env import CoreEnv, CoreEvent, ExecStats, RunResult
from repro.cpu.fastpath import FastCPU, run_fastpath
from repro.cpu.functional import FunctionalCPU, run_functional
from repro.cpu.memory import DataMemory, FlatMemory
from repro.cpu.pipeline import PipelinedCPU, run_pipelined
from repro.cpu.semantics import ExecOutcome, execute
from repro.cpu.state import RegisterFile

__all__ = [
    "CoreEnv",
    "CoreEvent",
    "ExecStats",
    "RunResult",
    "FastCPU",
    "run_fastpath",
    "FunctionalCPU",
    "run_functional",
    "PipelinedCPU",
    "run_pipelined",
    "DataMemory",
    "FlatMemory",
    "RegisterFile",
    "ExecOutcome",
    "execute",
]
