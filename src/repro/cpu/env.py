"""Core environment shared by the CPU simulators.

The NCPU custom instructions interact with machinery outside the pipeline:
transition neurons (``mv_neu``), the mode controller (``trans_bnn``), a
separate accelerator core (``trigger_bnn``), and the global L2 memory
(``sw_l2``/``lw_l2``).  :class:`CoreEnv` is the small bag of hooks both the
functional ISS and the cycle-accurate pipeline use to reach them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cpu.memory import DataMemory

#: number of transition neuron cells per core (one per neural layer group,
#: sized generously; the rd field addresses up to 32)
NUM_TRANSITION_NEURONS = 32


@dataclass
class CoreEvent:
    """A custom-instruction side effect observed during execution."""

    name: str
    cycle: int
    pc: int
    imm: int = 0

    def __str__(self) -> str:
        return f"{self.name}@cycle={self.cycle} pc={self.pc:#x} imm={self.imm}"


class CoreEnv:
    """Hooks from the CPU core out to the rest of the NCPU system."""

    def __init__(self, l2: Optional[DataMemory] = None):
        self.l2 = l2
        self.transition_neurons: List[int] = [0] * NUM_TRANSITION_NEURONS
        self.events: List[CoreEvent] = []
        self.l2_reads = 0
        self.l2_writes = 0

    def record(self, name: str, cycle: int, pc: int, imm: int = 0) -> None:
        self.events.append(CoreEvent(name=name, cycle=cycle, pc=pc, imm=imm))

    def write_transition_neuron(self, index: int, value: int) -> None:
        self.transition_neurons[index % NUM_TRANSITION_NEURONS] = value & 0xFFFFFFFF

    def l2_memory(self) -> DataMemory:
        if self.l2 is None:
            raise RuntimeError(
                "sw_l2/lw_l2 executed but no L2 memory is attached to this core"
            )
        return self.l2

    def events_named(self, name: str) -> List[CoreEvent]:
        return [e for e in self.events if e.name == name]


#: the scalar ExecStats fields mirrored into the shared StatsRegistry
SCALAR_STATS = ("cycles", "instructions", "stalls", "flushes",
                "mem_reads", "mem_writes")


@dataclass
class ExecStats:
    """Execution statistics common to both simulators."""

    cycles: int = 0
    instructions: int = 0
    stalls: int = 0
    flushes: int = 0
    mem_reads: int = 0
    mem_writes: int = 0
    instr_counts: Counter = field(default_factory=Counter)
    stage_busy: Counter = field(default_factory=Counter)

    def scalars(self) -> dict:
        """The plain counter fields as a dict (registry/JSON export)."""
        return {name: getattr(self, name) for name in SCALAR_STATS}

    def delta(self, before: dict) -> dict:
        """Scalar growth since a :meth:`scalars` snapshot."""
        return {name: getattr(self, name) - before.get(name, 0)
                for name in SCALAR_STATS}

    def as_dict(self) -> dict:
        """Full structured export (JSON-ready)."""
        exported = self.scalars()
        exported["ipc"] = self.ipc
        exported["instr_counts"] = dict(self.instr_counts)
        exported["stage_busy"] = dict(self.stage_busy)
        return exported

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def merge(self, other: "ExecStats") -> "ExecStats":
        merged = ExecStats(
            cycles=self.cycles + other.cycles,
            instructions=self.instructions + other.instructions,
            stalls=self.stalls + other.stalls,
            flushes=self.flushes + other.flushes,
            mem_reads=self.mem_reads + other.mem_reads,
            mem_writes=self.mem_writes + other.mem_writes,
        )
        merged.instr_counts = self.instr_counts + other.instr_counts
        merged.stage_busy = self.stage_busy + other.stage_busy
        return merged


@dataclass
class RunResult:
    """Outcome of a simulator run."""

    stats: ExecStats
    stop_reason: str  # 'halt' | 'trans_bnn' | 'max_cycles'
    pc: int  # resume PC (instruction after the stopping instruction)
    env: CoreEnv

    @property
    def halted(self) -> bool:
        return self.stop_reason == "halt"
