"""Fast-path RV32I interpreter: decoded basic blocks replayed as closures.

:class:`FastCPU` is the CPU half of the ``--engine fast`` execution engine.
It computes exactly the architectural state the golden-model
:class:`~repro.cpu.functional.FunctionalCPU` computes — same registers,
memory, events, :class:`~repro.cpu.env.ExecStats` (single-cycle timing) and
stop reasons — but instead of decode/execute dispatch per step it compiles
each **superblock** once into a list of specialised Python closures and
replays the list on every revisit:

* every straight-line instruction becomes one closure over its decoded
  fields that mutates the register list in place (x0 writes are elided and
  constants like AUIPC results are folded at compile time),
* unconditional ``jal`` jumps are *folded into the body*: decoding
  continues at the (always-taken) target, so call-heavy code compiles
  into superblocks — precomputed decode traces spanning taken jumps —
  instead of stopping at every ``call``/``j`` (formation stops when a
  target was already decoded into the trace, on a decode error, or at
  :data:`MAX_SUPERBLOCK_BODY` body instructions),
* the block's terminator (conditional branch / ``jalr`` / ``ebreak`` /
  ``trans_bnn`` / ``trigger_bnn`` / decode error / unfoldable ``jal``) is
  one closure returning the next PC and an optional stop reason,
* per-instruction statistics are committed in bulk per block, with the
  per-mnemonic histogram flushed lazily at the end of the run; a per-op
  PC table keeps partial commits (step limits, faults) landing on the
  exact faulting PC even across folded jumps.

``trans_bnn``/``trigger_bnn`` events still record the exact pre-instruction
cycle count, and exceptions (memory faults, decode errors) leave ``stats``
and ``pc`` exactly as the functional model would — the differential suite in
``tests/cpu/test_fastpath_equivalence.py`` pins all of this against both the
functional model and the cycle-accurate pipeline.  The pipeline remains the
timing oracle; this engine only changes how fast the *simulation* runs.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, List, Optional, Tuple

from repro.bnn.batched import BatchedBNNHalf
from repro.cpu.env import CoreEnv, ExecStats, RunResult
from repro.cpu.functional import DEFAULT_MAX_STEPS
from repro.cpu.memory import DataMemory, FlatMemory
from repro.cpu.semantics import MEM_SIZES, SIGNED_LOADS
from repro.cpu.state import RegisterFile
from repro.errors import SimulationError
from repro.engine import EngineCapabilities, ExecutionEngine, register_engine
from repro.isa.instructions import DecodedInstr, decode
from repro.isa.program import Program
from repro.sim import get_session

_MASK = 0xFFFFFFFF
_SIGN_BIT = 0x80000000
_TWO32 = 0x100000000

#: mnemonics that end a basic block (control transfer or environment call
#: that must observe an exact cycle count)
TERMINATORS = frozenset({
    "jal", "jalr", "beq", "bne", "blt", "bge", "bltu", "bgeu",
    "ebreak", "trans_bnn", "trigger_bnn",
})

#: cap on body instructions folded into one superblock; bounds compile
#: time and memory for pathological jump chains
MAX_SUPERBLOCK_BODY = 4096

_BodyFn = Callable[[List[int]], None]
_TermFn = Callable[[List[int]], Tuple[int, Optional[str]]]


class _Block:
    """One compiled superblock: jump-folded body + one terminator."""

    __slots__ = ("start_pc", "term_pc", "pcs", "body", "body_names",
                 "n_body", "n_reads", "n_writes", "terminator", "counts")

    def __init__(self, start_pc: int, term_pc: int, pcs: List[int],
                 body: List[_BodyFn], body_names: List[str], n_reads: int,
                 n_writes: int, terminator: _TermFn,
                 term_name: Optional[str]):
        self.start_pc = start_pc
        self.term_pc = term_pc
        # pcs[k] is the PC of body op k; pcs[n_body] is the terminator's
        # PC — with folded jumps the body is no longer straight-line, so
        # partial commits resume from this table instead of start_pc + 4k
        self.pcs = tuple(pcs) + (term_pc,)
        self.body = body
        self.body_names = body_names
        self.n_body = len(body)
        self.n_reads = n_reads
        self.n_writes = n_writes
        self.terminator = terminator
        # mnemonic histogram of one full execution (body + terminator);
        # flushed lazily per (block, repeat count) at the end of a run
        self.counts = Counter(body_names)
        if term_name is not None:
            self.counts[term_name] += 1


def _signed(value: int) -> int:
    return value - _TWO32 if value >= _SIGN_BIT else value


class FastCPU:
    """Basic-block RV32I interpreter, architecturally identical to
    :class:`~repro.cpu.functional.FunctionalCPU`."""

    def __init__(
        self,
        program: Program,
        memory: Optional[DataMemory] = None,
        env: Optional[CoreEnv] = None,
        pc: Optional[int] = None,
    ):
        self.program = program
        self.memory = memory if memory is not None else FlatMemory()
        self.env = env if env is not None else CoreEnv()
        self.regs = RegisterFile()
        self.pc = program.base if pc is None else pc
        self.stats = ExecStats()
        self._blocks: dict = {}

    # -- block compiler ---------------------------------------------------
    @property
    def cached_blocks(self) -> int:
        """Number of basic blocks compiled so far (decode-cache size)."""
        return len(self._blocks)

    def _compile_body(self, instr: DecodedInstr, pc: int) -> _BodyFn:
        """One straight-line instruction as a closure over the register list.

        Every write keeps the register-file invariant (unsigned 32-bit
        values), matching :class:`~repro.cpu.state.RegisterFile.write`.
        """
        name = instr.name
        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm

        if name in MEM_SIZES:
            return self._compile_mem(instr)
        if name == "mv_neu":
            env = self.env

            def fn(r, _w=env.write_transition_neuron):
                _w(rd, r[rs1])
            return fn
        if rd == 0:  # architectural no-op, still costs a cycle
            return lambda r: None

        if name == "addi":
            return lambda r: r.__setitem__(rd, (r[rs1] + imm) & _MASK)
        if name == "add":
            return lambda r: r.__setitem__(rd, (r[rs1] + r[rs2]) & _MASK)
        if name == "sub":
            return lambda r: r.__setitem__(rd, (r[rs1] - r[rs2]) & _MASK)
        if name == "lui":
            const = imm & _MASK
            return lambda r: r.__setitem__(rd, const)
        if name == "auipc":
            const = (pc + imm) & _MASK  # folded: pc is known at compile time
            return lambda r: r.__setitem__(rd, const)
        if name in ("andi", "ori", "xori"):
            uimm = imm & _MASK
            if name == "andi":
                return lambda r: r.__setitem__(rd, r[rs1] & uimm)
            if name == "ori":
                return lambda r: r.__setitem__(rd, r[rs1] | uimm)
            return lambda r: r.__setitem__(rd, r[rs1] ^ uimm)
        if name == "and":
            return lambda r: r.__setitem__(rd, r[rs1] & r[rs2])
        if name == "or":
            return lambda r: r.__setitem__(rd, r[rs1] | r[rs2])
        if name == "xor":
            return lambda r: r.__setitem__(rd, r[rs1] ^ r[rs2])
        if name == "slti":
            return lambda r: r.__setitem__(rd, 1 if _signed(r[rs1]) < imm else 0)
        if name == "sltiu":
            uimm = imm & _MASK
            return lambda r: r.__setitem__(rd, 1 if r[rs1] < uimm else 0)
        if name == "slt":
            return lambda r: r.__setitem__(
                rd, 1 if _signed(r[rs1]) < _signed(r[rs2]) else 0)
        if name == "sltu":
            return lambda r: r.__setitem__(rd, 1 if r[rs1] < r[rs2] else 0)
        if name == "slli":
            sh = imm & 0x1F
            return lambda r: r.__setitem__(rd, (r[rs1] << sh) & _MASK)
        if name == "srli":
            sh = imm & 0x1F
            return lambda r: r.__setitem__(rd, r[rs1] >> sh)
        if name == "srai":
            sh = imm & 0x1F
            return lambda r: r.__setitem__(rd, (_signed(r[rs1]) >> sh) & _MASK)
        if name == "sll":
            return lambda r: r.__setitem__(rd, (r[rs1] << (r[rs2] & 0x1F)) & _MASK)
        if name == "srl":
            return lambda r: r.__setitem__(rd, r[rs1] >> (r[rs2] & 0x1F))
        if name == "sra":
            return lambda r: r.__setitem__(
                rd, (_signed(r[rs1]) >> (r[rs2] & 0x1F)) & _MASK)
        if name == "mul":
            return lambda r: r.__setitem__(
                rd, (_signed(r[rs1]) * _signed(r[rs2])) & _MASK)
        raise SimulationError(f"no fast-path semantics for {name!r}")

    def _compile_mem(self, instr: DecodedInstr) -> _BodyFn:
        name = instr.name
        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
        size = MEM_SIZES[name]
        signed = name in SIGNED_LOADS
        env = self.env
        mem = self.memory

        if name == "lw_l2":
            def fn(r):
                value = env.l2_memory().load((r[rs1] + imm) & _MASK, 4)
                env.l2_reads += 1
                if rd:
                    r[rd] = value & _MASK
            return fn
        if name == "sw_l2":
            def fn(r):
                env.l2_memory().store((r[rs1] + imm) & _MASK, r[rs2], 4)
                env.l2_writes += 1
            return fn
        if instr.spec.is_load:
            if rd:
                def fn(r, _load=mem.load):
                    r[rd] = _load((r[rs1] + imm) & _MASK, size, signed) & _MASK
            else:
                def fn(r, _load=mem.load):
                    _load((r[rs1] + imm) & _MASK, size, signed)
            return fn

        def fn(r, _store=mem.store):
            _store((r[rs1] + imm) & _MASK, r[rs2], size)
        return fn

    def _compile_terminator(self, instr: DecodedInstr,
                            pc: int) -> Tuple[_TermFn, str]:
        name = instr.name
        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
        fall = (pc + 4) & _MASK

        if name == "jal":
            tgt = (pc + imm) & _MASK
            if rd:
                def term(r):
                    r[rd] = fall
                    return tgt, None
            else:
                def term(r):
                    return tgt, None
        elif name == "jalr":
            if rd:
                def term(r):
                    # target from the *old* rs1 even when rd == rs1
                    tgt = (r[rs1] + imm) & 0xFFFFFFFE
                    r[rd] = fall
                    return tgt, None
            else:
                def term(r):
                    return (r[rs1] + imm) & 0xFFFFFFFE, None
        elif name == "beq":
            tgt = (pc + imm) & _MASK

            def term(r):
                return (tgt if r[rs1] == r[rs2] else fall), None
        elif name == "bne":
            tgt = (pc + imm) & _MASK

            def term(r):
                return (tgt if r[rs1] != r[rs2] else fall), None
        elif name == "blt":
            tgt = (pc + imm) & _MASK

            def term(r):
                return (tgt if _signed(r[rs1]) < _signed(r[rs2]) else fall), None
        elif name == "bge":
            tgt = (pc + imm) & _MASK

            def term(r):
                return (tgt if _signed(r[rs1]) >= _signed(r[rs2]) else fall), None
        elif name == "bltu":
            tgt = (pc + imm) & _MASK

            def term(r):
                return (tgt if r[rs1] < r[rs2] else fall), None
        elif name == "bgeu":
            tgt = (pc + imm) & _MASK

            def term(r):
                return (tgt if r[rs1] >= r[rs2] else fall), None
        elif name == "ebreak":
            def term(r):
                return fall, "halt"
        elif name in ("trans_bnn", "trigger_bnn"):
            # env.record must see the cycle count *before* this instruction;
            # body stats are committed before the terminator runs, so
            # stats.cycles is exact here even with bulk accounting.
            env = self.env
            stats = self.stats
            stop = "trans_bnn" if name == "trans_bnn" else None

            def term(r):
                env.record(name, stats.cycles, pc, imm)
                return fall, stop
        else:  # pragma: no cover - TERMINATORS covers exactly these names
            raise SimulationError(f"{name!r} is not a terminator")
        return term, name

    def _build(self, start_pc: int) -> _Block:
        """Decode forward from ``start_pc`` until a terminator and compile.

        Unconditional ``jal`` jumps are folded into the body (the link
        register write becomes a body closure and decoding continues at
        the target), growing basic blocks into superblocks.  Folding
        stops — leaving ``jal`` as an ordinary terminator — when the
        target was already decoded into this trace (a jump cycle), or
        when the body reaches :data:`MAX_SUPERBLOCK_BODY`.
        """
        body: List[_BodyFn] = []
        names: List[str] = []
        pcs: List[int] = []
        n_reads = n_writes = 0
        pc = start_pc
        visited = {start_pc}
        while True:
            try:
                instr = decode(self.program.word_at(pc))
            except IndexError as exc:
                # fetching off the program raises exactly like the
                # functional model (SimulationError wrapping the message)
                message = str(exc)

                def term(r, _msg=message):
                    raise SimulationError(_msg)
                term_name = None
                break
            except Exception as exc:
                exc_type, exc_args = type(exc), exc.args

                def term(r, _t=exc_type, _a=exc_args):
                    raise _t(*_a)
                term_name = None
                break
            if instr.name == "jal":
                tgt = (pc + instr.imm) & _MASK
                if tgt not in visited and len(body) < MAX_SUPERBLOCK_BODY:
                    rd = instr.rd
                    fall = (pc + 4) & _MASK
                    if rd:
                        body.append(
                            lambda r, _rd=rd, _f=fall: r.__setitem__(_rd, _f))
                    else:
                        body.append(lambda r: None)
                    names.append("jal")
                    pcs.append(pc)
                    pc = tgt
                    visited.add(pc)
                    continue
            if instr.name in TERMINATORS:
                term, term_name = self._compile_terminator(instr, pc)
                break
            body.append(self._compile_body(instr, pc))
            names.append(instr.name)
            pcs.append(pc)
            if instr.spec.is_load:
                n_reads += 1
            elif instr.spec.is_store:
                n_writes += 1
            pc += 4
            visited.add(pc)
        block = _Block(start_pc, pc, pcs, body, names, n_reads, n_writes,
                       term, term_name)
        self._blocks[start_pc] = block
        return block

    # -- execution --------------------------------------------------------
    def _commit_partial(self, block: _Block, executed: int) -> None:
        """Account for the first ``executed`` body instructions of a block
        (exception or step-limit path)."""
        stats = self.stats
        stats.instructions += executed
        stats.cycles += executed
        names = block.body_names[:executed]
        stats.instr_counts.update(names)
        for name in names:
            if name in MEM_SIZES:
                if name[0] == "l":
                    stats.mem_reads += 1
                else:
                    stats.mem_writes += 1

    def run(self, max_steps: int = DEFAULT_MAX_STEPS) -> RunResult:
        """Run until halt / mode switch / step limit.

        Mirrors the run's :class:`ExecStats` growth into the session
        :class:`~repro.sim.StatsRegistry` under ``cpu.fastpath.*``.
        """
        before = self.stats.scalars()
        stats = self.stats
        regs = self.regs._regs
        blocks = self._blocks
        pending: dict = {}  # block -> full executions (lazy histogram)
        remaining = max_steps
        reason = "max_cycles"
        try:
            while True:
                pc = self.pc
                block = blocks.get(pc)
                if block is None:
                    block = self._build(pc)
                n_body = block.n_body
                if remaining <= n_body:
                    # step limit lands inside the body: resume from the
                    # per-op PC table (the body may span folded jumps)
                    executed = 0
                    try:
                        for fn in block.body[:remaining]:
                            fn(regs)
                            executed += 1
                    finally:
                        self._commit_partial(block, executed)
                        self.pc = block.pcs[executed]
                    break
                executed = 0
                try:
                    for fn in block.body:
                        fn(regs)
                        executed += 1
                except BaseException:
                    self._commit_partial(block, executed)
                    self.pc = block.pcs[executed]
                    raise
                stats.instructions += n_body
                stats.cycles += n_body
                stats.mem_reads += block.n_reads
                stats.mem_writes += block.n_writes
                try:
                    next_pc, stop = block.terminator(regs)
                except BaseException:
                    stats.instr_counts.update(block.body_names)
                    self.pc = block.term_pc
                    raise
                stats.instructions += 1
                stats.cycles += 1
                pending[block] = pending.get(block, 0) + 1
                self.pc = next_pc
                remaining -= n_body + 1
                if stop is not None:
                    reason = stop
                    break
                if remaining <= 0:
                    break
        finally:
            counts = stats.instr_counts
            for block, times in pending.items():
                for name, count in block.counts.items():
                    counts[name] += count * times
        delta = stats.delta(before)
        registry = get_session().stats
        scope = registry.scope("cpu.fastpath")
        scope.incr("runs")
        scope.incr_many(delta)
        registry.emit("cpu.run", simulator="fastpath", stop_reason=reason,
                      **delta)
        return RunResult(stats=stats, stop_reason=reason, pc=self.pc,
                         env=self.env)


def run_fastpath(
    program: Program,
    memory: Optional[DataMemory] = None,
    env: Optional[CoreEnv] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
):
    """Convenience wrapper: build a :class:`FastCPU`, run it, return it.

    Returns ``(cpu, result)`` so callers can inspect registers and memory.
    """
    cpu = FastCPU(program, memory=memory, env=env)
    result = cpu.run(max_steps=max_steps)
    return cpu, result


@register_engine
class FastEngine(BatchedBNNHalf, ExecutionEngine):
    """The ``fast`` engine: :class:`FastCPU` + bit-packed BNN kernels.

    CPU half registered here; BNN half provided by
    :class:`~repro.bnn.batched.BatchedBNNHalf`.  Instruction-accurate
    with single-cycle timing — the pipeline stays the timing oracle.
    """

    name = "fast"
    description = ("basic-block interpreter (single-cycle timing) and "
                   "bit-packed whole-batch XNOR-popcount BNN kernels")
    capabilities = EngineCapabilities(
        timing_accurate=False, functional=True, batched=True, sharded=False,
        phase_attribution=True)

    def create_cpu(self, program: Program,
                   memory: Optional[DataMemory] = None,
                   env: Optional[CoreEnv] = None, *,
                   prefer_functional: bool = False) -> FastCPU:
        # prefer_functional is moot: FastCPU *is* the functional engine
        return FastCPU(program, memory=memory, env=env)

    def run_program(self, program: Program, *,
                    limit: Optional[int] = None,
                    memory: Optional[DataMemory] = None,
                    env: Optional[CoreEnv] = None,
                    prefer_functional: bool = False):
        cpu = self.create_cpu(program, memory=memory, env=env)
        result = cpu.run() if limit is None else cpu.run(max_steps=limit)
        return cpu, result
