"""Functional (instruction-accurate) RV32I simulator.

This is the golden model: one instruction per step, no timing.  The
cycle-accurate pipeline in :mod:`repro.cpu.pipeline` is validated against it
(same architectural results, different cycle counts).
"""

from __future__ import annotations

from typing import Optional

from repro.cpu.env import CoreEnv, ExecStats, RunResult
from repro.cpu.memory import DataMemory, FlatMemory
from repro.cpu.semantics import MEM_SIZES, SIGNED_LOADS, execute
from repro.cpu.state import RegisterFile
from repro.errors import SimulationError
from repro.isa.instructions import DecodedInstr, decode
from repro.isa.program import Program
from repro.sim import get_session

DEFAULT_MAX_STEPS = 50_000_000


class FunctionalCPU:
    """Single-step RV32I interpreter with NCPU extension support."""

    def __init__(
        self,
        program: Program,
        memory: Optional[DataMemory] = None,
        env: Optional[CoreEnv] = None,
        pc: Optional[int] = None,
    ):
        self.program = program
        self.memory = memory if memory is not None else FlatMemory()
        self.env = env if env is not None else CoreEnv()
        self.regs = RegisterFile()
        self.pc = program.base if pc is None else pc
        self.stats = ExecStats()
        self._decode_cache = {}

    # ------------------------------------------------------------------
    def _fetch(self, pc: int) -> DecodedInstr:
        cached = self._decode_cache.get(pc)
        if cached is not None:
            return cached
        try:
            word = self.program.word_at(pc)
        except IndexError as exc:
            raise SimulationError(str(exc)) from exc
        instr = decode(word)
        self._decode_cache[pc] = instr
        return instr

    def step(self) -> Optional[str]:
        """Execute one instruction; return a stop reason or ``None``."""
        pc = self.pc
        instr = self._fetch(pc)
        name = instr.name

        rs1_val = self.regs.read(instr.rs1)
        rs2_val = self.regs.read(instr.rs2)
        outcome = execute(instr, rs1_val, rs2_val, pc)

        stop: Optional[str] = None
        if name in MEM_SIZES:
            size = MEM_SIZES[name]
            target = self.env.l2_memory() if name.endswith("_l2") else self.memory
            if instr.spec.is_load:
                value = target.load(outcome.alu, size, signed=name in SIGNED_LOADS)
                self.regs.write(instr.rd, value)
                self.stats.mem_reads += 1
                if name.endswith("_l2"):
                    self.env.l2_reads += 1
            else:
                target.store(outcome.alu, rs2_val, size)
                self.stats.mem_writes += 1
                if name.endswith("_l2"):
                    self.env.l2_writes += 1
        elif name == "ebreak":
            stop = "halt"
        elif name == "trans_bnn":
            self.env.record("trans_bnn", self.stats.cycles, pc, instr.imm)
            stop = "trans_bnn"
        elif name == "trigger_bnn":
            self.env.record("trigger_bnn", self.stats.cycles, pc, instr.imm)
        elif name == "mv_neu":
            self.env.write_transition_neuron(instr.rd, outcome.alu)
        elif instr.spec.writes_rd:
            self.regs.write(instr.rd, outcome.alu)

        self.pc = outcome.target if outcome.taken else pc + 4
        self.stats.instructions += 1
        self.stats.cycles += 1  # single-cycle model
        self.stats.instr_counts[name] += 1
        return stop

    def run(self, max_steps: int = DEFAULT_MAX_STEPS) -> RunResult:
        """Run until halt / mode switch / step limit.

        Mirrors the run's :class:`ExecStats` growth into the session
        :class:`~repro.sim.StatsRegistry` under ``cpu.functional.*``.
        """
        before = self.stats.scalars()
        stop = None
        for _ in range(max_steps):
            stop = self.step()
            if stop is not None:
                break
        reason = stop if stop is not None else "max_cycles"
        delta = self.stats.delta(before)
        registry = get_session().stats
        scope = registry.scope("cpu.functional")
        scope.incr("runs")
        scope.incr_many(delta)
        registry.emit("cpu.run", simulator="functional", stop_reason=reason,
                      **delta)
        return RunResult(stats=self.stats, stop_reason=reason, pc=self.pc,
                         env=self.env)


def run_functional(
    program: Program,
    memory: Optional[DataMemory] = None,
    env: Optional[CoreEnv] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
):
    """Convenience wrapper: build a :class:`FunctionalCPU`, run it, return it.

    Returns ``(cpu, result)`` so callers can inspect registers and memory.
    """
    cpu = FunctionalCPU(program, memory=memory, env=env)
    result = cpu.run(max_steps=max_steps)
    return cpu, result
