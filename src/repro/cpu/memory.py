"""Data memory interface used by the CPU simulators.

The simulators only require the small protocol defined by
:class:`DataMemory`; :class:`FlatMemory` is the simple dense implementation
used in tests and standalone runs, while :mod:`repro.mem` provides the banked
NCPU memory system that implements the same protocol.
"""

from __future__ import annotations

from typing import Dict, Iterable, Protocol, runtime_checkable

from repro.errors import MemoryError_
from repro.isa.encoding import sign_extend, to_unsigned32


@runtime_checkable
class DataMemory(Protocol):
    """Byte-addressable little-endian memory."""

    def load(self, addr: int, size: int, signed: bool = False) -> int:
        """Read ``size`` bytes (1, 2 or 4) at ``addr``."""

    def store(self, addr: int, value: int, size: int) -> None:
        """Write the low ``size`` bytes of ``value`` at ``addr``."""


def check_access(addr: int, size: int) -> None:
    if size not in (1, 2, 4):
        raise MemoryError_(f"unsupported access size {size}")
    if addr < 0:
        raise MemoryError_(f"negative address {addr:#x}")
    if addr % size:
        raise MemoryError_(f"misaligned {size}-byte access at {addr:#x}")


class FlatMemory:
    """A dense little-endian memory of ``size`` bytes starting at ``base``."""

    def __init__(self, size: int = 1 << 20, base: int = 0):
        self.base = base
        self.size = size
        self._bytes = bytearray(size)
        self.load_count = 0
        self.store_count = 0

    def _offset(self, addr: int, size: int) -> int:
        offset = addr - self.base
        if not 0 <= offset <= self.size - size:
            raise MemoryError_(
                f"address {addr:#x} outside memory [{self.base:#x}, {self.base + self.size:#x})"
            )
        return offset

    def load(self, addr: int, size: int, signed: bool = False) -> int:
        check_access(addr, size)
        offset = self._offset(addr, size)
        self.load_count += 1
        value = int.from_bytes(self._bytes[offset:offset + size], "little")
        if signed:
            value = sign_extend(value, 8 * size)
        return value

    def store(self, addr: int, value: int, size: int) -> None:
        check_access(addr, size)
        offset = self._offset(addr, size)
        self.store_count += 1
        self._bytes[offset:offset + size] = (to_unsigned32(value) & ((1 << (8 * size)) - 1)) \
            .to_bytes(size, "little")

    # convenience helpers -------------------------------------------------
    def load_word(self, addr: int) -> int:
        return self.load(addr, 4)

    def store_word(self, addr: int, value: int) -> None:
        self.store(addr, value, 4)

    def write_words(self, addr: int, values: Iterable[int]) -> None:
        for index, value in enumerate(values):
            self.store(addr + 4 * index, value, 4)

    def read_words(self, addr: int, count: int):
        return [self.load(addr + 4 * i, 4) for i in range(count)]

    def write_bytes(self, addr: int, data: bytes) -> None:
        offset = self._offset(addr, 1)
        if offset + len(data) > self.size:
            raise MemoryError_("byte write runs off the end of memory")
        self._bytes[offset:offset + len(data)] = data

    def load_dict(self, words: Dict[int, int]) -> None:
        for addr, value in words.items():
            self.store(addr, value, 4)
