"""Cycle-accurate 5-stage in-order RV32I pipeline.

Models the paper's in-house Rocket-like core (section IV.A) that the NCPU
emulates on its neural layers:

* stages IF, ID, EX, MEM, WB (NeuroPC/NeuroIF, NeuroID, NeuroEX, NeuroMEM, WB),
* full operand forwarding from EX/MEM and MEM/WB into EX,
* a one-cycle load-use interlock,
* all control transfers resolved in EX with the target wired back to IF
  (two squashed slots per taken branch/jump — paper Fig 3),
* the NCPU custom instructions commit their side effects at WB.

Architectural results match :class:`repro.cpu.functional.FunctionalCPU`
exactly; only the cycle accounting differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpu.env import CoreEnv, ExecStats, RunResult
from repro.cpu.memory import DataMemory, FlatMemory
from repro.cpu.semantics import MEM_SIZES, SIGNED_LOADS, execute
from repro.cpu.state import RegisterFile
from repro.cpu.trace import PipelineTrace
from repro.errors import SimulationError
from repro.isa.instructions import DecodedInstr, decode
from repro.isa.program import Program
from repro.sim import get_session

DEFAULT_MAX_CYCLES = 100_000_000

STAGES = ("IF", "ID", "EX", "MEM", "WB")


@dataclass
class _IFID:
    pc: int
    word: int


@dataclass
class _IDEX:
    pc: int
    instr: DecodedInstr


@dataclass
class _EXMEM:
    pc: int
    instr: DecodedInstr
    alu: int
    store_val: int


@dataclass
class _MEMWB:
    pc: int
    instr: DecodedInstr
    value: int


class PipelinedCPU:
    """The cycle-accurate 5-stage pipeline simulator."""

    def __init__(
        self,
        program: Program,
        memory: Optional[DataMemory] = None,
        env: Optional[CoreEnv] = None,
        pc: Optional[int] = None,
        forwarding: bool = True,
        trace: Optional["PipelineTrace"] = None,
    ):
        """``forwarding=False`` ablates the operand-forwarding network: every
        RAW hazard then resolves through the register file by stalling in ID
        (the design-choice ablation for the paper's data-forwarding paths,
        section IV.A)."""
        self.program = program
        self.memory = memory if memory is not None else FlatMemory()
        self.env = env if env is not None else CoreEnv()
        self.regs = RegisterFile()
        self.pc = program.base if pc is None else pc
        self.forwarding = forwarding
        self.trace = trace
        self.stats = ExecStats()

        self.if_id: Optional[_IFID] = None
        self.id_ex: Optional[_IDEX] = None
        self.ex_mem: Optional[_EXMEM] = None
        self.mem_wb: Optional[_MEMWB] = None

        self._fetch_enabled = True
        self._stop_reason: Optional[str] = None
        self._resume_pc = 0
        self._decode_cache = {}
        #: session tracer, resolved once per run(); None keeps the
        #: untraced per-cycle cost to a single attribute load + None check
        self._tracer = None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _decode(self, word: int) -> DecodedInstr:
        cached = self._decode_cache.get(word)
        if cached is None:
            cached = decode(word)
            self._decode_cache[word] = cached
        return cached

    def _forwarded(self, reg: int) -> int:
        """Operand value for EX with EX/MEM and MEM/WB forwarding."""
        if reg == 0:
            return 0
        if not self.forwarding:
            # ablated network: the interlock guarantees the register file
            # already holds the architectural value
            return self.regs.read(reg)
        fwd = self.ex_mem
        if fwd is not None and fwd.instr.spec.writes_rd and fwd.instr.rd == reg:
            if fwd.instr.spec.is_load:
                raise SimulationError(
                    "load-use hazard reached EX; interlock failed"
                )  # pragma: no cover - guarded by the interlock
            return fwd.alu
        fwd_wb = self.mem_wb
        if fwd_wb is not None and fwd_wb.instr.spec.writes_rd and fwd_wb.instr.rd == reg:
            return fwd_wb.value
        return self.regs.read(reg)

    def _consumer_sources(self):
        if self.if_id is None:
            return None
        consumer = self._decode(self.if_id.word)
        sources = set()
        if consumer.spec.reads_rs1 and consumer.rs1:
            sources.add(consumer.rs1)
        if consumer.spec.reads_rs2 and consumer.rs2:
            sources.add(consumer.rs2)
        return sources

    def _raw_hazard(self, new_ex_mem: Optional[_EXMEM],
                    new_mem_wb: Optional[_MEMWB]) -> bool:
        """True when the instruction in IF/ID must hold in decode.

        With forwarding, only the load-use case stalls (one bubble: the
        load's data forwards from MEM/WB).  Without forwarding (ablation),
        results are visible only through the register file, so the consumer
        waits until every in-flight producer has written back — two bubbles
        for a back-to-back dependency in this EX-read design.
        """
        sources = self._consumer_sources()
        if not sources:
            return False
        if self.forwarding:
            producing = new_ex_mem
            return (producing is not None and producing.instr.spec.is_load
                    and producing.instr.rd in sources)
        for latch in (new_ex_mem, new_mem_wb):
            if (latch is not None and latch.instr.spec.writes_rd
                    and latch.instr.rd in sources):
                return True
        return False

    # ------------------------------------------------------------------
    # one clock cycle
    # ------------------------------------------------------------------
    def _cycle(self) -> None:
        self.stats.cycles += 1

        if self.trace is not None:
            fetch_pc = self.pc if self._fetch_enabled else None
            self.trace.capture(self.stats.cycles, {
                "IF": fetch_pc,
                "ID": self.if_id.pc if self.if_id else None,
                "EX": self.id_ex.pc if self.id_ex else None,
                "MEM": self.ex_mem.pc if self.ex_mem else None,
                "WB": self.mem_wb.pc if self.mem_wb else None,
            })

        tracer = self._tracer
        if tracer is not None:
            tracer.cpu_cycle(
                self.stats.cycles,
                IF=self.pc if self._fetch_enabled else None,
                ID=self.if_id.pc if self.if_id else None,
                EX=self.id_ex.pc if self.id_ex else None,
                MEM=self.ex_mem.pc if self.ex_mem else None,
                WB=self.mem_wb.pc if self.mem_wb else None,
                wb_name=self.mem_wb.instr.name if self.mem_wb else None,
            )

        # ---- WB -------------------------------------------------------
        wb = self.mem_wb
        if wb is not None:
            self.stats.stage_busy["WB"] += 1
            instr = wb.instr
            name = instr.name
            if instr.spec.writes_rd:
                self.regs.write(instr.rd, wb.value)
            elif name == "mv_neu":
                self.env.write_transition_neuron(instr.rd, wb.value)
            elif name == "trigger_bnn":
                self.env.record("trigger_bnn", self.stats.cycles, wb.pc, instr.imm)
            self.stats.instructions += 1
            self.stats.instr_counts[name] += 1
            if name == "ebreak":
                self._stop_reason = "halt"
                self._resume_pc = wb.pc + 4
                return
            if name == "trans_bnn":
                self.env.record("trans_bnn", self.stats.cycles, wb.pc, instr.imm)
                self._stop_reason = "trans_bnn"
                self._resume_pc = wb.pc + 4
                return

        # ---- MEM ------------------------------------------------------
        new_mem_wb: Optional[_MEMWB] = None
        mem = self.ex_mem
        if mem is not None:
            self.stats.stage_busy["MEM"] += 1
            instr = mem.instr
            name = instr.name
            value = mem.alu
            if name in MEM_SIZES:
                size = MEM_SIZES[name]
                target = self.env.l2_memory() if name.endswith("_l2") else self.memory
                if instr.spec.is_load:
                    value = target.load(mem.alu, size, signed=name in SIGNED_LOADS)
                    self.stats.mem_reads += 1
                    if name.endswith("_l2"):
                        self.env.l2_reads += 1
                else:
                    target.store(mem.alu, mem.store_val, size)
                    self.stats.mem_writes += 1
                    if name.endswith("_l2"):
                        self.env.l2_writes += 1
            new_mem_wb = _MEMWB(pc=mem.pc, instr=instr, value=value)

        # ---- EX -------------------------------------------------------
        new_ex_mem: Optional[_EXMEM] = None
        redirect: Optional[int] = None
        ex = self.id_ex
        if ex is not None:
            self.stats.stage_busy["EX"] += 1
            instr = ex.instr
            rs1_val = self._forwarded(instr.rs1) if instr.spec.reads_rs1 else 0
            rs2_val = self._forwarded(instr.rs2) if instr.spec.reads_rs2 else 0
            outcome = execute(instr, rs1_val, rs2_val, ex.pc)
            alu = outcome.alu
            if instr.name == "mv_neu":
                alu = rs1_val
            new_ex_mem = _EXMEM(pc=ex.pc, instr=instr, alu=alu, store_val=rs2_val)
            if outcome.taken:
                redirect = outcome.target

        # latches EX and MEM produced this cycle become visible next cycle
        self.ex_mem = new_ex_mem
        self.mem_wb = new_mem_wb

        if redirect is not None:
            # Squash the two younger slots (IF/ID and this cycle's fetch)
            # and steer the PC to the branch target: a 2-cycle penalty.
            self.stats.flushes += 2
            if tracer is not None:
                tracer.instant("cpu.flush", track="cpu.pipeline",
                               ts=self.stats.cycles, cat="cpu",
                               cause="control", pc=ex.pc if ex else None,
                               target=redirect, squashed=2)
            self.if_id = None
            self.id_ex = None
            self.pc = redirect
            self._fetch_enabled = True
            return

        # ---- ID -------------------------------------------------------
        if self._raw_hazard(new_ex_mem, new_mem_wb):
            self.stats.stalls += 1
            if tracer is not None:
                tracer.instant("cpu.stall", track="cpu.pipeline",
                               ts=self.stats.cycles, cat="cpu",
                               cause=("load_use" if self.forwarding
                                      else "raw_interlock"),
                               pc=self.if_id.pc if self.if_id else None)
            self.id_ex = None  # bubble into EX; IF/ID and PC hold
            return

        if self.if_id is not None:
            self.stats.stage_busy["ID"] += 1
            instr = self._decode(self.if_id.word)
            self.id_ex = _IDEX(pc=self.if_id.pc, instr=instr)
            self.if_id = None
            if instr.name in ("ebreak", "trans_bnn"):
                self._fetch_enabled = False
        else:
            self.id_ex = None

        # ---- IF -------------------------------------------------------
        if self._fetch_enabled:
            try:
                word = self.program.word_at(self.pc)
            except IndexError as exc:
                # Speculative fetch past the program end is fine while an
                # older in-flight control transfer may still redirect the PC;
                # it is an error only once the pipeline has fully drained.
                if (self.if_id is None and self.id_ex is None
                        and self.ex_mem is None and self.mem_wb is None):
                    raise SimulationError(
                        f"instruction fetch outside program: {exc}"
                    ) from exc
                return
            self.stats.stage_busy["IF"] += 1
            self.if_id = _IFID(pc=self.pc, word=word)
            self.pc += 4

    # ------------------------------------------------------------------
    def run(self, max_cycles: int = DEFAULT_MAX_CYCLES) -> RunResult:
        """Run until halt / mode switch / cycle limit.

        Completed runs mirror their :class:`ExecStats` growth into the
        session :class:`~repro.sim.StatsRegistry` under ``cpu.pipeline.*``
        and emit a ``cpu.run`` probe event.
        """
        before = self.stats.scalars()
        session = get_session()
        tracer = session.tracer
        self._tracer = tracer if tracer is not None and tracer.active else None
        while self._stop_reason is None and self.stats.cycles < max_cycles:
            self._cycle()
        reason = self._stop_reason or "max_cycles"
        pc = self._resume_pc if self._stop_reason else self.pc
        delta = self.stats.delta(before)
        registry = session.stats
        scope = registry.scope("cpu.pipeline")
        scope.incr("runs")
        scope.incr_many(delta)
        registry.emit("cpu.run", simulator="pipeline", stop_reason=reason,
                      **delta)
        return RunResult(stats=self.stats, stop_reason=reason, pc=pc, env=self.env)


def run_pipelined(
    program: Program,
    memory: Optional[DataMemory] = None,
    env: Optional[CoreEnv] = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
):
    """Build a :class:`PipelinedCPU`, run it, and return ``(cpu, result)``."""
    cpu = PipelinedCPU(program, memory=memory, env=env)
    result = cpu.run(max_cycles=max_cycles)
    return cpu, result
