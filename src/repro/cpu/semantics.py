"""Instruction execution semantics shared by the functional ISS and pipeline.

Keeping the EX-stage math in one place guarantees the cycle-accurate pipeline
and the golden-model ISS can never disagree about *what* an instruction does,
only about *when* it happens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isa.encoding import to_signed32, to_unsigned32
from repro.isa.instructions import DecodedInstr

#: bytes moved by each load/store mnemonic
MEM_SIZES = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4, "lw_l2": 4,
             "sb": 1, "sh": 2, "sw": 4, "sw_l2": 4}

#: loads that sign-extend their result
SIGNED_LOADS = frozenset({"lb", "lh"})


@dataclass(frozen=True)
class ExecOutcome:
    """Result of the EX stage for one instruction.

    Attributes:
        alu: the ALU output — the rd write value for ALU ops, the effective
            address for memory ops, the link value (pc+4) for jumps.
        taken: whether a control transfer redirects the PC.
        target: the redirect target when ``taken``.
    """

    alu: int
    taken: bool = False
    target: int = 0


def execute(instr: DecodedInstr, rs1_val: int, rs2_val: int, pc: int) -> ExecOutcome:
    """Compute the EX-stage outcome of ``instr`` given its operand values."""
    name = instr.name
    a = to_unsigned32(rs1_val)
    b = to_unsigned32(rs2_val)
    sa = to_signed32(a)
    sb = to_signed32(b)
    imm = instr.imm

    if name == "lui":
        return ExecOutcome(to_unsigned32(imm))
    if name == "auipc":
        return ExecOutcome(to_unsigned32(pc + imm))
    if name == "jal":
        return ExecOutcome(to_unsigned32(pc + 4), taken=True,
                           target=to_unsigned32(pc + imm))
    if name == "jalr":
        return ExecOutcome(to_unsigned32(pc + 4), taken=True,
                           target=to_unsigned32(a + imm) & ~1)

    if instr.spec.is_branch:
        taken = {
            "beq": a == b,
            "bne": a != b,
            "blt": sa < sb,
            "bge": sa >= sb,
            "bltu": a < b,
            "bgeu": a >= b,
        }[name]
        return ExecOutcome(0, taken=taken, target=to_unsigned32(pc + imm))

    if name in MEM_SIZES:
        return ExecOutcome(to_unsigned32(a + imm))

    if name in ("addi", "add"):
        rhs = imm if name == "addi" else b
        return ExecOutcome(to_unsigned32(a + rhs))
    if name == "sub":
        return ExecOutcome(to_unsigned32(a - b))
    if name in ("andi", "and"):
        rhs = to_unsigned32(imm) if name == "andi" else b
        return ExecOutcome(a & rhs)
    if name in ("ori", "or"):
        rhs = to_unsigned32(imm) if name == "ori" else b
        return ExecOutcome(a | rhs)
    if name in ("xori", "xor"):
        rhs = to_unsigned32(imm) if name == "xori" else b
        return ExecOutcome(a ^ rhs)
    if name in ("slti", "slt"):
        rhs = imm if name == "slti" else sb
        return ExecOutcome(1 if sa < rhs else 0)
    if name in ("sltiu", "sltu"):
        rhs = to_unsigned32(imm) if name == "sltiu" else b
        return ExecOutcome(1 if a < rhs else 0)
    if name in ("slli", "sll"):
        shamt = (imm if name == "slli" else b) & 0x1F
        return ExecOutcome(to_unsigned32(a << shamt))
    if name in ("srli", "srl"):
        shamt = (imm if name == "srli" else b) & 0x1F
        return ExecOutcome(a >> shamt)
    if name in ("srai", "sra"):
        shamt = (imm if name == "srai" else b) & 0x1F
        return ExecOutcome(to_unsigned32(sa >> shamt))
    if name == "mul":
        return ExecOutcome(to_unsigned32(sa * sb))

    if name in ("ebreak", "trans_bnn", "trigger_bnn"):
        return ExecOutcome(to_unsigned32(imm))
    if name == "mv_neu":
        # The register payload travels on the ALU output into the transition
        # neuron addressed by the rd field (paper Fig 5c).
        return ExecOutcome(a)

    raise SimulationError(f"no semantics for instruction {name!r}")
