"""Architectural state: register file and helpers."""

from __future__ import annotations

from typing import List

from repro.errors import SimulationError
from repro.isa.encoding import to_signed32, to_unsigned32


class RegisterFile:
    """The 32-entry RV32I integer register file; ``x0`` is hardwired to zero."""

    def __init__(self):
        self._regs: List[int] = [0] * 32

    def read(self, index: int) -> int:
        if not 0 <= index <= 31:
            raise SimulationError(f"register index {index} out of range")
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index <= 31:
            raise SimulationError(f"register index {index} out of range")
        if index != 0:
            self._regs[index] = to_unsigned32(value)

    def read_signed(self, index: int) -> int:
        return to_signed32(self.read(index))

    def snapshot(self) -> List[int]:
        return list(self._regs)

    def load_snapshot(self, values) -> None:
        if len(values) != 32:
            raise SimulationError("register snapshot must have 32 entries")
        self._regs = [to_unsigned32(v) for v in values]
        self._regs[0] = 0

    def __getitem__(self, index: int) -> int:
        return self.read(index)

    def __setitem__(self, index: int, value: int) -> None:
        self.write(index, value)

    def __repr__(self) -> str:
        nonzero = {f"x{i}": v for i, v in enumerate(self._regs) if v}
        return f"RegisterFile({nonzero})"
