"""Per-cycle pipeline occupancy tracing.

Attach a :class:`PipelineTrace` to a :class:`~repro.cpu.pipeline.PipelinedCPU`
to record which instruction (by PC) occupies each stage on every cycle —
the classic pipeline diagram.  Used by the microarchitecture tests to prove
stage-by-stage behaviour (fill, forwarding, stalls, squashes) and by
:func:`render_diagram` to draw it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

STAGES = ("IF", "ID", "EX", "MEM", "WB")


@dataclass
class CycleRecord:
    """Stage occupancy (PC per stage, None = bubble) for one cycle."""

    cycle: int
    stages: Dict[str, Optional[int]]

    def occupied(self) -> int:
        return sum(1 for pc in self.stages.values() if pc is not None)


@dataclass
class PipelineTrace:
    """Collects one :class:`CycleRecord` per simulated cycle."""

    records: List[CycleRecord] = field(default_factory=list)
    max_cycles: int = 100_000

    def capture(self, cycle: int, stages: Dict[str, Optional[int]]) -> None:
        if len(self.records) < self.max_cycles:
            self.records.append(CycleRecord(cycle=cycle, stages=dict(stages)))

    def __len__(self) -> int:
        return len(self.records)

    # -- queries used by the tests -----------------------------------------
    def stage_history(self, stage: str) -> List[Optional[int]]:
        return [record.stages[stage] for record in self.records]

    def journey(self, pc: int) -> Dict[str, List[int]]:
        """Stage -> cycles during which the instruction at ``pc`` sat there."""
        path: Dict[str, List[int]] = {stage: [] for stage in STAGES}
        for record in self.records:
            for stage, occupant in record.stages.items():
                if occupant == pc:
                    path[stage].append(record.cycle)
        return path

    def bubbles(self, stage: str) -> int:
        return sum(1 for pc in self.stage_history(stage) if pc is None)


def render_diagram(trace: PipelineTrace, first: int = 0,
                   count: int = 20) -> str:
    """Render the classic pipeline diagram: one row per cycle."""
    lines = ["cycle  " + "  ".join(f"{stage:>6}" for stage in STAGES)]
    for record in trace.records[first:first + count]:
        cells = []
        for stage in STAGES:
            pc = record.stages[stage]
            cells.append("     -" if pc is None else f"{pc:>6x}")
        lines.append(f"{record.cycle:>5}  " + "  ".join(cells))
    return "\n".join(lines)
