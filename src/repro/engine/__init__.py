"""Execution-engine protocol layer: one seam for every backend.

``repro.engine`` defines the formal contract an execution backend signs
(:class:`CPUEngine` / :class:`BNNEngine` protocols with an
ExecStats-compatible accounting contract and explicit capability flags)
and the name-keyed registry everything dispatches through.  The built-in
engines:

* ``accurate`` — scalar golden-model BNN path + cycle-accurate pipeline
  (:mod:`repro.engine.accurate`); the timing oracle.
* ``fast`` — basic-block interpreter (:mod:`repro.cpu.fastpath`) +
  bit-packed whole-batch XNOR-popcount kernels
  (:mod:`repro.bnn.batched`).
* ``parallel`` — the fast engine with whole-batch inference sharded
  across host processes (:mod:`repro.bnn.parallel`).

All engines are bit-identical on architectural results; only how fast
the *simulation* runs on the host (and whether cycle counts are
pipeline-accurate) differs.  Select one with ``SimConfig.engine``,
``--engine`` or ``REPRO_ENGINE``; resolve with :func:`resolve_engine`.
"""

from repro.engine.protocol import (
    BNNEngine,
    CPUEngine,
    EngineCapabilities,
    ExecutionEngine,
)
from repro.engine.registry import (
    PROVIDER_MODULES,
    engine_names,
    engine_table,
    ensure_known,
    get_engine,
    register_engine,
    resolve_engine,
)

__all__ = [
    "BNNEngine",
    "CPUEngine",
    "EngineCapabilities",
    "ExecutionEngine",
    "PROVIDER_MODULES",
    "engine_names",
    "engine_table",
    "ensure_known",
    "get_engine",
    "register_engine",
    "resolve_engine",
]
