"""The ``accurate`` engine: scalar golden-model and cycle-accurate paths.

This is the reference backend every other engine is differentially
pinned against.  Its CPU half runs the cycle-accurate 5-stage pipeline
(or the functional ISS when ``prefer_functional`` is set), so cycle
counts carry real stall/flush/hazard timing; its BNN half is the scalar
int32-matmul path on :class:`~repro.bnn.model.BNNModel`.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.engine.protocol import EngineCapabilities, ExecutionEngine
from repro.engine.registry import register_engine


@register_engine
class AccurateEngine(ExecutionEngine):
    """Scalar/cycle-accurate execution (the timing oracle)."""

    name = "accurate"
    description = ("cycle-accurate 5-stage pipeline (or functional ISS) "
                   "and scalar int32-matmul BNN inference")
    capabilities = EngineCapabilities(
        timing_accurate=True, functional=True, batched=False, sharded=False,
        phase_attribution=True)

    # -- CPU half ---------------------------------------------------------
    def create_cpu(self, program, memory=None, env=None, *,
                   prefer_functional: bool = False) -> Any:
        from repro.cpu import FunctionalCPU, PipelinedCPU

        cpu_class = FunctionalCPU if prefer_functional else PipelinedCPU
        return cpu_class(program, memory=memory, env=env)

    def run_program(self, program, *, limit: Optional[int] = None,
                    memory=None, env=None,
                    prefer_functional: bool = False) -> Tuple[Any, Any]:
        cpu = self.create_cpu(program, memory=memory, env=env,
                              prefer_functional=prefer_functional)
        if prefer_functional:
            result = cpu.run() if limit is None else cpu.run(max_steps=limit)
        else:
            result = cpu.run() if limit is None else cpu.run(max_cycles=limit)
        return cpu, result

    # -- BNN half ---------------------------------------------------------
    def scores(self, model, x_signs: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x_signs))
        return np.stack([model.scores(row) for row in x])

    def predict(self, model, x_signs: np.ndarray) -> np.ndarray:
        return model.predict_batch(np.asarray(x_signs))

    def hidden_forward(self, model, x_signs: np.ndarray) -> np.ndarray:
        return model.hidden_forward_batch(np.asarray(x_signs))
