"""Formal execution-engine protocols: the contract every backend signs.

An *execution engine* is one named backend that can run RV32I programs
(the :class:`CPUEngine` half) and whole-batch BNN inference (the
:class:`BNNEngine` half).  Engines are interchangeable by contract:

* **Architectural results are bit-identical.**  Registers, memory,
  predictions, logits and hidden activations must equal the golden
  models exactly — the differential equivalence suites pin this for
  every registered engine, not approximately but bit for bit.
* **ExecStats-compatible accounting.**  :meth:`CPUEngine.run_program`
  returns a :class:`~repro.cpu.env.RunResult` whose ``stats`` is a
  real :class:`~repro.cpu.env.ExecStats`: instruction counts, memory
  traffic, per-mnemonic histograms and stop reasons match the
  functional golden model.  Only the *meaning of cycle counts* may
  differ, and :attr:`EngineCapabilities.timing_accurate` says which.
* **BNN entry points never touch the session counters.**  Cycle/MAC
  accounting lives in the accelerator timing model
  (:meth:`~repro.bnn.accelerator.BNNAccelerator.batch_timing`) and is
  engine-independent; an engine's ``scores``/``predict``/
  ``hidden_forward`` compute pure functions of the model and inputs.
  Engines *may* emit probe events describing their own host-side
  execution (the ``parallel`` engine's ``bnn.parallel.*`` shard
  attribution) — events are observability, not accounting.

Concrete engines subclass :class:`ExecutionEngine` and register with
:func:`~repro.engine.registry.register_engine`; callers resolve them
through :func:`~repro.engine.registry.resolve_engine` and must never
branch on engine *names* (a guard test greps for exactly that).
"""

from __future__ import annotations

import dataclasses
from typing import (
    TYPE_CHECKING,
    Any,
    ClassVar,
    Dict,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # heavy imports stay runtime-lazy
    import numpy as np

    from repro.bnn.model import BNNModel
    from repro.cpu.env import CoreEnv, RunResult
    from repro.cpu.memory import DataMemory
    from repro.isa.program import Program


@dataclasses.dataclass(frozen=True)
class EngineCapabilities:
    """What one engine's numbers mean.

    * ``timing_accurate`` — CPU runs report cycle-accurate 5-stage
      pipeline timing (stalls, flushes, hazards).  Engines without it
      report functional single-cycle timing; the pipeline remains the
      sole timing oracle.
    * ``functional`` — architectural results are exact.  Every
      registered engine must set this: it is the registry's admission
      contract, and the differential suites enforce it.
    * ``batched`` — BNN inference flows through whole-batch bit-packed
      XNOR-popcount kernels instead of the scalar int32 matmul.
    * ``sharded`` — batched inference additionally fans out across host
      processes (with a serial fallback for small batches).
    * ``phase_attribution`` — the engine's runs can be split into the
      six-phase ``repro.obs`` vocabulary with exact sum-to-total cycle
      accounting (``repro attribute`` refuses engines without it).
    """

    timing_accurate: bool
    functional: bool
    batched: bool
    sharded: bool = False
    phase_attribution: bool = False

    def as_dict(self) -> Dict[str, bool]:
        """JSON-ready flag mapping (declaration order)."""
        return {field.name: getattr(self, field.name)
                for field in dataclasses.fields(self)}


@runtime_checkable
class CPUEngine(Protocol):
    """The program-execution half of an engine."""

    def create_cpu(self, program: "Program",
                   memory: Optional["DataMemory"] = None,
                   env: Optional["CoreEnv"] = None, *,
                   prefer_functional: bool = False) -> Any:
        """Build this engine's CPU simulator for ``program``."""

    def run_program(self, program: "Program", *,
                    limit: Optional[int] = None,
                    memory: Optional["DataMemory"] = None,
                    env: Optional["CoreEnv"] = None,
                    prefer_functional: bool = False
                    ) -> Tuple[Any, "RunResult"]:
        """Execute ``program`` to completion; ``(cpu, RunResult)``."""


@runtime_checkable
class BNNEngine(Protocol):
    """The whole-batch BNN inference half of an engine."""

    def scores(self, model: "BNNModel", x_signs: "np.ndarray") -> "np.ndarray":
        """Integer class scores ``(batch, n_classes)``."""

    def predict(self, model: "BNNModel", x_signs: "np.ndarray") -> "np.ndarray":
        """Argmax class predictions ``(batch,)``."""

    def hidden_forward(self, model: "BNNModel",
                       x_signs: "np.ndarray") -> "np.ndarray":
        """Sign activations after every layer (two-core chaining)."""


class ExecutionEngine:
    """Base class for registered engines; implements both protocols.

    Subclasses set :attr:`name`, :attr:`description` and
    :attr:`capabilities` as class attributes and override the halves
    they provide.  Unprovided entry points raise
    :class:`~repro.errors.SimulationError` naming the engine, so a
    partial backend fails loudly instead of silently falling back.
    """

    name: ClassVar[str] = ""
    description: ClassVar[str] = ""
    capabilities: ClassVar[EngineCapabilities]

    # -- CPU half ---------------------------------------------------------
    def create_cpu(self, program: "Program",
                   memory: Optional["DataMemory"] = None,
                   env: Optional["CoreEnv"] = None, *,
                   prefer_functional: bool = False) -> Any:
        from repro.errors import SimulationError

        raise SimulationError(
            f"engine {self.name!r} has no CPU execution half")

    def run_program(self, program: "Program", *,
                    limit: Optional[int] = None,
                    memory: Optional["DataMemory"] = None,
                    env: Optional["CoreEnv"] = None,
                    prefer_functional: bool = False
                    ) -> Tuple[Any, "RunResult"]:
        from repro.errors import SimulationError

        raise SimulationError(
            f"engine {self.name!r} has no CPU execution half")

    # -- BNN half ---------------------------------------------------------
    def scores(self, model: "BNNModel", x_signs: "np.ndarray") -> "np.ndarray":
        from repro.errors import SimulationError

        raise SimulationError(
            f"engine {self.name!r} has no BNN inference half")

    def predict(self, model: "BNNModel", x_signs: "np.ndarray") -> "np.ndarray":
        import numpy as np

        return np.argmax(self.scores(model, x_signs), axis=1)

    def hidden_forward(self, model: "BNNModel",
                       x_signs: "np.ndarray") -> "np.ndarray":
        from repro.errors import SimulationError

        raise SimulationError(
            f"engine {self.name!r} has no BNN inference half")

    # -- introspection ----------------------------------------------------
    def info(self) -> Dict[str, Any]:
        """JSON-ready identity block (shared by ``repro info`` and docs)."""
        return {
            "name": self.name,
            "description": self.description,
            "capabilities": self.capabilities.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = ",".join(key for key, value in
                         self.capabilities.as_dict().items() if value)
        return f"<{type(self).__name__} {self.name!r} [{flags}]>"
