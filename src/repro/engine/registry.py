"""Name-keyed engine registry: the single seam every dispatch site uses.

Backends register themselves with the :func:`register_engine` class
decorator; everything else — ``SimConfig`` validation, ``--engine``
choices, core construction, benchmarks — resolves engines through
:func:`get_engine` / :func:`resolve_engine` and never mentions a backend
by name in a branch.  Adding a backend therefore means writing one
decorated :class:`~repro.engine.protocol.ExecutionEngine` subclass in a
provider module; no core code changes.

Provider modules load lazily on first lookup (importing them at module
import time would cycle through ``repro.sim``), so importing
:mod:`repro.engine` stays cheap.
"""

from __future__ import annotations

import importlib
from typing import Any, Dict, List, Optional, Tuple, Type, Union

from repro.engine.protocol import EngineCapabilities, ExecutionEngine
from repro.errors import ConfigurationError

#: modules that define and register the built-in engines; imported on
#: first registry lookup.  Third-party providers can call
#: :func:`register_engine` directly at import time instead.
PROVIDER_MODULES = (
    "repro.engine.accurate",
    "repro.cpu.fastpath",
    "repro.bnn.parallel",
    "repro.bnn.vectorized",
)

_REGISTRY: Dict[str, ExecutionEngine] = {}
_providers_loaded = False


def _load_providers() -> None:
    global _providers_loaded
    if _providers_loaded:
        return
    _providers_loaded = True
    for module in PROVIDER_MODULES:
        importlib.import_module(module)


def register_engine(cls: Type[ExecutionEngine]) -> Type[ExecutionEngine]:
    """Class decorator: register ``cls()`` under ``cls.name``.

    The class must subclass :class:`ExecutionEngine`, carry a non-empty
    ``name`` and an :class:`EngineCapabilities` with ``functional=True``
    (the registry's admission contract: every engine produces exact
    architectural results).  Registering a second, different class under
    an existing name is an error; re-registering the same class (module
    reloads) is a no-op.
    """
    if not (isinstance(cls, type) and issubclass(cls, ExecutionEngine)):
        raise ConfigurationError(
            "register_engine expects an ExecutionEngine subclass, got "
            f"{cls!r}")
    name = getattr(cls, "name", "")
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"engine class {cls.__name__} must set a non-empty 'name'")
    capabilities = getattr(cls, "capabilities", None)
    if not isinstance(capabilities, EngineCapabilities):
        raise ConfigurationError(
            f"engine {name!r} must declare EngineCapabilities")
    if not capabilities.functional:
        raise ConfigurationError(
            f"engine {name!r} is not functional — every registered engine "
            "must produce exact architectural results")
    existing = _REGISTRY.get(name)
    if existing is not None and type(existing) is not cls:
        raise ConfigurationError(
            f"engine {name!r} registered twice "
            f"({type(existing).__name__} vs {cls.__name__})")
    _REGISTRY[name] = cls()
    return cls


def engine_names() -> Tuple[str, ...]:
    """All registered engine names, sorted."""
    _load_providers()
    return tuple(sorted(_REGISTRY))


def get_engine(name: str) -> ExecutionEngine:
    """The registered engine called ``name``.

    Raises :class:`~repro.errors.ConfigurationError` naming the
    registered engines, sorted, when ``name`` is unknown.
    """
    _load_providers()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def resolve_engine(engine: Union[ExecutionEngine, str, None] = None
                   ) -> ExecutionEngine:
    """Resolve ``engine`` to a registered engine object.

    An :class:`ExecutionEngine` instance passes through; a name looks up
    the registry; ``None`` follows the current session's
    ``SimConfig.engine``.
    """
    if isinstance(engine, ExecutionEngine):
        return engine
    if engine is None:
        from repro.sim.session import get_session

        engine = get_session().config.engine
    return get_engine(engine)


def ensure_known(name: str) -> str:
    """Validate ``name`` against the registry; returns it unchanged."""
    get_engine(name)
    return name


def engine_table() -> List[Dict[str, Any]]:
    """Sorted ``info()`` blocks of every registered engine.

    One serializer for ``repro info --json``, the docs engine table and
    the docs lint (``tools/check_docs.py``), so they cannot drift apart.
    """
    _load_providers()
    return [_REGISTRY[name].info() for name in sorted(_REGISTRY)]
