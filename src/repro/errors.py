"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class EncodingError(ReproError):
    """An instruction could not be encoded (bad field value or range)."""


class DecodingError(ReproError):
    """A 32-bit word is not a valid instruction in the supported ISA."""


class AssemblerError(ReproError):
    """Assembly source could not be translated into machine code."""

    def __init__(self, message, line_number=None, line_text=None):
        location = "" if line_number is None else f" (line {line_number}: {line_text!r})"
        super().__init__(f"{message}{location}")
        self.line_number = line_number
        self.line_text = line_text


class MemoryError_(ReproError):
    """A memory access fell outside the mapped address space."""


class SimulationError(ReproError):
    """The simulator reached an invalid state (bad PC, unmapped fetch, ...)."""


class ConfigurationError(ReproError):
    """A model was constructed with inconsistent parameters."""


class TrainingError(ReproError):
    """Neural network training failed to make progress or diverged."""


class ObservabilityError(ReproError):
    """A phase attribution violated its sum-to-total invariant."""
