"""Per-table/figure reproductions of the paper's evaluation.

Each module exposes ``run() -> ExperimentResult``; see
:mod:`repro.experiments.runner` for the run-all entry point and DESIGN.md
for the experiment index.
"""

from repro.experiments.common import ExperimentResult, Metric

__all__ = ["ExperimentResult", "Metric"]
