"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure — these quantify the *mechanisms* behind the headline
results:

1. **zero-latency switching** (section V.A): what the end-to-end gain loses
   when weight streaming serializes with the mode switch instead of hiding
   behind inference,
2. **operand forwarding** (section IV.A: "data forwarding paths have been
   added between NeuroEX and its earlier stages"): IPC on the MiBench
   kernels with the forwarding network ablated,
3. **DMA bandwidth**: sensitivity of the weight-streaming hiding to the
   bus width,
4. **cooperative chaining** (section VI.A): two cores in series vs one
   wrapping core on a deep model.
"""

from __future__ import annotations

import numpy as np

from repro.bnn import AcceleratorConfig, BNNAccelerator, BNNModel
from repro.core import NCPUSoC, SchedulerConfig, compare_end_to_end, items_for_fraction
from repro.cpu import FlatMemory, PipelinedCPU
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.isa import assemble
from repro.workloads import mibench


def _mibench_ipc(forwarding: bool) -> float:
    """Mean IPC across two representative kernels."""
    ipcs = []
    for name in ("sort", "fir"):
        rng = np.random.default_rng(0)
        memory = FlatMemory(size=1 << 17)
        if name == "sort":
            values = rng.integers(0, 10_000, size=32)
            memory.write_words(mibench.DATA, [int(v) for v in values])
            program = assemble(mibench.sort_asm(len(values)))
        else:
            samples = rng.integers(-100, 100, size=64)
            memory.write_words(mibench.DATA,
                               [int(v) & 0xFFFFFFFF for v in samples])
            memory.write_words(0x9200, mibench.FIR_TAPS)
            program = assemble(mibench.fir_asm(len(samples)))
        cpu = PipelinedCPU(program, memory=memory, forwarding=forwarding)
        result = cpu.run()
        ipcs.append(result.stats.ipc)
    return sum(ipcs) / len(ipcs)


@experiment("ablations")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Ablations",
        title="Design-choice ablations (mechanism checks, not a paper figure)",
    )

    # 1. zero-latency switching ------------------------------------------
    items = items_for_fraction(0.70, 4)
    stream = 1400  # the 4x100 model's non-resident weight words at 0.5 w/cyc
    enabled = compare_end_to_end(items, SchedulerConfig(
        switch_cycles=4, weight_stream_cycles=stream, zero_latency=True))
    disabled = compare_end_to_end(items, SchedulerConfig(
        switch_cycles=4, weight_stream_cycles=stream, zero_latency=False))
    result.add("improvement, zero-latency on", enabled.improvement * 100,
               unit="%")
    result.add("improvement, zero-latency off", disabled.improvement * 100,
               unit="%")
    result.add("switching scheme preserves gain",
               float(enabled.improvement > disabled.improvement), paper=1.0)

    # 2. forwarding network ------------------------------------------------
    ipc_with = _mibench_ipc(forwarding=True)
    ipc_without = _mibench_ipc(forwarding=False)
    result.add("MiBench IPC with forwarding", ipc_with)
    result.add("MiBench IPC without forwarding", ipc_without)
    result.add("forwarding IPC gain", (ipc_with / ipc_without - 1) * 100,
               unit="%")

    # 3. DMA bandwidth sensitivity ------------------------------------------
    model = BNNModel.paper_topology(input_size=256)
    for words_per_cycle in (0.25, 0.5, 1.0, 2.0):
        accelerator = BNNAccelerator(AcceleratorConfig(
            dma_words_per_cycle=words_per_cycle))
        timing = accelerator.batch_timing(model, 2)
        hidden = timing.total_cycles == max(
            timing.weight_stream_cycles,
            timing.latency_cycles + timing.interval_cycles)
        result.add(f"batch-2 cycles at {words_per_cycle} words/cycle DMA",
                   timing.total_cycles, unit="cycles")
        _ = hidden
    slow = BNNAccelerator(AcceleratorConfig(dma_words_per_cycle=0.25))
    fast = BNNAccelerator(AcceleratorConfig(dma_words_per_cycle=2.0))
    result.add("wider DMA shortens small batches",
               float(fast.batch_timing(model, 2).total_cycles
                     < slow.batch_timing(model, 2).total_cycles), paper=1.0)

    # 4. cooperative chaining -------------------------------------------------
    rng = np.random.default_rng(0)
    deep = BNNModel.random([48, 80, 80, 80, 80, 80, 6], rng)
    soc = NCPUSoC(n_cores=2)
    xs = np.where(rng.standard_normal((10, 48)) > 0, 1, -1).astype(np.int8)
    _, chained = soc.run_chained_inference(deep, xs)
    wrapped = BNNAccelerator().batch_timing(deep, 10, stream_weights=False)
    result.add("deep model, chained 2 cores", chained, unit="cycles")
    result.add("deep model, wrapped 1 core", wrapped.total_cycles,
               unit="cycles")
    result.add("chaining speedup", wrapped.total_cycles / chained, unit="x")
    result.notes = (
        "All four mechanisms behave as the paper argues: hiding the weight "
        "stream protects the end-to-end gain, the forwarding paths buy "
        "IPC, wider DMA matters only until the stream hides, and chaining "
        "restores pipelining for deep (wrapped) models."
    )
    return result
