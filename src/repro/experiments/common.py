"""Shared infrastructure for the per-table/figure experiment modules.

Every experiment returns an :class:`ExperimentResult` holding paper-vs-
measured metric rows (and, for figures, named data series), and can render
itself as a text table for EXPERIMENTS.md / the benchmark logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class Metric:
    """One paper-vs-measured comparison row."""

    name: str
    measured: float
    paper: Optional[float] = None
    unit: str = ""

    @property
    def deviation(self) -> Optional[float]:
        """Relative deviation from the paper value (None if no reference)."""
        if self.paper is None or self.paper == 0:
            return None
        return (self.measured - self.paper) / abs(self.paper)

    def row(self) -> Tuple[str, str, str, str]:
        paper = "-" if self.paper is None else f"{self.paper:.4g}"
        deviation = self.deviation
        dev = "-" if deviation is None else f"{deviation * 100:+.1f}%"
        return (self.name, paper, f"{self.measured:.4g}", dev)

    def to_dict(self) -> Dict:
        """JSON-ready representation with the derived deviation."""
        return {
            "name": self.name,
            "paper": self.paper,
            "measured": self.measured,
            "unit": self.unit,
            "deviation": self.deviation,
        }


@dataclass
class ExperimentResult:
    """Outcome of reproducing one table or figure."""

    experiment_id: str
    title: str
    metrics: List[Metric] = field(default_factory=list)
    series: Dict[str, Sequence] = field(default_factory=dict)
    notes: str = ""
    #: canonical scenario dict the result was produced under (filled in
    #: by the runner from the session config; None for bare constructions)
    scenario: Optional[Dict] = None

    def add(self, name: str, measured: float, paper: Optional[float] = None,
            unit: str = "") -> None:
        self.metrics.append(Metric(name=name, measured=measured, paper=paper,
                                   unit=unit))

    def metric(self, name: str) -> Metric:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise KeyError(f"no metric named {name!r} in {self.experiment_id}")

    def to_table(self) -> str:
        header = (f"{self.experiment_id}: {self.title}",)
        rows = [("metric", "paper", "measured", "dev")]
        rows += [m.row() for m in self.metrics]
        widths = [max(len(r[i]) for r in rows) for i in range(4)]
        lines = list(header)
        for row in rows:
            lines.append("  ".join(cell.ljust(width)
                                   for cell, width in zip(row, widths)).rstrip())
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-ready representation (series carry only their names —
        they may hold timelines/arrays that do not serialize)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "metrics": [metric.to_dict() for metric in self.metrics],
            "series": sorted(self.series),
            "notes": self.notes,
            "scenario": self.scenario,
        }

    def to_markdown(self) -> str:
        lines = [f"### {self.experiment_id} — {self.title}", ""]
        lines.append("| metric | paper | measured | deviation |")
        lines.append("|---|---|---|---|")
        for metric in self.metrics:
            name, paper, measured, dev = metric.row()
            unit = f" {metric.unit}" if metric.unit else ""
            lines.append(f"| {name} | {paper}{unit if paper != '-' else ''} | "
                         f"{measured}{unit} | {dev} |")
        if self.notes:
            lines.append("")
            lines.append(f"*{self.notes}*")
        lines.append("")
        return "\n".join(lines)
