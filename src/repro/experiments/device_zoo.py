"""Device zoo: cross-platform energy/inference and end-to-end latency.

Runs one fixed reference workload — a person-detection-class network of
~7.5 M MACs on a 9 KB input frame, the common denominator of the μNPU
benchmarking literature — through every registered device profile's
fitted models and ranks the platforms on energy per inference and
cold-start end-to-end latency.

Unlike the vendor TOPS numbers the μNPU survey papers criticize, the
end-to-end figure charges every phase the profile declares: runtime
init, weight/input movement, input preprocessing, the accelerated MACs
and the host-side postprocess (e.g. softmax on NPUs without native
support).  Host phases are priced at the profile's CPU-mode power,
the MAC phase at its accelerator-mode power, everything at the
profile's nominal operating point.

All numbers are closed-form model evaluations — deterministic and
cheap — so the experiment is an anchor in ``repro bench`` and its
``experiment:device_zoo:*`` metrics are gated in
``benchmarks/baseline.json``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.power import get_profile, models_for, profile_names

#: the reference workload (MobileNet-v1 0.25x person detection class):
#: multiply-accumulates per inference and input frame size
WORKLOAD_MACS = 7_490_000
INPUT_KB = 9.0


def profile_breakdown(name: str) -> Dict[str, Any]:
    """Per-phase cycles/seconds/energy of the reference workload on one
    registered profile, at its nominal operating point."""
    device = get_profile(name)
    models = models_for(device)
    vdd = device.vdd_nominal
    f_hz = models.frequency.f_hz(vdd)
    over = device.overheads

    host_cycles = {
        "init": over.init_cycles,
        "memory_io": over.memory_io_cycles_per_kb
        * (device.model_size_kb + INPUT_KB),
        "preprocess": over.preprocess_cycles_per_kb * INPUT_KB,
        "postprocess": over.postprocess_cycles,
    }
    accel_cycles = WORKLOAD_MACS / device.accel_ops_per_cycle

    cpu_power_w = models.cpu.total_power_w(vdd, f_hz)
    accel_power_w = models.accel.total_power_w(vdd)

    phases_s = {phase: cycles / f_hz
                for phase, cycles in host_cycles.items()}
    phases_s["inference"] = accel_cycles / f_hz
    phases_j = {phase: cpu_power_w * seconds
                for phase, seconds in phases_s.items()}
    phases_j["inference"] = accel_power_w * phases_s["inference"]

    total_s = sum(phases_s.values())
    total_j = sum(phases_j.values())
    return {
        "profile": name,
        "vdd_v": vdd,
        "f_mhz": f_hz / 1e6,
        "accel_cycles": accel_cycles,
        "host_cycles": host_cycles,
        "phases_s": phases_s,
        "phases_j": phases_j,
        "latency_ms": total_s * 1e3,
        "energy_uj": total_j * 1e6,
        "overhead_share": 1.0 - phases_s["inference"] / total_s,
    }


@experiment("device_zoo",
            title="Cross-device energy/inference and end-to-end latency")
def run() -> ExperimentResult:
    names = profile_names()
    breakdowns = {name: profile_breakdown(name) for name in names}

    result = ExperimentResult(
        experiment_id="Device zoo",
        title="Cross-device energy/inference and end-to-end latency "
              f"({WORKLOAD_MACS / 1e6:.2f} M MACs reference workload)",
    )
    result.series["profiles"] = list(names)
    result.series["breakdowns"] = [breakdowns[name] for name in names]
    result.series["ranking_energy"] = sorted(
        names, key=lambda n: breakdowns[n]["energy_uj"])
    result.series["ranking_latency"] = sorted(
        names, key=lambda n: breakdowns[n]["latency_ms"])

    for name in names:
        entry = breakdowns[name]
        result.add(f"{name} energy/inference", entry["energy_uj"], unit="uJ")
        result.add(f"{name} end-to-end latency", entry["latency_ms"],
                   unit="ms")
        result.add(f"{name} overhead share", entry["overhead_share"])
    best_energy = result.series["ranking_energy"][0]
    best_latency = result.series["ranking_latency"][0]
    result.add("profiles compared", float(len(names)), paper=None)
    result.add("energy rank of ncpu-65nm",
               float(result.series["ranking_energy"].index("ncpu-65nm") + 1))
    result.add("latency rank of ncpu-65nm",
               float(result.series["ranking_latency"].index("ncpu-65nm") + 1))
    result.notes = (
        f"best energy: {best_energy}; best latency: {best_latency}. "
        "Host phases (init, memory I/O, pre/post-processing) are priced "
        "at CPU-mode power, the MAC phase at accelerator-mode power, all "
        "at each profile's nominal point — the end-to-end accounting "
        "vendor TOPS figures omit."
    )
    return result


def validate_report(data: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a serialized device-zoo result (``to_dict`` form).

    Checks that every registered profile is compared on both axes with
    finite positive values; returns a small summary dict.  Raises
    :class:`~repro.errors.ConfigurationError` on structural problems —
    the CI smoke job runs this against the ``--json`` artifact.
    """
    metrics = {entry.get("name"): entry
               for entry in data.get("metrics", ())}
    compared = []
    for name in profile_names():
        for axis, unit in (("energy/inference", "uJ"),
                           ("end-to-end latency", "ms")):
            key = f"{name} {axis}"
            entry = metrics.get(key)
            if entry is None:
                raise ConfigurationError(
                    f"device_zoo report: missing metric {key!r}")
            value = entry.get("measured")
            if not isinstance(value, (int, float)) or not value > 0:
                raise ConfigurationError(
                    f"device_zoo report: {key!r} must be a positive "
                    f"number, got {value!r}")
            if entry.get("unit") != unit:
                raise ConfigurationError(
                    f"device_zoo report: {key!r} must be in {unit}, "
                    f"got {entry.get('unit')!r}")
        compared.append(name)
    if "profiles compared" not in metrics:
        raise ConfigurationError(
            "device_zoo report: missing metric 'profiles compared'")
    declared = metrics["profiles compared"]["measured"]
    if declared != len(compared):
        raise ConfigurationError(
            f"device_zoo report: declares {declared} profiles, "
            f"registry has {len(compared)}")
    return {"profiles": compared,
            "energy_uj": {name: metrics[f"{name} energy/inference"]
                          ["measured"] for name in compared},
            "latency_ms": {name: metrics[f"{name} end-to-end latency"]
                           ["measured"] for name in compared}}
