"""Extension: multi-bit DNN support (the paper's stated future work).

Section VIII.A names multi-bit/complex DNN support as the next step, and
section III's motivation claims BNN trades a few accuracy points for
10-100x lower cost.  This experiment quantifies that trade-off on the
NCPU's bit-serial neuron array:

* a float MLP (reference) is trained and post-training-quantized to 8 and
  4 bits,
* the STE-trained binary network is the 1-bit point,
* the timing model charges ``bits`` array passes per layer and ``bits``-fold
  weight storage.

Findings (also the motivation for choosing BNN in the paper): 8-bit matches
float accuracy at ~8x the cycles and storage of the BNN; naive 2-bit
post-training quantization collapses — which is exactly why the 1-bit
design point relies on quantization-aware (STE) training.
"""

from __future__ import annotations

from repro.bnn.datasets import synthetic_mnist
from repro.bnn.multibit import (
    FloatMLP,
    bnn_timing_equivalent,
    multibit_timing,
    quantize_model,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.models import mnist_model
from repro.experiments.registry import experiment

BIT_WIDTHS = (8, 4)


@experiment("extension")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Extension",
        title="Multi-bit DNN support on the NCPU array (future work, "
              "section VIII.A)",
    )
    dataset = synthetic_mnist(n_samples=4000, seed=0)
    train, test = dataset.split(0.8)

    mlp = FloatMLP([256, 100, 100, 100, 10], seed=0)
    mlp.train(train.images, train.labels, epochs=12)
    float_accuracy = mlp.accuracy(test.images, test.labels)
    result.add("float MLP accuracy", float_accuracy * 100, unit="%")

    timings = {}
    for bits in BIT_WIDTHS:
        quantized = quantize_model(mlp, bits, train.images[:500])
        timing = multibit_timing(quantized)
        timings[bits] = timing
        accuracy = quantized.accuracy(test.images, test.labels)
        result.add(f"{bits}-bit accuracy", accuracy * 100, unit="%")
        result.add(f"{bits}-bit latency", timing.latency_cycles, unit="cycles")
        result.add(f"{bits}-bit weight storage", timing.weight_bytes / 1024,
                   unit="kB")

    binary = mnist_model(width=100)
    bnn_timing = bnn_timing_equivalent(binary.model)
    result.add("binary (STE) accuracy", binary.test_accuracy * 100, unit="%")
    result.add("binary latency", bnn_timing.latency_cycles, unit="cycles")
    result.add("binary weight storage", bnn_timing.weight_bytes / 1024,
               unit="kB")

    speedup = timings[8].latency_cycles / bnn_timing.latency_cycles
    storage = timings[8].weight_bytes / bnn_timing.weight_bytes
    result.add("BNN throughput advantage vs 8-bit", speedup, unit="x")
    result.add("BNN storage advantage vs 8-bit", storage, unit="x")
    result.add("8-bit matches float (within 1 point)",
               float(abs(result.metric("8-bit accuracy").measured
                         - float_accuracy * 100) < 1.0), paper=1.0)
    result.add("BNN within 6 points of float",
               float(float_accuracy * 100
                     - binary.test_accuracy * 100 < 6.0), paper=1.0)
    result.notes = (
        "Reproduces the paper's section III claim: the binary design point "
        "gives ~8x throughput and storage over 8-bit at a few points of "
        "accuracy; 2-bit post-training quantization collapses to chance, "
        "showing why the 1-bit point needs quantization-aware training."
    )
    return result
