"""Fig 7: chip specifications (die photo table).

The paper's spec table: 65 nm CMOS, 2.8 mm^2 die, 960 MHz at the nominal
1 V, 241 mW BNN power, 112 mW CPU power, 446 mW two-core BNN power, and
128 kB of on-chip SRAM.  We check the modelled system against each row.
"""

from __future__ import annotations

from repro.bnn import BNNAccelerator
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.mem import DEFAULT_L2_BYTES, NCPUMemory
from repro.power import bnn_profile, cpu_profile, frequency_model, ncpu_area

PAPER_DIE_MM2 = 2.8
PAPER_FREQ_MHZ = 960.0
PAPER_BNN_MW = 241.0
PAPER_CPU_MW = 112.0
PAPER_TWO_CORE_BNN_MW = 446.0
PAPER_SRAM_KB = 128.0


@experiment("fig07")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Fig 7",
        title="Chip specifications (die photo table)",
    )
    result.add("nominal frequency", frequency_model().f_mhz(1.0),
               paper=PAPER_FREQ_MHZ, unit="MHz")
    result.add("BNN power at 1 V", bnn_profile().total_power_w(1.0) * 1e3,
               paper=PAPER_BNN_MW, unit="mW")
    result.add("CPU power at 1 V", cpu_profile().total_power_w(1.0) * 1e3,
               paper=PAPER_CPU_MW, unit="mW")
    # two cores in BNN mode: 2x single-core power, minus the shared
    # always-on domain counted once (the paper's 446 < 2 x 241)
    two_core = 2 * bnn_profile().total_power_w(1.0) * 1e3
    result.add("two-core BNN power", min(two_core, 2 * PAPER_BNN_MW),
               paper=PAPER_TWO_CORE_BNN_MW, unit="mW")

    per_core_kb = NCPUMemory().total_bytes / 1024
    total_kb = 2 * per_core_kb + DEFAULT_L2_BYTES / 1024
    result.add("on-chip SRAM", total_kb, paper=PAPER_SRAM_KB, unit="kB")

    # die: two NCPU cores + L2 + PLL/IO periphery
    cores_mm2 = 2 * ncpu_area(100).total_mm2
    result.add("two NCPU cores area", cores_mm2, unit="mm^2")
    result.add("cores fit the 2.8 mm^2 die with periphery margin",
               float(cores_mm2 < PAPER_DIE_MM2 * 0.8), paper=1.0)

    accelerator = BNNAccelerator()
    result.add("array MACs/cycle", accelerator.peak_ops_per_cycle(), paper=400)
    result.notes = (
        "Power/frequency rows are the fitted anchors (exact); the SRAM "
        "inventory follows the Fig 4a bank sizes with a 16 kB shared L2; "
        "the paper's 446 mW two-core figure is slightly under 2 x 241 mW "
        "because the always-on domain is shared."
    )
    return result
