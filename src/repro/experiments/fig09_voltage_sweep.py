"""Fig 9: power, frequency, energy/cycle and TOPS/W vs supply voltage.

Sweeps the fitted technology model across the chip's 0.4-1.0 V operating
range for both modes and checks the measured anchor points plus the
minimum-energy-point structure.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.power import (
    bnn_mep_voltage,
    bnn_profile,
    bnn_tops_per_watt,
    cpu_mep_voltage,
    cpu_profile,
    frequency_model,
)

VOLTAGES = [round(v, 3) for v in np.arange(0.40, 1.001, 0.05)]

PAPER = {
    "frequency at 1 V": 960.0,
    "frequency at 0.4 V": 18.0,
    "BNN power at 1 V": 241.0,
    "BNN power at 0.4 V": 1.2,
    "CPU power at 1 V": 112.0,
    "CPU power at 0.4 V": 0.8,
    "BNN energy/cycle at 1 V": 0.251,  # nJ == 241 mW / 960 MHz
    "CPU MEP voltage": 0.5,
    "TOPS/W at 1 V": 1.6,
    "TOPS/W at 0.4 V": 6.0,
}


@experiment("fig09")
def run() -> ExperimentResult:
    freq = frequency_model()
    bnn = bnn_profile()
    cpu = cpu_profile()

    result = ExperimentResult(
        experiment_id="Fig 9",
        title="Power / frequency / energy / efficiency vs supply voltage",
    )
    result.series["voltage_v"] = VOLTAGES
    result.series["frequency_mhz"] = [freq.f_mhz(v) for v in VOLTAGES]
    result.series["bnn_power_mw"] = [bnn.total_power_w(v) * 1e3 for v in VOLTAGES]
    result.series["cpu_power_mw"] = [cpu.total_power_w(v) * 1e3 for v in VOLTAGES]
    result.series["bnn_energy_nj"] = [bnn.energy_per_cycle_j(v) * 1e9
                                      for v in VOLTAGES]
    result.series["cpu_energy_nj"] = [cpu.energy_per_cycle_j(v) * 1e9
                                      for v in VOLTAGES]
    result.series["bnn_tops_per_w"] = [bnn_tops_per_watt(v) for v in VOLTAGES]

    result.add("frequency at 1 V", freq.f_mhz(1.0),
               paper=PAPER["frequency at 1 V"], unit="MHz")
    result.add("frequency at 0.4 V", freq.f_mhz(0.4),
               paper=PAPER["frequency at 0.4 V"], unit="MHz")
    result.add("BNN power at 1 V", bnn.total_power_w(1.0) * 1e3,
               paper=PAPER["BNN power at 1 V"], unit="mW")
    result.add("BNN power at 0.4 V", bnn.total_power_w(0.4) * 1e3,
               paper=PAPER["BNN power at 0.4 V"], unit="mW")
    result.add("CPU power at 1 V", cpu.total_power_w(1.0) * 1e3,
               paper=PAPER["CPU power at 1 V"], unit="mW")
    result.add("CPU power at 0.4 V", cpu.total_power_w(0.4) * 1e3,
               paper=PAPER["CPU power at 0.4 V"], unit="mW")
    result.add("BNN energy/cycle at 1 V", bnn.energy_per_cycle_j(1.0) * 1e9,
               paper=PAPER["BNN energy/cycle at 1 V"], unit="nJ")
    result.add("CPU MEP voltage", cpu_mep_voltage(),
               paper=PAPER["CPU MEP voltage"], unit="V")
    result.add("BNN MEP below CPU MEP",
               float(bnn_mep_voltage() < cpu_mep_voltage()), paper=1.0)
    result.add("TOPS/W at 1 V", bnn_tops_per_watt(1.0),
               paper=PAPER["TOPS/W at 1 V"])
    result.add("TOPS/W at 0.4 V (peak)", bnn_tops_per_watt(0.4),
               paper=PAPER["TOPS/W at 0.4 V"])
    result.notes = (
        "All four anchor points are exact by construction; the CPU MEP "
        "emerges at ~0.46 V from the two-domain (core + 0.55 V-pinned SRAM) "
        "model vs the paper's 0.5 V."
    )
    return result
