"""Fig 10: NCPU area and frequency overheads vs standalone cores.

Paper: +13.1 % core-logic area (dominated by NeuroEX), +2.7 % total area
including SRAM, and 4.1 % / 5.2 % Fmax degradation in BNN / CPU mode.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.power import (
    FMAX_DEGRADATION,
    bnn_area,
    fmax_mhz,
    frequency_model,
    ncpu_area,
    stage_overhead_fractions,
)

PAPER_CORE_OVERHEAD = 0.131
PAPER_TOTAL_OVERHEAD = 0.027
PAPER_STAGE_POINTS = {"NeuroPC": 0.5, "NeuroIF": 0.8, "NeuroID": 2.0,
                      "NeuroEX": 7.5, "NeuroMEM": 2.3}


@experiment("fig10")
def run() -> ExperimentResult:
    bnn = bnn_area(100)
    ncpu = ncpu_area(100)
    stages = stage_overhead_fractions()

    result = ExperimentResult(
        experiment_id="Fig 10",
        title="NCPU overhead vs standalone BNN/CPU cores",
    )
    result.add("core area overhead", (ncpu.compute_mm2 / bnn.compute_mm2 - 1) * 100,
               paper=PAPER_CORE_OVERHEAD * 100, unit="%")
    result.add("total area overhead", (ncpu.total_mm2 / bnn.total_mm2 - 1) * 100,
               paper=PAPER_TOTAL_OVERHEAD * 100, unit="%")
    for stage, paper_points in PAPER_STAGE_POINTS.items():
        result.add(f"{stage} overhead share", stages[stage] * 100,
                   paper=paper_points, unit="pp")

    nominal = frequency_model().f_mhz(1.0)
    result.add("Fmax degradation (BNN mode)",
               (1 - fmax_mhz("bnn", 1.0) / nominal) * 100,
               paper=FMAX_DEGRADATION["bnn"] * 100, unit="%")
    result.add("Fmax degradation (CPU mode)",
               (1 - fmax_mhz("cpu", 1.0) / nominal) * 100,
               paper=FMAX_DEGRADATION["cpu"] * 100, unit="%")
    result.series["stage_overheads"] = stages
    result.notes = (
        "The per-stage split is an anchored decomposition (the paper gives "
        "the bar chart, not numeric per-stage values); NeuroEX dominating "
        "is the structural claim."
    )
    return result
