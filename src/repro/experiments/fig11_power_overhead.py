"""Fig 11: NCPU power overhead vs standalone cores.

(a) BNN-mode inference pays 5.8 % over a standalone accelerator; MiBench
programs pay ~15 % over a standalone CPU.  (b) per-instruction power
overhead across the 37 supported RV32I base instructions averages 14.7 %.

The program-level overheads are *computed from measured instruction mixes*:
each MiBench kernel actually runs on the cycle-accurate pipeline and its
retired-instruction histogram feeds the per-instruction activity model.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.isa import RV32I_BASE_NAMES
from repro.power import (
    BNN_MODE_POWER_OVERHEAD,
    instruction_power_overhead,
    program_power_overhead,
)
from repro.experiments.registry import experiment
from repro.workloads import mibench

PAPER_BNN_OVERHEAD = 0.058
PAPER_AVG_INSTRUCTION_OVERHEAD = 0.147
PAPER_PROGRAM_OVERHEADS = [0.152, 0.147, 0.151, 0.147, 0.137, 0.148]


@experiment("fig11")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Fig 11",
        title="NCPU power overhead: BNN mode, MiBench programs, "
              "per-instruction",
    )
    result.add("BNN-mode power overhead", BNN_MODE_POWER_OVERHEAD * 100,
               paper=PAPER_BNN_OVERHEAD * 100, unit="%")

    mixes = mibench.instruction_mixes()
    program_overheads = {}
    for name, mix in mixes.items():
        program_overheads[name] = program_power_overhead(mix)
        result.add(f"{name} program overhead", program_overheads[name] * 100,
                   unit="%")
    mean_program = sum(program_overheads.values()) / len(program_overheads)
    paper_mean = sum(PAPER_PROGRAM_OVERHEADS) / len(PAPER_PROGRAM_OVERHEADS)
    result.add("mean MiBench program overhead", mean_program * 100,
               paper=paper_mean * 100, unit="%")

    per_instruction = {name: instruction_power_overhead(name)
                       for name in RV32I_BASE_NAMES}
    average = sum(per_instruction.values()) / len(per_instruction)
    result.add("average per-instruction overhead", average * 100,
               paper=PAPER_AVG_INSTRUCTION_OVERHEAD * 100, unit="%")
    result.add("min per-instruction overhead",
               min(per_instruction.values()) * 100, unit="%")
    result.add("max per-instruction overhead",
               max(per_instruction.values()) * 100, unit="%")
    result.series["per_instruction"] = per_instruction
    result.series["per_program"] = program_overheads
    result.notes = (
        "Program overheads derive from each kernel's measured retired-"
        "instruction mix on the pipeline; the per-instruction average is "
        "calibrated to the paper's 14.7 % with the spread emerging from "
        "stage-activity structure."
    )
    return result
