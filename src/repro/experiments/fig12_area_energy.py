"""Fig 12: (a) area reduction and (b) energy saving of the NCPU vs the
heterogeneous CPU+BNN baseline.

(a) one NCPU replaces both cores at 35.7 % less area.  (b) at 1 V the
reconfigurable design costs ~7 % more energy per MNIST inference; as leakage
(proportional to area) takes over below ~0.6 V, the saved area becomes an
energy saving, reaching ~12.6 % at 0.4 V.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.power import (
    area_saving,
    bnn_area,
    cpu_area,
    heterogeneous_area,
    ncpu_area,
    ncpu_energy_saving,
)

PAPER_AREA_SAVING = 0.357
PAPER_ENERGY_AT_1V = -0.072
PAPER_ENERGY_AT_04V = 0.126
PAPER_CROSSOVER_V = 0.6

VOLTAGES = [round(v, 3) for v in np.arange(0.40, 1.001, 0.05)]


def _crossover_voltage() -> float:
    """Where the energy saving changes sign (bisection on the model)."""
    lo, hi = 0.4, 1.0
    if ncpu_energy_saving(lo) < 0:
        return lo
    for _ in range(50):
        mid = 0.5 * (lo + hi)
        if ncpu_energy_saving(mid) > 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@experiment("fig12")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Fig 12",
        title="Area reduction and energy saving vs the heterogeneous baseline",
    )
    result.add("CPU area", cpu_area().total_mm2, unit="mm^2")
    result.add("BNN area", bnn_area(100).total_mm2, unit="mm^2")
    result.add("CPU+BNN area", heterogeneous_area(100).total_mm2, unit="mm^2")
    result.add("NCPU area", ncpu_area(100).total_mm2, unit="mm^2")
    result.add("area saving", area_saving(100) * 100,
               paper=PAPER_AREA_SAVING * 100, unit="%")

    savings = [ncpu_energy_saving(v) for v in VOLTAGES]
    result.series["voltage_v"] = VOLTAGES
    result.series["energy_saving"] = savings
    result.add("energy saving at 1 V", ncpu_energy_saving(1.0) * 100,
               paper=PAPER_ENERGY_AT_1V * 100, unit="%")
    result.add("energy saving at 0.4 V", ncpu_energy_saving(0.4) * 100,
               paper=PAPER_ENERGY_AT_04V * 100, unit="%")
    result.add("crossover voltage", _crossover_voltage(),
               paper=PAPER_CROSSOVER_V, unit="V")
    result.notes = (
        "The 1 V overhead and 0.4 V saving land within ~1.5 points of the "
        "paper; the crossover sits at ~0.47 V vs the paper's ~0.6 V because "
        "our leakage fit (anchored to the published 0.4 V power) has a "
        "smaller mid-range leakage share than the authors' silicon."
    )
    return result
