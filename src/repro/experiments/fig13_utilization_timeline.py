"""Fig 13: utilization timelines at 40 % and 70 % CPU-work fractions.

The paper adjusts pre-processing complexity to set the CPU fraction and
reports end-to-end improvements of 28.5 % (40 %, well-balanced) and 41.2 %
(70 %, CPU-heavy).  Our discrete-event scheduler reproduces both exactly
from first principles with the batch sizes the figure depicts (4 and 2
images; DESIGN.md section 5).
"""

from __future__ import annotations

from repro.core import SchedulerConfig, compare_end_to_end, items_for_fraction
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment

PAPER_IMPROVEMENT_40 = 0.285
PAPER_IMPROVEMENT_70 = 0.412

ZERO_COST = SchedulerConfig(offload_cycles=0, switch_cycles=0)

CASES = {
    "40% CPU fraction (batch 4)": (0.40, 4, PAPER_IMPROVEMENT_40),
    "70% CPU fraction (batch 2)": (0.70, 2, PAPER_IMPROVEMENT_70),
}


@experiment("fig13")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Fig 13",
        title="End-to-end improvement from full core utilization",
    )
    for label, (fraction, batch, paper) in CASES.items():
        items = items_for_fraction(fraction, batch)
        comparison = compare_end_to_end(items, ZERO_COST)
        result.add(f"improvement at {label}", comparison.improvement * 100,
                   paper=paper * 100, unit="%")
        utils = comparison.ncpu_dual.utilizations()
        result.add(f"NCPU utilization at {label}",
                   min(utils.values()) * 100, unit="%")
        baseline_utils = comparison.baseline.utilizations()
        result.add(f"baseline BNN utilization at {label}",
                   baseline_utils["bnn"] * 100, unit="%")
        result.series[label] = {
            "baseline": comparison.baseline,
            "ncpu": comparison.ncpu_dual,
        }
    result.notes = (
        "Both improvements match the paper to <0.5 points; they follow "
        "from eliminating the baseline accelerator's idle-waiting, not "
        "from any fitted constant."
    )
    return result
