"""Fig 14: end-to-end benefit vs image batch size (70 % CPU fraction).

Larger batches let the heterogeneous baseline hide more of its per-image
offload cost behind pipelining, so the NCPU's advantage declines with batch
size while staying above ~37 % at batch 100.  The offload cost (9.4 % of an
item, DMA that blocks the CPU) is calibrated so the batch-100 point matches
the paper; the *decline* is emergent.
"""

from __future__ import annotations

from repro.core import SchedulerConfig, compare_end_to_end, items_for_fraction
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment

CPU_FRACTION = 0.70
BATCHES = (2, 6, 10, 20, 50, 100)
ITEM_CYCLES = 10_000
OFFLOAD_FRACTION = 0.094

PAPER_IMPROVEMENT_BATCH2 = 0.42
PAPER_IMPROVEMENT_BATCH100 = 0.373


@experiment("fig14")
def run() -> ExperimentResult:
    config = SchedulerConfig(
        offload_cycles=round(OFFLOAD_FRACTION * ITEM_CYCLES),
        switch_cycles=4,
    )
    improvements = []
    for batch in BATCHES:
        items = items_for_fraction(CPU_FRACTION, batch, item_cycles=ITEM_CYCLES)
        improvements.append(compare_end_to_end(items, config).improvement)

    result = ExperimentResult(
        experiment_id="Fig 14",
        title="End-to-end benefit vs image batch size (70 % CPU fraction)",
    )
    result.series["batch"] = list(BATCHES)
    result.series["improvement"] = improvements
    result.add("improvement at batch 2", improvements[0] * 100,
               paper=PAPER_IMPROVEMENT_BATCH2 * 100, unit="%")
    result.add("improvement at batch 100", improvements[-1] * 100,
               paper=PAPER_IMPROVEMENT_BATCH100 * 100, unit="%")
    result.add("decline is monotone",
               float(all(a >= b for a, b in zip(improvements,
                                                improvements[1:]))),
               paper=1.0)
    result.add("stays above 37 % at batch 100",
               float(improvements[-1] > 0.37), paper=1.0)
    result.notes = (
        "The paper's curve spans ~42 % down to ~37 %; ours starts higher "
        "(~47 % at batch 2) because a single offload-cost constant cannot "
        "match both ends — we anchor the batch-100 asymptote and document "
        "the small-batch deviation."
    )
    return result
