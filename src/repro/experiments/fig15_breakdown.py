"""Fig 15: runtime workload breakdown of the two use cases.

The paper reports, for image classification: resize 30 %, grayscale filter
32 %, normalization 12 %, BNN 24 %; for motion detection: mean 22 %,
histogram 46 %, BNN 32 %.  Our breakdown is *measured*: the real assembly
kernels run on the cycle-accurate pipeline and the accelerator model
supplies the BNN phase.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.models import image_use_case, motion_use_case
from repro.experiments.registry import experiment

PAPER_IMAGE = {"resize": 0.30, "grayscale": 0.32, "normalize": 0.12,
               "bnn": 0.24}
PAPER_MOTION = {"mean": 0.22, "histogram": 0.46, "bnn": 0.32}


def _shares(stage_cycles: dict) -> dict:
    total = sum(stage_cycles.values())
    return {stage: cycles / total for stage, cycles in stage_cycles.items()}


@experiment("fig15")
def run() -> ExperimentResult:
    image = image_use_case()
    motion = motion_use_case()
    image_shares = _shares(image.stage_cycles)
    motion_shares = _shares(motion.stage_cycles)

    result = ExperimentResult(
        experiment_id="Fig 15",
        title="Runtime CPU/BNN workload breakdown (measured kernels)",
    )
    for stage, paper in PAPER_IMAGE.items():
        result.add(f"image {stage} share", image_shares.get(stage, 0.0) * 100,
                   paper=paper * 100, unit="%")
    result.add("image CPU fraction", image.cpu_fraction * 100, paper=76.0,
               unit="%")
    result.add("image pipeline accuracy", image.accuracy * 100, paper=94.8,
               unit="%")
    for stage, paper in PAPER_MOTION.items():
        result.add(f"motion {stage} share", motion_shares.get(stage, 0.0) * 100,
                   paper=paper * 100, unit="%")
    result.add("motion CPU fraction", motion.cpu_fraction * 100, paper=68.0,
               unit="%")
    result.add("motion accuracy", motion.accuracy * 100, paper=74.0, unit="%")
    result.series["image_stage_cycles"] = image.stage_cycles
    result.series["motion_stage_cycles"] = motion.stage_cycles
    result.notes = (
        "CPU dominance and the intra-CPU ordering (grayscale~resize >> "
        "normalize; histogram > mean) reproduce.  Our BNN share is smaller "
        "than the paper's because the 400-MAC/cycle array classifies our "
        "16x16 inputs in far fewer cycles than the scalar pre-processing "
        "needs — the paper's silicon shows the same imbalance direction."
    )
    return result
