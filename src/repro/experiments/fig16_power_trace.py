"""Fig 16: measured power traces of the image use case at 1 V.

The oscilloscope picture the paper shows: the baseline's BNN accelerator
idles while the CPU pre-processes, then bursts; the two NCPU cores run CPU
phases simultaneously and then both burst in BNN mode, finishing ~43 %
sooner.  We regenerate the traces from the discrete-event timeline and the
fitted power model at the paper's conditions (1 V, traces drawn at the use
cases' 50 MHz operating clock).
"""

from __future__ import annotations

from repro.core import SchedulerConfig, compare_end_to_end, items_for_fraction
from repro.experiments.common import ExperimentResult
from repro.experiments.models import PAPER_IMAGE_CPU_FRACTION
from repro.experiments.registry import experiment

VOLTAGE = 1.0
CLOCK_HZ = 50e6
BATCH = 2
#: per-item cycles chosen so the baseline trace spans ~90 us at 50 MHz,
#: matching the paper's oscilloscope window
ITEM_CYCLES = 2500
PAPER_IMPROVEMENT = 0.43
PAPER_BASELINE_SPAN_US = 90.0


@experiment("fig16")
def run() -> ExperimentResult:
    items = items_for_fraction(PAPER_IMAGE_CPU_FRACTION, BATCH,
                               item_cycles=ITEM_CYCLES)
    comparison = compare_end_to_end(items, SchedulerConfig())

    baseline_trace = comparison.baseline.power_trace(VOLTAGE, CLOCK_HZ,
                                                     reconfigurable=False)
    ncpu_trace = comparison.ncpu_dual.power_trace(VOLTAGE, CLOCK_HZ,
                                                  reconfigurable=True)

    result = ExperimentResult(
        experiment_id="Fig 16",
        title="Runtime power traces, image classification use case (1 V)",
    )
    result.series["baseline_trace"] = baseline_trace
    result.series["ncpu_trace"] = ncpu_trace

    result.add("end-to-end improvement", comparison.improvement * 100,
               paper=PAPER_IMPROVEMENT * 100, unit="%")

    # structural checks on the traces
    bnn_peak = max(p for _, p in baseline_trace["bnn"])
    cpu_peak = max(p for _, p in baseline_trace["cpu"])
    result.add("baseline BNN burst exceeds CPU level",
               float(bnn_peak > cpu_peak), paper=1.0)
    ncpu_end_us = comparison.ncpu_dual.end / CLOCK_HZ * 1e6
    baseline_end_us = comparison.baseline.end / CLOCK_HZ * 1e6
    result.add("baseline makespan", baseline_end_us,
               paper=PAPER_BASELINE_SPAN_US, unit="us")
    result.add("2xNCPU makespan", ncpu_end_us, unit="us")
    both_cores_active = all(
        any(s.kind == "bnn" for s in comparison.ncpu_dual.core_segments(core))
        for core in ("ncpu0", "ncpu1")
    )
    result.add("both NCPU cores reach BNN mode", float(both_cores_active),
               paper=1.0)
    result.notes = (
        "Traces are staircase (time_us, power_mw) series per core; the "
        "paper measured ~90 us for the baseline at 50 MHz with two images, "
        "matching our timeline's order of magnitude."
    )
    return result
