"""Fig 17: end-to-end improvement for the two real-time use cases.

Paper: the two-core NCPU beats the heterogeneous baseline by 43 % (image)
and 35 % (motion); a single NCPU is only 13.8 % / 1.8 % slower than the
two-core baseline while being 35 % smaller.  The 43 % speedup converts to a
74 % energy saving by scaling the supply down until the latency matches.

We evaluate both at the paper's CPU-work fractions and at our measured
workloads' fractions (the latter are CPU-heavier; Fig 15).
"""

from __future__ import annotations

from repro.core import SchedulerConfig, compare_end_to_end, items_for_fraction
from repro.experiments.common import ExperimentResult
from repro.obs import PHASES, phase_fractions, timeline_phase_cycles
from repro.experiments.models import (
    PAPER_IMAGE_CPU_FRACTION,
    PAPER_MOTION_CPU_FRACTION,
    image_use_case,
    motion_use_case,
)
from repro.experiments.registry import experiment
from repro.power import bnn_profile, cpu_profile, frequency_model

BATCH = 2
PAPER = {
    "image improvement": 0.43,
    "motion improvement": 0.35,
    "image single-NCPU degradation": 0.138,
    "motion single-NCPU degradation": 0.018,
    "image energy saving": 0.74,
}

ZERO_COST = SchedulerConfig(offload_cycles=0, switch_cycles=4)


def _voltage_for_frequency(target_hz: float) -> float:
    """Invert the frequency model by bisection."""
    freq = frequency_model()
    lo, hi = 0.4, 1.0
    if target_hz >= freq.f_hz(hi):
        return hi
    if target_hz <= freq.f_hz(lo):
        return lo
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if freq.f_hz(mid) < target_hz:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def energy_saving_from_speedup(improvement: float, cpu_fraction: float) -> float:
    """Convert a latency improvement into an iso-latency energy saving.

    The 2xNCPU system finishes in (1 - improvement) of the baseline's time
    at 1 V, so its supply can be scaled down until the latencies match; the
    energy ratio then compares the scaled NCPU run against the 1 V baseline
    (both doing the same work mix of CPU and BNN phases).
    """
    slowdown = 1.0 - improvement  # allowed frequency scale
    freq = frequency_model()
    f_scaled_hz = freq.f_hz(1.0) * slowdown
    v_scaled = _voltage_for_frequency(f_scaled_hz)

    def mix_power(voltage: float, f_hz: float) -> float:
        cpu_power = cpu_profile().total_power_w(voltage, f_hz=f_hz)
        bnn_power = bnn_profile().total_power_w(voltage, f_hz=f_hz)
        return cpu_fraction * cpu_power + (1 - cpu_fraction) * bnn_power

    # same wall-clock time by construction, so energy ratio == power ratio;
    # the baseline runs 2 cores' worth of work on CPU+accelerator at 1 V
    baseline_power = mix_power(1.0, freq.f_hz(1.0))
    ncpu_power = mix_power(v_scaled, freq.f_hz(v_scaled))
    return 1.0 - ncpu_power / baseline_power


@experiment("fig17")
def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Fig 17",
        title="End-to-end improvement for the image and motion use cases",
    )

    # the motion use case detects one gesture at a time ("only a single
    # human gesture is detected ... due to the slow human motion time
    # scale"), so its single-core comparison uses batch 1; the streaming
    # dual-core comparison still interleaves two gestures
    cases = {
        "image": (PAPER_IMAGE_CPU_FRACTION, BATCH,
                  PAPER["image improvement"],
                  PAPER["image single-NCPU degradation"]),
        "motion": (PAPER_MOTION_CPU_FRACTION, 1,
                   PAPER["motion improvement"],
                   PAPER["motion single-NCPU degradation"]),
    }
    improvements = {}
    for name, (fraction, single_batch, paper_improvement,
               paper_degradation) in cases.items():
        comparison = compare_end_to_end(items_for_fraction(fraction, BATCH),
                                        ZERO_COST)
        improvements[name] = comparison.improvement
        result.add(f"{name} improvement (paper fraction)",
                   comparison.improvement * 100,
                   paper=paper_improvement * 100, unit="%")
        single = compare_end_to_end(items_for_fraction(fraction, single_batch),
                                    ZERO_COST)
        result.add(f"{name} single-NCPU degradation (paper fraction)",
                   single.single_core_degradation * 100,
                   paper=paper_degradation * 100, unit="%")
        # where the dual-NCPU end-to-end cycles go, in the shared obs
        # phase vocabulary (engine-independent scheduler output, so these
        # fractions gate like any other deterministic anchor)
        fractions = phase_fractions(
            timeline_phase_cycles(comparison.ncpu_dual))
        for phase in PHASES:
            result.add(f"{name} ncpu2 phase fraction {phase}",
                       fractions[phase] * 100, unit="%")

    saving = energy_saving_from_speedup(improvements["image"],
                                        PAPER_IMAGE_CPU_FRACTION)
    result.add("image equivalent energy saving", saving * 100,
               paper=PAPER["image energy saving"] * 100, unit="%")

    # measured-workload variants
    for use_case in (image_use_case(), motion_use_case()):
        comparison = compare_end_to_end(use_case.items(BATCH), ZERO_COST)
        result.add(f"{use_case.name} improvement (measured workload)",
                   comparison.improvement * 100, unit="%")
    result.notes = (
        "Paper-fraction rows reproduce Fig 17's bars; measured-workload "
        "rows use our kernels' CPU-heavier fractions (Fig 15 note), which "
        "push the improvement toward the 50 % two-core ceiling.  The "
        "motion case's paper value (35 %) sits below the scheduler's "
        "zero-overhead prediction (~40 %), consistent with measurement "
        "overheads the paper does not break out."
    )
    return result
