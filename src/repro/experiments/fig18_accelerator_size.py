"""Fig 18: accelerator-width trade-off — area saving vs BNN accuracy.

Sweeping the array width (neurons/layer) from 50 to 400: bigger arrays
classify better but erode the NCPU's area saving (43.5 % -> 22.5 %); the
paper picks 100 neurons (~94 % accuracy, 35.7 % saving).  Area savings come
from the anchored area model; accuracies from actually training each width
on the synthetic-MNIST stand-in.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.models import mnist_model
from repro.experiments.registry import experiment
from repro.power import FIG18_SAVINGS, area_saving

PAPER_ACCURACY = {50: 0.886, 100: 0.948, 200: 0.96, 400: 0.972}
WIDTHS = (50, 100, 200, 400)


@experiment("fig18")
def run(widths=WIDTHS) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Fig 18",
        title="Area saving and MNIST accuracy vs neurons per layer",
    )
    savings = []
    accuracies = []
    for width in widths:
        saving = area_saving(width)
        trained = mnist_model(width=width)
        savings.append(saving)
        accuracies.append(trained.test_accuracy)
        result.add(f"area saving at {width} neurons", saving * 100,
                   paper=FIG18_SAVINGS.get(width, None) and
                   FIG18_SAVINGS[width] * 100, unit="%")
        result.add(f"accuracy at {width} neurons",
                   trained.test_accuracy * 100,
                   paper=PAPER_ACCURACY.get(width, None) and
                   PAPER_ACCURACY[width] * 100, unit="%")
    result.series["widths"] = list(widths)
    result.series["area_saving"] = savings
    result.series["accuracy"] = accuracies
    result.add("accuracy monotone in width",
               float(all(a <= b + 0.01 for a, b in zip(accuracies,
                                                       accuracies[1:]))),
               paper=1.0)
    result.add("saving monotone decreasing",
               float(all(a > b for a, b in zip(savings, savings[1:]))),
               paper=1.0)
    result.notes = (
        "Savings hit the paper's four anchors exactly (the area model "
        "interpolates them); accuracies are measured on the synthetic "
        "dataset and land within ~3 points of the paper's MNIST values "
        "with the same monotone trend."
    )
    return result
