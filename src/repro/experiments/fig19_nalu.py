"""Fig 19: the NALU architecture experiment.

(a) a two-layer NALU trained on 8-bit ALU operations learns ADD/SUB well,
struggles with Boolean AND/XOR, and collapses toward random output when
asked to realize ADD and SUB simultaneously.  (b) its hardware cost is
13-35x the conventional digital blocks — which is why the NCPU *reuses* the
neuron datapath with conventional decode instead of learning ALU ops.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.nalu import compare_all, run_all_tasks

PAPER_RATIOS = {"add": 17.0, "sub": 15.0, "and": 35.0, "xor": 32.0,
                "mul": 13.0, "or": 14.0}


@experiment("fig19")
def run(steps: int = 1500) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Fig 19",
        title="NALU: learned-ALU error and hardware cost vs digital design",
    )
    training = run_all_tasks(steps=steps)
    for task, outcome in training.items():
        result.add(f"{task} normalized error", outcome.normalized_error * 100,
                   unit="%")
    result.add("add learns (error < 5 %)",
               float(training["add"].normalized_error < 0.05), paper=1.0)
    result.add("sub learns (error < 10 %)",
               float(training["sub"].normalized_error < 0.10), paper=1.0)
    result.add("xor fails (error > 30 %)",
               float(training["xor"].normalized_error > 0.30), paper=1.0)
    result.add("add+sub near random (error > 50 %)",
               float(training["addsub"].normalized_error > 0.50), paper=1.0)

    comparisons = compare_all()
    for op, comparison in comparisons.items():
        result.add(f"{op} NALU/digital area", comparison.ratio,
                   paper=PAPER_RATIOS.get(op), unit="x")
    result.series["training"] = training
    result.series["costs"] = comparisons
    result.notes = (
        "Error normalization uses the uninformed-predictor baseline "
        "(100 % == guessing the mean); the AND task partially trains in "
        "our runs (~10-15 %) where the paper shows larger error — the "
        "structural conclusion (Boolean >> arithmetic, combined ~random, "
        "area 13-35x) holds."
    )
    return result
