"""Cached artifacts shared by the experiments: trained BNNs and measured
use-case workloads.

Everything here is deterministic (fixed seeds).  Trained models are
memoized through the session's on-disk :class:`~repro.sim.ArtifactCache`
(keyed on the training parameters plus a fingerprint of the training/
dataset code), so re-runs — including fresh processes — skip retraining;
the measured use-case workloads stay process-cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List

import numpy as np

from repro.bnn import (
    BNNAccelerator,
    BNNModel,
    BNNTrainer,
    synthetic_mnist,
    synthetic_motion,
)
from repro.core import Item
from repro.cpu import FlatMemory, run_pipelined
from repro.isa import assemble
from repro.sim import config_hash, get_session, source_fingerprint
from repro.workloads import image_pipeline as ip
from repro.workloads import motion_features as mf

#: artifact-cache namespace for trained models
MODEL_NAMESPACE = "models"


def _model_key(kind: str, **params) -> str:
    """Cache key for a trained model: parameters + training-code identity."""
    import repro.bnn.datasets as datasets_module
    import repro.bnn.training as training_module

    fingerprints = [source_fingerprint(training_module),
                    source_fingerprint(datasets_module)]
    if kind == "motion":  # thresholds derive from the feature kernels
        fingerprints.append(source_fingerprint(mf))
    return config_hash(kind, params, fingerprints)

#: paper-reported CPU-work fractions of the two use cases (Fig 15)
PAPER_IMAGE_CPU_FRACTION = 0.76
PAPER_MOTION_CPU_FRACTION = 0.68


@dataclass
class TrainedBNN:
    model: BNNModel
    test_accuracy: float


def _train_mnist_model(width: int, epochs: int, n_samples: int) -> TrainedBNN:
    dataset = synthetic_mnist(n_samples=n_samples, seed=0)
    train, test = dataset.split(0.8)
    trainer = BNNTrainer([256, width, width, width, 10], learning_rate=0.01,
                         seed=0)
    trainer.train(train.binarized(), train.labels, epochs=epochs,
                  batch_size=64)
    model = trainer.export_model()
    return TrainedBNN(model=model,
                      test_accuracy=model.accuracy(test.binarized(),
                                                   test.labels))


def mnist_model(width: int = 100, epochs: int = 18,
                n_samples: int = 5000) -> TrainedBNN:
    """The image-classification BNN at a given array width (Fig 18 sweeps).

    Memoized through the session artifact cache: the first call trains,
    every later call — in this process or any other sharing the cache
    directory — loads the stored artifact.
    """
    key = _model_key("mnist", width=width, epochs=epochs,
                     n_samples=n_samples)
    return get_session().cache.fetch(
        MODEL_NAMESPACE, key,
        lambda: _train_mnist_model(width, epochs, n_samples))


@dataclass
class MotionArtifacts:
    model: BNNModel
    test_accuracy: float
    thresholds: np.ndarray


def motion_artifacts(epochs: int = 18, n_samples: int = 3000) -> MotionArtifacts:
    """The motion-detection BNN plus the binarization thresholds the CPU
    feature-extraction kernel uses (artifact-cached like the MNIST model)."""
    key = _model_key("motion", epochs=epochs, n_samples=n_samples)
    return get_session().cache.fetch(
        MODEL_NAMESPACE, key,
        lambda: _train_motion_artifacts(epochs, n_samples))


def _train_motion_artifacts(epochs: int, n_samples: int) -> MotionArtifacts:
    raw = synthetic_motion(n_samples=n_samples, seed=0)
    dataset = raw.to_feature_dataset(mf.float_features)
    train, test = dataset.split(0.8)
    trainer = BNNTrainer(
        [dataset.n_features, 100, 100, 100, raw.n_classes],
        learning_rate=0.01, seed=0,
    )
    trainer.train(train.binarized(), train.labels, epochs=epochs,
                  batch_size=64)
    model = trainer.export_model()
    accuracy = model.accuracy(test.binarized(), test.labels)

    feature_matrix = np.array([mf.float_features(t) for t in raw.traces])
    thresholds = mf.training_thresholds(feature_matrix)
    return MotionArtifacts(model=model, test_accuracy=accuracy,
                           thresholds=thresholds)


@dataclass
class UseCase:
    """One end-to-end workload with measured phase costs."""

    name: str
    cpu_cycles: int
    bnn_cycles: int
    stage_cycles: dict
    accuracy: float
    model: BNNModel

    @property
    def cpu_fraction(self) -> float:
        return self.cpu_cycles / (self.cpu_cycles + self.bnn_cycles)

    def items(self, batch: int) -> List[Item]:
        return [Item(cpu_cycles=self.cpu_cycles,
                     bnn_cycles=self.bnn_cycles)] * batch


@lru_cache(maxsize=None)
def image_use_case() -> UseCase:
    """Image classification: measured cycles of the real assembly pipeline
    on the 5-stage simulator plus the accelerator's per-image cycles."""
    trained = mnist_model()
    shape = ip.ImageShape(32, 32)
    rng = np.random.default_rng(11)
    raw = rng.integers(0, 256, size=(3, 32, 32))

    stage_cycles = {}
    memory = FlatMemory(size=1 << 17)
    ip.write_raw_frame(memory, raw)
    for name, generator in ip.STAGE_GENERATORS.items():
        _, result = run_pipelined(assemble(generator(shape)), memory=memory)
        stage_cycles[name] = result.stats.cycles
    cpu_cycles = sum(stage_cycles.values())

    accelerator = BNNAccelerator()
    bnn_cycles = accelerator.interval_cycles(trained.model)
    stage_cycles["bnn"] = bnn_cycles
    return UseCase(name="image", cpu_cycles=cpu_cycles, bnn_cycles=bnn_cycles,
                   stage_cycles=stage_cycles, accuracy=trained.test_accuracy,
                   model=trained.model)


@lru_cache(maxsize=None)
def motion_use_case() -> UseCase:
    """Motion detection: measured feature-extraction cycles plus the
    accelerator's inference latency for a single gesture."""
    artifacts = motion_artifacts()
    window = mf.quantize_trace(synthetic_motion(n_samples=1, seed=12).traces[0])

    stage_cycles = {}
    memory = FlatMemory(size=1 << 17)
    mf.write_window(memory, window)
    mf.write_thresholds(memory, artifacts.thresholds)
    for name, generator in mf.STAGE_GENERATORS.items():
        source = generator() if name == "binarize" else generator(64)
        _, result = run_pipelined(assemble(source), memory=memory)
        stage_cycles[name] = result.stats.cycles
    cpu_cycles = sum(stage_cycles.values())

    accelerator = BNNAccelerator()
    bnn_cycles = accelerator.latency_cycles(artifacts.model)
    stage_cycles["bnn"] = bnn_cycles
    return UseCase(name="motion", cpu_cycles=cpu_cycles, bnn_cycles=bnn_cycles,
                   stage_cycles=stage_cycles, accuracy=artifacts.test_accuracy,
                   model=artifacts.model)
