"""Self-registering experiment registry.

Experiment modules declare themselves with the :func:`experiment` decorator::

    @experiment("fig18")
    def run(widths=WIDTHS) -> ExperimentResult: ...

and :func:`all_experiments` discovers every module in this package (so the
runner no longer maintains a parallel import list + name->function dict).
Specs carry cacheability and a version, which — together with a fingerprint
of the defining module's source — key the on-disk result cache.
"""

from __future__ import annotations

import importlib
import pkgutil
import sys
from dataclasses import dataclass
from typing import Callable, Dict

from repro.experiments.common import ExperimentResult
from repro.sim import config_hash, source_fingerprint

#: package modules that are infrastructure, not experiments
_NON_EXPERIMENT_MODULES = {"common", "models", "registry", "runner"}


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: its runner plus cache identity."""

    name: str
    func: Callable[..., ExperimentResult]
    title: str = ""
    cacheable: bool = True
    version: int = 1

    def run(self, **kwargs) -> ExperimentResult:
        return self.func(**kwargs)

    def cache_key(self) -> str:
        """Result-cache key: invalidated when the module source, the spec
        version, the cache format, or the session's device profile
        changes.  The engine is deliberately absent (engines produce
        identical architectural results); the device profile is not
        (profiles change the physics)."""
        from repro.sim import current_profile

        module = sys.modules.get(self.func.__module__)
        fingerprint = source_fingerprint(module) if module else self.name
        return config_hash("experiment-result", self.name, self.version,
                           fingerprint, current_profile())


_REGISTRY: Dict[str, ExperimentSpec] = {}
_discovered = False


def experiment(name: str, *, title: str = "", cache: bool = True,
               version: int = 1):
    """Class the decorated ``run()`` function as the experiment ``name``."""

    def decorator(func: Callable[..., ExperimentResult]):
        existing = _REGISTRY.get(name)
        if existing is not None and existing.func is not func:
            raise ValueError(f"experiment {name!r} registered twice "
                             f"({existing.func.__module__} and "
                             f"{func.__module__})")
        _REGISTRY[name] = ExperimentSpec(name=name, func=func, title=title,
                                         cacheable=cache, version=version)
        return func

    return decorator


def discover() -> None:
    """Import every experiment module so its decorator self-registers."""
    global _discovered
    if _discovered:
        return
    import repro.experiments as package

    for info in pkgutil.iter_modules(package.__path__):
        if info.name in _NON_EXPERIMENT_MODULES or info.name.startswith("_"):
            continue
        importlib.import_module(f"repro.experiments.{info.name}")
    _discovered = True


def _display_order(name: str) -> tuple:
    rank = 0 if name.startswith("table") else 1 if name.startswith("fig") else 2
    return (rank, name)


def all_experiments() -> Dict[str, ExperimentSpec]:
    """Every registered experiment, tables first, stable order."""
    discover()
    return {name: _REGISTRY[name]
            for name in sorted(_REGISTRY, key=_display_order)}


def get_spec(name: str) -> ExperimentSpec:
    discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"no experiment named {name!r}; known: "
                       f"{', '.join(sorted(_REGISTRY))}") from None


def unregister(name: str) -> None:
    """Remove an experiment (test helper for synthetic registrations)."""
    _REGISTRY.pop(name, None)
