"""Run table/figure reproductions: registry-driven, cache-aware, parallel.

Usage::

    python -m repro.experiments.runner                 # all experiments
    python -m repro.experiments.runner fig13 t1        # substring filtering
    python -m repro.experiments.runner --json          # machine-readable
    python -m repro.experiments.runner -j 4 --markdown # parallel + markdown

Experiments self-register through :mod:`repro.experiments.registry`;
completed :class:`ExperimentResult`\\ s are memoized in the session's
artifact cache (keyed on the experiment module's source fingerprint, so
edits invalidate automatically) and re-runs come back instantly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import all_experiments, get_spec
from repro.logutil import configure_logging, get_logger
from repro.sim import SimConfig, SimSession, get_session, set_session

logger = get_logger("experiments")

#: artifact-cache namespace for completed experiment results
RESULT_NAMESPACE = "results"

#: attribute attached to each returned result carrying per-run metadata
#: (wall time, cache hit/miss, trace path) — never cached with the result
RUN_META_ATTR = "run_meta"


def run_meta(result: ExperimentResult) -> Optional[Dict]:
    """The per-run metadata attached by :func:`run_experiment` (or None)."""
    return getattr(result, RUN_META_ATTR, None)


def experiments() -> Dict[str, Callable[[], ExperimentResult]]:
    """Name -> runner mapping (compatibility with the old module dict)."""
    return {name: spec.func for name, spec in all_experiments().items()}


def select(patterns: Optional[List[str]] = None) -> List[str]:
    """Experiment names whose key contains any of the given substrings."""
    return [name for name in all_experiments()
            if not patterns or any(pattern in name for pattern in patterns)]


def run_experiment(name: str, use_cache: bool = True,
                   trace_dir: Optional[str] = None) -> ExperimentResult:
    """Run one experiment, consulting the session result cache.

    With ``trace_dir`` set, an actually-executed (cache-missed) experiment
    runs under an installed tracer and its events land in
    ``<trace_dir>/<name>.trace.json``; cache hits skip tracing.  Every
    returned result carries :func:`run_meta` — wall time, cache hit/miss,
    and the trace path (never stored with the cached artifact).
    """
    spec = get_spec(name)
    session = get_session()
    start = time.perf_counter()
    traced_path: Optional[str] = None
    # heartbeat instants: visible to any installed tracer/probe, so long
    # parallel runs are inspectable while they execute
    session.stats.emit("experiment.started", name=name, worker=os.getpid())
    logger.info("experiment %s: started (worker %d)", name, os.getpid())

    def build() -> ExperimentResult:
        nonlocal traced_path
        if trace_dir is None:
            return spec.func()
        from repro.trace import tracing, write_chrome_trace

        path = Path(trace_dir)
        path.mkdir(parents=True, exist_ok=True)
        with tracing(session) as tracer:
            with tracer.span(f"experiment.{name}", track="runner",
                             clock=lambda: (time.perf_counter() - start)
                             * 1e6):
                built = spec.func()
        target = path / f"{name}.trace.json"
        write_chrome_trace(tracer, target)
        traced_path = str(target)
        return built

    caching = use_cache and spec.cacheable and session.cache.enabled
    if caching:
        hits_before = session.cache.hits
        result = session.cache.fetch(RESULT_NAMESPACE, spec.cache_key(),
                                     build)
        cache_hit = session.cache.hits > hits_before
    else:
        result = build()
        cache_hit = False
    wall_time = round(time.perf_counter() - start, 6)
    scenario_dict = session.config.effective_scenario.to_dict()
    if result.scenario is None:
        result.scenario = scenario_dict
    setattr(result, RUN_META_ATTR, {
        "name": name,
        "wall_time_s": wall_time,
        "cache_hit": cache_hit,
        "trace_path": traced_path,
        "engine": session.config.engine,
        "scenario": scenario_dict,
    })
    session.stats.emit("experiment.finished", name=name,
                       worker=os.getpid(), wall_time_s=wall_time,
                       cache_hit=cache_hit)
    logger.info("experiment %s: finished in %.3fs (%s)", name, wall_time,
                "cache hit" if cache_hit else "cache miss")
    return result


def _run_in_worker(name: str, use_cache: bool,
                   trace_dir: Optional[str] = None) -> ExperimentResult:
    return run_experiment(name, use_cache=use_cache, trace_dir=trace_dir)


def run_selected(patterns: Optional[List[str]] = None, *,
                 use_cache: bool = True,
                 jobs: int = 1,
                 trace_dir: Optional[str] = None) -> List[ExperimentResult]:
    """Run experiments whose key contains any of the given substrings.

    With ``jobs > 1`` the experiments fan out over a process pool (each
    worker shares the on-disk artifact cache; writes are atomic, and each
    worker traces into its own ``<trace_dir>/<name>.trace.json``).
    """
    names = select(patterns)
    if jobs > 1 and len(names) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {pool.submit(_run_in_worker, name, use_cache,
                                   trace_dir): name for name in names}
            done = 0
            for future in as_completed(futures):
                done += 1
                logger.info("experiments: %d/%d finished (%s)", done,
                            len(futures), futures[future])
            # results keep submission order regardless of completion order
            return [future.result() for future in futures]
    return [run_experiment(name, use_cache=use_cache, trace_dir=trace_dir)
            for name in names]


# -- metrics export ------------------------------------------------------
def write_experiment_metrics(results: List[ExperimentResult],
                             directory) -> List[Path]:
    """Write per-experiment metrics JSON + one aggregate OpenMetrics file.

    ``<dir>/<name>.metrics.json`` carries the run manifest, the per-run
    metadata, and the paper-vs-measured rows; ``<dir>/experiments.om``
    exposes wall time, cache hits, and every measured value as
    manifest-labelled OpenMetrics series for cross-run scraping.
    """
    from repro.metrics import (
        MetricsCollection,
        RunManifest,
        write_openmetrics,
    )

    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    manifest = RunManifest.collect()
    collection = MetricsCollection(manifest)
    written: List[Path] = []
    for result in results:
        meta = run_meta(result) or {}
        name = meta.get("name", result.experiment_id)
        document = {
            "schema": "repro-experiment-metrics/1",
            "manifest": manifest.as_dict(),
            "run": meta,
            "result": result.to_dict(),
        }
        path = target / f"{name}.metrics.json"
        path.write_text(json.dumps(document, indent=2, sort_keys=True)
                        + "\n")
        written.append(path)
        labels = {"experiment": name}
        if "wall_time_s" in meta:
            collection.gauge("repro_experiment_wall_seconds",
                             meta["wall_time_s"], labels=labels,
                             unit="seconds",
                             help="per-experiment runner wall time")
            collection.gauge("repro_experiment_cache_hit",
                             1.0 if meta.get("cache_hit") else 0.0,
                             labels=labels,
                             help="1 when the result came from the "
                                  "artifact cache")
        for metric in result.metrics:
            collection.gauge(
                "repro_experiment_metric", metric.measured,
                labels={**labels, "metric": metric.name},
                help="measured experiment metric value")
    written.append(write_openmetrics(collection, target / "experiments.om"))
    return written


# -- reporters ----------------------------------------------------------
def render_markdown(results: List[ExperimentResult],
                    include_run_summary: bool = True) -> str:
    lines = ["# EXPERIMENTS — paper vs measured", ""]
    lines += [
        "Regenerate with `python -m repro.experiments.runner` (text) or see",
        "`benchmarks/` for the per-experiment pytest-benchmark targets.",
        "",
    ]
    for result in results:
        lines.append(result.to_markdown())
    metas = [run_meta(result) for result in results]
    if include_run_summary and any(metas):
        lines += ["## Run summary", "",
                  "| experiment | wall time | cache | trace |",
                  "|---|---|---|---|"]
        for result, meta in zip(results, metas):
            if meta is None:
                continue
            cache = "hit" if meta["cache_hit"] else "miss"
            trace = meta["trace_path"] or "-"
            lines.append(f"| {meta['name']} | {meta['wall_time_s']:.3f} s "
                         f"| {cache} | {trace} |")
        lines.append("")
    return "\n".join(lines)


def render_json(results: List[ExperimentResult],
                indent: Optional[int] = 2) -> str:
    entries = []
    for result in results:
        entry = result.to_dict()
        entry["run"] = run_meta(result)
        entries.append(entry)
    return json.dumps(entries, indent=indent)


def render_text(results: List[ExperimentResult]) -> str:
    return "\n\n".join(result.to_table() for result in results)


# -- CLI ----------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="reproduce the paper's tables and figures",
    )
    parser.add_argument("patterns", nargs="*",
                        help="substring filters, e.g. fig13 table2")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="progress chatter on stderr (-v info, "
                             "-vv debug)")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="run experiments in N parallel processes")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON results")
    parser.add_argument("--markdown", action="store_true",
                        help="emit EXPERIMENTS.md-style markdown")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the artifact cache")
    parser.add_argument("--cache-dir",
                        help="artifact cache root (default ~/.cache/repro, "
                             "or $REPRO_CACHE_DIR)")
    parser.add_argument("--trace-dir", metavar="DIR",
                        help="trace each executed experiment into "
                             "DIR/<name>.trace.json (Perfetto format)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(verbosity=args.verbose)
    if args.cache_dir:
        set_session(SimSession(SimConfig(cache_dir=args.cache_dir)))
    if not select(args.patterns or None):
        print(f"no experiments match {' '.join(args.patterns)!r}; known: "
              f"{', '.join(all_experiments())}", file=sys.stderr)
        return 1
    results = run_selected(args.patterns or None,
                           use_cache=not args.no_cache, jobs=args.jobs,
                           trace_dir=args.trace_dir)
    if args.json:
        print(render_json(results))
    elif args.markdown:
        print(render_markdown(results))
    else:
        print(render_text(results))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
