"""Run every table/figure reproduction and render EXPERIMENTS-style output.

Usage::

    python -m repro.experiments.runner            # all experiments
    python -m repro.experiments.runner fig13 t1   # substring filtering
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from repro.experiments import (
    ablations,
    extension_multibit,
    fig07_specs,
    fig09_voltage_sweep,
    fig10_overhead,
    fig11_power_overhead,
    fig12_area_energy,
    fig13_utilization_timeline,
    fig14_batch_sweep,
    fig15_breakdown,
    fig16_power_trace,
    fig17_end_to_end,
    fig18_accelerator_size,
    fig19_nalu,
    table1_motion,
    table2_mcu,
    table3_accel,
    table4_utilization,
)
from repro.experiments.common import ExperimentResult

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1_motion.run,
    "table2": table2_mcu.run,
    "table3": table3_accel.run,
    "table4": table4_utilization.run,
    "fig07": fig07_specs.run,
    "fig09": fig09_voltage_sweep.run,
    "fig10": fig10_overhead.run,
    "fig11": fig11_power_overhead.run,
    "fig12": fig12_area_energy.run,
    "fig13": fig13_utilization_timeline.run,
    "fig14": fig14_batch_sweep.run,
    "fig15": fig15_breakdown.run,
    "fig16": fig16_power_trace.run,
    "fig17": fig17_end_to_end.run,
    "fig18": fig18_accelerator_size.run,
    "fig19": fig19_nalu.run,
    "ablations": ablations.run,
    "extension": extension_multibit.run,
}


def run_selected(patterns: List[str] | None = None) -> List[ExperimentResult]:
    """Run experiments whose key contains any of the given substrings."""
    selected = []
    for key, runner in EXPERIMENTS.items():
        if not patterns or any(pattern in key for pattern in patterns):
            selected.append(runner())
    return selected


def render_markdown(results: List[ExperimentResult]) -> str:
    lines = ["# EXPERIMENTS — paper vs measured", ""]
    lines += [
        "Regenerate with `python -m repro.experiments.runner` (text) or see",
        "`benchmarks/` for the per-experiment pytest-benchmark targets.",
        "",
    ]
    for result in results:
        lines.append(result.to_markdown())
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    patterns = argv or None
    for result in run_selected(patterns):
        print(result.to_table())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
