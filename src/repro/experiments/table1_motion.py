"""Table I: motion detection latency/energy, standalone CPU vs CPU+BNN.

The paper's measurement: a real-time motion detection task (5 ms deadline)
takes 32 ms / 21.12 uJ on a standalone CPU (software BNN) but 0.54 ms /
0.58 uJ once the BNN accelerator handles the inference — the motivation for
having an accelerator at all.

We reproduce it end-to-end at the paper's operating point (18 MHz at 0.4 V):
feature extraction runs as real assembly on the cycle-accurate pipeline, the
software BNN uses the calibrated naive-kernel cycle model, and the
accelerator path uses the cycle-level accelerator.
"""

from __future__ import annotations

from repro.bnn import BNNAccelerator, naive_inference_cycles
from repro.core.transition import PIPELINE_SWITCH_CYCLES
from repro.experiments.common import ExperimentResult
from repro.experiments.models import motion_use_case
from repro.experiments.registry import experiment
from repro.power import bnn_profile, cpu_profile, frequency_model

REAL_TIME_DEADLINE_MS = 5.0
OPERATING_VOLTAGE = 0.4

PAPER_CPU_LATENCY_MS = 32.0
PAPER_CPU_ENERGY_UJ = 21.12
PAPER_ACC_LATENCY_MS = 0.54
PAPER_ACC_ENERGY_UJ = 0.58


@experiment("table1")
def run() -> ExperimentResult:
    use_case = motion_use_case()
    f_hz = frequency_model().f_hz(OPERATING_VOLTAGE)

    feature_cycles = use_case.cpu_cycles
    software_bnn_cycles = naive_inference_cycles(use_case.model).cycles
    accelerator_cycles = BNNAccelerator().latency_cycles(use_case.model)

    # standalone CPU: features + software BNN, all in CPU mode
    cpu_total = feature_cycles + software_bnn_cycles
    cpu_latency_ms = cpu_total / f_hz * 1e3
    cpu_energy_uj = cpu_profile().energy_j(cpu_total, OPERATING_VOLTAGE) * 1e6

    # CPU + accelerator: features on CPU, inference on the BNN engine
    acc_total = feature_cycles + PIPELINE_SWITCH_CYCLES + accelerator_cycles
    acc_latency_ms = acc_total / f_hz * 1e3
    acc_energy_uj = (
        cpu_profile().energy_j(feature_cycles, OPERATING_VOLTAGE)
        + bnn_profile().energy_j(accelerator_cycles, OPERATING_VOLTAGE)
    ) * 1e6

    result = ExperimentResult(
        experiment_id="Table I",
        title="Motion detection latency/energy at 18 MHz, 0.4 V (5 ms deadline)",
    )
    result.add("standalone CPU latency", cpu_latency_ms,
               paper=PAPER_CPU_LATENCY_MS, unit="ms")
    result.add("standalone CPU energy", cpu_energy_uj,
               paper=PAPER_CPU_ENERGY_UJ, unit="uJ")
    result.add("CPU + BNN acc latency", acc_latency_ms,
               paper=PAPER_ACC_LATENCY_MS, unit="ms")
    result.add("CPU + BNN acc energy", acc_energy_uj,
               paper=PAPER_ACC_ENERGY_UJ, unit="uJ")
    result.add("latency speedup", cpu_latency_ms / acc_latency_ms,
               paper=PAPER_CPU_LATENCY_MS / PAPER_ACC_LATENCY_MS, unit="x")
    result.add("standalone misses 5 ms deadline",
               float(cpu_latency_ms > REAL_TIME_DEADLINE_MS), paper=1.0)
    result.add("accelerated meets 5 ms deadline",
               float(acc_latency_ms <= REAL_TIME_DEADLINE_MS), paper=1.0)
    result.series["cycles"] = [feature_cycles, software_bnn_cycles,
                               accelerator_cycles]
    result.notes = (
        "Our feature-extraction share is larger and the synthetic motion "
        "window smaller than the paper's Ninapro task, so absolute "
        "latencies differ; the structural result (standalone CPU misses "
        "the real-time deadline by >4x, the accelerator restores it with "
        ">10x energy saving) reproduces."
    )
    return result
