"""Table II: comparison with commercial microcontrollers (CPU mode).

The NCPU row is *measured*: the Dhrystone-like benchmark runs on the
cycle-accurate pipeline and is scored at 1 V and 0.4 V with the fitted power
model.  The competitor rows are the paper's published datasheet values,
carried as reference data for the rendered table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment
from repro.power import frequency_model, score_dhrystone
from repro.workloads.dhrystone import measure_cycles_per_iteration

PAPER_DMIPS_PER_MHZ = 0.86
PAPER_EFFICIENCY_DMIPS_PER_MW = 8.26
PAPER_FREQ_RANGE_MHZ = (18.0, 960.0)
PAPER_POWER_1V_MW = 106.0  # Table 2 quotes 106 mW at 1 V
PAPER_POWER_04V_MW = 0.8


@dataclass(frozen=True)
class MCURow:
    """One competitor row of the paper's Table 2 (datasheet values)."""

    name: str
    datapath_bits: int
    isa: str
    pipe_stages: int
    voltage_v: float
    freq_mhz: float
    power_mw: float
    dmips_per_mhz: float
    dmips_per_mw: float


COMPETITORS: List[MCURow] = [
    MCURow("Microchip PIC18F13K22", 8, "RISC", 2, 3.0, 64, 37.2, 0.25, 0.43),
    MCURow("TI MSP432P401R", 32, "ARM", 3, 3.0, 48, 22.8, 1.22, 2.57),
    MCURow("Microchip ATSAMA5D44", 32, "ARM", 8, 1.26, 600, 229, 1.57, 4.11),
    MCURow("SiFive E31", 32, "RISC-V", 5, 1.0, 250, 150, 1.61, 2.68),
]


@experiment("table2")
def run() -> ExperimentResult:
    cycles_per_iteration = measure_cycles_per_iteration(iterations=30)
    at_1v = score_dhrystone(cycles_per_iteration, voltage=1.0)
    at_04v = score_dhrystone(cycles_per_iteration, voltage=0.4)

    result = ExperimentResult(
        experiment_id="Table II",
        title="NCPU (CPU mode) vs commercial microcontrollers",
    )
    result.add("Dhrystone cycles/iteration", cycles_per_iteration)
    result.add("frequency at 1 V", at_1v.frequency_mhz,
               paper=PAPER_FREQ_RANGE_MHZ[1], unit="MHz")
    result.add("frequency at 0.4 V", at_04v.frequency_mhz,
               paper=PAPER_FREQ_RANGE_MHZ[0], unit="MHz")
    result.add("power at 1 V", at_1v.power_mw, paper=PAPER_POWER_1V_MW,
               unit="mW")
    result.add("power at 0.4 V", at_04v.power_mw, paper=PAPER_POWER_04V_MW,
               unit="mW")
    result.add("DMIPS/MHz", at_1v.dmips_per_mhz, paper=PAPER_DMIPS_PER_MHZ)
    result.add("DMIPS/mW at 1 V", at_1v.dmips_per_mw,
               paper=PAPER_EFFICIENCY_DMIPS_PER_MW)
    # the paper's efficiency edge over every competitor row
    best_competitor = max(row.dmips_per_mw for row in COMPETITORS)
    result.add("beats best competitor DMIPS/mW",
               float(at_1v.dmips_per_mw > best_competitor), paper=1.0)
    result.series["competitors"] = COMPETITORS
    result.notes = (
        "Competitor rows are the paper's published datasheet values; the "
        "NCPU row is measured on our pipeline + power model.  The 0.4 V "
        "point uses the frequency model's 18 MHz anchor."
    )
    _ = frequency_model()  # referenced for documentation completeness
    return result
