"""Table III: comparison with state-of-the-art ML accelerators (BNN mode).

The NCPU row is measured: classification accuracy from the trained 4x100
BNN on the synthetic-MNIST stand-in, efficiency from the accelerator's
400 MAC/cycle peak and the fitted power model.  The competitor rows are the
paper's published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.bnn import BNNAccelerator
from repro.experiments.common import ExperimentResult
from repro.experiments.models import mnist_model
from repro.experiments.registry import experiment
from repro.power import bnn_profile, bnn_tops_per_watt

PAPER_ACCURACY = 0.948
PAPER_TOPS_PER_W_1V = 1.6
PAPER_TOPS_PER_W_04V = 6.0
PAPER_POWER_1V_MW = 241.0
PAPER_POWER_04V_MW = 1.2


@dataclass(frozen=True)
class AcceleratorRow:
    """One competitor row of the paper's Table 3 (published values)."""

    name: str
    process_nm: int
    model_type: str
    datapath_bits: int
    dataset: str
    accuracy: float
    voltage_v: float
    power_mw: float
    tops_per_w: float


COMPETITORS: List[AcceleratorRow] = [
    AcceleratorRow("ISSCC'17 [2]", 28, "FC", 8, "MNIST", 98.36, 0.9, 33.7, 1.2),
    AcceleratorRow("ISSCC'19 [44]", 65, "FC", 8, "MNIST", 98.06, 0.8, 23.6, 3.42),
    AcceleratorRow("JSSC'18 [40]", 65, "FC", 1, "MNIST", 90.1, 1.0, 0.6, 6.0),
    AcceleratorRow("ISSCC'18 [41]", 28, "Conv", 1, "CIFAR-10", 86.05, 0.8, 0.9, 532),
]


@experiment("table3")
def run() -> ExperimentResult:
    trained = mnist_model(width=100)
    accelerator = BNNAccelerator()

    result = ExperimentResult(
        experiment_id="Table III",
        title="NCPU (BNN mode) vs state-of-the-art ML accelerators",
    )
    result.add("MNIST accuracy", trained.test_accuracy * 100,
               paper=PAPER_ACCURACY * 100, unit="%")
    result.add("peak MACs/cycle", accelerator.peak_ops_per_cycle(), paper=400)
    result.add("power at 1 V", bnn_profile().total_power_w(1.0) * 1e3,
               paper=PAPER_POWER_1V_MW, unit="mW")
    result.add("power at 0.4 V", bnn_profile().total_power_w(0.4) * 1e3,
               paper=PAPER_POWER_04V_MW, unit="mW")
    result.add("TOPS/W at 1 V", bnn_tops_per_watt(1.0),
               paper=PAPER_TOPS_PER_W_1V)
    result.add("TOPS/W at 0.4 V (peak)", bnn_tops_per_watt(0.4),
               paper=PAPER_TOPS_PER_W_04V)
    # energy per classification at 1 V: comparable to the digital BNN
    # competitors' nJ/classification column (e.g. ISSCC'19's 236.5 nJ)
    inference_cycles = accelerator.latency_cycles(trained.model)
    energy_nj = bnn_profile().energy_per_cycle_j(1.0) * inference_cycles * 1e9
    result.add("energy per classification at 1 V", energy_nj, unit="nJ")
    result.series["competitors"] = COMPETITORS
    result.notes = (
        "Accuracy is on the synthetic-MNIST stand-in (no dataset downloads "
        "in this environment); the efficiency figures follow from the "
        "400 MAC/cycle array and the silicon-anchored power fit."
    )
    return result
