"""Table IV: core utilization, heterogeneous baseline vs two-core NCPU.

The paper measures 80.2 % (CPU) / 39.4 % (BNN) utilization on the baseline
and 99.3 % on both NCPU cores for the image-classification use case.  We run
the same comparison through the discrete-event scheduler at the paper's
CPU-work fraction and with our measured workload.
"""

from __future__ import annotations

from repro.core import (
    SchedulerConfig,
    items_for_fraction,
    simulate_heterogeneous,
    simulate_ncpu,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.models import PAPER_IMAGE_CPU_FRACTION, image_use_case
from repro.experiments.registry import experiment

PAPER_BASELINE_CPU_UTIL = 0.802
PAPER_BASELINE_BNN_UTIL = 0.394
PAPER_NCPU_UTIL = 0.993

BATCH = 2


@experiment("table4")
def run() -> ExperimentResult:
    config = SchedulerConfig()
    items = items_for_fraction(PAPER_IMAGE_CPU_FRACTION, BATCH)
    baseline = simulate_heterogeneous(items, config)
    ncpu = simulate_ncpu(items, n_cores=2, config=config)

    baseline_utils = baseline.utilizations()
    ncpu_utils = ncpu.utilizations()

    result = ExperimentResult(
        experiment_id="Table IV",
        title="Core utilization: CPU+BNN baseline vs 2x NCPU "
              f"(image use case, batch {BATCH})",
    )
    result.add("baseline CPU utilization", baseline_utils["cpu"] * 100,
               paper=PAPER_BASELINE_CPU_UTIL * 100, unit="%")
    result.add("baseline BNN utilization", baseline_utils["bnn"] * 100,
               paper=PAPER_BASELINE_BNN_UTIL * 100, unit="%")
    result.add("NCPU0 utilization", ncpu_utils["ncpu0"] * 100,
               paper=PAPER_NCPU_UTIL * 100, unit="%")
    result.add("NCPU1 utilization", ncpu_utils["ncpu1"] * 100,
               paper=PAPER_NCPU_UTIL * 100, unit="%")

    # the same comparison with our measured workload's CPU fraction
    measured = image_use_case()
    measured_baseline = simulate_heterogeneous(measured.items(BATCH), config)
    measured_ncpu = simulate_ncpu(measured.items(BATCH), n_cores=2,
                                  config=config)
    result.add("measured-workload baseline BNN utilization",
               measured_baseline.utilizations()["bnn"] * 100, unit="%")
    result.add("measured-workload NCPU utilization",
               min(measured_ncpu.utilizations().values()) * 100, unit="%")
    result.notes = (
        "Paper rows use the paper's 76 % CPU fraction; the measured-workload "
        "rows use our assembly pipeline's cycle counts (whose CPU share is "
        "higher, see Fig 15), making the baseline accelerator even idler."
    )
    return result
