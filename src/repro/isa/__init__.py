"""RV32I + NCPU-extension ISA: encoding, assembly, disassembly.

Public surface:

* :func:`repro.isa.assemble` — assemble source text into a :class:`Program`.
* :func:`repro.isa.encode` / :func:`repro.isa.decode` — word-level codec.
* :data:`repro.isa.RV32I_BASE_NAMES` — the paper's 37 base instructions.
* :data:`repro.isa.NCPU_EXTENSION_NAMES` — the 5 custom NCPU instructions.
"""

from repro.isa.assembler import Assembler, assemble
from repro.isa.disassembler import disassemble, disassemble_word, format_instr
from repro.isa.instructions import (
    NCPU_EXTENSION_NAMES,
    RV32I_BASE_NAMES,
    SPECS,
    SPECS_BY_NAME,
    DecodedInstr,
    InstrSpec,
    decode,
    encode,
)
from repro.isa.program import Program

__all__ = [
    "Assembler",
    "assemble",
    "disassemble",
    "disassemble_word",
    "format_instr",
    "DecodedInstr",
    "InstrSpec",
    "decode",
    "encode",
    "SPECS",
    "SPECS_BY_NAME",
    "RV32I_BASE_NAMES",
    "NCPU_EXTENSION_NAMES",
    "Program",
]
