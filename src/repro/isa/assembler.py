"""A two-pass assembler for RV32I plus the NCPU custom extension.

Supported syntax (one statement per line):

* labels: ``loop:`` (may share a line with an instruction),
* comments: everything after ``#`` or ``;``,
* registers: ``x0``-``x31`` or ABI names (``zero ra sp gp tp t0-t6 s0-s11
  a0-a7 fp``),
* loads/stores: ``lw rd, off(rs1)``,
* branches/jumps take either a numeric byte offset or a label,
* directives: ``.org ADDR`` (move the location counter forward),
  ``.align [N]``, ``.word V[, V...]``, ``.byte``/``.half`` (packed
  little-endian, word-padded), ``.ascii "s"``/``.asciz "s"``,
  ``.equ NAME, EXPR`` / ``.set NAME, EXPR`` (symbolic constants),
* immediate operands accept expressions: integers, symbols, ``sym+4``,
  ``sym-8``, and the relocation operators ``%hi(EXPR)`` / ``%lo(EXPR)``,
* pseudo-instructions: ``nop li la mv not neg j jr ret call halt
  beqz bnez blez bgez bltz bgtz bgt ble bgtu bleu seqz snez``,
* NCPU extension: ``mv_neu IDX, rs1``; ``trans_bnn [imm]``;
  ``trigger_bnn [imm]``; ``sw_l2 rs2, off(rs1)``; ``lw_l2 rd, off(rs1)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.isa.instructions import SPECS_BY_NAME, encode
from repro.isa.program import Program

ABI_NAMES: Dict[str, int] = {"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4, "fp": 8}
ABI_NAMES.update({f"x{i}": i for i in range(32)})
ABI_NAMES.update({f"t{i}": n for i, n in enumerate([5, 6, 7, 28, 29, 30, 31])})
ABI_NAMES.update({f"s{i}": n for i, n in enumerate([8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27])})
ABI_NAMES.update({f"a{i}": 10 + i for i in range(8)})

_MEM_OPERAND_RE = re.compile(r"^(?P<off>[^()]*)\((?P<base>[a-zA-Z0-9]+)\)$")
_LABEL_RE = re.compile(r"^[A-Za-z_.][A-Za-z0-9_.$]*$")


def parse_register(token: str) -> int:
    reg = ABI_NAMES.get(token.strip().lower())
    if reg is None:
        raise AssemblerError(f"unknown register {token!r}")
    return reg


def parse_int(token: str) -> int:
    token = token.strip().lower().replace("_", "")
    try:
        if token.startswith("0x") or token.startswith("-0x"):
            return int(token, 16)
        if token.startswith("0b") or token.startswith("-0b"):
            return int(token, 2)
        return int(token, 10)
    except ValueError:
        raise AssemblerError(f"cannot parse integer {token!r}") from None


_HI_LO_RE = re.compile(r"^%(?P<op>hi|lo)\((?P<body>.+)\)$")


def evaluate_expression(token: str, symbols: Dict[str, int]) -> int:
    """Evaluate an immediate expression: int, symbol, sum/difference chain,
    or a %hi()/%lo() relocation operator."""
    token = token.strip()
    match = _HI_LO_RE.match(token)
    if match:
        value = evaluate_expression(match.group("body"), symbols) & 0xFFFFFFFF
        hi, lo = _split_hi_lo(value)
        return hi if match.group("op") == "hi" else lo
    # split a +/- chain, respecting a leading sign
    terms = re.findall(r"[+-]?[^+-]+", token.replace(" ", ""))
    if not terms:
        raise AssemblerError(f"empty expression {token!r}")
    total = 0
    for term in terms:
        sign = 1
        if term[0] == "+":
            term = term[1:]
        elif term[0] == "-":
            sign, term = -1, term[1:]
        if term in symbols:
            total += sign * symbols[term]
            continue
        try:
            total += sign * parse_int(term)
        except AssemblerError:
            raise AssemblerError(
                f"cannot evaluate term {term!r} in expression {token!r}"
            ) from None
    return total


def _encode_string_literal(text: str, zero_terminate: bool) -> bytes:
    text = text.strip()
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise AssemblerError(f"expected a quoted string, got {text!r}")
    decoded = text[1:-1].encode().decode("unicode_escape").encode("latin-1")
    return decoded + (b"\x00" if zero_terminate else b"")


@dataclass
class _Statement:
    """One parsed source statement pending encoding."""

    mnemonic: str
    operands: List[str]
    address: int
    line_number: int
    line_text: str


def _strip_comment(line: str) -> str:
    for marker in ("#", ";", "//"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def _li_expansion_size(value: int) -> int:
    value &= 0xFFFFFFFF
    signed = value - (1 << 32) if value >= (1 << 31) else value
    return 1 if -2048 <= signed <= 2047 else 2


def _split_hi_lo(value: int) -> Tuple[int, int]:
    """Split a 32-bit value into (lui_hi20, addi_lo12) with lo sign-compensation."""
    value &= 0xFFFFFFFF
    lo = value & 0xFFF
    if lo >= 0x800:
        lo -= 0x1000
    hi = ((value - lo) >> 12) & 0xFFFFF
    return hi, lo


class Assembler:
    """Two-pass assembler producing a :class:`~repro.isa.program.Program`."""

    def __init__(self, base: int = 0):
        self.base = base

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def assemble(self, source: str) -> Program:
        statements, symbols, end_addr = self._first_pass(source)
        words: Dict[int, int] = {}
        for stmt in statements:
            try:
                encoded = self._encode_statement(stmt, symbols)
            except AssemblerError:
                raise
            except Exception as exc:
                raise AssemblerError(str(exc), stmt.line_number, stmt.line_text) from exc
            for offset, word in enumerate(encoded):
                words[stmt.address + 4 * offset] = word

        flat = [words.get(addr, 0) for addr in range(self.base, end_addr, 4)]
        return Program(words=flat, symbols=symbols, base=self.base, source=source)

    # ------------------------------------------------------------------
    # pass 1: layout and symbol resolution
    # ------------------------------------------------------------------
    def _first_pass(self, source: str):
        statements: List[_Statement] = []
        symbols: Dict[str, int] = {}
        counter = self.base

        for line_number, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw)
            while line:
                if ":" in line:
                    head, _, tail = line.partition(":")
                    if _LABEL_RE.match(head.strip()) and "(" not in head:
                        label = head.strip()
                        if label in symbols:
                            raise AssemblerError(
                                f"duplicate label {label!r}", line_number, raw.strip()
                            )
                        symbols[label] = counter
                        line = tail.strip()
                        continue
                break
            if not line:
                continue

            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            if mnemonic in (".ascii", ".asciz"):
                operands = [parts[1].strip()] if len(parts) > 1 else []
            else:
                operands = _split_operands(parts[1]) if len(parts) > 1 else []
            stmt = _Statement(mnemonic, operands, counter, line_number, raw.strip())

            if mnemonic in (".equ", ".set"):
                if len(operands) != 2:
                    raise AssemblerError(f"{mnemonic} needs NAME, EXPR",
                                         line_number, raw.strip())
                name = operands[0]
                if not _LABEL_RE.match(name):
                    raise AssemblerError(f"bad constant name {name!r}",
                                         line_number, raw.strip())
                if name in symbols:
                    raise AssemblerError(f"duplicate symbol {name!r}",
                                         line_number, raw.strip())
                symbols[name] = evaluate_expression(operands[1], symbols)
                continue
            if mnemonic == ".org":
                target = evaluate_expression(operands[0], symbols)
                if target < counter:
                    raise AssemblerError(
                        f".org target {target:#x} behind location counter {counter:#x}",
                        line_number,
                        raw.strip(),
                    )
                counter = target
                continue
            if mnemonic == ".align":
                boundary = evaluate_expression(operands[0], symbols) if operands else 4
                while counter % boundary:
                    counter += 1
                continue

            statements.append(stmt)
            counter += 4 * self._statement_size(stmt)

        return statements, symbols, counter

    def _statement_size(self, stmt: _Statement) -> int:
        name = stmt.mnemonic
        if name == ".word":
            return len(stmt.operands)
        if name == ".byte":
            return (len(stmt.operands) + 3) // 4
        if name == ".half":
            return (len(stmt.operands) + 1) // 2
        if name in (".ascii", ".asciz"):
            data = _encode_string_literal(stmt.operands[0], name == ".asciz")
            return (len(data) + 3) // 4
        if name == "la":
            return 2
        if name == "li":
            if len(stmt.operands) != 2:
                raise AssemblerError("li needs 2 operands", stmt.line_number, stmt.line_text)
            try:
                return _li_expansion_size(parse_int(stmt.operands[1]))
            except AssemblerError:
                return 2  # symbolic immediate: reserve the full expansion
        if name == "call":
            return 1
        return 1

    # ------------------------------------------------------------------
    # pass 2: encoding
    # ------------------------------------------------------------------
    def _encode_statement(self, stmt: _Statement, symbols: Dict[str, int]) -> List[int]:
        name = stmt.mnemonic
        ops = stmt.operands

        if name == ".word":
            return [evaluate_expression(op, symbols) & 0xFFFFFFFF for op in ops]
        if name in (".byte", ".half", ".ascii", ".asciz"):
            if name == ".byte":
                data = b"".join(
                    (evaluate_expression(op, symbols) & 0xFF).to_bytes(1, "little")
                    for op in ops)
            elif name == ".half":
                data = b"".join(
                    (evaluate_expression(op, symbols) & 0xFFFF).to_bytes(2, "little")
                    for op in ops)
            else:
                data = _encode_string_literal(ops[0], name == ".asciz")
            data += b"\x00" * (-len(data) % 4)
            return [int.from_bytes(data[i:i + 4], "little")
                    for i in range(0, len(data), 4)]

        expansion = self._expand_pseudo(name, ops, stmt, symbols)
        if expansion is not None:
            words: List[int] = []
            for index, (sub_name, sub_ops) in enumerate(expansion):
                sub = _Statement(sub_name, sub_ops, stmt.address + 4 * index,
                                 stmt.line_number, stmt.line_text)
                words.extend(self._encode_one(sub, symbols))
            return words
        return self._encode_one(stmt, symbols)

    def _expand_pseudo(
        self, name: str, ops: List[str], stmt: _Statement, symbols: Dict[str, int]
    ) -> Optional[List[Tuple[str, List[str]]]]:
        if name == "nop":
            return [("addi", ["x0", "x0", "0"])]
        if name == "halt":
            return [("ebreak", [])]
        if name == "mv":
            return [("addi", [ops[0], ops[1], "0"])]
        if name == "not":
            return [("xori", [ops[0], ops[1], "-1"])]
        if name == "neg":
            return [("sub", [ops[0], "x0", ops[1]])]
        if name == "seqz":
            return [("sltiu", [ops[0], ops[1], "1"])]
        if name == "snez":
            return [("sltu", [ops[0], "x0", ops[1]])]
        if name == "j":
            return [("jal", ["x0", ops[0]])]
        if name == "jr":
            return [("jalr", ["x0", ops[0], "0"])]
        if name == "ret":
            return [("jalr", ["x0", "ra", "0"])]
        if name == "call":
            return [("jal", ["ra", ops[0]])]
        if name == "beqz":
            return [("beq", [ops[0], "x0", ops[1]])]
        if name == "bnez":
            return [("bne", [ops[0], "x0", ops[1]])]
        if name == "blez":
            return [("bge", ["x0", ops[0], ops[1]])]
        if name == "bgez":
            return [("bge", [ops[0], "x0", ops[1]])]
        if name == "bltz":
            return [("blt", [ops[0], "x0", ops[1]])]
        if name == "bgtz":
            return [("blt", ["x0", ops[0], ops[1]])]
        if name == "bgt":
            return [("blt", [ops[1], ops[0], ops[2]])]
        if name == "ble":
            return [("bge", [ops[1], ops[0], ops[2]])]
        if name == "bgtu":
            return [("bltu", [ops[1], ops[0], ops[2]])]
        if name == "bleu":
            return [("bgeu", [ops[1], ops[0], ops[2]])]
        if name == "li":
            try:
                value = parse_int(ops[1])
                small = _li_expansion_size(value) == 1
            except AssemblerError:
                # symbolic immediate: pass 1 reserved the full expansion
                value = evaluate_expression(ops[1], symbols)
                small = False
            if small:
                wrapped = value & 0xFFFFFFFF
                signed = wrapped - (1 << 32) if wrapped >= (1 << 31) else wrapped
                return [("addi", [ops[0], "x0", str(signed)])]
            hi, lo = _split_hi_lo(value)
            return [("lui", [ops[0], str(hi)]), ("addi", [ops[0], ops[0], str(lo)])]
        if name == "la":
            if ops[1] not in symbols:
                raise AssemblerError(f"unknown label {ops[1]!r}", stmt.line_number,
                                     stmt.line_text)
            hi, lo = _split_hi_lo(symbols[ops[1]])
            return [("lui", [ops[0], str(hi)]), ("addi", [ops[0], ops[0], str(lo)])]
        return None

    def _resolve_target(self, token: str, stmt: _Statement, symbols: Dict[str, int]) -> int:
        """Return a PC-relative byte offset for a branch/jump operand.

        Bare numbers are relative offsets; anything naming a symbol
        (including ``label+4`` expressions) is an absolute address.
        """
        token = token.strip()
        if token in symbols:
            return symbols[token] - stmt.address
        try:
            return parse_int(token)
        except AssemblerError:
            pass
        try:
            value = evaluate_expression(token, symbols)
        except AssemblerError:
            raise AssemblerError(
                f"unknown branch target {token!r}", stmt.line_number, stmt.line_text
            ) from None
        names = re.findall(r"[A-Za-z_.][A-Za-z0-9_.$]*", token)
        if any(name in symbols for name in names):
            return value - stmt.address
        return value

    def _encode_one(self, stmt: _Statement, symbols: Dict[str, int]) -> List[int]:
        name = stmt.mnemonic
        ops = stmt.operands
        spec = SPECS_BY_NAME.get(name)
        if spec is None:
            raise AssemblerError(f"unknown mnemonic {name!r}", stmt.line_number, stmt.line_text)

        def need(count: int):
            if len(ops) != count:
                raise AssemblerError(
                    f"{name} expects {count} operands, got {len(ops)}",
                    stmt.line_number,
                    stmt.line_text,
                )

        if name == "ebreak":
            return [encode("ebreak")]

        if name in ("lui", "auipc"):
            need(2)
            imm = evaluate_expression(ops[1], symbols)
            return [encode(name, rd=parse_register(ops[0]), imm=imm & 0xFFFFF)]

        if name == "jal":
            if len(ops) == 1:
                ops = ["ra", ops[0]]
            need_count = 2
            if len(ops) != need_count:
                raise AssemblerError("jal expects [rd,] target", stmt.line_number, stmt.line_text)
            offset = self._resolve_target(ops[1], stmt, symbols)
            return [encode("jal", rd=parse_register(ops[0]), imm=offset)]

        if name == "jalr":
            if len(ops) == 2 and "(" in ops[1]:
                off, base = self._parse_mem_operand(ops[1], stmt, symbols)
                return [encode("jalr", rd=parse_register(ops[0]), rs1=base, imm=off)]
            need(3)
            return [encode("jalr", rd=parse_register(ops[0]), rs1=parse_register(ops[1]),
                           imm=evaluate_expression(ops[2], symbols))]

        if spec.is_branch:
            need(3)
            offset = self._resolve_target(ops[2], stmt, symbols)
            return [encode(name, rs1=parse_register(ops[0]), rs2=parse_register(ops[1]),
                           imm=offset)]

        if spec.is_load and name != "lw_l2":
            need(2)
            off, base = self._parse_mem_operand(ops[1], stmt, symbols)
            return [encode(name, rd=parse_register(ops[0]), rs1=base, imm=off)]

        if spec.is_store and name != "sw_l2":
            need(2)
            off, base = self._parse_mem_operand(ops[1], stmt, symbols)
            return [encode(name, rs2=parse_register(ops[0]), rs1=base, imm=off)]

        if name in ("addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai"):
            need(3)
            return [encode(name, rd=parse_register(ops[0]), rs1=parse_register(ops[1]),
                           imm=evaluate_expression(ops[2], symbols))]

        if spec.fmt == "R" and not spec.is_custom:
            need(3)
            return [encode(name, rd=parse_register(ops[0]), rs1=parse_register(ops[1]),
                           rs2=parse_register(ops[2]))]

        # --- NCPU custom extension ------------------------------------
        if name == "mv_neu":
            need(2)
            index = evaluate_expression(ops[0], symbols)
            if not 0 <= index <= 31:
                raise AssemblerError(f"transition neuron index {index} out of range [0, 31]",
                                     stmt.line_number, stmt.line_text)
            return [encode("mv_neu", rd=index, rs1=parse_register(ops[1]))]
        if name in ("trans_bnn", "trigger_bnn"):
            imm = evaluate_expression(ops[0], symbols) if ops else 0
            return [encode(name, imm=imm)]
        if name == "sw_l2":
            need(2)
            off, base = self._parse_mem_operand(ops[1], stmt, symbols)
            return [encode("sw_l2", rs2=parse_register(ops[0]), rs1=base, imm=off)]
        if name == "lw_l2":
            need(2)
            off, base = self._parse_mem_operand(ops[1], stmt, symbols)
            return [encode("lw_l2", rd=parse_register(ops[0]), rs1=base, imm=off)]

        raise AssemblerError(f"cannot encode {name!r}", stmt.line_number, stmt.line_text)

    def _parse_mem_operand(self, token: str, stmt: _Statement,
                           symbols: Dict[str, int] | None = None) -> Tuple[int, int]:
        match = _MEM_OPERAND_RE.match(token.strip())
        if not match:
            raise AssemblerError(f"bad memory operand {token!r}", stmt.line_number,
                                 stmt.line_text)
        off_text = match.group("off").strip()
        if not off_text:
            offset = 0
        elif symbols is not None:
            offset = evaluate_expression(off_text, symbols)
        else:
            offset = parse_int(off_text)
        return offset, parse_register(match.group("base"))


def assemble(source: str, base: int = 0) -> Program:
    """Assemble ``source`` into a :class:`Program` (convenience wrapper)."""
    return Assembler(base=base).assemble(source)
