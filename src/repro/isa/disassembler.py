"""Disassembler: turn machine words back into readable assembly."""

from __future__ import annotations

from typing import Iterable, List

from repro.isa.instructions import DecodedInstr, decode

_REG_NAMES = ["x%d" % i for i in range(32)]


def format_instr(instr: DecodedInstr) -> str:
    """Render one decoded instruction in the assembler's input syntax."""
    name = instr.name
    rd, rs1, rs2, imm = (_REG_NAMES[instr.rd], _REG_NAMES[instr.rs1],
                         _REG_NAMES[instr.rs2], instr.imm)
    spec = instr.spec

    if name == "ebreak":
        return "ebreak"
    if name in ("lui", "auipc"):
        return f"{name} {rd}, {(imm >> 12) & 0xFFFFF:#x}"
    if name == "jal":
        return f"jal {rd}, {imm}"
    if name == "jalr":
        return f"jalr {rd}, {rs1}, {imm}"
    if spec.is_branch:
        return f"{name} {rs1}, {rs2}, {imm}"
    if name == "mv_neu":
        return f"mv_neu {instr.rd}, {rs1}"
    if name in ("trans_bnn", "trigger_bnn"):
        return f"{name} {imm}"
    if spec.is_load:
        return f"{name} {rd}, {imm}({rs1})"
    if spec.is_store:
        return f"{name} {rs2}, {imm}({rs1})"
    if spec.fmt == "R":
        return f"{name} {rd}, {rs1}, {rs2}"
    return f"{name} {rd}, {rs1}, {imm}"


def disassemble_word(word: int) -> str:
    """Disassemble one 32-bit word (``.word`` fallback on decode failure)."""
    try:
        return format_instr(decode(word))
    except Exception:
        return f".word {word:#010x}"


def disassemble(words: Iterable[int], base: int = 0) -> List[str]:
    """Disassemble a word sequence into ``addr: text`` lines."""
    lines = []
    for index, word in enumerate(words):
        lines.append(f"{base + 4 * index:#06x}: {disassemble_word(word)}")
    return lines
