"""Bit-level encoding helpers for the RV32I instruction formats.

RISC-V instructions are 32-bit words composed of fixed fields.  This module
provides the pure bit-manipulation layer: field extraction/insertion, sign
extension, and the per-format immediate scramble/descramble functions.  The
instruction *semantics* live in :mod:`repro.isa.instructions`.
"""

from __future__ import annotations

from repro.errors import EncodingError

WORD_MASK = 0xFFFF_FFFF

# Field positions shared by every format.
OPCODE_LO, OPCODE_HI = 0, 6
RD_LO, RD_HI = 7, 11
FUNCT3_LO, FUNCT3_HI = 12, 14
RS1_LO, RS1_HI = 15, 19
RS2_LO, RS2_HI = 20, 24
FUNCT7_LO, FUNCT7_HI = 25, 31


def bits(word: int, hi: int, lo: int) -> int:
    """Extract the inclusive bit range ``[hi:lo]`` of ``word``."""
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    return (word >> lo) & ((1 << (hi - lo + 1)) - 1)


def set_bits(word: int, hi: int, lo: int, value: int) -> int:
    """Return ``word`` with the inclusive range ``[hi:lo]`` replaced by ``value``."""
    width = hi - lo + 1
    mask = (1 << width) - 1
    if value & ~mask:
        raise EncodingError(f"value {value:#x} does not fit in {width} bits")
    return (word & ~(mask << lo)) | (value << lo)


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as a two's-complement number."""
    value &= (1 << width) - 1
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def to_unsigned32(value: int) -> int:
    """Wrap a Python int to an unsigned 32-bit value."""
    return value & WORD_MASK


def to_signed32(value: int) -> int:
    """Wrap a Python int to a signed 32-bit value."""
    return sign_extend(value, 32)


def _check_signed_range(value: int, width: int, what: str) -> None:
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"{what} {value} out of range [{lo}, {hi}]")


# ---------------------------------------------------------------------------
# Immediate encoders: take a signed immediate, return the bits to OR into the
# instruction word.  Immediate decoders: take the instruction word, return the
# sign-extended immediate.
# ---------------------------------------------------------------------------

def encode_imm_i(imm: int) -> int:
    """I-type: imm[11:0] -> inst[31:20]."""
    _check_signed_range(imm, 12, "I-immediate")
    return (imm & 0xFFF) << 20


def decode_imm_i(word: int) -> int:
    return sign_extend(bits(word, 31, 20), 12)


def encode_imm_s(imm: int) -> int:
    """S-type: imm[11:5] -> inst[31:25], imm[4:0] -> inst[11:7]."""
    _check_signed_range(imm, 12, "S-immediate")
    imm &= 0xFFF
    return ((imm >> 5) << 25) | ((imm & 0x1F) << 7)


def decode_imm_s(word: int) -> int:
    raw = (bits(word, 31, 25) << 5) | bits(word, 11, 7)
    return sign_extend(raw, 12)


def encode_imm_b(imm: int) -> int:
    """B-type: a 13-bit signed, 2-byte-aligned branch offset."""
    _check_signed_range(imm, 13, "B-immediate")
    if imm % 2:
        raise EncodingError(f"branch offset {imm} must be 2-byte aligned")
    imm &= 0x1FFF
    word = 0
    word = set_bits(word, 31, 31, (imm >> 12) & 1)
    word = set_bits(word, 30, 25, (imm >> 5) & 0x3F)
    word = set_bits(word, 11, 8, (imm >> 1) & 0xF)
    word = set_bits(word, 7, 7, (imm >> 11) & 1)
    return word


def decode_imm_b(word: int) -> int:
    raw = (
        (bits(word, 31, 31) << 12)
        | (bits(word, 7, 7) << 11)
        | (bits(word, 30, 25) << 5)
        | (bits(word, 11, 8) << 1)
    )
    return sign_extend(raw, 13)


def encode_imm_u(imm: int) -> int:
    """U-type: imm[31:12] -> inst[31:12]; accepts the *upper* 20-bit value."""
    if not 0 <= imm <= 0xFFFFF:
        raise EncodingError(f"U-immediate {imm:#x} out of range [0, 0xFFFFF]")
    return imm << 12


def decode_imm_u(word: int) -> int:
    """Return the U-type immediate already shifted into position (bits 31:12)."""
    return to_signed32(word & 0xFFFFF000)


def encode_imm_j(imm: int) -> int:
    """J-type: a 21-bit signed, 2-byte-aligned jump offset."""
    _check_signed_range(imm, 21, "J-immediate")
    if imm % 2:
        raise EncodingError(f"jump offset {imm} must be 2-byte aligned")
    imm &= 0x1FFFFF
    word = 0
    word = set_bits(word, 31, 31, (imm >> 20) & 1)
    word = set_bits(word, 30, 21, (imm >> 1) & 0x3FF)
    word = set_bits(word, 20, 20, (imm >> 11) & 1)
    word = set_bits(word, 19, 12, (imm >> 12) & 0xFF)
    return word


def decode_imm_j(word: int) -> int:
    raw = (
        (bits(word, 31, 31) << 20)
        | (bits(word, 19, 12) << 12)
        | (bits(word, 20, 20) << 11)
        | (bits(word, 30, 21) << 1)
    )
    return sign_extend(raw, 21)


IMM_ENCODERS = {
    "I": encode_imm_i,
    "S": encode_imm_s,
    "B": encode_imm_b,
    "U": encode_imm_u,
    "J": encode_imm_j,
}

IMM_DECODERS = {
    "I": decode_imm_i,
    "S": decode_imm_s,
    "B": decode_imm_b,
    "U": decode_imm_u,
    "J": decode_imm_j,
}
