"""Instruction specifications for RV32I plus the NCPU custom extension.

The NCPU (paper section V.B) supports the 37 RV32I base instructions (the
computational subset: no FENCE/ECALL; EBREAK is kept as the simulator halt
convention) and five custom instructions that drive the reconfigurable core:

``Mv_Neu``      move a register value into a transition neuron (BNN config).
``Trans_BNN``   switch the core from CPU mode into BNN inference mode.
``Trigger_BNN`` launch a *separate* BNN accelerator core (heterogeneous
                baseline operation, used for the paper's comparisons).
``Sw_L2`` / ``Lw_L2``  write-through store / load directly against the shared
                global L2 memory, bypassing the local data cache.

Custom instructions use the RISC-V *custom-0* major opcode (0b0001011) with
funct3 selecting the operation, so they never collide with base RV32I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import DecodingError, EncodingError
from repro.isa import encoding as enc

OPCODE_LUI = 0b0110111
OPCODE_AUIPC = 0b0010111
OPCODE_JAL = 0b1101111
OPCODE_JALR = 0b1100111
OPCODE_BRANCH = 0b1100011
OPCODE_LOAD = 0b0000011
OPCODE_STORE = 0b0100011
OPCODE_OP_IMM = 0b0010011
OPCODE_OP = 0b0110011
OPCODE_SYSTEM = 0b1110011
OPCODE_NCPU = 0b0001011  # custom-0


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one instruction."""

    name: str
    fmt: str  # one of R, I, S, B, U, J
    opcode: int
    funct3: Optional[int] = None
    funct7: Optional[int] = None
    is_custom: bool = False

    @property
    def is_load(self) -> bool:
        return self.opcode == OPCODE_LOAD or self.name == "lw_l2"

    @property
    def is_store(self) -> bool:
        return self.opcode == OPCODE_STORE or self.name == "sw_l2"

    @property
    def is_branch(self) -> bool:
        return self.opcode == OPCODE_BRANCH

    @property
    def is_jump(self) -> bool:
        return self.name in ("jal", "jalr")

    @property
    def writes_rd(self) -> bool:
        # mv_neu's rd field addresses a transition neuron, not a register.
        return self.fmt in ("R", "I", "U", "J") and self.name not in (
            "ebreak",
            "trans_bnn",
            "trigger_bnn",
            "mv_neu",
        )

    @property
    def reads_rs1(self) -> bool:
        return self.fmt in ("R", "I", "S", "B") and self.name not in ("ebreak",)

    @property
    def reads_rs2(self) -> bool:
        return self.fmt in ("R", "S", "B")


def _make_specs() -> Tuple[InstrSpec, ...]:
    specs = [
        InstrSpec("lui", "U", OPCODE_LUI),
        InstrSpec("auipc", "U", OPCODE_AUIPC),
        InstrSpec("jal", "J", OPCODE_JAL),
        InstrSpec("jalr", "I", OPCODE_JALR, funct3=0b000),
        InstrSpec("beq", "B", OPCODE_BRANCH, funct3=0b000),
        InstrSpec("bne", "B", OPCODE_BRANCH, funct3=0b001),
        InstrSpec("blt", "B", OPCODE_BRANCH, funct3=0b100),
        InstrSpec("bge", "B", OPCODE_BRANCH, funct3=0b101),
        InstrSpec("bltu", "B", OPCODE_BRANCH, funct3=0b110),
        InstrSpec("bgeu", "B", OPCODE_BRANCH, funct3=0b111),
        InstrSpec("lb", "I", OPCODE_LOAD, funct3=0b000),
        InstrSpec("lh", "I", OPCODE_LOAD, funct3=0b001),
        InstrSpec("lw", "I", OPCODE_LOAD, funct3=0b010),
        InstrSpec("lbu", "I", OPCODE_LOAD, funct3=0b100),
        InstrSpec("lhu", "I", OPCODE_LOAD, funct3=0b101),
        InstrSpec("sb", "S", OPCODE_STORE, funct3=0b000),
        InstrSpec("sh", "S", OPCODE_STORE, funct3=0b001),
        InstrSpec("sw", "S", OPCODE_STORE, funct3=0b010),
        InstrSpec("addi", "I", OPCODE_OP_IMM, funct3=0b000),
        InstrSpec("slti", "I", OPCODE_OP_IMM, funct3=0b010),
        InstrSpec("sltiu", "I", OPCODE_OP_IMM, funct3=0b011),
        InstrSpec("xori", "I", OPCODE_OP_IMM, funct3=0b100),
        InstrSpec("ori", "I", OPCODE_OP_IMM, funct3=0b110),
        InstrSpec("andi", "I", OPCODE_OP_IMM, funct3=0b111),
        InstrSpec("slli", "I", OPCODE_OP_IMM, funct3=0b001, funct7=0b0000000),
        InstrSpec("srli", "I", OPCODE_OP_IMM, funct3=0b101, funct7=0b0000000),
        InstrSpec("srai", "I", OPCODE_OP_IMM, funct3=0b101, funct7=0b0100000),
        InstrSpec("add", "R", OPCODE_OP, funct3=0b000, funct7=0b0000000),
        InstrSpec("sub", "R", OPCODE_OP, funct3=0b000, funct7=0b0100000),
        InstrSpec("sll", "R", OPCODE_OP, funct3=0b001, funct7=0b0000000),
        InstrSpec("slt", "R", OPCODE_OP, funct3=0b010, funct7=0b0000000),
        InstrSpec("sltu", "R", OPCODE_OP, funct3=0b011, funct7=0b0000000),
        InstrSpec("xor", "R", OPCODE_OP, funct3=0b100, funct7=0b0000000),
        InstrSpec("srl", "R", OPCODE_OP, funct3=0b101, funct7=0b0000000),
        InstrSpec("sra", "R", OPCODE_OP, funct3=0b101, funct7=0b0100000),
        InstrSpec("or", "R", OPCODE_OP, funct3=0b110, funct7=0b0000000),
        InstrSpec("and", "R", OPCODE_OP, funct3=0b111, funct7=0b0000000),
        # The paper's NCPU also implements a multiplier out of the neuron
        # adders (section IV.A, "a multiplier is also realized at the
        # Execution stages"), so MUL from the M extension is supported.
        InstrSpec("mul", "R", OPCODE_OP, funct3=0b000, funct7=0b0000001),
        # Halt convention for the simulator (not counted in the 37).
        InstrSpec("ebreak", "I", OPCODE_SYSTEM, funct3=0b000),
        # NCPU custom extension (custom-0 opcode, funct3-selected).
        InstrSpec("mv_neu", "R", OPCODE_NCPU, funct3=0b000, funct7=0b0000000,
                  is_custom=True),
        InstrSpec("trans_bnn", "I", OPCODE_NCPU, funct3=0b001, is_custom=True),
        InstrSpec("trigger_bnn", "I", OPCODE_NCPU, funct3=0b010, is_custom=True),
        InstrSpec("sw_l2", "S", OPCODE_NCPU, funct3=0b011, is_custom=True),
        InstrSpec("lw_l2", "I", OPCODE_NCPU, funct3=0b100, is_custom=True),
    ]
    return tuple(specs)


SPECS: Tuple[InstrSpec, ...] = _make_specs()
SPECS_BY_NAME: Dict[str, InstrSpec] = {s.name: s for s in SPECS}

#: The 37 RV32I base instructions the paper claims support for (Fig 11b).
RV32I_BASE_NAMES: Tuple[str, ...] = tuple(
    s.name for s in SPECS
    if not s.is_custom and s.name not in ("ebreak", "mul")
)

NCPU_EXTENSION_NAMES: Tuple[str, ...] = tuple(s.name for s in SPECS if s.is_custom)


def _lookup_key(spec: InstrSpec) -> Tuple:
    return (spec.opcode, spec.funct3, spec.funct7)


_DECODE_TABLE: Dict[Tuple, InstrSpec] = {}
for _spec in SPECS:
    _DECODE_TABLE[_lookup_key(_spec)] = _spec


def encode(name: str, rd: int = 0, rs1: int = 0, rs2: int = 0, imm: int = 0) -> int:
    """Encode an instruction into a 32-bit word.

    ``imm`` is interpreted per the instruction's format: byte offsets for
    loads/stores/branches/jumps, the upper 20-bit value for LUI/AUIPC, and the
    shift amount for SLLI/SRLI/SRAI.
    """
    spec = SPECS_BY_NAME.get(name)
    if spec is None:
        raise EncodingError(f"unknown instruction {name!r}")
    for reg, label in ((rd, "rd"), (rs1, "rs1"), (rs2, "rs2")):
        if not 0 <= reg <= 31:
            raise EncodingError(f"{label}={reg} out of range for {name}")

    word = spec.opcode
    if spec.fmt == "R":
        word = enc.set_bits(word, 11, 7, rd)
        word = enc.set_bits(word, 14, 12, spec.funct3)
        word = enc.set_bits(word, 19, 15, rs1)
        word = enc.set_bits(word, 24, 20, rs2)
        word = enc.set_bits(word, 31, 25, spec.funct7)
    elif spec.fmt == "I":
        word = enc.set_bits(word, 11, 7, rd)
        if spec.funct3 is not None:
            word = enc.set_bits(word, 14, 12, spec.funct3)
        word = enc.set_bits(word, 19, 15, rs1)
        if name in ("slli", "srli", "srai"):
            if not 0 <= imm <= 31:
                raise EncodingError(f"shift amount {imm} out of range [0, 31]")
            word = enc.set_bits(word, 24, 20, imm)
            word = enc.set_bits(word, 31, 25, spec.funct7)
        elif name == "ebreak":
            word = enc.set_bits(word, 31, 20, 1)
        else:
            word |= enc.encode_imm_i(imm)
    elif spec.fmt == "S":
        if spec.funct3 is not None:
            word = enc.set_bits(word, 14, 12, spec.funct3)
        word = enc.set_bits(word, 19, 15, rs1)
        word = enc.set_bits(word, 24, 20, rs2)
        word |= enc.encode_imm_s(imm)
    elif spec.fmt == "B":
        word = enc.set_bits(word, 14, 12, spec.funct3)
        word = enc.set_bits(word, 19, 15, rs1)
        word = enc.set_bits(word, 24, 20, rs2)
        word |= enc.encode_imm_b(imm)
    elif spec.fmt == "U":
        word = enc.set_bits(word, 11, 7, rd)
        word |= enc.encode_imm_u(imm)
    elif spec.fmt == "J":
        word = enc.set_bits(word, 11, 7, rd)
        word |= enc.encode_imm_j(imm)
    else:  # pragma: no cover - the spec table only holds known formats
        raise EncodingError(f"unsupported format {spec.fmt}")
    return word


@dataclass(frozen=True)
class DecodedInstr:
    """A fully decoded instruction word."""

    spec: InstrSpec
    rd: int
    rs1: int
    rs2: int
    imm: int
    word: int

    @property
    def name(self) -> str:
        return self.spec.name

    def __str__(self) -> str:
        from repro.isa.disassembler import format_instr

        return format_instr(self)


def decode(word: int) -> DecodedInstr:
    """Decode a 32-bit word into a :class:`DecodedInstr`.

    Raises :class:`~repro.errors.DecodingError` if the word does not match any
    supported instruction.
    """
    word &= enc.WORD_MASK
    opcode = enc.bits(word, 6, 0)
    funct3 = enc.bits(word, 14, 12)
    funct7 = enc.bits(word, 31, 25)

    spec = (
        _DECODE_TABLE.get((opcode, funct3, funct7))
        or _DECODE_TABLE.get((opcode, funct3, None))
        or _DECODE_TABLE.get((opcode, None, None))
    )
    if spec is None:
        raise DecodingError(f"cannot decode word {word:#010x}")

    rd = enc.bits(word, 11, 7)
    rs1 = enc.bits(word, 19, 15)
    rs2 = enc.bits(word, 24, 20)

    if spec.fmt in ("R",):
        imm = 0
    elif spec.name in ("slli", "srli", "srai"):
        imm = rs2
    elif spec.fmt == "I":
        imm = enc.decode_imm_i(word)
    elif spec.fmt == "S":
        imm = enc.decode_imm_s(word)
    elif spec.fmt == "B":
        imm = enc.decode_imm_b(word)
    elif spec.fmt == "U":
        imm = enc.decode_imm_u(word)
    else:  # J
        imm = enc.decode_imm_j(word)

    return DecodedInstr(spec=spec, rd=rd, rs1=rs1, rs2=rs2, imm=imm, word=word)
