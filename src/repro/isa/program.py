"""Program container produced by the assembler and consumed by the simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.isa.instructions import DecodedInstr, decode


@dataclass
class Program:
    """An assembled program: a flat list of 32-bit words plus metadata.

    Attributes:
        words: machine-code words, one per 4-byte slot starting at ``base``.
        symbols: label name -> byte address.
        base: byte address of ``words[0]``.
        data: initial data memory contents, byte address -> 32-bit word.
        source: original assembly text (for diagnostics), may be empty.
    """

    words: List[int]
    symbols: Dict[str, int] = field(default_factory=dict)
    base: int = 0
    data: Dict[int, int] = field(default_factory=dict)
    source: str = ""

    def __len__(self) -> int:
        return len(self.words)

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.words)

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    def word_at(self, addr: int) -> int:
        """Return the instruction word at byte address ``addr``."""
        index = (addr - self.base) // 4
        if addr % 4 or not 0 <= index < len(self.words):
            raise IndexError(f"address {addr:#x} outside program [{self.base:#x}, {self.end:#x})")
        return self.words[index]

    def decoded(self) -> List[DecodedInstr]:
        """Decode every word (useful for inspection and tests)."""
        return [decode(w) for w in self.words]

    def address_of(self, label: str) -> int:
        try:
            return self.symbols[label]
        except KeyError:
            raise KeyError(f"unknown label {label!r}; known: {sorted(self.symbols)}") from None
