"""Logging-based status emitter for the CLI tools.

All progress chatter ("trace written", "3/18 experiments done") goes
through the ``repro`` logger to **stderr**, so machine-readable documents
on stdout (``--json``, ``--stats-json``, OpenMetrics) are never
interleaved with status lines.

Level resolution, first match wins:

1. ``--quiet`` -> ERROR
2. ``-v`` -> INFO, ``-vv`` -> DEBUG
3. ``REPRO_LOG=<level>`` (debug/info/warning/error, case-insensitive)
4. default WARNING
"""

from __future__ import annotations

import logging
import os
import sys
from typing import IO, Optional

#: environment variable selecting the default log level
LOG_ENV_VAR = "REPRO_LOG"

#: the root logger every repro module hangs off
LOGGER_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
}

#: marker attribute identifying handlers installed by :func:`configure_logging`
_HANDLER_MARK = "_repro_handler"


def get_logger(name: str = "") -> logging.Logger:
    """The ``repro`` logger (or a ``repro.<name>`` child)."""
    return logging.getLogger(f"{LOGGER_NAME}.{name}" if name else LOGGER_NAME)


def resolve_level(verbosity: int = 0, quiet: bool = False,
                  environ: Optional[dict] = None) -> int:
    """Map ``--quiet`` / ``-v`` counts / ``REPRO_LOG`` to a logging level."""
    if quiet:
        return logging.ERROR
    if verbosity >= 2:
        return logging.DEBUG
    if verbosity == 1:
        return logging.INFO
    env = os.environ if environ is None else environ
    name = env.get(LOG_ENV_VAR, "").strip().lower()
    return _LEVELS.get(name, logging.WARNING)


def configure_logging(verbosity: int = 0, quiet: bool = False,
                      stream: Optional[IO] = None) -> logging.Logger:
    """Install (or re-level) the stderr status handler; idempotent."""
    logger = get_logger()
    logger.setLevel(resolve_level(verbosity, quiet))
    target = stream if stream is not None else sys.stderr
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(target)
    handler.setFormatter(logging.Formatter("repro: %(message)s"))
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    logger.propagate = False
    return logger
