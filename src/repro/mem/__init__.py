"""Memory system: SRAM banks, address arbiter, NCPU memory map, DMA, L2."""

from repro.mem.arbiter import AddressArbiter
from repro.mem.bus import DEFAULT_L2_BYTES, SharedL2, SystemBus
from repro.mem.dma import (
    DEFAULT_WORDS_PER_CYCLE,
    DMAEngine,
    TRANSFER_SETUP_CYCLES,
    TransferRecord,
)
from repro.mem.memory_map import (
    BIAS_BYTES,
    CoreMode,
    I_CACHE_BYTES,
    IMAGE_BYTES,
    NCPUMemory,
    OUTPUT_BYTES,
    REGISTER_FILE_BYTES,
    W1_BYTES,
    W2_BYTES,
)
from repro.mem.sram import SRAMBank

__all__ = [
    "AddressArbiter",
    "SharedL2",
    "SystemBus",
    "DEFAULT_L2_BYTES",
    "DMAEngine",
    "TransferRecord",
    "DEFAULT_WORDS_PER_CYCLE",
    "TRANSFER_SETUP_CYCLES",
    "CoreMode",
    "NCPUMemory",
    "SRAMBank",
    "I_CACHE_BYTES",
    "IMAGE_BYTES",
    "OUTPUT_BYTES",
    "BIAS_BYTES",
    "W1_BYTES",
    "W2_BYTES",
    "REGISTER_FILE_BYTES",
]
