"""Address arbiter (paper Fig 4b).

In CPU mode all the BNN SRAM banks are stitched into one contiguous data
address space; the arbiter enables exactly one bank per access based on the
target address and leaves the rest clock-gated.  It implements the
:class:`repro.cpu.memory.DataMemory` protocol, so the CPU pipeline can use a
banked memory and a flat memory interchangeably.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError, MemoryError_
from repro.mem.sram import SRAMBank


class AddressArbiter:
    """Routes accesses to exactly one of several non-overlapping banks."""

    def __init__(self, banks: Sequence[SRAMBank]):
        if not banks:
            raise ConfigurationError("arbiter needs at least one bank")
        ordered = sorted(banks, key=lambda bank: bank.base)
        for left, right in zip(ordered, ordered[1:]):
            if left.base + left.size > right.base:
                raise ConfigurationError(
                    f"banks {left.name!r} and {right.name!r} overlap"
                )
        self.banks: List[SRAMBank] = list(ordered)
        self.routed_accesses = 0

    # ------------------------------------------------------------------
    def select(self, addr: int) -> SRAMBank:
        """The single bank enabled for ``addr``."""
        for bank in self.banks:
            if bank.contains(addr):
                return bank
        raise MemoryError_(
            f"address {addr:#x} hits no bank "
            f"(mapped: {[(b.name, hex(b.base), b.size) for b in self.banks]})"
        )

    def load(self, addr: int, size: int, signed: bool = False) -> int:
        self.routed_accesses += 1
        return self.select(addr).load(addr, size, signed=signed)

    def store(self, addr: int, value: int, size: int) -> None:
        self.routed_accesses += 1
        self.select(addr).store(addr, value, size)

    # convenience ------------------------------------------------------
    @property
    def total_size(self) -> int:
        return sum(bank.size for bank in self.banks)

    @property
    def span(self) -> tuple:
        return (self.banks[0].base, self.banks[-1].base + self.banks[-1].size)

    def bank_named(self, name: str) -> SRAMBank:
        for bank in self.banks:
            if bank.name == name:
                return bank
        raise KeyError(f"no bank named {name!r}")

    def access_counts(self) -> dict:
        return {bank.name: bank.accesses for bank in self.banks}
