"""Shared L2 memory and the chip-level data bus (paper Fig 6).

The two-core NCPU SoC shares an *incoherent* L2: cores reach it only through
the explicit write-through ``sw_l2`` / ``lw_l2`` instructions, and bulk data
moves via the DMA engine.  There is deliberately no hardware coherence — the
paper adopts software-managed data placement (section V.A).
"""

from __future__ import annotations

from repro.cpu.memory import FlatMemory
from repro.errors import ConfigurationError

KB = 1024

#: shared L2 capacity of the fabricated chip's global memory
DEFAULT_L2_BYTES = 16 * KB


class SharedL2(FlatMemory):
    """The incoherent shared global memory."""

    def __init__(self, size: int = DEFAULT_L2_BYTES):
        super().__init__(size=size, base=0)


class SystemBus:
    """Arbitrates core and DMA access to the shared L2.

    The model is deliberately simple: the bus tracks how many words each
    client moved so the energy model can charge bus transactions; timing
    serialization is handled by the discrete-event scheduler.
    """

    def __init__(self, l2: SharedL2):
        self.l2 = l2
        self.client_words: dict = {}

    def register_client(self, name: str) -> None:
        if name in self.client_words:
            raise ConfigurationError(f"bus client {name!r} already registered")
        self.client_words[name] = 0

    def account(self, name: str, words: int) -> None:
        if name not in self.client_words:
            raise ConfigurationError(f"unknown bus client {name!r}")
        self.client_words[name] += words

    @property
    def total_words(self) -> int:
        return sum(self.client_words.values())
