"""DMA engine: timed bulk transfers between memories (paper Fig 6).

The DMA moves data between the shared L2 and the per-core SRAM banks.  Its
job in the zero-latency switching scheme is to overlap weight streaming /
data-cache preloading with core execution, so every transfer is recorded with
its cycle cost for the discrete-event scheduler and the power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.sim import get_session

#: default DMA bandwidth: one 32-bit word every other cycle (16-bit bus)
DEFAULT_WORDS_PER_CYCLE = 0.5

#: fixed per-transfer setup cost (descriptor fetch, handshake)
TRANSFER_SETUP_CYCLES = 8


@dataclass
class TransferRecord:
    """One completed DMA transfer."""

    description: str
    words: int
    cycles: int


@dataclass
class DMAEngine:
    """A simple timed DMA channel."""

    words_per_cycle: float = DEFAULT_WORDS_PER_CYCLE
    transfers: List[TransferRecord] = field(default_factory=list)

    def __post_init__(self):
        if self.words_per_cycle <= 0:
            raise ConfigurationError("DMA bandwidth must be positive")

    def transfer_cycles(self, n_words: int) -> int:
        """Cycles to move ``n_words`` 32-bit words (setup included)."""
        if n_words < 0:
            raise ConfigurationError("negative transfer size")
        if n_words == 0:
            return 0
        return TRANSFER_SETUP_CYCLES + int(-(-n_words // self.words_per_cycle))

    def copy(self, src, src_addr: int, dst, dst_addr: int, n_words: int,
             description: str = "copy") -> int:
        """Move words between two DataMemory-like objects; returns cycles."""
        for index in range(n_words):
            word = src.load(src_addr + 4 * index, 4)
            dst.store(dst_addr + 4 * index, word, 4)
        cycles = self.transfer_cycles(n_words)
        self.transfers.append(TransferRecord(description, n_words, cycles))
        registry = get_session().stats
        scope = registry.scope("dma")
        scope.incr("transfers")
        scope.incr("words", n_words)
        scope.incr("cycles", cycles)
        registry.emit("dma.transfer", description=description,
                      words=n_words, cycles=cycles,
                      setup_cycles=TRANSFER_SETUP_CYCLES if n_words else 0)
        return cycles

    @property
    def total_words(self) -> int:
        return sum(t.words for t in self.transfers)

    @property
    def total_cycles(self) -> int:
        return sum(t.cycles for t in self.transfers)
