"""The NCPU core's memory map and mode-dependent SRAM reuse (paper Fig 4a).

Bank inventory per core (the fabricated chip's sizes):

===========  ======  =========================================
bank         size    role
===========  ======  =========================================
instruction  4 kB    I$ (CPU mode only)
image        4 kB    BNN input image / CPU data cache
output       1 kB    BNN results / CPU data cache
w1           25 kB   layer-1 weights (resident) / CPU data cache
w2..w4       6.5 kB  layer 2-4 weights / CPU data cache
bias         1 kB    BNN biases (gated in CPU mode)
===========  ======  =========================================

In CPU mode, the image/output/weight banks are stitched into one ~49.5 kB
data space behind the address arbiter; in BNN mode they revert to their
accelerator roles and the arbiter space is unavailable to loads/stores.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List

import numpy as np

from repro.bnn.model import BNNModel
from repro.errors import ConfigurationError
from repro.mem.arbiter import AddressArbiter
from repro.mem.sram import SRAMBank

KB = 1024

I_CACHE_BYTES = 4 * KB
IMAGE_BYTES = 4 * KB
OUTPUT_BYTES = 1 * KB
W1_BYTES = 25 * KB
W2_BYTES = W3_BYTES = W4_BYTES = int(6.5 * KB)
BIAS_BYTES = 1 * KB
REGISTER_FILE_BYTES = 128  # the paper's "1 kb" register file

#: order in which the data-cache address space is stitched together
_DATA_BANK_ORDER = ("image", "output", "w1", "w2", "w3", "w4")

_BANK_SIZES = {
    "image": IMAGE_BYTES,
    "output": OUTPUT_BYTES,
    "w1": W1_BYTES,
    "w2": W2_BYTES,
    "w3": W3_BYTES,
    "w4": W4_BYTES,
}


class CoreMode(Enum):
    """Operating mode of an NCPU core."""

    CPU = "cpu"
    BNN = "bnn"


class NCPUMemory:
    """All SRAM banks of one NCPU core, with mode-dependent routing."""

    def __init__(self):
        self.banks: Dict[str, SRAMBank] = {}
        base = 0
        for name in _DATA_BANK_ORDER:
            size = _BANK_SIZES[name]
            self.banks[name] = SRAMBank(name, size, base=base)
            base += size
        self.banks["bias"] = SRAMBank("bias", BIAS_BYTES, base=base)
        self.banks["icache"] = SRAMBank("icache", I_CACHE_BYTES, base=0)
        self.arbiter = AddressArbiter([self.banks[n] for n in _DATA_BANK_ORDER])
        self.mode = CoreMode.CPU
        self._apply_gating()

    # -- mode handling ---------------------------------------------------
    def set_mode(self, mode: CoreMode) -> None:
        self.mode = mode
        self._apply_gating()

    def _apply_gating(self) -> None:
        """Clock-gate the banks the current mode does not use (Fig 4a)."""
        if self.mode is CoreMode.CPU:
            for name in _DATA_BANK_ORDER:
                self.banks[name].enabled = True
            self.banks["bias"].enabled = False
            self.banks["icache"].enabled = True
        else:
            for name in _DATA_BANK_ORDER:
                self.banks[name].enabled = True
            self.banks["bias"].enabled = True
            self.banks["icache"].enabled = False

    # -- CPU-mode view -----------------------------------------------------
    def data_memory(self) -> AddressArbiter:
        """The CPU-mode data cache (arbiter over the reused banks)."""
        if self.mode is not CoreMode.CPU:
            raise ConfigurationError("data cache is only mapped in CPU mode")
        return self.arbiter

    @property
    def data_bytes(self) -> int:
        return self.arbiter.total_size

    def address_of(self, bank_name: str, offset: int = 0) -> int:
        bank = self.banks[bank_name]
        if not 0 <= offset < bank.size:
            raise ConfigurationError(
                f"offset {offset:#x} outside bank {bank_name!r}"
            )
        return bank.base + offset

    # -- BNN-mode view -----------------------------------------------------
    def weight_bank_for_layer(self, layer_index: int) -> SRAMBank:
        """Weight bank per neural layer (layer 0 resident in w1)."""
        names = ("w1", "w2", "w3", "w4")
        return self.banks[names[layer_index % len(names)]]

    def load_model(self, model: BNNModel) -> None:
        """Pack a model's weights/biases into the physical banks.

        Raises if the model does not fit — the same constraint the real chip
        has (weights fully occupying weight memory force the dynamic
        reconfiguration discussed in section V.A).
        """
        if model.n_layers > 4:
            wrapped = model.n_layers - 4
            if wrapped > 4:
                raise ConfigurationError("models deeper than 8 layers unsupported")
        bias_offset = 0
        for index, layer in enumerate(model.layers):
            bank = self.weight_bank_for_layer(index)
            packed = layer.packed_weights().reshape(-1)
            if packed.size * 4 > bank.size:
                raise ConfigurationError(
                    f"layer {index} weights ({packed.size * 4} B) exceed bank "
                    f"{bank.name!r} ({bank.size} B)"
                )
            bank.write_words(bank.base, [int(w) for w in packed])
            # biases are stored as 16-bit halfwords (1 kB bias memory holds
            # up to 512 neurons' worth)
            biases = layer.bias.astype(np.int64)
            if np.abs(biases).max(initial=0) > 0x7FFF:
                raise ConfigurationError("bias exceeds the 16-bit bias memory format")
            if bias_offset + 2 * biases.size > self.banks["bias"].size:
                raise ConfigurationError("bias memory exhausted")
            bias_bank = self.banks["bias"]
            was_enabled = bias_bank.enabled
            bias_bank.enabled = True
            try:
                for i, bias in enumerate(biases):
                    bias_bank.store(bias_bank.base + bias_offset + 2 * i,
                                    int(bias) & 0xFFFF, 2)
            finally:
                bias_bank.enabled = was_enabled
            bias_offset += 2 * biases.size

    def write_image(self, x_sign: np.ndarray) -> int:
        """Store a packed binary input image; returns words written."""
        from repro.bnn import quantize as q

        packed = q.pack_bits(q.sign_to_bits(np.asarray(x_sign)))
        if packed.size * 4 > self.banks["image"].size:
            raise ConfigurationError("input image exceeds image memory")
        self.banks["image"].write_words(self.banks["image"].base,
                                        [int(w) for w in packed])
        return int(packed.size)

    def write_result(self, index: int, value: int) -> None:
        bank = self.banks["output"]
        bank.store(bank.base + 4 * index, value, 4)

    def read_result(self, index: int) -> int:
        bank = self.banks["output"]
        return bank.load(bank.base + 4 * index, 4)

    # -- accounting --------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(bank.size for bank in self.banks.values()) + REGISTER_FILE_BYTES

    def access_counts(self) -> Dict[str, int]:
        return {name: bank.accesses for name, bank in self.banks.items()}

    def reset_counters(self) -> None:
        for bank in self.banks.values():
            bank.reset_counters()

    def bank_names(self) -> List[str]:
        return list(self.banks)
