"""SRAM bank model.

Each bank is a little-endian byte-addressable array with activity counters
(for the energy model) and a clock-gating flag: the address arbiter enables
exactly one bank per access and the rest are gated (paper Fig 4b), which is
where the NCPU's low-voltage energy advantage comes from.
"""

from __future__ import annotations

from repro.cpu.memory import check_access
from repro.errors import ConfigurationError, MemoryError_
from repro.isa.encoding import sign_extend, to_unsigned32


class SRAMBank:
    """One physical SRAM macro of ``size`` bytes mapped at ``base``."""

    def __init__(self, name: str, size: int, base: int = 0):
        if size <= 0 or size % 4:
            raise ConfigurationError(f"bank size {size} must be a positive multiple of 4")
        self.name = name
        self.size = size
        self.base = base
        self._bytes = bytearray(size)
        self.reads = 0
        self.writes = 0
        self.enabled = True

    # ------------------------------------------------------------------
    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def _offset(self, addr: int, size: int) -> int:
        offset = addr - self.base
        if not 0 <= offset <= self.size - size:
            raise MemoryError_(
                f"address {addr:#x} outside bank {self.name!r} "
                f"[{self.base:#x}, {self.base + self.size:#x})"
            )
        return offset

    def _check_enabled(self) -> None:
        if not self.enabled:
            raise MemoryError_(f"access to clock-gated bank {self.name!r}")

    def load(self, addr: int, size: int, signed: bool = False) -> int:
        check_access(addr, size)
        self._check_enabled()
        offset = self._offset(addr, size)
        self.reads += 1
        value = int.from_bytes(self._bytes[offset:offset + size], "little")
        if signed:
            value = sign_extend(value, 8 * size)
        return value

    def store(self, addr: int, value: int, size: int) -> None:
        check_access(addr, size)
        self._check_enabled()
        offset = self._offset(addr, size)
        self.writes += 1
        masked = to_unsigned32(value) & ((1 << (8 * size)) - 1)
        self._bytes[offset:offset + size] = masked.to_bytes(size, "little")

    # bulk operations used by the DMA / weight loader (counted as one access
    # per word, like the hardware's sequential streaming)
    def write_words(self, addr: int, values) -> None:
        # Bulk writes model DMA streaming, which wakes the bank regardless of
        # the current mode's clock gating.
        was_enabled = self.enabled
        self.enabled = True
        try:
            for index, value in enumerate(values):
                self.store(addr + 4 * index, value, 4)
        finally:
            self.enabled = was_enabled

    def read_words(self, addr: int, count: int):
        return [self.load(addr + 4 * i, 4) for i in range(count)]

    def clear(self) -> None:
        self._bytes = bytearray(self.size)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0

    def __repr__(self) -> str:
        state = "on" if self.enabled else "gated"
        return (f"SRAMBank({self.name!r}, {self.size}B @ {self.base:#x}, "
                f"{state}, r={self.reads}, w={self.writes})")
