"""``repro.metrics`` — cross-run metrics, benchmarks, and the regression gate.

Layered on :class:`~repro.sim.StatsRegistry` snapshots (never on the
simulator hot path):

* :mod:`repro.metrics.model` — typed Counter/Gauge/Histogram series with
  labels, plus the :class:`RunManifest` (config hash, seed, version, git
  SHA, python/platform, cache traffic) attached to every collection;
* :mod:`repro.metrics.export` — OpenMetrics text exposition and a
  stable-ordered JSON document (``repro run --metrics-out`` /
  ``repro experiments --metrics-dir``);
* :mod:`repro.metrics.bench` — registered micro-benchmarks with warmup +
  repeats, written as root-level ``BENCH_<timestamp>.json`` trajectory
  files (``repro bench``);
* :mod:`repro.metrics.gate` — compares BENCH documents against
  ``benchmarks/baseline.json`` (``tools/check_regression.py``).
"""

from repro.metrics.bench import (
    BENCH_PREFIX,
    BENCH_SCHEMA,
    all_benchmarks,
    anchor_experiment_metrics,
    latest_bench_file,
    run_benchmark,
    run_benchmarks,
    write_bench_file,
)
from repro.metrics.export import (
    JSON_SCHEMA,
    to_json,
    to_json_document,
    to_openmetrics,
    validate_openmetrics,
    validate_openmetrics_file,
    write_json,
    write_openmetrics,
)
from repro.metrics.gate import (
    BASELINE_SCHEMA,
    Delta,
    baseline_from_bench,
    compare,
    extract_metrics,
    load_baseline,
    regressions,
    render_delta_table,
    validate_bench_doc,
)
from repro.metrics.model import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    MetricSeries,
    MetricsCollection,
    MetricsRecorder,
    RunManifest,
    quantile,
    sanitize_metric_name,
    summarize,
)

__all__ = [
    "BASELINE_SCHEMA",
    "BENCH_PREFIX",
    "BENCH_SCHEMA",
    "COUNTER",
    "Delta",
    "GAUGE",
    "HISTOGRAM",
    "JSON_SCHEMA",
    "MetricSeries",
    "MetricsCollection",
    "MetricsRecorder",
    "RunManifest",
    "all_benchmarks",
    "anchor_experiment_metrics",
    "baseline_from_bench",
    "compare",
    "extract_metrics",
    "latest_bench_file",
    "load_baseline",
    "quantile",
    "regressions",
    "render_delta_table",
    "run_benchmark",
    "run_benchmarks",
    "sanitize_metric_name",
    "summarize",
    "to_json",
    "to_json_document",
    "to_openmetrics",
    "validate_bench_doc",
    "validate_openmetrics",
    "validate_openmetrics_file",
    "write_bench_file",
    "write_json",
    "write_openmetrics",
]
