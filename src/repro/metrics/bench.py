"""Registered micro-benchmarks + the BENCH trajectory file writer.

Each benchmark measures one simulator hot path (pipeline cycles/sec on
Dhrystone and the hotspot kernel, BNN inferences/sec, DMA words/sec,
experiment-runner wall time with a warm vs cold :class:`ArtifactCache`)
with warmup + N repeats and reports median/min/IQR wall time plus a
derived throughput.  ``repro bench`` writes the results — together with
the run manifest and the deterministic paper-anchor experiment metrics —
as a root-level ``BENCH_<timestamp>.json`` that
``tools/check_regression.py`` gates against ``benchmarks/baseline.json``.

Benchmarks run inside their own :func:`~repro.sim.use_session`, so they
never pollute the caller's stats registry or artifact cache.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.logutil import get_logger
from repro.metrics.model import RunManifest, summarize

#: schema tag written into every BENCH file
BENCH_SCHEMA = "repro-bench/1"

#: file-name prefix of trajectory files (``BENCH_<UTC timestamp>.json``)
BENCH_PREFIX = "BENCH_"

#: default measurement plan (``--quick`` drops to 1 repeat / 0 warmup)
DEFAULT_REPEATS = 5
DEFAULT_WARMUP = 1

#: deterministic paper-anchor experiments folded into every BENCH file
ANCHOR_EXPERIMENTS = ("fig09", "table4")
#: heavier anchors only measured on full (non-quick) runs
FULL_ANCHOR_EXPERIMENTS = ("fig17",)

logger = get_logger("bench")

#: the hotspot kernel (examples/hotspot.s) with a parametric outer loop so
#: one measured call simulates enough cycles to time reliably
def hotspot_asm(passes: int = 20) -> str:
    return f"""
    addi a6, x0, {passes}       # outer-loop passes
outer:
    addi a0, x0, 0          # sum
    addi a1, x0, 256        # data pointer
    addi a5, x0, 16         # store 16 words first
fill:
    sw   a5, 0(a1)
    addi a1, a1, 4
    addi a5, a5, -1
    bne  a5, x0, fill
    addi a1, x0, 256        # rewind
    addi a5, x0, 16
sum:
    lw   a2, 0(a1)          # load-use hazard: a2 consumed next cycle
    add  a0, a0, a2
    addi a1, a1, 4
    addi a5, a5, -1
    bne  a5, x0, sum        # taken 15 times -> control flushes
    addi a6, a6, -1
    bne  a6, x0, outer
    halt
"""


@dataclass(frozen=True)
class BenchSpec:
    """One registered micro-benchmark.

    ``func(quick)`` performs a single measured repetition and returns the
    work counters it completed (simulated cycles, inferences, words, ...);
    the harness times the call and derives ``work[work_key] / wall`` as
    the benchmark's throughput.
    """

    name: str
    func: Callable[[bool], Mapping[str, float]]
    work_key: str
    unit: str
    help: str = ""


_REGISTRY: Dict[str, BenchSpec] = {}


def bench(name: str, *, work_key: str, unit: str, help: str = ""):
    """Register the decorated function as the benchmark ``name``."""

    def decorator(func: Callable[[bool], Mapping[str, float]]):
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} registered twice")
        _REGISTRY[name] = BenchSpec(name=name, func=func, work_key=work_key,
                                    unit=unit, help=help)
        return func

    return decorator


def all_benchmarks() -> Dict[str, BenchSpec]:
    return dict(_REGISTRY)


def select(patterns: Optional[List[str]] = None) -> List[str]:
    """Benchmark names containing any of the given substrings."""
    return [name for name in sorted(_REGISTRY)
            if not patterns or any(p in name for p in patterns)]


# -- the registered benchmarks ------------------------------------------
def _assemble(source: str):
    from repro.isa import assemble

    return assemble(source)


def _register_dhrystone_bench(name: str, engine: str, *,
                              prefer_functional: bool, work_key: str,
                              unit: str, help: str) -> None:
    """Register one Dhrystone bench driving the named registered engine.

    The CPU benches are parametrized over the engine registry: each one
    resolves its engine by name through :func:`repro.engine.get_engine`
    and runs the same kernel through ``run_program``, so a new backend
    gets benchmarked by adding one registration line here.
    """

    @bench(name, work_key=work_key, unit=unit, help=help)
    def _bench(quick: bool) -> Dict[str, float]:
        from repro.engine import get_engine
        from repro.workloads.dhrystone import dhrystone_asm

        program = _assemble(dhrystone_asm(iterations=5 if quick else 40))
        _, result = get_engine(engine).run_program(
            program, prefer_functional=prefer_functional)
        return {"cycles": result.stats.cycles,
                "instructions": result.stats.instructions}


_register_dhrystone_bench(
    "cpu.pipeline.dhrystone", "accurate", prefer_functional=False,
    work_key="cycles", unit="cycles/s",
    help="pipelined-CPU simulation speed on the Dhrystone kernel")
_register_dhrystone_bench(
    "cpu.functional.dhrystone", "accurate", prefer_functional=True,
    work_key="instructions", unit="instr/s",
    help="functional-ISS simulation speed on the Dhrystone kernel "
         "(scalar baseline for the fast-path engine)")
_register_dhrystone_bench(
    "cpu.fastpath.dhrystone", "fast", prefer_functional=False,
    work_key="instructions", unit="instr/s",
    help="fast-path (basic-block) interpreter speed on the Dhrystone "
         "kernel, block compilation included (--engine fast)")


@bench("cpu.pipeline.hotspot", work_key="cycles", unit="cycles/s",
       help="pipelined-CPU simulation speed on the hazard-heavy hotspot "
            "kernel (examples/hotspot.s)")
def _bench_hotspot(quick: bool) -> Dict[str, float]:
    from repro.engine import get_engine

    program = _assemble(hotspot_asm(passes=5 if quick else 50))
    _, result = get_engine("accurate").run_program(program)
    return {"cycles": result.stats.cycles,
            "instructions": result.stats.instructions}


@bench("bnn.accelerator.infer", work_key="inferences", unit="inferences/s",
       help="BNN accelerator functional+timing inference throughput")
def _bench_bnn_infer(quick: bool) -> Dict[str, float]:
    import numpy as np

    from repro.bnn import BNNAccelerator, BNNModel

    rng = np.random.default_rng(0)
    model = BNNModel.random([100, 100, 100, 10], rng)
    accelerator = BNNAccelerator()
    n = 20 if quick else 200
    inputs = np.sign(rng.standard_normal((n, 100))).astype(np.int8)
    inputs[inputs == 0] = 1
    cycles = 0
    for row in inputs:
        cycles += accelerator.infer(model, row).cycles
    return {"inferences": n, "simulated_cycles": cycles}


#: model reused across repeats so the batched benches measure steady-state
#: throughput (weights bit-packed once, like a deployed classifier)
_BATCHED_MODEL = None


def _register_batch_infer_bench(name: str, engine: str, *, n_quick: int,
                                n_full: int, help: str) -> None:
    """Register a whole-batch inference bench for one registered engine.

    All batch benches share the model and input recipe, so their numbers
    are directly comparable across engines (fast vs parallel).
    """

    @bench(name, work_key="inferences", unit="inferences/s", help=help)
    def _bench(quick: bool) -> Dict[str, float]:
        import numpy as np

        from repro.bnn import BNNAccelerator, BNNModel

        global _BATCHED_MODEL
        if _BATCHED_MODEL is None:
            _BATCHED_MODEL = BNNModel.random([100, 100, 100, 10],
                                             np.random.default_rng(0))
        rng = np.random.default_rng(1)
        accelerator = BNNAccelerator()
        n = n_quick if quick else n_full
        inputs = np.sign(rng.standard_normal((n, 100))).astype(np.int8)
        inputs[inputs == 0] = 1
        _, timing = accelerator.infer_batch(_BATCHED_MODEL, inputs,
                                            engine=engine)
        return {"inferences": n, "simulated_cycles": timing.total_cycles}


_register_batch_infer_bench(
    "bnn.batched.infer", "fast", n_quick=200, n_full=2000,
    help="batched bit-packed XNOR-popcount inference throughput "
         "(--engine fast), timing accounting included")
_register_batch_infer_bench(
    "bnn.parallel.infer", "parallel", n_quick=200, n_full=4000,
    help="process-sharded whole-batch inference throughput (--engine "
         "parallel; serial fallback below the sharding threshold)")


@bench("dma.transfer", work_key="words", unit="words/s",
       help="DMA engine functional copy throughput (L2 <-> SRAM model)")
def _bench_dma(quick: bool) -> Dict[str, float]:
    from repro.cpu import FlatMemory
    from repro.mem import DMAEngine

    words = 2_000 if quick else 20_000
    src = FlatMemory(size=words * 4 + 64)
    dst = FlatMemory(size=words * 4 + 64)
    for index in range(0, words * 4, 4):
        src.store(index, index & 0xFFFF, 4)
    engine = DMAEngine()
    cycles = engine.copy(src, 0, dst, 0, words, description="bench")
    return {"words": words, "simulated_cycles": cycles}


def _run_cheap_experiment(cache_dir: str, use_cache: bool) -> None:
    from repro.experiments.runner import run_experiment
    from repro.sim import use_session

    with use_session(cache_dir=cache_dir):
        run_experiment("fig07", use_cache=use_cache)


@bench("runner.experiment.cold", work_key="experiments", unit="experiments/s",
       help="experiment-runner wall time with a cold (empty) ArtifactCache")
def _bench_runner_cold(quick: bool) -> Dict[str, float]:
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cold-")
    try:
        _run_cheap_experiment(cache_dir, use_cache=True)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {"experiments": 1}


_WARM_CACHE_DIR: Optional[str] = None


@bench("runner.experiment.warm", work_key="experiments", unit="experiments/s",
       help="experiment-runner wall time with a warm (hit) ArtifactCache")
def _bench_runner_warm(quick: bool) -> Dict[str, float]:
    global _WARM_CACHE_DIR
    if _WARM_CACHE_DIR is None:
        _WARM_CACHE_DIR = tempfile.mkdtemp(prefix="repro-bench-warm-")
        _run_cheap_experiment(_WARM_CACHE_DIR, use_cache=True)  # prime
    _run_cheap_experiment(_WARM_CACHE_DIR, use_cache=True)
    return {"experiments": 1}


# -- harness -------------------------------------------------------------
def run_benchmark(spec: BenchSpec, repeats: int = DEFAULT_REPEATS,
                  warmup: int = DEFAULT_WARMUP,
                  quick: bool = False) -> Dict[str, Any]:
    """Measure one benchmark: warmup + N timed repeats, median/min/IQR."""
    from repro.sim import use_session

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    times: List[float] = []
    work: Mapping[str, float] = {}
    with use_session(cache_enabled=False):
        for _ in range(warmup):
            spec.func(quick)
        for _ in range(repeats):
            start = time.perf_counter()
            work = spec.func(quick)
            times.append(time.perf_counter() - start)
    wall = summarize(times)
    work_units = float(work.get(spec.work_key, 0))
    throughput = {
        "unit": spec.unit,
        "median": work_units / wall["median"] if wall["median"] else 0.0,
        "best": work_units / wall["min"] if wall["min"] else 0.0,
    }
    return {
        "name": spec.name,
        "help": spec.help,
        "repeats": repeats,
        "warmup": warmup,
        "quick": quick,
        "work": {key: float(value) for key, value in sorted(work.items())},
        "work_key": spec.work_key,
        "wall_s": wall,
        "throughput": throughput,
    }


def anchor_experiment_metrics(quick: bool = False) -> Dict[str, float]:
    """Deterministic paper-anchor metrics (Fig 9, Table 4, Fig 17 ...).

    These are simulation outputs, not wall times — identical on every
    machine — so the regression gate can hold them to tight tolerances.
    """
    from repro.experiments.runner import run_experiment

    names = list(ANCHOR_EXPERIMENTS)
    if not quick:
        names += list(FULL_ANCHOR_EXPERIMENTS)
    metrics: Dict[str, float] = {}
    for name in names:
        result = run_experiment(name, use_cache=True)
        for metric in result.metrics:
            metrics[f"{name}:{metric.name}"] = float(metric.measured)
    return metrics


def run_benchmarks(patterns: Optional[List[str]] = None, *,
                   repeats: int = DEFAULT_REPEATS,
                   warmup: int = DEFAULT_WARMUP,
                   quick: bool = False,
                   with_experiments: bool = True) -> Dict[str, Any]:
    """Run the selected benchmarks and build the BENCH document."""
    if quick:
        repeats, warmup = min(repeats, 2), 0
    names = select(patterns)
    results: Dict[str, Any] = {}
    for index, name in enumerate(names):
        logger.info("bench %d/%d %s ...", index + 1, len(names), name)
        results[name] = run_benchmark(_REGISTRY[name], repeats=repeats,
                                      warmup=warmup, quick=quick)
        logger.info("bench %s: median %.4fs (%s %.0f %s)", name,
                    results[name]["wall_s"]["median"], "median",
                    results[name]["throughput"]["median"],
                    results[name]["throughput"]["unit"])
    experiments: Dict[str, float] = {}
    if with_experiments:
        logger.info("measuring paper-anchor experiment metrics ...")
        experiments = anchor_experiment_metrics(quick=quick)
    return {
        "schema": BENCH_SCHEMA,
        "manifest": RunManifest.collect().as_dict(),
        "quick": quick,
        "repeats": repeats,
        "warmup": warmup,
        "benchmarks": results,
        "experiments": experiments,
    }


def bench_filename(created_unix: float) -> str:
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime(created_unix))
    return f"{BENCH_PREFIX}{stamp}.json"


def write_bench_file(doc: Mapping[str, Any], out_dir=".") -> Path:
    """Write the BENCH trajectory file (named from the manifest time)."""
    import json

    created = doc.get("manifest", {}).get("created_unix") or time.time()
    target = Path(out_dir) / bench_filename(created)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return target


def latest_bench_file(directory=".") -> Optional[Path]:
    """Newest ``BENCH_*.json`` in ``directory`` (lexical == chronological)."""
    candidates = sorted(Path(directory).glob(f"{BENCH_PREFIX}*.json"))
    return candidates[-1] if candidates else None
