"""Registered micro-benchmarks + the BENCH trajectory file writer.

Each benchmark measures one simulator hot path (pipeline cycles/sec on
Dhrystone and the hotspot kernel, BNN inferences/sec, DMA words/sec,
experiment-runner wall time with a warm vs cold :class:`ArtifactCache`)
with warmup + N repeats and reports median/min/IQR wall time plus a
derived throughput.  ``repro bench`` writes the results — together with
the run manifest and the deterministic paper-anchor experiment metrics —
as a root-level ``BENCH_<timestamp>.json`` that
``tools/check_regression.py`` gates against ``benchmarks/baseline.json``.

Benchmarks run inside their own :func:`~repro.sim.use_session`, so they
never pollute the caller's stats registry or artifact cache.
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.logutil import get_logger
from repro.metrics.model import RunManifest, summarize
from repro.scenario.schema import EngineSpec, Scenario, WorkloadSpec

#: schema tag written into every BENCH file
BENCH_SCHEMA = "repro-bench/1"

#: file-name prefix of trajectory files (``BENCH_<UTC timestamp>.json``)
BENCH_PREFIX = "BENCH_"

#: default measurement plan (``--quick`` drops to 1 repeat / 0 warmup)
DEFAULT_REPEATS = 5
DEFAULT_WARMUP = 1

#: deterministic paper-anchor experiments folded into every BENCH file
#: (device_zoo is closed-form model math, cheap enough for --quick)
ANCHOR_EXPERIMENTS = ("fig09", "table4", "device_zoo")
#: heavier anchors only measured on full (non-quick) runs
FULL_ANCHOR_EXPERIMENTS = ("fig17",)

logger = get_logger("bench")

#: the hotspot kernel (examples/hotspot.s) with a parametric outer loop so
#: one measured call simulates enough cycles to time reliably
def hotspot_asm(passes: int = 20) -> str:
    return f"""
    addi a6, x0, {passes}       # outer-loop passes
outer:
    addi a0, x0, 0          # sum
    addi a1, x0, 256        # data pointer
    addi a5, x0, 16         # store 16 words first
fill:
    sw   a5, 0(a1)
    addi a1, a1, 4
    addi a5, a5, -1
    bne  a5, x0, fill
    addi a1, x0, 256        # rewind
    addi a5, x0, 16
sum:
    lw   a2, 0(a1)          # load-use hazard: a2 consumed next cycle
    add  a0, a0, a2
    addi a1, a1, 4
    addi a5, a5, -1
    bne  a5, x0, sum        # taken 15 times -> control flushes
    addi a6, a6, -1
    bne  a6, x0, outer
    halt
"""


@dataclass(frozen=True)
class BenchSpec:
    """One registered micro-benchmark.

    ``func(quick)`` performs a single measured repetition and returns the
    work counters it completed (simulated cycles, inferences, words, ...);
    the harness times the call and derives ``work[work_key] / wall`` as
    the benchmark's throughput.  ``scenario`` is the declarative
    full-size configuration the benchmark realizes (workload shape,
    engine, batch size); workload-shaped benches build their kernels /
    models from it, and its canonical dict rides along in the BENCH
    document so trajectory files say exactly what was measured.
    Harness-shaped benches (DMA copy, runner cache timing) have no
    scenario.

    ``slo`` is the serve-layer hook: called once after the timed repeats,
    it returns the benchmark's SLO summary block (p50/p99 latency,
    throughput, attainment) which rides in the result entry and feeds
    the ``serve:*`` regression-gate metrics.
    """

    name: str
    func: Callable[[bool], Mapping[str, float]]
    work_key: str
    unit: str
    help: str = ""
    scenario: Optional[Scenario] = None
    slo: Optional[Callable[[], Optional[Dict[str, Any]]]] = None


_REGISTRY: Dict[str, BenchSpec] = {}


def bench(name: str, *, work_key: str, unit: str, help: str = "",
          scenario: Optional[Scenario] = None,
          slo: Optional[Callable[[], Optional[Dict[str, Any]]]] = None):
    """Register the decorated function as the benchmark ``name``."""

    def decorator(func: Callable[[bool], Mapping[str, float]]):
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} registered twice")
        _REGISTRY[name] = BenchSpec(name=name, func=func, work_key=work_key,
                                    unit=unit, help=help, scenario=scenario,
                                    slo=slo)
        return func

    return decorator


def all_benchmarks() -> Dict[str, BenchSpec]:
    return dict(_REGISTRY)


def select(patterns: Optional[List[str]] = None) -> List[str]:
    """Benchmark names containing any of the given substrings."""
    return [name for name in sorted(_REGISTRY)
            if not patterns or any(p in name for p in patterns)]


# -- the registered benchmarks ------------------------------------------
def _sized_workload(scenario: Scenario, quick: bool,
                    quick_iterations: int) -> Scenario:
    """The scenario, with its iteration count dropped in quick mode."""
    if not quick:
        return scenario
    return scenario.with_overrides(workload=dataclasses.replace(
        scenario.workload, iterations=quick_iterations))


def _register_cpu_bench(name: str, scenario: Scenario, *,
                        quick_iterations: int, work_key: str,
                        unit: str, help: str) -> None:
    """Register one CPU-kernel bench declared by a :class:`Scenario`.

    The CPU benches are parametrized over the engine registry through
    the scenario's engine spec: each one assembles the scenario's kernel
    (:func:`repro.scenario.materialize.build_program`) and runs it
    through ``run_program``, so a new backend gets benchmarked by
    registering one more scenario here.
    """

    @bench(name, work_key=work_key, unit=unit, help=help,
           scenario=scenario)
    def _bench(quick: bool) -> Dict[str, float]:
        from repro.engine import get_engine
        from repro.scenario.materialize import build_program

        sized = _sized_workload(scenario, quick, quick_iterations)
        _, result = get_engine(scenario.engine.name).run_program(
            build_program(sized),
            prefer_functional=scenario.engine.prefer_functional)
        return {"cycles": result.stats.cycles,
                "instructions": result.stats.instructions}


def _cpu_scenario(name: str, program: str, iterations: int, engine: str,
                  prefer_functional: bool = False) -> Scenario:
    return Scenario(
        name=name,
        workload=WorkloadSpec(kind="cpu", name=program, layer_sizes=(),
                              iterations=iterations),
        engine=EngineSpec(name=engine,
                          prefer_functional=prefer_functional),
        batch_size=1)


_register_cpu_bench(
    "cpu.pipeline.dhrystone",
    _cpu_scenario("cpu.pipeline.dhrystone", "dhrystone", 40, "accurate"),
    quick_iterations=5, work_key="cycles", unit="cycles/s",
    help="pipelined-CPU simulation speed on the Dhrystone kernel")
_register_cpu_bench(
    "cpu.functional.dhrystone",
    _cpu_scenario("cpu.functional.dhrystone", "dhrystone", 40, "accurate",
                  prefer_functional=True),
    quick_iterations=5, work_key="instructions", unit="instr/s",
    help="functional-ISS simulation speed on the Dhrystone kernel "
         "(scalar baseline for the fast-path engine)")
_register_cpu_bench(
    "cpu.fastpath.dhrystone",
    _cpu_scenario("cpu.fastpath.dhrystone", "dhrystone", 40, "fast"),
    quick_iterations=5, work_key="instructions", unit="instr/s",
    help="fast-path (basic-block) interpreter speed on the Dhrystone "
         "kernel, block compilation included (--engine fast)")
_register_cpu_bench(
    "cpu.superblock",
    _cpu_scenario("cpu.superblock", "dhrystone", 60, "fast"),
    quick_iterations=5, work_key="instructions", unit="instr/s",
    help="superblock (jal-folded trace) interpreter speed on the "
         "call-heavy Dhrystone kernel, where jump folding actually "
         "forms superblocks (--engine fast)")
_register_cpu_bench(
    "cpu.pipeline.hotspot",
    _cpu_scenario("cpu.pipeline.hotspot", "hotspot", 50, "accurate"),
    quick_iterations=5, work_key="cycles", unit="cycles/s",
    help="pipelined-CPU simulation speed on the hazard-heavy hotspot "
         "kernel (examples/hotspot.s)")


#: the paper-shaped classifier every BNN bench infers (4 layers, 100
#: neurons, 10 classes — the fabricated chip's array)
def _bnn_scenario(name: str, engine: str, batch_size: int) -> Scenario:
    return Scenario(
        name=name,
        workload=WorkloadSpec(kind="bnn", name="random",
                              layer_sizes=(100, 100, 100, 10)),
        engine=EngineSpec(name=engine),
        seed=0, batch_size=batch_size)


@bench("bnn.accelerator.infer", work_key="inferences", unit="inferences/s",
       help="BNN accelerator functional+timing inference throughput",
       scenario=_bnn_scenario("bnn.accelerator.infer", "accurate", 200))
def _bench_bnn_infer(quick: bool) -> Dict[str, float]:
    from repro.bnn import BNNAccelerator
    from repro.scenario.materialize import build_inputs, build_model

    scenario = _REGISTRY["bnn.accelerator.infer"].scenario
    model = build_model(scenario)
    accelerator = BNNAccelerator()
    n = 20 if quick else scenario.batch_size
    inputs = build_inputs(scenario, batch_size=n)
    cycles = 0
    for row in inputs:
        cycles += accelerator.infer(model, row).cycles
    return {"inferences": n, "simulated_cycles": cycles}


#: model reused across repeats so the batched benches measure steady-state
#: throughput (weights bit-packed once, like a deployed classifier)
_BATCHED_MODEL = None


def _register_batch_infer_bench(name: str, engine: str, *, n_quick: int,
                                n_full: int, help: str) -> None:
    """Register a whole-batch inference bench for one registered engine.

    All batch benches share the scenario's model and input recipe, so
    their numbers are directly comparable across engines (fast vs
    parallel).
    """
    scenario = _bnn_scenario(name, engine, n_full)

    @bench(name, work_key="inferences", unit="inferences/s", help=help,
           scenario=scenario)
    def _bench(quick: bool) -> Dict[str, float]:
        from repro.bnn import BNNAccelerator
        from repro.scenario.materialize import build_inputs, build_model

        global _BATCHED_MODEL
        if _BATCHED_MODEL is None:
            _BATCHED_MODEL = build_model(scenario)
        accelerator = BNNAccelerator()
        n = n_quick if quick else scenario.batch_size
        inputs = build_inputs(scenario, batch_size=n)
        _, timing = accelerator.infer_batch(_BATCHED_MODEL, inputs,
                                            engine=scenario.engine.name)
        return {"inferences": n, "simulated_cycles": timing.total_cycles}


_register_batch_infer_bench(
    "bnn.batched.infer", "fast", n_quick=200, n_full=2000,
    help="batched bit-packed XNOR-popcount inference throughput "
         "(--engine fast), timing accounting included")
_register_batch_infer_bench(
    "bnn.parallel.infer", "parallel", n_quick=200, n_full=4000,
    help="process-sharded whole-batch inference throughput (--engine "
         "parallel; serial fallback below the sharding threshold)")


#: prebuilt (engine, model, inputs) per kernel bench + batch size, so the
#: kernel benches time *only* the scoring kernels on identical data
_KERNEL_BENCH_STATE: Dict[Any, Any] = {}


def _register_kernel_scores_bench(name: str, engine: str, *, n_quick: int,
                                  n_full: int, help: str) -> None:
    """Register a scoring-kernel bench for one registered engine.

    Unlike :func:`_register_batch_infer_bench`, the model and inputs are
    built (and the engine's packed/lowered caches warmed) *outside* the
    timed region, and no accelerator timing model runs — the measured
    call is exactly one ``engine.scores`` over the scenario's batch, so
    kernel benches are directly comparable across engines
    (``bnn.fast.infer`` vs ``bnn.numpy.infer``).
    """
    scenario = _bnn_scenario(name, engine, n_full)

    @bench(name, work_key="inferences", unit="inferences/s", help=help,
           scenario=scenario)
    def _bench(quick: bool) -> Dict[str, float]:
        from repro.engine import get_engine
        from repro.scenario.materialize import build_inputs, build_model

        n = n_quick if quick else scenario.batch_size
        state = _KERNEL_BENCH_STATE.get((name, n))
        if state is None:
            global _BATCHED_MODEL
            if _BATCHED_MODEL is None:
                _BATCHED_MODEL = build_model(scenario)
            engine_obj = get_engine(scenario.engine.name)
            inputs = build_inputs(scenario, batch_size=n)
            engine_obj.scores(_BATCHED_MODEL, inputs)  # warm lowering caches
            state = (engine_obj, _BATCHED_MODEL, inputs)
            _KERNEL_BENCH_STATE[(name, n)] = state
        engine_obj, model, inputs = state
        engine_obj.scores(model, inputs)
        return {"inferences": n}


_register_kernel_scores_bench(
    "bnn.fast.infer", "fast", n_quick=200, n_full=2000,
    help="bit-packed XNOR-popcount scoring kernel alone (--engine fast): "
         "prebuilt model + inputs, no accelerator timing model")
_register_kernel_scores_bench(
    "bnn.numpy.infer", "numpy", n_quick=200, n_full=2000,
    help="whole-batch vectorized scoring kernel alone (--engine numpy) "
         "on the same prebuilt recipe as bnn.fast.infer")


#: the serve bench's scenario: the paper-shaped classifier offered at a
#: Poisson 2 krps with a 2 ms coalescing window on the fast engine
def _serve_scenario() -> Scenario:
    from repro.scenario.schema import ServeSpec

    return Scenario(
        name="serve.e2e.latency",
        workload=WorkloadSpec(kind="bnn", name="random",
                              layer_sizes=(100, 100, 100, 10)),
        engine=EngineSpec(name="fast"),
        seed=0, batch_size=64,
        serve=ServeSpec(arrival="poisson", rate_rps=2000.0, requests=256,
                        batch_window_ms=2.0, max_batch=32,
                        timeout_ms=250.0, latency_budget_ms=50.0,
                        slo_target=0.99))


_SERVE_LAST_REPORT: Optional[Dict[str, Any]] = None


def _serve_slo_block() -> Optional[Dict[str, Any]]:
    """The gateable SLO summary of the serve bench's last repeat."""
    if _SERVE_LAST_REPORT is None:
        return None
    doc = _SERVE_LAST_REPORT
    latency = doc.get("latency_ms") or {}
    return {
        "p50_ms": latency.get("p50"),
        "p99_ms": latency.get("p99"),
        "throughput_rps": doc.get("throughput_rps", 0.0),
        "attainment": doc["slo"]["attainment"],
        "shed": doc["requests"]["shed"],
        "timeout": doc["requests"]["timeout"],
    }


@bench("serve.e2e.latency", work_key="requests", unit="requests/s",
       help="end-to-end served-request latency under open-loop Poisson "
            "load (dynamic batching, --engine fast)",
       scenario=_serve_scenario(), slo=_serve_slo_block)
def _bench_serve(quick: bool) -> Dict[str, float]:
    import dataclasses as _dc

    from repro.serve import serve_scenario

    global _SERVE_LAST_REPORT
    scenario = _REGISTRY["serve.e2e.latency"].scenario
    if quick:
        scenario = scenario.with_overrides(serve=_dc.replace(
            scenario.serve, requests=64))
    doc = serve_scenario(scenario)
    _SERVE_LAST_REPORT = doc
    return {"requests": doc["requests"]["submitted"],
            "completed": doc["requests"]["completed"],
            "simulated_cycles": doc["batches"]["sim_cycles"]}


@bench("dma.transfer", work_key="words", unit="words/s",
       help="DMA engine functional copy throughput (L2 <-> SRAM model)")
def _bench_dma(quick: bool) -> Dict[str, float]:
    from repro.cpu import FlatMemory
    from repro.mem import DMAEngine

    words = 2_000 if quick else 20_000
    src = FlatMemory(size=words * 4 + 64)
    dst = FlatMemory(size=words * 4 + 64)
    for index in range(0, words * 4, 4):
        src.store(index, index & 0xFFFF, 4)
    engine = DMAEngine()
    cycles = engine.copy(src, 0, dst, 0, words, description="bench")
    return {"words": words, "simulated_cycles": cycles}


def _run_cheap_experiment(cache_dir: str, use_cache: bool) -> None:
    from repro.experiments.runner import run_experiment
    from repro.sim import use_session

    with use_session(cache_dir=cache_dir):
        run_experiment("fig07", use_cache=use_cache)


@bench("runner.experiment.cold", work_key="experiments", unit="experiments/s",
       help="experiment-runner wall time with a cold (empty) ArtifactCache")
def _bench_runner_cold(quick: bool) -> Dict[str, float]:
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cold-")
    try:
        _run_cheap_experiment(cache_dir, use_cache=True)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {"experiments": 1}


_WARM_CACHE_DIR: Optional[str] = None


@bench("runner.experiment.warm", work_key="experiments", unit="experiments/s",
       help="experiment-runner wall time with a warm (hit) ArtifactCache")
def _bench_runner_warm(quick: bool) -> Dict[str, float]:
    global _WARM_CACHE_DIR
    if _WARM_CACHE_DIR is None:
        _WARM_CACHE_DIR = tempfile.mkdtemp(prefix="repro-bench-warm-")
        _run_cheap_experiment(_WARM_CACHE_DIR, use_cache=True)  # prime
    _run_cheap_experiment(_WARM_CACHE_DIR, use_cache=True)
    return {"experiments": 1}


# -- harness -------------------------------------------------------------
def run_benchmark(spec: BenchSpec, repeats: int = DEFAULT_REPEATS,
                  warmup: int = DEFAULT_WARMUP,
                  quick: bool = False,
                  session_scenario: Optional[Scenario] = None,
                  profile: Optional[str] = None
                  ) -> Dict[str, Any]:
    """Measure one benchmark: warmup + N timed repeats, median/min/IQR.

    ``session_scenario`` (``repro bench --scenario``) configures the
    throwaway measurement session — engine default and seed — without
    touching the caller's session; caching stays off either way.
    ``profile`` (``repro bench --profile``) selects the device profile
    the measurement session prices power models with; it overrides the
    scenario's own ``device.profile`` when both are given.

    The returned entry keeps the raw per-repeat wall samples next to the
    summary (``wall_s["samples"]``) so attribution variance and warmup
    effects stay debuggable after the fact, and — for benches declared
    by a scenario — a ``repro.obs`` phase ``attribution`` block of one
    *full-size* scenario run.  Attribution cycles are simulation
    outputs, identical on every machine and independent of ``quick``,
    so the regression gate holds their ratios to tight tolerances.
    """
    from repro.sim import SimConfig, SimSession, use_session

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if session_scenario is not None:
        if profile is not None:
            session_scenario = session_scenario.with_profile(profile)
        session = SimSession(SimConfig.from_scenario(
            session_scenario, cache_enabled=False))
    elif profile is not None:
        session = SimSession(SimConfig(cache_enabled=False, profile=profile))
    else:
        session = SimSession(SimConfig(cache_enabled=False))
    times: List[float] = []
    work: Mapping[str, float] = {}
    attribution: Optional[Dict[str, Any]] = None
    slo: Optional[Dict[str, Any]] = None
    with use_session(session):
        for _ in range(warmup):
            spec.func(quick)
        for _ in range(repeats):
            start = time.perf_counter()
            work = spec.func(quick)
            times.append(time.perf_counter() - start)
        if spec.scenario is not None:
            from repro.obs import attribute_scenario

            attribution = attribute_scenario(spec.scenario).as_dict()
        if spec.slo is not None:
            slo = spec.slo()
    wall = summarize(times)
    wall["samples"] = [float(value) for value in times]
    work_units = float(work.get(spec.work_key, 0))
    throughput = {
        "unit": spec.unit,
        "median": work_units / wall["median"] if wall["median"] else 0.0,
        "best": work_units / wall["min"] if wall["min"] else 0.0,
    }
    return {
        "name": spec.name,
        "help": spec.help,
        "repeats": repeats,
        "warmup": warmup,
        "quick": quick,
        "scenario": spec.scenario.to_dict() if spec.scenario else None,
        "work": {key: float(value) for key, value in sorted(work.items())},
        "work_key": spec.work_key,
        "wall_s": wall,
        "throughput": throughput,
        "attribution": attribution,
        "slo": slo,
    }


def anchor_experiment_metrics(quick: bool = False,
                              profile: Optional[str] = None
                              ) -> Dict[str, float]:
    """Deterministic paper-anchor metrics (Fig 9, Table 4, Fig 17 ...).

    These are simulation outputs, not wall times — identical on every
    machine — so the regression gate can hold them to tight tolerances.
    ``profile`` prices the anchors under a non-default device profile;
    ``benchmarks/baseline.json`` expectations only hold for the default.
    """
    import contextlib

    from repro.experiments.runner import run_experiment
    from repro.sim import SimConfig, SimSession, use_session

    names = list(ANCHOR_EXPERIMENTS)
    if not quick:
        names += list(FULL_ANCHOR_EXPERIMENTS)
    metrics: Dict[str, float] = {}
    if profile is not None:
        scope = use_session(SimSession(
            SimConfig(cache_enabled=False, profile=profile)))
    else:  # keep the caller's session (and its warm artifact cache)
        scope = contextlib.nullcontext()
    with scope:
        for name in names:
            result = run_experiment(name, use_cache=True)
            for metric in result.metrics:
                metrics[f"{name}:{metric.name}"] = float(metric.measured)
    return metrics


def run_benchmarks(patterns: Optional[List[str]] = None, *,
                   repeats: int = DEFAULT_REPEATS,
                   warmup: int = DEFAULT_WARMUP,
                   quick: bool = False,
                   with_experiments: bool = True,
                   scenario: Optional[Scenario] = None,
                   profile: Optional[str] = None) -> Dict[str, Any]:
    """Run the selected benchmarks and build the BENCH document.

    Every registered benchmark's own declarative scenario lands in its
    result entry; ``scenario`` (``repro bench --scenario FILE``)
    additionally configures the measurement sessions and is recorded at
    the document's top level.  ``profile`` (``repro bench --profile``)
    prices every measurement session — and the anchor experiments —
    under the named device profile; the document records the effective
    profile either way.  Baseline expectations in
    ``benchmarks/baseline.json`` only hold for the default profile.
    """
    from repro.power import ensure_known_profile
    from repro.sim import DEFAULT_DEVICE_PROFILE

    if profile is not None:
        ensure_known_profile(profile)
    if quick:
        repeats, warmup = min(repeats, 2), 0
    effective_profile = profile or (
        scenario.device.profile if scenario else DEFAULT_DEVICE_PROFILE)
    names = select(patterns)
    results: Dict[str, Any] = {}
    for index, name in enumerate(names):
        logger.info("bench %d/%d %s ...", index + 1, len(names), name)
        results[name] = run_benchmark(_REGISTRY[name], repeats=repeats,
                                      warmup=warmup, quick=quick,
                                      session_scenario=scenario,
                                      profile=profile)
        logger.info("bench %s: median %.4fs (%s %.0f %s)", name,
                    results[name]["wall_s"]["median"], "median",
                    results[name]["throughput"]["median"],
                    results[name]["throughput"]["unit"])
    experiments: Dict[str, float] = {}
    if with_experiments:
        logger.info("measuring paper-anchor experiment metrics ...")
        experiments = anchor_experiment_metrics(quick=quick, profile=profile)
    return {
        "schema": BENCH_SCHEMA,
        "manifest": RunManifest.collect().as_dict(),
        "quick": quick,
        "repeats": repeats,
        "warmup": warmup,
        "scenario": scenario.to_dict() if scenario else None,
        "profile": effective_profile,
        "benchmarks": results,
        "experiments": experiments,
    }


def bench_filename(created_unix: float) -> str:
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime(created_unix))
    return f"{BENCH_PREFIX}{stamp}.json"


def write_bench_file(doc: Mapping[str, Any], out_dir=".") -> Path:
    """Write the BENCH trajectory file (named from the manifest time)."""
    import json

    created = doc.get("manifest", {}).get("created_unix") or time.time()
    target = Path(out_dir) / bench_filename(created)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return target


def latest_bench_file(directory=".") -> Optional[Path]:
    """Newest ``BENCH_*.json`` in ``directory`` (lexical == chronological)."""
    candidates = sorted(Path(directory).glob(f"{BENCH_PREFIX}*.json"))
    return candidates[-1] if candidates else None
