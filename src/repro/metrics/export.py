"""Exporters: OpenMetrics text exposition and a stable-ordered JSON doc.

The OpenMetrics output follows the text exposition format (``# TYPE`` /
``# HELP`` headers, ``_total``-suffixed counter samples, summaries with
``quantile`` labels, terminal ``# EOF``) and every sample carries the run
manifest labels, so scrapes from different PRs/configs never collide.
:func:`validate_openmetrics` is the format checker the tests and CI run
against the exporter's own output.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.metrics.model import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    MetricSeries,
    MetricsCollection,
    quantile,
)

#: schema tag of the JSON metrics document
JSON_SCHEMA = "repro-metrics/1"

#: summary quantiles exported for histogram series
SUMMARY_QUANTILES = (0.25, 0.5, 0.75)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<ts>\S+))?$")
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def escape_label_value(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{escape_label_value(labels[name])}"'
                    for name in sorted(labels))
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _merged_labels(series: MetricSeries,
                   manifest_labels: Mapping[str, str]) -> Dict[str, str]:
    merged = dict(manifest_labels)
    merged.update(series.label_dict)
    return merged


def to_openmetrics(collection: MetricsCollection) -> str:
    """Render a collection as OpenMetrics text exposition."""
    manifest_labels = collection.manifest.labels()
    lines: List[str] = []
    seen_families: Dict[str, str] = {}
    for series in collection.series():
        om_type = "summary" if series.kind == HISTOGRAM else series.kind
        if series.name not in seen_families:
            seen_families[series.name] = om_type
            if series.help:
                lines.append(f"# HELP {series.name} "
                             f"{series.help.replace(chr(10), ' ')}")
            if series.unit:
                lines.append(f"# UNIT {series.name} {series.unit}")
            lines.append(f"# TYPE {series.name} {om_type}")
        elif seen_families[series.name] != om_type:
            raise ValueError(f"family {series.name} has mixed types")
        labels = _render_labels(_merged_labels(series, manifest_labels))
        if series.kind == COUNTER:
            lines.append(f"{series.name}_total{labels} "
                         f"{_format_value(series.value)}")
        elif series.kind == GAUGE:
            lines.append(f"{series.name}{labels} "
                         f"{_format_value(series.value)}")
        else:
            summary = series.summary()
            base = _merged_labels(series, manifest_labels)
            for q in SUMMARY_QUANTILES:
                q_labels = dict(base)
                q_labels["quantile"] = _format_value(float(q))
                lines.append(f"{series.name}{_render_labels(q_labels)} "
                             f"{_format_value(quantile(series.observations, q))}")
            lines.append(f"{series.name}_count{labels} "
                         f"{_format_value(summary['count'])}")
            lines.append(f"{series.name}_sum{labels} "
                         f"{_format_value(summary['sum'])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(collection: MetricsCollection, path) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(to_openmetrics(collection))
    return target


def to_json_document(collection: MetricsCollection) -> Dict[str, Any]:
    """Stable-ordered JSON document (manifest + every series)."""
    return {
        "schema": JSON_SCHEMA,
        "manifest": collection.manifest.as_dict(),
        "metrics": [series.to_dict() for series in collection.series()],
    }


def to_json(collection: MetricsCollection,
            indent: Optional[int] = 2) -> str:
    return json.dumps(to_json_document(collection), indent=indent,
                      sort_keys=True)


def write_json(collection: MetricsCollection, path) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(to_json(collection) + "\n")
    return target


# -- format validation ---------------------------------------------------
_ALLOWED_TYPES = ("counter", "gauge", "summary", "histogram", "info",
                  "unknown")


def parse_labels(body: str) -> Dict[str, str]:
    """Parse the inside of a ``{...}`` label block (validates syntax)."""
    labels: Dict[str, str] = {}
    rest = body
    while rest:
        match = _LABEL_RE.match(rest)
        if match is None:
            raise ValueError(f"malformed label block near {rest!r}")
        labels[match.group("name")] = match.group("value")
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise ValueError(f"malformed label separator near {rest!r}")
    return labels


def validate_openmetrics(text: str) -> Dict[str, Any]:
    """Check OpenMetrics text structure; raises ``ValueError`` on problems.

    Returns a summary: family count, sample count, and the parsed samples
    as ``(family, sample_name, labels, value)`` tuples for assertions.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    if not lines or lines[-1] != "# EOF":
        raise ValueError("missing terminal # EOF line")
    families: Dict[str, str] = {}
    samples: List[Tuple[str, str, Dict[str, str], float]] = []
    for index, line in enumerate(lines[:-1]):
        where = f"line {index + 1}"
        if line == "# EOF":
            raise ValueError(f"{where}: # EOF before end of document")
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in _ALLOWED_TYPES:
                raise ValueError(f"{where}: malformed TYPE line {line!r}")
            if not _NAME_RE.match(parts[2]):
                raise ValueError(f"{where}: bad family name {parts[2]!r}")
            if parts[2] in families:
                raise ValueError(f"{where}: duplicate TYPE for {parts[2]}")
            families[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP ") or line.startswith("# UNIT "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"{where}: malformed metadata line {line!r}")
            continue
        if line.startswith("#"):
            raise ValueError(f"{where}: unknown comment directive {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"{where}: unparseable sample {line!r}")
        name = match.group("name")
        family = _family_of(name, families)
        if family is None:
            raise ValueError(f"{where}: sample {name!r} before its TYPE")
        kind = families[family]
        if kind == "counter" and not (name.endswith("_total")
                                      or name.endswith("_created")):
            raise ValueError(f"{where}: counter sample {name!r} must use "
                             f"the _total suffix")
        labels = parse_labels(match.group("labels") or "")
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(f"{where}: non-numeric value "
                             f"{match.group('value')!r}") from None
        if kind == "summary" and "quantile" in labels:
            q = float(labels["quantile"])
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"{where}: quantile {q} outside [0, 1]")
        samples.append((family, name, labels, value))
    if not families:
        raise ValueError("document declares no metric families")
    return {
        "families": len(families),
        "samples": len(samples),
        "parsed": samples,
        "types": dict(families),
    }


def _family_of(sample_name: str,
               families: Mapping[str, str]) -> Optional[str]:
    """Longest declared family the sample name belongs to."""
    if sample_name in families:
        return sample_name
    for suffix in ("_total", "_created", "_count", "_sum", "_bucket"):
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if base in families:
                return base
    return None


def validate_openmetrics_file(path) -> Dict[str, Any]:
    return validate_openmetrics(Path(path).read_text())
