"""Regression gate: compare a BENCH document against a committed baseline.

``benchmarks/baseline.json`` pins every gated metric with a value, a
relative tolerance, and a direction (``higher``/``lower`` is better).
Wall-time metrics carry generous tolerances (machines differ); the
deterministic paper-anchor experiment metrics carry tight ones (they are
simulation outputs and must not drift between PRs).

:func:`compare` returns per-metric :class:`Delta` rows;
:func:`render_delta_table` prints them as markdown and
``tools/check_regression.py`` turns them into an exit code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

#: schema tag of the committed baseline document
BASELINE_SCHEMA = "repro-baseline/1"

#: default relative tolerance when a baseline entry does not set one
DEFAULT_TOLERANCE = 0.25

#: delta statuses
OK = "ok"
IMPROVED = "improved"
REGRESSION = "regression"
MISSING = "missing"


@dataclass
class Delta:
    """One gated metric: baseline vs candidate."""

    name: str
    baseline: float
    current: Optional[float]
    tolerance: float
    direction: str  # "higher" or "lower" is better
    status: str

    @property
    def rel_change(self) -> Optional[float]:
        if self.current is None or self.baseline == 0:
            return None
        return (self.current - self.baseline) / abs(self.baseline)


def extract_metrics(bench_doc: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten a BENCH document into gateable ``name -> value`` pairs."""
    metrics: Dict[str, float] = {}
    for name, result in sorted(bench_doc.get("benchmarks", {}).items()):
        wall = result.get("wall_s", {})
        if "median" in wall:
            metrics[f"bench:{name}:wall_s"] = float(wall["median"])
        throughput = result.get("throughput", {})
        if "median" in throughput:
            metrics[f"bench:{name}:throughput"] = float(throughput["median"])
        # per-phase cycle fractions are simulation outputs (deterministic
        # across machines), so they gate like experiment anchors
        attribution = result.get("attribution") or {}
        fractions = attribution.get("cycle_fractions") or {}
        for phase in sorted(fractions):
            metrics[f"bench:{name}:cycle_fraction:{phase}"] = \
                float(fractions[phase])
        # serve benches carry an SLO block: latency quantiles, throughput
        # and budget attainment gate as ``serve:*`` metrics
        slo = result.get("slo") or {}
        short = name[len("serve."):] if name.startswith("serve.") else name
        for key in sorted(slo):
            value = slo[key]
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            metrics[f"serve:{short}:{key}"] = float(value)
    for key, value in sorted(bench_doc.get("experiments", {}).items()):
        metrics[f"experiment:{key}"] = float(value)
    return metrics


def validate_bench_doc(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Schema check for BENCH files; raises ``ValueError`` on problems."""
    from repro.metrics.bench import BENCH_SCHEMA

    if not isinstance(doc, Mapping):
        raise ValueError("BENCH document must be a JSON object")
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"unknown BENCH schema {doc.get('schema')!r}")
    manifest = doc.get("manifest")
    if not isinstance(manifest, Mapping):
        raise ValueError("BENCH document missing its run manifest")
    for key in ("config_hash", "git_sha", "version", "python", "platform",
                "seed"):
        if key not in manifest:
            raise ValueError(f"BENCH manifest missing {key!r}")
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, Mapping):
        raise ValueError("BENCH document missing 'benchmarks'")
    for name, result in benchmarks.items():
        for key in ("wall_s", "throughput", "work"):
            if key not in result:
                raise ValueError(f"benchmark {name!r} missing {key!r}")
        for stat in ("median", "min", "iqr"):
            if stat not in result["wall_s"]:
                raise ValueError(f"benchmark {name!r} wall_s missing "
                                 f"{stat!r}")
        if not isinstance(result["wall_s"].get("samples"), list):
            raise ValueError(f"benchmark {name!r} wall_s missing its raw "
                             "per-repeat 'samples'")
        attribution = result.get("attribution")
        if attribution is not None:
            from repro.errors import ObservabilityError
            from repro.obs import validate_attribution_dict

            try:
                validate_attribution_dict(attribution)
            except ObservabilityError as exc:
                raise ValueError(f"benchmark {name!r}: {exc}") from exc
        slo = result.get("slo")
        if slo is not None:
            if not isinstance(slo, Mapping):
                raise ValueError(f"benchmark {name!r}: 'slo' must be an "
                                 "object")
            for key, value in slo.items():
                if isinstance(value, bool) or \
                        not isinstance(value, (int, float)):
                    raise ValueError(f"benchmark {name!r}: slo[{key!r}] "
                                     "must be numeric")
            if "attainment" in slo and not 0.0 <= slo["attainment"] <= 1.0:
                raise ValueError(f"benchmark {name!r}: slo attainment "
                                 f"{slo['attainment']!r} outside [0, 1]")
    return {"benchmarks": len(benchmarks),
            "experiments": len(doc.get("experiments", {}))}


def load_baseline(path) -> Dict[str, Any]:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"unknown baseline schema {doc.get('schema')!r}")
    if not isinstance(doc.get("metrics"), Mapping):
        raise ValueError("baseline document missing 'metrics'")
    return doc


def compare(candidate: Mapping[str, float],
            baseline_doc: Mapping[str, Any]) -> List[Delta]:
    """Gate every baseline metric against the candidate values."""
    deltas: List[Delta] = []
    for name, entry in sorted(baseline_doc["metrics"].items()):
        base = float(entry["value"])
        tolerance = float(entry.get("tolerance", DEFAULT_TOLERANCE))
        direction = entry.get("direction", "higher")
        if direction not in ("higher", "lower", "near"):
            raise ValueError(f"baseline metric {name!r}: bad direction "
                             f"{direction!r}")
        current = candidate.get(name)
        if current is None:
            deltas.append(Delta(name, base, None, tolerance, direction,
                                MISSING))
            continue
        rel = (current - base) / abs(base) if base else current - base
        if direction == "higher":
            worse, better = rel < -tolerance, rel > tolerance
        elif direction == "lower":
            worse, better = rel > tolerance, rel < -tolerance
        else:  # "near": deterministic value, any drift is a regression
            worse, better = abs(rel) > tolerance, False
        status = REGRESSION if worse else IMPROVED if better else OK
        deltas.append(Delta(name, base, float(current), tolerance,
                            direction, status))
    return deltas


def regressions(deltas: List[Delta], strict: bool = False) -> List[Delta]:
    """The failing rows (``strict`` also fails on missing metrics)."""
    bad = [delta for delta in deltas if delta.status == REGRESSION]
    if strict:
        bad += [delta for delta in deltas if delta.status == MISSING]
    return bad


def render_delta_table(deltas: List[Delta]) -> str:
    """Markdown delta table (what CI prints and PRs can paste)."""
    lines = ["| metric | baseline | current | change | tolerance | status |",
             "|---|---|---|---|---|---|"]
    for delta in deltas:
        current = "-" if delta.current is None else f"{delta.current:.6g}"
        rel = delta.rel_change
        change = "-" if rel is None else f"{rel * 100:+.1f}%"
        arrow = {"higher": "higher=better", "lower": "lower=better",
                 "near": "exact"}[delta.direction]
        flag = {REGRESSION: "**REGRESSION**", MISSING: "missing",
                IMPROVED: "improved", OK: "ok"}[delta.status]
        lines.append(f"| {delta.name} | {delta.baseline:.6g} | {current} "
                     f"| {change} | ±{delta.tolerance * 100:g}% "
                     f"({arrow}) | {flag} |")
    return "\n".join(lines)


def baseline_from_bench(bench_doc: Mapping[str, Any], *,
                        wall_tolerance: float = 1.0,
                        throughput_tolerance: float = 0.6,
                        experiment_tolerance: float = 0.001
                        ) -> Dict[str, Any]:
    """Seed a baseline document from a measured BENCH document.

    Used to (re)generate ``benchmarks/baseline.json``: wall/throughput
    metrics get machine-variance tolerances, experiment anchors get tight
    ones.
    """
    metrics: Dict[str, Dict[str, Any]] = {}
    for name, value in extract_metrics(bench_doc).items():
        if name.endswith(":wall_s"):
            entry = {"value": value, "tolerance": wall_tolerance,
                     "direction": "lower"}
        elif name.endswith(":throughput"):
            entry = {"value": value, "tolerance": throughput_tolerance,
                     "direction": "higher"}
        elif name.startswith("serve:"):
            # serve latencies are host wall time under load -> generous,
            # lower is better; rates/attainment gate higher-is-better
            if name.endswith("_ms"):
                entry = {"value": value, "tolerance": wall_tolerance,
                         "direction": "lower"}
            elif name.endswith(":throughput_rps") or \
                    name.endswith(":attainment"):
                entry = {"value": value,
                         "tolerance": throughput_tolerance,
                         "direction": "higher"}
            else:  # shed/timeout counters: more of them is a regression
                entry = {"value": value, "tolerance": wall_tolerance,
                         "direction": "lower"}
        else:
            entry = {"value": value, "tolerance": experiment_tolerance,
                     "direction": "near"}
        metrics[name] = entry
    return {
        "schema": BASELINE_SCHEMA,
        "source_manifest": dict(bench_doc.get("manifest", {})),
        "metrics": metrics,
    }
