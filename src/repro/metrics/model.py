"""Typed metric series + the run manifest attached to every collection.

A :class:`MetricsCollection` holds counter/gauge/histogram series keyed by
(name, labels).  Collections are built *after* the simulation from
:meth:`~repro.sim.StatsRegistry.snapshot` diffs plus wall-clock timing —
the simulator hot path is never touched, so disabled metrics cost nothing.

Every collection carries a :class:`RunManifest` identifying what produced
the numbers: config hash, seed, package version, git SHA, python/platform
and artifact-cache traffic.  Exporters stamp the manifest onto every
series as labels, which is what makes BENCH trajectory files and
OpenMetrics scrapes comparable across PRs.
"""

from __future__ import annotations

import dataclasses
import platform as platform_module
import re
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: metric kinds (OpenMetrics family types; histograms export as summaries)
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: prefix stamped onto every sanitized registry-derived metric name
METRIC_PREFIX = "repro_"

_NAME_OK_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, prefix: str = METRIC_PREFIX) -> str:
    """Turn a dotted registry counter name into a valid metric name.

    ``cpu.pipeline.cycles`` -> ``repro_cpu_pipeline_cycles``.
    """
    cleaned = _NAME_BAD_CHARS.sub("_", name.strip())
    if not cleaned or not _NAME_OK_RE.match(cleaned):
        cleaned = f"_{cleaned}"
    if prefix and not cleaned.startswith(prefix):
        cleaned = prefix + cleaned
    return cleaned


def _git_sha(root: Optional[Path] = None) -> str:
    """Current git commit (short), or ``"unknown"`` outside a checkout."""
    if root is None:
        root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"], cwd=str(root),
            capture_output=True, text=True, timeout=5, check=False)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


@dataclass(frozen=True)
class RunManifest:
    """Identity of one metrics collection: what code ran on what machine."""

    config_hash: str
    seed: int
    version: str
    git_sha: str
    python: str
    platform: str
    engine: str = "accurate"
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    created_unix: float = 0.0

    @classmethod
    def collect(cls, session: Optional[Any] = None,
                clock=time.time) -> "RunManifest":
        """Snapshot the current session + environment into a manifest."""
        import repro
        from repro.sim import get_session

        if session is None:
            session = get_session()
        cache = session.cache
        return cls(
            config_hash=session.config_hash,
            seed=session.config.seed,
            version=repro.__version__,
            git_sha=_git_sha(),
            python=platform_module.python_version(),
            platform=sys.platform,
            engine=session.config.engine,
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_stores=cache.stores,
            created_unix=clock(),
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (stable key order)."""
        data = dataclasses.asdict(self)
        return {key: data[key] for key in sorted(data)}

    def labels(self) -> Dict[str, str]:
        """The identity subset stamped onto every exported series."""
        return {
            "config_hash": self.config_hash,
            "engine": self.engine,
            "git_sha": self.git_sha,
            "platform": self.platform,
            "python": self.python,
            "seed": str(self.seed),
            "version": self.version,
        }


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an unsorted sample (0 <= q <= 1)."""
    if not values:
        raise ValueError("quantile of empty sample")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    frac = position - low
    return float(ordered[low] * (1 - frac) + ordered[high] * frac)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """min/median/IQR summary of a sample (the bench reporting contract)."""
    return {
        "count": len(values),
        "sum": float(sum(values)),
        "min": float(min(values)),
        "max": float(max(values)),
        "median": quantile(values, 0.5),
        "p25": quantile(values, 0.25),
        "p75": quantile(values, 0.75),
        "iqr": quantile(values, 0.75) - quantile(values, 0.25),
    }


@dataclass
class MetricSeries:
    """One named series: a scalar (counter/gauge) or a sample (histogram)."""

    name: str
    kind: str
    labels: Tuple[Tuple[str, str], ...] = ()
    value: Optional[float] = None
    observations: List[float] = field(default_factory=list)
    help: str = ""
    unit: str = ""

    def __post_init__(self):
        if self.kind not in (COUNTER, GAUGE, HISTOGRAM):
            raise ValueError(f"unknown metric kind {self.kind!r}")
        if not _NAME_OK_RE.match(self.name):
            raise ValueError(f"invalid metric name {self.name!r}")
        if self.kind == COUNTER and (self.value or 0) < 0:
            raise ValueError(f"counter {self.name} cannot be negative")

    @property
    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def summary(self) -> Dict[str, float]:
        return summarize(self.observations)

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "labels": self.label_dict,
        }
        if self.unit:
            doc["unit"] = self.unit
        if self.help:
            doc["help"] = self.help
        if self.kind == HISTOGRAM:
            doc["summary"] = self.summary()
            doc["observations"] = [float(v) for v in self.observations]
        else:
            doc["value"] = self.value
        return doc


def _label_key(labels: Optional[Mapping[str, str]]):
    return tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))


class MetricsCollection:
    """Counter/gauge/histogram series plus the manifest that produced them."""

    def __init__(self, manifest: Optional[RunManifest] = None):
        self.manifest = manifest if manifest is not None \
            else RunManifest.collect()
        self._series: Dict[Tuple[str, tuple], MetricSeries] = {}

    def __len__(self) -> int:
        return len(self._series)

    def _put(self, series: MetricSeries) -> MetricSeries:
        key = (series.name, series.labels)
        existing = self._series.get(key)
        if existing is not None and existing.kind != series.kind:
            raise ValueError(f"metric {series.name} re-registered as "
                             f"{series.kind} (was {existing.kind})")
        self._series[key] = series
        return series

    def counter(self, name: str, value: float,
                labels: Optional[Mapping[str, str]] = None,
                help: str = "", unit: str = "") -> MetricSeries:
        return self._put(MetricSeries(name=name, kind=COUNTER,
                                      labels=_label_key(labels),
                                      value=float(value), help=help,
                                      unit=unit))

    def gauge(self, name: str, value: float,
              labels: Optional[Mapping[str, str]] = None,
              help: str = "", unit: str = "") -> MetricSeries:
        return self._put(MetricSeries(name=name, kind=GAUGE,
                                      labels=_label_key(labels),
                                      value=float(value), help=help,
                                      unit=unit))

    def histogram(self, name: str, observations: Sequence[float],
                  labels: Optional[Mapping[str, str]] = None,
                  help: str = "", unit: str = "") -> MetricSeries:
        return self._put(MetricSeries(name=name, kind=HISTOGRAM,
                                      labels=_label_key(labels),
                                      observations=[float(v)
                                                    for v in observations],
                                      help=help, unit=unit))

    def series(self) -> List[MetricSeries]:
        """All series in stable (name, labels) order."""
        return [self._series[key] for key in sorted(self._series)]

    def get(self, name: str,
            labels: Optional[Mapping[str, str]] = None
            ) -> Optional[MetricSeries]:
        return self._series.get((name, _label_key(labels)))

    def add_registry_diff(self, diff: Mapping[str, float],
                          labels: Optional[Mapping[str, str]] = None) -> None:
        """Fold a :meth:`StatsRegistry.diff` into counters (sanitized)."""
        for name in sorted(diff):
            self.counter(sanitize_metric_name(name), diff[name],
                         labels=labels,
                         help=f"stats registry counter {name}")

    def add_registry_gauges(self, gauges: Mapping[str, Any],
                            labels: Optional[Mapping[str, str]] = None
                            ) -> None:
        """Fold numeric registry gauges in (non-numeric values skipped)."""
        for name in sorted(gauges):
            value = gauges[name]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.gauge(sanitize_metric_name(name), value, labels=labels,
                       help=f"stats registry gauge {name}")

    def add_phase_attribution(self, attribution) -> None:
        """Fold one :class:`repro.obs.RunAttribution` into the collection.

        Per phase: cycle and wall-second gauges plus a cycle-fraction
        gauge, all labelled by scenario/engine/kind/phase.  Per-shard
        wall samples of the parallel engine become histograms so fan-out
        variance is scrape-visible, and ``repro_obs_serial_fallback``
        records whether the sharded path actually ran.
        """
        from repro.obs import PHASES

        labels = {"scenario": attribution.scenario,
                  "engine": attribution.engine,
                  "kind": attribution.kind}
        self.gauge("repro_obs_total_cycles", attribution.total_cycles,
                   labels=labels, unit="cycles",
                   help="total simulated cycles of the attributed run")
        self.gauge("repro_obs_total_wall_seconds", attribution.total_wall_s,
                   labels=labels, unit="seconds",
                   help="total host wall time of the attributed run")
        self.gauge("repro_obs_serial_fallback",
                   1.0 if attribution.serial_fallback else 0.0,
                   labels=labels,
                   help="1 when the parallel engine took its serial "
                        "fallback during the run")
        cycle_fractions = attribution.cycle_fractions()
        for phase in PHASES:
            phase_labels = dict(labels, phase=phase)
            self.gauge("repro_obs_phase_cycles",
                       attribution.cycles[phase], labels=phase_labels,
                       unit="cycles",
                       help="simulated cycles attributed to this phase")
            self.gauge("repro_obs_phase_wall_seconds",
                       attribution.wall_s[phase], labels=phase_labels,
                       unit="seconds",
                       help="host wall time attributed to this phase")
            self.gauge("repro_obs_phase_cycle_fraction",
                       cycle_fractions[phase], labels=phase_labels,
                       help="this phase's share of total simulated cycles")
        if attribution.workers:
            for piece in ("serialize_s", "queue_wait_s", "compute_s"):
                self.histogram(
                    f"repro_obs_shard_{piece[:-2]}_seconds",
                    [float(sample.get(piece, 0.0))
                     for sample in attribution.workers],
                    labels=labels, unit="seconds",
                    help=f"per-shard {piece[:-2]} wall time of the "
                         "parallel engine")


class MetricsRecorder:
    """Snapshot-on-enter / diff-on-exit collection around a simulation.

    The recorded collection is built entirely from the registry delta after
    the workload finishes — nothing is attached to the simulators, so the
    hot path runs exactly as without metrics.
    """

    def __init__(self, session: Optional[Any] = None,
                 manifest: Optional[RunManifest] = None):
        from repro.sim import get_session

        self.session = session if session is not None else get_session()
        self.manifest = manifest
        self.collection: Optional[MetricsCollection] = None
        self._before: Dict[str, float] = {}
        self._start = 0.0

    def __enter__(self) -> "MetricsRecorder":
        self._before = self.session.stats.snapshot()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._start
        manifest = self.manifest if self.manifest is not None \
            else RunManifest.collect(self.session)
        collection = MetricsCollection(manifest)
        collection.add_registry_diff(self.session.stats.diff(self._before))
        collection.add_registry_gauges(self.session.stats.gauges())
        collection.gauge("repro_run_wall_seconds", wall, unit="seconds",
                         help="wall-clock time of the recorded block")
        self.collection = collection
