"""Neural ALU experiment (paper section VIII.C, Fig 19)."""

from repro.nalu.cost import (
    CostComparison,
    GE_DIGITAL,
    PAPER_AREA_RATIOS,
    compare_all,
    compare_operation,
    nalu_area_ge,
    total_alu_comparison,
)
from repro.nalu.model import NALUCell, NALUNetwork
from repro.nalu.training import (
    NALUResult,
    TASKS,
    make_dataset,
    run_all_tasks,
    train_task,
)

__all__ = [
    "NALUCell",
    "NALUNetwork",
    "NALUResult",
    "TASKS",
    "make_dataset",
    "train_task",
    "run_all_tasks",
    "CostComparison",
    "GE_DIGITAL",
    "PAPER_AREA_RATIOS",
    "compare_all",
    "compare_operation",
    "nalu_area_ge",
    "total_alu_comparison",
]
