"""Hardware cost model for the NALU vs. conventional digital logic (Fig 19b).

The paper implemented the trained NALU for each 8-bit ALU operation in the
same 65 nm flow and reports post-layout areas 13-35x the conventional
digital blocks ("the NALU implementation for ADD cost about 17X area than a
digital adder").  Like the chip-area model in :mod:`repro.power.area`, the
per-operation ratios are *silicon-measured anchors*; this module wraps them
with a gate-equivalent decomposition so absolute areas, weight-storage
shares, and sanity relations (Boolean ops cost relatively more than
arithmetic, every NALU is >10x its digital counterpart) are available to
the experiments and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError

BITS = 8

#: gate-equivalents of registered 8-bit digital datapath blocks
GE_DIGITAL: Dict[str, float] = {
    "add": 136.0,  # 8 full adders + output register
    "sub": 148.0,
    "mul": 376.0,  # 8x8 array multiplier + register
    "and": 60.0,
    "xor": 72.0,
    "or": 60.0,
}

#: paper Fig 19b: post-layout NALU/digital area ratios (anchors).  The text
#: states ADD explicitly (~17x); the remaining bars read 13-35x, with the
#: Boolean operations the most expensive relative to their tiny digital
#: counterparts.
PAPER_AREA_RATIOS: Dict[str, float] = {
    "add": 17.0,
    "sub": 15.0,
    "and": 35.0,
    "xor": 32.0,
    "mul": 13.0,
    "or": 14.0,
}

GE_MULTIPLIER = 280.0
GE_ADDER = 11.0 * BITS
GE_WEIGHT_REG = 6.0 * BITS


@dataclass(frozen=True)
class CostComparison:
    """Area of the NALU vs. the digital implementation of one operation."""

    operation: str
    nalu_ge: float
    digital_ge: float

    @property
    def ratio(self) -> float:
        return self.nalu_ge / self.digital_ge

    @property
    def multiplier_equivalents(self) -> float:
        """How many 8x8 multipliers the NALU area corresponds to — the
        paper's point: multiplication hardware for a trivial ALU op."""
        return self.nalu_ge / GE_MULTIPLIER


def nalu_area_ge(operation: str) -> float:
    """Absolute NALU area (GE) from the anchored ratio and digital base."""
    if operation not in PAPER_AREA_RATIOS:
        raise ConfigurationError(f"no NALU anchor for {operation!r}")
    return PAPER_AREA_RATIOS[operation] * GE_DIGITAL[operation]


def compare_operation(operation: str) -> CostComparison:
    if operation not in GE_DIGITAL:
        raise ConfigurationError(f"no digital baseline for {operation!r}")
    return CostComparison(operation=operation,
                          nalu_ge=nalu_area_ge(operation),
                          digital_ge=GE_DIGITAL[operation])


def compare_all() -> Dict[str, CostComparison]:
    """Fig 19b: every operation's NALU/digital area ratio."""
    return {op: compare_operation(op) for op in GE_DIGITAL}


def total_alu_comparison() -> CostComparison:
    """A whole 6-operation ALU built either way (the section's conclusion:
    a NALU-based CPU datapath is infeasible for resource-constrained SoCs)."""
    digital = sum(GE_DIGITAL.values())
    nalu = sum(nalu_area_ge(op) for op in GE_DIGITAL)
    return CostComparison(operation="alu", nalu_ge=nalu, digital_ge=digital)
