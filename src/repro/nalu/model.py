"""Neural Arithmetic Logic Unit (Trask et al., the paper's ref [36]).

A NALU cell computes, for input vector x:

* add/sub path:  ``a = W x``            with ``W = tanh(What) * sigmoid(Mhat)``
* mul path:      ``m = exp(W log(|x| + eps))``
* gate:          ``g = sigmoid(G x)``
* output:        ``y = g * a + (1 - g) * m``

The paper stacks two layers and trains on 8-bit ALU operations (ADD, SUB,
AND, XOR) with an MSE loss, reporting the error *normalized to a randomly
initialized model* — ADD/SUB learn well, Boolean ops fail, and learning ADD
and SUB simultaneously collapses to near-random (Fig 19a).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError

EPS = 1e-7


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(values, -30, 30)))


class NALUCell:
    """One NALU layer: ``in_dim -> out_dim``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        if in_dim <= 0 or out_dim <= 0:
            raise ConfigurationError("NALU dimensions must be positive")
        self.in_dim = in_dim
        self.out_dim = out_dim
        scale = 1.0 / np.sqrt(in_dim)
        self.w_hat = rng.uniform(-scale, scale, size=(out_dim, in_dim))
        self.m_hat = rng.uniform(-scale, scale, size=(out_dim, in_dim))
        self.g = rng.uniform(-scale, scale, size=(out_dim, in_dim))

    # -- forward ----------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Batch forward; ``x`` is (batch, in_dim)."""
        cache = {}
        w = np.tanh(self.w_hat) * _sigmoid(self.m_hat)
        add = x @ w.T
        log_x = np.log(np.abs(x) + EPS)
        mul = np.exp(np.clip(log_x @ w.T, -30, 30))
        gate = _sigmoid(x @ self.g.T)
        out = gate * add + (1.0 - gate) * mul
        cache.update(x=x, w=w, add=add, mul=mul, gate=gate, log_x=log_x)
        self._cache = cache
        return out

    # -- backward (returns grad wrt x; accumulates parameter grads) -------
    def backward(self, grad_out: np.ndarray):
        c = self._cache
        x, w, add, mul, gate, log_x = (c["x"], c["w"], c["add"], c["mul"],
                                       c["gate"], c["log_x"])
        grad_add = grad_out * gate
        grad_mul = grad_out * (1.0 - gate)
        grad_gate = grad_out * (add - mul) * gate * (1.0 - gate)

        # gate weights
        self.grad_g = grad_gate.T @ x
        # W receives contributions from both paths
        grad_w = grad_add.T @ x + (grad_mul * mul).T @ log_x
        tanh_w = np.tanh(self.w_hat)
        sig_m = _sigmoid(self.m_hat)
        self.grad_w_hat = grad_w * (1.0 - tanh_w ** 2) * sig_m
        self.grad_m_hat = grad_w * tanh_w * sig_m * (1.0 - sig_m)

        # input gradient (through add, mul and gate paths)
        grad_x = grad_add @ w
        grad_log = (grad_mul * mul) @ w
        grad_x += grad_log * (np.sign(x) / (np.abs(x) + EPS))
        grad_x += grad_gate @ self.g
        return grad_x

    def params(self) -> List[np.ndarray]:
        return [self.w_hat, self.m_hat, self.g]

    def grads(self) -> List[np.ndarray]:
        return [self.grad_w_hat, self.grad_m_hat, self.grad_g]


class NALUNetwork:
    """A two-layer NALU stack (the paper's configuration)."""

    def __init__(self, in_dim: int, hidden: int, out_dim: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.layers = [NALUCell(in_dim, hidden, rng),
                       NALUCell(hidden, out_dim, rng)]

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> None:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def params(self) -> List[np.ndarray]:
        return [p for layer in self.layers for p in layer.params()]

    def grads(self) -> List[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads()]
