"""Training harness for the NALU ALU-operation experiment (Fig 19a).

Tasks are 8-bit ALU operations on operand pairs; ``addsub`` presents both
operations to one network, selected by an opcode input — the configuration
the paper reports as collapsing to near-random output.

The reported metric is MSE normalized to a randomly initialized model
(100 % == random, 0 % == perfect), exactly as the paper defines it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nalu.model import NALUNetwork

#: operand scale: 8-bit values normalized into [0, 1)
SCALE = 256.0

TASKS = ("add", "sub", "and", "xor", "addsub")


def make_dataset(task: str, n_samples: int = 2048,
                 seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Sample operand pairs and targets for one ALU task."""
    if task not in TASKS:
        raise ConfigurationError(f"unknown NALU task {task!r}; know {TASKS}")
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, size=n_samples)
    b = rng.integers(0, 256, size=n_samples)
    if task == "add":
        x = np.stack([a, b], axis=1) / SCALE
        y = (a + b) / SCALE
    elif task == "sub":
        x = np.stack([a, b], axis=1) / SCALE
        y = (a - b) / SCALE
    elif task == "and":
        x = np.stack([a, b], axis=1) / SCALE
        y = (a & b) / SCALE
    elif task == "xor":
        x = np.stack([a, b], axis=1) / SCALE
        y = (a ^ b) / SCALE
    else:
        # addsub: the paper's "realizing both ADD and SUB simultaneously" —
        # one output unit is asked for a+b on half the samples and a-b on
        # the other half with no way to tell them apart, so training
        # collapses toward the mean (near-random output, Fig 19a)
        which = rng.integers(0, 2, size=n_samples)
        x = np.stack([a, b], axis=1) / SCALE
        y = np.where(which == 0, a + b, a - b) / SCALE
    return x, y.reshape(-1, 1).astype(np.float64)


@dataclass
class NALUResult:
    """Outcome of training one task."""

    task: str
    final_mse: float
    random_mse: float
    target_variance: float

    @property
    def normalized_error(self) -> float:
        """MSE relative to the uninformed predictor (target variance).

        This is the Fig 19a metric: 100 % means the trained network is no
        better than guessing the mean (random output), 0 % is perfect.
        """
        if self.target_variance == 0:
            return 0.0
        return min(self.final_mse / self.target_variance, 1.5)

    @property
    def normalized_error_vs_init(self) -> float:
        """MSE relative to a randomly *initialized* network (alternative
        reading of the paper's normalization; reported for completeness)."""
        if self.random_mse == 0:
            return 0.0
        return min(self.final_mse / self.random_mse, 1.5)


class _Adam:
    def __init__(self, params, lr=0.01):
        self.lr = lr
        self.m = [np.zeros_like(p) for p in params]
        self.v = [np.zeros_like(p) for p in params]
        self.t = 0

    def step(self, params, grads):
        self.t += 1
        c1 = 1 - 0.9 ** self.t
        c2 = 1 - 0.999 ** self.t
        for i, (p, g) in enumerate(zip(params, grads)):
            self.m[i] = 0.9 * self.m[i] + 0.1 * g
            self.v[i] = 0.999 * self.v[i] + 0.001 * g ** 2
            p -= self.lr * (self.m[i] / c1) / (np.sqrt(self.v[i] / c2) + 1e-8)


def train_task(task: str, hidden: int = 4, steps: int = 1500,
               batch_size: int = 128, learning_rate: float = 0.02,
               seed: int = 0) -> NALUResult:
    """Train a 2-layer NALU on one task; returns the normalized error."""
    x, y = make_dataset(task, seed=seed)
    in_dim = x.shape[1]
    network = NALUNetwork(in_dim, hidden, 1, seed=seed)

    # the paper's 100 % reference: a randomly initialized model (averaged
    # over several draws so one lucky init does not skew the scale)
    random_mse = float(np.mean([
        np.mean((NALUNetwork(in_dim, hidden, 1, seed=seed + 100 + k)
                 .forward(x) - y) ** 2)
        for k in range(5)
    ]))
    optimizer = _Adam(network.params(), lr=learning_rate)
    rng = np.random.default_rng(seed + 1)

    for _ in range(steps):
        batch = rng.integers(0, len(x), size=batch_size)
        xb, yb = x[batch], y[batch]
        out = network.forward(xb)
        grad = 2.0 * (out - yb) / len(xb)
        network.backward(grad)
        grads = [np.clip(g, -1.0, 1.0) for g in network.grads()]
        optimizer.step(network.params(), grads)

    final_mse = float(np.mean((network.forward(x) - y) ** 2))
    return NALUResult(task=task, final_mse=final_mse, random_mse=random_mse,
                      target_variance=float(np.var(y)))


def run_all_tasks(seed: int = 0, steps: int = 1500) -> Dict[str, NALUResult]:
    """Train every Fig 19a task; returns task -> result."""
    return {task: train_task(task, steps=steps, seed=seed) for task in TASKS}
