"""``repro.obs`` — exact phase attribution of runs (cycles + wall time).

The observability layer answers "where did this run's time go?" with one
shared six-phase vocabulary (:data:`PHASES`) on two planes: simulated
cycles (exact, from the timing models' identities) and host wall time
(measured disjoint regions, remainder in ``overhead``).  Entry points:

* :func:`attribute_scenario` / :func:`attribute_chained` — run a
  declarative Scenario once and return a checked :class:`RunAttribution`.
* ``repro attribute`` — the CLI front-end (markdown / JSON, A/B across
  engines).
* :func:`timeline_phase_cycles` — phase split of a scheduler timeline
  (used by the fig17 end-to-end experiment).
"""

from repro.obs.attribution import (
    ATTRIBUTION_SCHEMA,
    PHASE_EVENT,
    RunAttribution,
    ShardCollector,
    attribute_chained,
    attribute_scenario,
    attribution_document,
    bnn_phase_cycles,
    chained_phase_cycles,
    cpu_phase_cycles,
    phase_fractions,
    render_attribution,
    timeline_phase_cycles,
    validate_attribution_dict,
)
from repro.obs.phases import (
    INFERENCE,
    INIT,
    MEMORY_IO,
    OVERHEAD,
    PHASE_DESCRIPTIONS,
    PHASES,
    POSTPROCESS,
    PREPROCESS,
    WALL_TICK_S,
    PhaseRecorder,
    check_cycle_attribution,
    check_wall_attribution,
    empty_phases,
)

__all__ = [
    "ATTRIBUTION_SCHEMA",
    "PHASE_EVENT",
    "PHASES",
    "PHASE_DESCRIPTIONS",
    "WALL_TICK_S",
    "INIT",
    "MEMORY_IO",
    "PREPROCESS",
    "INFERENCE",
    "POSTPROCESS",
    "OVERHEAD",
    "PhaseRecorder",
    "RunAttribution",
    "ShardCollector",
    "attribute_chained",
    "attribute_scenario",
    "attribution_document",
    "bnn_phase_cycles",
    "chained_phase_cycles",
    "check_cycle_attribution",
    "check_wall_attribution",
    "cpu_phase_cycles",
    "empty_phases",
    "phase_fractions",
    "render_attribution",
    "timeline_phase_cycles",
    "validate_attribution_dict",
]
