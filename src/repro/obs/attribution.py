"""Exact phase attribution of runs: simulated cycles + host wall time.

One :class:`RunAttribution` answers "where did this run's time go?" on
both planes at once.  The cycle side is derived from the timing models'
own identities, so it is *exact* (the sum-to-total check mirrors the
profiler's exact-attribution discipline):

* **CPU run** — ``cycles = fill + instructions + stalls + flushes`` for
  the pipeline (``cycles = instructions`` for the functional engines):
  pipeline fill -> ``init``, memory instructions -> ``memory_io``,
  non-memory instructions -> ``inference``, stalls + flushes ->
  ``overhead``.
* **BNN batch** — ``total = max(compute, weight streaming)`` with
  ``compute = latency + (n-1)*interval``: first-result fill beyond the
  steady-state interval -> ``init``, ``n * interval`` steady-state
  classification -> ``inference``, the *unhidden* weight-streaming
  excess -> ``memory_io``.
* **Chained two-core inference** — pipeline fills of both halves ->
  ``init``, the activation DMA hop -> ``memory_io``, the steady-state
  three-stage pipeline -> ``inference``.
* **Scheduler timeline** — segment kinds map to phases (cpu ->
  ``preprocess``, bnn -> ``inference``, dma -> ``memory_io``, switch ->
  ``init``, idle -> ``overhead``) and the total is the summed segment
  cycles across cores.

The wall side comes from a :class:`~repro.obs.phases.PhaseRecorder`
around the real harness regions.  When the ``parallel`` engine shards
the batch, its ``bnn.parallel.shard``/``merge``/``fallback`` probe
events are captured into per-worker samples and the
``serial_fallback`` flag — same vocabulary, one level deeper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ObservabilityError
from repro.obs.phases import (
    INFERENCE,
    INIT,
    MEMORY_IO,
    OVERHEAD,
    PHASES,
    POSTPROCESS,
    PREPROCESS,
    PhaseRecorder,
    check_cycle_attribution,
    check_wall_attribution,
    empty_phases,
)

#: schema tag of the ``repro attribute`` JSON document
ATTRIBUTION_SCHEMA = "repro-attribution/1"

#: probe event published once per phase after an attributed run
PHASE_EVENT = "obs.phase"

#: timeline segment kind -> phase (unknown kinds land in overhead)
TIMELINE_KIND_PHASES = {
    "cpu": PREPROCESS,
    "bnn": INFERENCE,
    "dma": MEMORY_IO,
    "switch": INIT,
    "idle": OVERHEAD,
}


# -- cycle attributors ---------------------------------------------------
def cpu_phase_cycles(stats) -> Dict[str, int]:
    """Exact phase split of an :class:`~repro.cpu.env.ExecStats`."""
    phases = empty_phases()
    mem_ops = int(stats.mem_reads) + int(stats.mem_writes)
    phases[INIT] = (int(stats.cycles) - int(stats.instructions)
                    - int(stats.stalls) - int(stats.flushes))
    phases[MEMORY_IO] = mem_ops
    phases[INFERENCE] = int(stats.instructions) - mem_ops
    phases[OVERHEAD] = int(stats.stalls) + int(stats.flushes)
    check_cycle_attribution(phases, int(stats.cycles), "cpu run")
    return phases


def bnn_phase_cycles(timing) -> Dict[str, int]:
    """Exact phase split of a :class:`~repro.bnn.accelerator.BatchTiming`."""
    phases = empty_phases()
    latency = int(timing.latency_cycles)
    interval = int(timing.interval_cycles)
    n = int(timing.n_inputs)
    compute = latency + (n - 1) * interval
    phases[INIT] = latency - interval
    phases[INFERENCE] = n * interval
    phases[MEMORY_IO] = int(timing.total_cycles) - compute
    check_cycle_attribution(phases, int(timing.total_cycles), "bnn batch")
    return phases


def chained_phase_cycles(n_inputs: int, front_latency: int,
                         front_interval: int, back_latency: int,
                         back_interval: int,
                         dma_cycles: int) -> Dict[str, int]:
    """Exact phase split of a two-core chained-inference makespan."""
    phases = empty_phases()
    bottleneck = max(front_interval, back_interval, dma_cycles)
    phases[INIT] = ((front_latency - front_interval)
                    + (back_latency - back_interval))
    phases[MEMORY_IO] = dma_cycles
    phases[INFERENCE] = (front_interval + back_interval
                         + (n_inputs - 1) * bottleneck)
    makespan = (front_latency + dma_cycles + back_latency
                + (n_inputs - 1) * bottleneck)
    check_cycle_attribution(phases, makespan, "chained inference")
    return phases


def timeline_phase_cycles(timeline) -> Dict[str, int]:
    """Phase split of a scheduler :class:`~repro.core.events.Timeline`.

    The total is the summed segment cycles across every core (busy and
    idle), so the six buckets cover the timeline exactly.
    """
    phases = empty_phases()
    total = 0
    for segment in timeline.segments:
        phase = TIMELINE_KIND_PHASES.get(segment.kind, OVERHEAD)
        phases[phase] += int(segment.cycles)
        total += int(segment.cycles)
    check_cycle_attribution(phases, total, "timeline")
    return phases


def phase_fractions(buckets: Mapping[str, float]) -> Dict[str, float]:
    """``{phase: share of the total}`` (all zero when the total is)."""
    total = float(sum(buckets[phase] for phase in PHASES))
    if not total:
        return empty_phases(0.0)
    return {phase: float(buckets[phase]) / total for phase in PHASES}


# -- the attribution record ----------------------------------------------
@dataclass
class RunAttribution:
    """One run's exact six-phase split on both planes."""

    scenario: str
    kind: str  # 'cpu' | 'bnn' | 'chained'
    engine: str
    total_cycles: int
    total_wall_s: float
    cycles: Dict[str, int]
    wall_s: Dict[str, float]
    #: device profile the run was attributed under (ncpu-65nm by default)
    profile: str = "ncpu-65nm"
    #: per-shard wall samples of the parallel engine (empty otherwise)
    workers: List[Dict[str, float]] = field(default_factory=list)
    #: True when the parallel engine took its serial fallback
    serial_fallback: bool = False
    detail: Dict[str, Any] = field(default_factory=dict)

    def check(self) -> None:
        """Enforce both sum-to-total invariants."""
        context = f"{self.scenario} [{self.engine}/{self.kind}]"
        check_cycle_attribution(self.cycles, self.total_cycles, context)
        check_wall_attribution(self.wall_s, self.total_wall_s, context)

    def cycle_fractions(self) -> Dict[str, float]:
        return phase_fractions(self.cycles)

    def wall_fractions(self) -> Dict[str, float]:
        return phase_fractions(self.wall_s)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (what BENCH files and ``--json`` carry)."""
        return {
            "scenario": self.scenario,
            "kind": self.kind,
            "engine": self.engine,
            "profile": self.profile,
            "total_cycles": int(self.total_cycles),
            "total_wall_s": float(self.total_wall_s),
            "cycles": {phase: int(self.cycles[phase]) for phase in PHASES},
            "wall_s": {phase: float(self.wall_s[phase])
                       for phase in PHASES},
            "cycle_fractions": self.cycle_fractions(),
            "wall_fractions": self.wall_fractions(),
            "workers": [dict(sample) for sample in self.workers],
            "serial_fallback": bool(self.serial_fallback),
            "detail": dict(self.detail),
        }


class ShardCollector:
    """Captures the parallel engine's shard/fallback probes for one run."""

    EVENTS = ("bnn.parallel.shard", "bnn.parallel.merge",
              "bnn.parallel.fallback")

    def __init__(self, registry):
        self.registry = registry
        self.shards: List[Dict[str, float]] = []
        self.merge: Optional[Dict[str, float]] = None
        self.fallback = False

    def __enter__(self) -> "ShardCollector":
        for event in self.EVENTS:
            self.registry.subscribe(event, self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for event in self.EVENTS:
            self.registry.unsubscribe(event, self)

    def __call__(self, event: str, payload: Mapping[str, Any]) -> None:
        if event == "bnn.parallel.shard":
            self.shards.append({key: payload[key] for key in
                                ("shard", "rows", "transport",
                                 "serialize_s", "queue_wait_s",
                                 "compute_s")
                                if key in payload})
        elif event == "bnn.parallel.merge":
            self.merge = dict(payload)
        elif event == "bnn.parallel.fallback":
            self.fallback = True


# -- runners --------------------------------------------------------------
def _resolve_attributing_engine(engine, scenario):
    from repro.engine import resolve_engine

    resolved = resolve_engine(engine or scenario.engine.name)
    if not getattr(resolved.capabilities, "phase_attribution", False):
        raise ObservabilityError(
            f"engine {resolved.name!r} does not declare the "
            "phase_attribution capability")
    return resolved


def _publish(session, attribution: RunAttribution) -> RunAttribution:
    """Invariant-check, then surface the attribution on the session."""
    attribution.check()
    stats = session.stats
    stats.incr("obs.runs")
    for phase in PHASES:
        # literal event name (== PHASE_EVENT) so the probe-vocabulary
        # lints see this emit site
        stats.emit("obs.phase", scenario=attribution.scenario,
                   engine=attribution.engine, kind=attribution.kind,
                   profile=attribution.profile,
                   phase=phase, cycles=attribution.cycles[phase],
                   wall_s=attribution.wall_s[phase],
                   total_cycles=attribution.total_cycles)
    session.last_attribution = attribution
    return attribution


def attribute_scenario(scenario, engine=None) -> RunAttribution:
    """Run ``scenario`` once and attribute it into the six phases.

    ``engine`` overrides the scenario's engine spec (name or engine
    object).  CPU scenarios run their kernel through the engine's
    ``run_program``; BNN scenarios classify the seeded batch through the
    accelerator's engine-dispatched path — identical work to
    :func:`repro.scenario.materialize.run_scenario`, with every harness
    region wall-timed and the timing model's cycles split exactly.
    """
    from repro.scenario.materialize import (
        build_inputs,
        build_model,
        build_program,
    )
    from repro.sim import get_session

    session = get_session()
    recorder = PhaseRecorder()
    detail: Dict[str, Any] = {}
    with ShardCollector(session.stats) as collector, recorder.run():
        with recorder.measure(INIT):
            resolved = _resolve_attributing_engine(engine, scenario)
        if scenario.workload.kind == "cpu":
            with recorder.measure(PREPROCESS):
                program = build_program(scenario)
            with recorder.measure(INFERENCE):
                _, result = resolved.run_program(
                    program,
                    prefer_functional=scenario.engine.prefer_functional)
            with recorder.measure(POSTPROCESS):
                cycles = cpu_phase_cycles(result.stats)
                total_cycles = int(result.stats.cycles)
                detail = {"stop_reason": result.stop_reason,
                          "instructions": int(result.stats.instructions)}
        else:
            from repro.bnn import BNNAccelerator

            with recorder.measure(INIT):
                accelerator = BNNAccelerator()
                model = build_model(scenario)
            with recorder.measure(PREPROCESS):
                inputs = build_inputs(scenario)
            with recorder.measure(INFERENCE):
                predictions, timing = accelerator.infer_batch(
                    model, inputs,
                    stream_weights=scenario.batch_policy == "stream",
                    engine=resolved)
            with recorder.measure(POSTPROCESS):
                cycles = bnn_phase_cycles(timing)
                total_cycles = int(timing.total_cycles)
                detail = {"batch_size": int(len(inputs)),
                          "macs": int(timing.macs),
                          "predictions_head": [int(p) for p in
                                               predictions[:8]]}
    attribution = RunAttribution(
        scenario=scenario.name, kind=scenario.workload.kind,
        engine=resolved.name, profile=scenario.device.profile,
        total_cycles=total_cycles,
        total_wall_s=recorder.total_wall_s, cycles=cycles,
        wall_s=recorder.wall_phases(), workers=collector.shards,
        serial_fallback=collector.fallback, detail=detail)
    return _publish(session, attribution)


def attribute_chained(scenario, engine=None,
                      split_at: Optional[int] = None) -> RunAttribution:
    """Attribute a chained two-core end-to-end inference of ``scenario``.

    The scenario's model is split across two NCPU cores (paper section
    VI.A); the makespan decomposes into pipeline fills (``init``), the
    activation DMA hop (``memory_io``) and the steady-state three-stage
    pipeline (``inference``).  Requires a ``bnn`` scenario with at least
    two layers.
    """
    from repro.core.soc import NCPUSoC
    from repro.scenario.materialize import build_inputs, build_model
    from repro.sim import get_session

    if scenario.workload.kind != "bnn":
        raise ObservabilityError(
            f"scenario {scenario.name!r} is kind="
            f"{scenario.workload.kind!r}; chained attribution needs a bnn "
            "scenario")
    session = get_session()
    recorder = PhaseRecorder()
    with ShardCollector(session.stats) as collector, recorder.run():
        with recorder.measure(INIT):
            resolved = _resolve_attributing_engine(engine, scenario)
            model = build_model(scenario)
            if model.n_layers < 2:
                raise ObservabilityError(
                    "chained attribution needs a model with >= 2 layers")
            soc = NCPUSoC(n_cores=2, engine=resolved)
        with recorder.measure(PREPROCESS):
            inputs = build_inputs(scenario)
        with recorder.measure(INFERENCE):
            predictions, makespan = soc.run_chained_inference(
                model, inputs, split_at=split_at)
        with recorder.measure(POSTPROCESS):
            split = (split_at if split_at is not None
                     else (model.n_layers + 1) // 2)
            front, back = model.split(split)
            core0, core1 = soc.cores[0], soc.cores[1]
            words_per_act = (front.n_classes + 31) // 32
            cycles = chained_phase_cycles(
                n_inputs=len(inputs),
                front_latency=core0.accelerator.latency_cycles(front),
                front_interval=core0.accelerator.interval_cycles(front),
                back_latency=core1.accelerator.latency_cycles(back),
                back_interval=core1.accelerator.interval_cycles(back),
                dma_cycles=soc.dma.transfer_cycles(words_per_act))
            check_cycle_attribution(cycles, int(makespan),
                                    "chained vs soc makespan")
            detail = {"batch_size": int(len(inputs)),
                      "split_at": int(split),
                      "predictions_head": [int(p) for p in
                                           predictions[:8]]}
    attribution = RunAttribution(
        scenario=scenario.name, kind="chained", engine=resolved.name,
        profile=scenario.device.profile,
        total_cycles=int(makespan), total_wall_s=recorder.total_wall_s,
        cycles=cycles, wall_s=recorder.wall_phases(),
        workers=collector.shards, serial_fallback=collector.fallback,
        detail=detail)
    return _publish(session, attribution)


# -- rendering ------------------------------------------------------------
def attribution_document(attributions: Sequence[RunAttribution],
                         scenario=None) -> Dict[str, Any]:
    """The ``repro attribute --json`` document."""
    return {
        "schema": ATTRIBUTION_SCHEMA,
        "scenario": scenario.to_dict() if scenario is not None else None,
        "runs": [attribution.as_dict() for attribution in attributions],
    }


def _format_seconds(value: float) -> str:
    return f"{value:.6f}"


def render_attribution(attributions: Sequence[RunAttribution]) -> str:
    """Markdown breakdown: one phase table per run, plus an A/B summary."""
    lines: List[str] = []
    for attribution in attributions:
        fractions = attribution.cycle_fractions()
        wall_fractions = attribution.wall_fractions()
        lines.append(f"### {attribution.scenario} — engine "
                     f"`{attribution.engine}` on `{attribution.profile}` "
                     f"({attribution.kind})")
        lines.append("")
        lines.append("| phase | cycles | cycles % | wall s | wall % |")
        lines.append("|---|---|---|---|---|")
        for phase in PHASES:
            lines.append(
                f"| {phase} | {attribution.cycles[phase]} "
                f"| {fractions[phase] * 100:.1f}% "
                f"| {_format_seconds(attribution.wall_s[phase])} "
                f"| {wall_fractions[phase] * 100:.1f}% |")
        lines.append(
            f"| **total** | {attribution.total_cycles} | 100.0% "
            f"| {_format_seconds(attribution.total_wall_s)} | 100.0% |")
        if attribution.workers:
            lines.append("")
            lines.append(f"{len(attribution.workers)} parallel shards "
                         "(serialize / queue-wait / compute, seconds):")
            for sample in attribution.workers:
                lines.append(
                    f"- shard {int(sample.get('shard', 0))}: "
                    f"{int(sample.get('rows', 0))} rows, "
                    f"{_format_seconds(sample.get('serialize_s', 0.0))} / "
                    f"{_format_seconds(sample.get('queue_wait_s', 0.0))} / "
                    f"{_format_seconds(sample.get('compute_s', 0.0))}")
        if attribution.serial_fallback:
            lines.append("")
            lines.append("serial fallback: the batch ran on the serial "
                         "kernels (below the sharding threshold)")
        lines.append("")
    if len(attributions) > 1:
        lines.append("### A/B summary")
        lines.append("")
        lines.append("| engine | total cycles | total wall s "
                     "| inference cycles % | inference wall % "
                     "| serial_fallback |")
        lines.append("|---|---|---|---|---|---|")
        for attribution in attributions:
            lines.append(
                f"| `{attribution.engine}` | {attribution.total_cycles} "
                f"| {_format_seconds(attribution.total_wall_s)} "
                f"| {attribution.cycle_fractions()[INFERENCE] * 100:.1f}% "
                f"| {attribution.wall_fractions()[INFERENCE] * 100:.1f}% "
                f"| {'yes' if attribution.serial_fallback else 'no'} |")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def validate_attribution_dict(data: Mapping[str, Any]) -> None:
    """Schema + invariant check of one serialized attribution entry."""
    for key in ("scenario", "kind", "engine", "total_cycles",
                "total_wall_s", "cycles", "wall_s", "cycle_fractions",
                "serial_fallback"):
        if key not in data:
            raise ObservabilityError(f"attribution entry missing {key!r}")
    check_cycle_attribution(data["cycles"], data["total_cycles"],
                            str(data.get("scenario")))
    check_wall_attribution(data["wall_s"], data["total_wall_s"],
                           str(data.get("scenario")))
