"""The canonical phase vocabulary and the wall-clock phase recorder.

Every run the toolkit can attribute — a CPU kernel, a whole-batch BNN
inference, a chained two-core inference, a scheduler end-to-end
timeline — is split into the same six phases, measured on two planes:

* **simulated cycles** (what the modelled chip spends), attributed
  exactly from the timing model's own identities, and
* **host wall time** (what the simulation costs us), attributed from
  disjoint measured regions with the unmeasured remainder in
  ``overhead``.

Both planes obey the same invariant: the six buckets sum to the run's
total (cycles exactly; wall time within one clock tick).  The phase
names — not the per-plane meanings — are the shared vocabulary; the
per-run-kind meanings are tabulated in ``docs/OBSERVABILITY.md`` and the
name list there is linted against :data:`PHASES` by
``tools/check_docs.py``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Mapping, Optional

from repro.errors import ObservabilityError

#: the six canonical phases, in report order
INIT = "init"
MEMORY_IO = "memory_io"
PREPROCESS = "preprocess"
INFERENCE = "inference"
POSTPROCESS = "postprocess"
OVERHEAD = "overhead"

PHASES = (INIT, MEMORY_IO, PREPROCESS, INFERENCE, POSTPROCESS, OVERHEAD)

#: one-line meaning of each phase (docs/OBSERVABILITY.md table source)
PHASE_DESCRIPTIONS: Dict[str, str] = {
    INIT: "setup before any data is touched: engine resolution, model "
          "construction, pipeline fill",
    MEMORY_IO: "data movement: weight streaming, DMA transfers, "
               "load/store traffic",
    PREPROCESS: "preparing inputs for the kernel: batch generation, "
                "sign binarization, program assembly",
    INFERENCE: "the workload's main kernel: classification compute or "
               "retired non-memory instructions",
    POSTPROCESS: "consuming results: argmax/prediction extraction, "
                 "summary building",
    OVERHEAD: "everything unattributed: stalls, flushes, queue waits, "
              "harness remainder",
}

#: wall-time invariant slack — one host clock tick (perf_counter is
#: nanosecond-class; a microsecond absorbs float summation error too)
WALL_TICK_S = 1e-6


def empty_phases(value=0) -> Dict[str, int]:
    """A fresh ``{phase: value}`` mapping covering all six phases."""
    return {phase: value for phase in PHASES}


def check_cycle_attribution(cycles: Mapping[str, int],
                            total_cycles: int, context: str = "") -> None:
    """Raise unless the cycle buckets sum *exactly* to ``total_cycles``."""
    _check_keys(cycles, context)
    attributed = sum(int(cycles[phase]) for phase in PHASES)
    if attributed != int(total_cycles):
        raise ObservabilityError(
            f"{context or 'attribution'}: phase cycles sum to "
            f"{attributed}, not the run total {total_cycles}")


def check_wall_attribution(wall_s: Mapping[str, float],
                           total_wall_s: float, context: str = "",
                           tick_s: float = WALL_TICK_S) -> None:
    """Raise unless the wall buckets sum to the total within one tick."""
    _check_keys(wall_s, context)
    attributed = sum(float(wall_s[phase]) for phase in PHASES)
    if abs(attributed - float(total_wall_s)) > tick_s:
        raise ObservabilityError(
            f"{context or 'attribution'}: phase wall time sums to "
            f"{attributed:.9f}s, not the measured total "
            f"{total_wall_s:.9f}s (tick {tick_s}s)")


def _check_keys(buckets: Mapping, context: str) -> None:
    missing = [phase for phase in PHASES if phase not in buckets]
    extra = sorted(set(buckets) - set(PHASES))
    if missing or extra:
        raise ObservabilityError(
            f"{context or 'attribution'}: phase buckets must cover exactly "
            f"{list(PHASES)} (missing {missing}, unknown {extra})")


class PhaseRecorder:
    """Accumulates host wall time into the six phase buckets.

    Wrap the whole run in :meth:`run` and each attributable region in
    :meth:`measure`; regions must be disjoint (nesting the same recorder
    would double-count).  :meth:`wall_phases` then returns all six
    buckets with the unmeasured remainder — harness glue between the
    measured regions — under ``overhead``, so the buckets sum to
    :attr:`total_wall_s` by construction (within float rounding, which
    :data:`WALL_TICK_S` absorbs).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock if clock is not None else time.perf_counter
        self._buckets: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        self._total: Optional[float] = None
        self._depth = 0

    @contextmanager
    def run(self):
        """Measure the run's total wall time around the whole body.

        Exception-safe: a raising body still closes the total (clamped
        >= 0 against non-monotonic clocks), so :meth:`wall_phases`
        stays usable for the partial run.
        """
        start = self._clock()
        try:
            yield self
        finally:
            self._total = max(0.0, self._clock() - start)

    @contextmanager
    def measure(self, phase: str):
        """Attribute the body's wall time to ``phase``.

        A raising region still closes — its elapsed time is accumulated
        and the nesting depth is restored first, so a recovered caller
        can keep measuring subsequent regions.  Durations are clamped
        >= 0, which keeps the overhead remainder of
        :meth:`wall_phases` non-negative even under a clock that steps
        backwards.
        """
        if phase not in PHASES:
            raise ObservabilityError(
                f"unknown phase {phase!r}; the vocabulary is {list(PHASES)}")
        if self._depth:
            raise ObservabilityError(
                "PhaseRecorder regions must not nest (phases are disjoint)")
        self._depth += 1
        start = self._clock()
        try:
            yield
        finally:
            self._depth -= 1
            self._buckets[phase] += max(0.0, self._clock() - start)

    @property
    def total_wall_s(self) -> float:
        """Measured total wall time of the :meth:`run` block."""
        if self._total is None:
            raise ObservabilityError(
                "PhaseRecorder.run() has not completed; no total to report")
        return self._total

    def wall_phases(self) -> Dict[str, float]:
        """All six buckets; the unmeasured remainder lands in overhead."""
        total = self.total_wall_s
        buckets = dict(self._buckets)
        measured = sum(buckets.values())
        buckets[OVERHEAD] += max(0.0, total - measured)
        return buckets
