"""Component-level area model calibrated to the paper's layout results.

All areas are mm^2 in the 65 nm process.  The model is anchored on the
paper's reported *ratios* (which are the actual claims):

* NCPU core logic = BNN core logic + 13.1 % (Fig 10, with the per-stage
  split dominated by NeuroEX),
* NCPU total = BNN total + 2.7 % (Fig 10; SRAM macros are common between
  the two designs under the paper's accounting),
* NCPU total = (CPU + BNN) total − 35.7 % (Fig 12a),
* area saving vs. accelerator width: 43.5 / 35.7 / 30.6 / 22.5 % for
  50 / 100 / 200 / 400 neurons per layer (Fig 18).

The absolute scale is set by a single anchor — the standalone BNN
accelerator at 0.85 mm^2, consistent with the 2.8 mm^2 die that carries two
NCPU cores plus L2, PLL and I/O (Fig 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError

#: absolute anchor: standalone 4x100 BNN accelerator, core + SRAM (mm^2)
BNN_TOTAL_MM2 = 0.85

#: paper Fig 10 overheads
CORE_AREA_OVERHEAD = 0.131
TOTAL_AREA_OVERHEAD = 0.027

#: paper Fig 10 per-stage split of the 13.1 % core overhead (percent points)
STAGE_OVERHEAD_POINTS: Dict[str, float] = {
    "NeuroPC": 0.5,
    "NeuroIF": 0.8,
    "NeuroID": 2.0,
    "NeuroEX": 7.5,
    "NeuroMEM": 2.3,
}

#: paper Fig 10 maximum-frequency degradation per mode
FMAX_DEGRADATION = {"bnn": 0.041, "cpu": 0.052}

#: paper Fig 12a / Fig 18 headline saving at the fabricated width
AREA_SAVING_AT_100 = 0.357

#: paper Fig 18 anchor points: neurons/layer -> area saving
FIG18_SAVINGS = {50: 0.435, 100: 0.357, 200: 0.306, 400: 0.225}

#: SRAM capacity per design (kB); macros are shared between BNN and NCPU
BNN_SRAM_KB = 48.5   # w1 + w2-4 + image + output + bias (+ sequencer cfg)
CPU_SRAM_KB = 8.125  # I$ 4 kB + D$ 4 kB + RF 128 B

# With SRAM common to BNN and NCPU, the 13.1 % core overhead producing only
# a 2.7 % total overhead pins the BNN core share: 0.027 = 0.131 * core/total.
_BNN_CORE_SHARE = TOTAL_AREA_OVERHEAD / CORE_AREA_OVERHEAD


@dataclass(frozen=True)
class AreaBreakdown:
    """Compute-logic and SRAM area of one design."""

    name: str
    compute_mm2: float
    sram_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.compute_mm2 + self.sram_mm2


def _bnn_core_mm2(neurons_per_layer: int) -> float:
    """Neuron-array logic area: linear in neuron count."""
    return BNN_TOTAL_MM2 * _BNN_CORE_SHARE * neurons_per_layer / 100.0


@lru_cache(maxsize=None)
def _width_fit() -> np.ndarray:
    """Interpolating cubic for the standalone BNN total area vs. width.

    The Fig 18 anchor savings are inverted exactly:
    ``saving = 1 - (bnn + ovh*core) / (cpu + bnn)``  =>  ``bnn(N)``.
    """
    cpu_total = cpu_area().total_mm2
    widths = sorted(FIG18_SAVINGS)
    totals = []
    for width in widths:
        saving = FIG18_SAVINGS[width]
        core = _bnn_core_mm2(width)
        totals.append(((1.0 - saving) * cpu_total
                       - CORE_AREA_OVERHEAD * core) / saving)
    return np.polyfit(np.array(widths, dtype=float), np.array(totals), deg=3)


@lru_cache(maxsize=None)
def cpu_area() -> AreaBreakdown:
    """Standalone 5-stage RV32I core (the in-house baseline).

    Anchored so the fabricated width's saving is exact:
    ``cpu = (S*bnn + ovh*core) / (1 - S)`` at N=100.
    """
    saving = AREA_SAVING_AT_100
    core = _bnn_core_mm2(100)
    total = (saving * BNN_TOTAL_MM2 + CORE_AREA_OVERHEAD * core) / (1.0 - saving)
    sram = sram_area_mm2(CPU_SRAM_KB)
    if sram >= total:
        raise ConfigurationError("CPU SRAM area exceeds its total; bad anchors")
    return AreaBreakdown("cpu", compute_mm2=total - sram, sram_mm2=sram)


def sram_area_mm2(capacity_kb: float) -> float:
    """SRAM macro area from the calibrated per-kB density."""
    density = BNN_TOTAL_MM2 * (1.0 - _BNN_CORE_SHARE) / BNN_SRAM_KB
    return capacity_kb * density


def bnn_area(neurons_per_layer: int = 100) -> AreaBreakdown:
    """Standalone BNN accelerator at a given array width."""
    if neurons_per_layer <= 0:
        raise ConfigurationError("neurons_per_layer must be positive")
    total = float(np.polyval(_width_fit(), neurons_per_layer))
    # the core (neuron logic) area is linear in neuron count; the SRAM's
    # quadratic-ish growth is what shrinks the saving at large widths
    compute = min(_bnn_core_mm2(neurons_per_layer), 0.9 * total)
    return AreaBreakdown(f"bnn{neurons_per_layer}", compute_mm2=compute,
                         sram_mm2=total - compute)


def ncpu_area(neurons_per_layer: int = 100) -> AreaBreakdown:
    """The reconfigurable NCPU core: BNN + 13.1 % core logic, same SRAM."""
    base = bnn_area(neurons_per_layer)
    return AreaBreakdown(
        f"ncpu{neurons_per_layer}",
        compute_mm2=base.compute_mm2 * (1.0 + CORE_AREA_OVERHEAD),
        sram_mm2=base.sram_mm2,
    )


def heterogeneous_area(neurons_per_layer: int = 100) -> AreaBreakdown:
    """The conventional baseline: separate CPU and BNN accelerator."""
    cpu = cpu_area()
    bnn = bnn_area(neurons_per_layer)
    return AreaBreakdown(
        f"cpu+bnn{neurons_per_layer}",
        compute_mm2=cpu.compute_mm2 + bnn.compute_mm2,
        sram_mm2=cpu.sram_mm2 + bnn.sram_mm2,
    )


def area_saving(neurons_per_layer: int = 100) -> float:
    """Fractional saving of one NCPU vs. the heterogeneous baseline."""
    return 1.0 - (ncpu_area(neurons_per_layer).total_mm2
                  / heterogeneous_area(neurons_per_layer).total_mm2)


def stage_overhead_fractions() -> Dict[str, float]:
    """Per-stage core-area overhead (fractions of the BNN core area)."""
    return {stage: points / 100.0 for stage, points in STAGE_OVERHEAD_POINTS.items()}


def fmax_mhz(mode: str, voltage: float = 1.0) -> float:
    """NCPU maximum frequency including the reconfiguration penalty."""
    from repro.power.technology import frequency_model

    if mode not in FMAX_DEGRADATION:
        raise ConfigurationError(f"unknown mode {mode!r}")
    return frequency_model().f_mhz(voltage) * (1.0 - FMAX_DEGRADATION[mode])
