"""Energy accounting: leakage-area coupling, per-instruction power, and the
NCPU-vs-heterogeneous energy comparison (paper Figs 11 and 12b).

Model structure:

* Leakage scales with silicon area.  The leakage *density* is calibrated
  from the BNN-mode power fit divided by the NCPU area, and the SRAM share
  of each design sits in its own voltage domain with a 0.55 V Vmin.
* The NCPU pays a dynamic-power overhead versus the standalone cores for the
  extra (imperfectly gated) reconfiguration logic: 5.8 % in BNN mode and a
  per-instruction average of 14.7 % in CPU mode (Fig 11).  The full-task BNN
  inference energy overhead at 1 V, including SRAM effects, is 7.5 %
  (calibrated to Fig 12b's measured −7.2 % at 1 V).
* The heterogeneous baseline leaks over the *combined* CPU+BNN area even
  while one of the cores idles — exactly the under-utilization cost the
  paper attacks — whereas the NCPU leaks over its single reconfigurable
  core.  At low voltage the leakage term dominates and the NCPU's 35.7 %
  area saving turns the 1 V energy overhead into a saving (Fig 12b).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

from repro.power import area as area_model
from repro.power.profiles import DEFAULT_PROFILE
from repro.power.technology import (
    SRAM_VMIN,
    ProfileLike,
    bnn_profile,
    cpu_profile,
    frequency_model,
)

#: Fig 11a: NCPU power overhead vs. standalone BNN during inference
BNN_MODE_POWER_OVERHEAD = 0.058
#: Fig 12b calibration: full-task BNN inference *energy* overhead at 1 V
#: (larger than the 5.8 % core-power overhead because the task-level
#: measurement also sees SRAM and clocking overheads)
BNN_MODE_TASK_OVERHEAD = 0.105
#: Fig 11b: average per-instruction power overhead in CPU mode
CPU_MODE_POWER_OVERHEAD_AVG = 0.147


def leakage_density_w_per_mm2(voltage: float) -> float:
    """Leakage power density calibrated from the NCPU's BNN-mode fit.

    Deliberately pinned to the ``ncpu-65nm`` profile (not the session's):
    the area model below is the paper chip's floorplan, so coupling it to
    another device's leakage fit would be meaningless.
    """
    ncpu_mm2 = area_model.ncpu_area(100).total_mm2
    return bnn_profile(DEFAULT_PROFILE).leakage_power_w(voltage) / ncpu_mm2


def design_leakage_w(breakdown: area_model.AreaBreakdown, voltage: float) -> float:
    """Leakage of a design; its SRAM domain respects the 0.55 V Vmin."""
    sram_voltage = max(voltage, SRAM_VMIN)
    return (breakdown.compute_mm2 * leakage_density_w_per_mm2(voltage)
            + breakdown.sram_mm2 * leakage_density_w_per_mm2(sram_voltage))


@dataclass(frozen=True)
class TaskEnergy:
    """Energy of one task phase."""

    dynamic_j: float
    leakage_j: float

    @property
    def total_j(self) -> float:
        return self.dynamic_j + self.leakage_j


def bnn_task_energy(design: str, cycles: float, voltage: float) -> TaskEnergy:
    """Energy of a BNN inference task of ``cycles`` on either design.

    ``design`` is ``"ncpu"`` or ``"heterogeneous"``.  Both run the task at
    their maximum frequency for the voltage; the NCPU's Fmax is 4.1 % lower
    in BNN mode, lengthening its leakage window.

    Pinned to the ``ncpu-65nm`` profile like the leakage-density model —
    this is the paper's own NCPU-vs-heterogeneous comparison.
    """
    freq = frequency_model(DEFAULT_PROFILE).f_hz(voltage)
    bnn_dynamic_w = bnn_profile(DEFAULT_PROFILE).dynamic_power_w(voltage)
    if design == "ncpu":
        f_eff = freq * (1.0 - area_model.FMAX_DEGRADATION["bnn"])
        seconds = cycles / f_eff
        # the chip measurement (241 mW fit) *is* the NCPU; the baseline
        # accelerator's dynamic power is lower by the task overhead factor
        dynamic = bnn_dynamic_w * (f_eff / freq) * seconds
        leakage = design_leakage_w(area_model.ncpu_area(100), voltage) * seconds
        return TaskEnergy(dynamic_j=dynamic, leakage_j=leakage)
    if design == "heterogeneous":
        seconds = cycles / freq
        dynamic = bnn_dynamic_w / (1.0 + BNN_MODE_TASK_OVERHEAD) * seconds
        leakage = design_leakage_w(area_model.heterogeneous_area(100),
                                   voltage) * seconds
        return TaskEnergy(dynamic_j=dynamic, leakage_j=leakage)
    raise ValueError(f"unknown design {design!r}")


def ncpu_energy_saving(voltage: float, cycles: float = 100_000) -> float:
    """Fractional energy saving of NCPU vs. heterogeneous (Fig 12b).

    Negative values are an overhead (the paper reports −7.2 % at 1 V and
    +12.6 % at 0.4 V, crossing over near 0.6 V).
    """
    ncpu = bnn_task_energy("ncpu", cycles, voltage).total_j
    base = bnn_task_energy("heterogeneous", cycles, voltage).total_j
    return 1.0 - ncpu / base


# ---------------------------------------------------------------------------
# Per-instruction power model (Fig 11b)
# ---------------------------------------------------------------------------

#: relative energy of each pipeline resource per activation
_STAGE_ENERGY = {
    "base": 4.0,  # clock tree, control
    "IF": 6.0,    # I$ access
    "ID": 3.0,    # decode + regfile read
    "EX": 8.0,    # ALU
    "MEM": 10.0,  # D$ access
    "WB": 2.0,    # regfile write
}

#: NCPU overhead shape per resource (ungated neuron-cell logic; EX-heavy,
#: mirroring the Fig 10 area-overhead split).  Scaled so that the uniform
#: average over the 37 base instructions equals CPU_MODE_POWER_OVERHEAD_AVG.
_OVERHEAD_SHAPE = {
    "base": 0.12,
    "IF": 0.08,
    "ID": 0.14,
    "EX": 0.22,
    "MEM": 0.06,
    "WB": 0.05,
}


def _activity(name: str) -> Dict[str, float]:
    """Stage-activity vector of one instruction."""
    act = {"base": 1.0, "IF": 1.0, "ID": 1.0, "EX": 1.0, "MEM": 0.0, "WB": 1.0}
    if name in ("lb", "lh", "lw", "lbu", "lhu"):
        act["MEM"] = 1.0
    elif name in ("sb", "sh", "sw"):
        act["MEM"] = 1.0
        act["WB"] = 0.0
    elif name in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        act["WB"] = 0.0
        act["EX"] = 1.1  # comparator + target adder
    elif name in ("jal", "jalr"):
        act["EX"] = 1.1
    elif name in ("lui", "auipc"):
        act["EX"] = 0.4  # immediate pass-through / single add
    elif name in ("sll", "srl", "sra", "slli", "srli", "srai"):
        act["EX"] = 1.3  # barrel shifter
    elif name == "mul":
        act["EX"] = 2.5
    return act


@lru_cache(maxsize=None)
def _overhead_scale() -> float:
    from repro.isa import RV32I_BASE_NAMES

    raw = [instruction_power_overhead(name, _scale=1.0)
           for name in RV32I_BASE_NAMES]
    return CPU_MODE_POWER_OVERHEAD_AVG / (sum(raw) / len(raw))


def instruction_relative_power(name: str) -> float:
    """Per-instruction power on the standalone CPU (arbitrary units)."""
    act = _activity(name)
    return sum(_STAGE_ENERGY[s] * act[s] for s in _STAGE_ENERGY)


def instruction_power_overhead(name: str, _scale: float | None = None) -> float:
    """Fractional NCPU-vs-CPU power overhead for one instruction (Fig 11b)."""
    scale = _overhead_scale() if _scale is None else _scale
    act = _activity(name)
    base = sum(_STAGE_ENERGY[s] * act[s] for s in _STAGE_ENERGY)
    extra = sum(_STAGE_ENERGY[s] * act[s] * _OVERHEAD_SHAPE[s] * scale
                for s in _STAGE_ENERGY)
    return extra / base


def program_power_overhead(instr_counts: Dict[str, int]) -> float:
    """Power overhead of a whole program from its retired-instruction mix."""
    total_base = 0.0
    total_extra = 0.0
    for name, count in instr_counts.items():
        if name in ("ebreak", "trans_bnn", "trigger_bnn", "mv_neu",
                    "sw_l2", "lw_l2"):
            name_for_model = "sw" if name.startswith("sw") else "addi"
        else:
            name_for_model = name
        base = instruction_relative_power(name_for_model)
        total_base += count * base
        total_extra += count * base * instruction_power_overhead(name_for_model)
    if total_base == 0:
        return 0.0
    return total_extra / total_base


#: SRAM access energy at 1 V for a 1 kB macro (pJ); larger macros cost more
#: per access (longer lines), scaling ~sqrt(capacity)
SRAM_ACCESS_PJ_1KB_1V = 1.8


def sram_access_energy_j(bank_size_bytes: int, accesses: int,
                         voltage: float) -> float:
    """Energy of ``accesses`` reads/writes to one SRAM bank.

    Per-access energy scales with the square root of capacity (bit-line
    length) and quadratically with the (Vmin-floored) array voltage.
    """
    from repro.power.technology import effective_voltage_for_sram

    v = effective_voltage_for_sram(voltage)
    per_access = (SRAM_ACCESS_PJ_1KB_1V * 1e-12
                  * (bank_size_bytes / 1024.0) ** 0.5
                  * v ** 2)
    return per_access * accesses


def memory_access_energy_j(memory, voltage: float) -> float:
    """Total access energy of an :class:`repro.mem.NCPUMemory`'s banks."""
    total = 0.0
    for bank in memory.banks.values():
        total += sram_access_energy_j(bank.size, bank.accesses, voltage)
    return total


def timeline_energy_j(timeline, voltage: float, f_hz: float,
                      reconfigurable: bool = True,
                      profile: ProfileLike = None) -> float:
    """Integrate a :class:`repro.core.events.Timeline` into Joules.

    Each segment contributes its mode's power (CPU/BNN active, idle =
    leakage only, DMA ~ idle core + bus activity folded into leakage) for
    its duration at the given clock.  This is how the Fig 17 'equivalent
    energy saving' and the Fig 16 trace areas are computed for arbitrary
    schedules.  ``profile`` selects the device profile (session default
    when ``None``).
    """
    total = 0.0
    for segment in timeline.segments:
        seconds = segment.cycles / f_hz
        if segment.kind in ("cpu", "switch", "dma"):
            mode, active = "cpu", segment.kind != "dma"
        elif segment.kind == "bnn":
            mode, active = "bnn", True
        else:
            mode, active = "cpu", False
        total += core_power_w(mode, voltage, f_hz, reconfigurable,
                              active=active, profile=profile) * seconds
    return total


def core_power_w(mode: str, voltage: float, f_hz: float,
                 reconfigurable: bool = True, active: bool = True,
                 profile: ProfileLike = None) -> float:
    """Instantaneous power of one core for the timeline/power-trace model.

    Args:
        mode: ``"cpu"`` or ``"bnn"`` — selects the fitted mode model.
        voltage: supply voltage.
        f_hz: actual clock (the use cases run at 50 MHz, not Fmax).
        reconfigurable: True for an NCPU core; False models the standalone
            baseline cores (which lack the reconfiguration overhead).
        active: False for an idle core (clock-gated: leakage only).
        profile: device profile (name or instance; session default when
            ``None``) whose fitted models supply the power numbers.
    """
    mode_model = cpu_profile(profile) if mode == "cpu" else bnn_profile(profile)
    leakage = mode_model.leakage_power_w(voltage)
    if not active:
        return leakage
    dynamic = mode_model.dynamic_power_w(voltage, f_hz)
    if not reconfigurable:
        overhead = (CPU_MODE_POWER_OVERHEAD_AVG if mode == "cpu"
                    else BNN_MODE_POWER_OVERHEAD)
        dynamic /= 1.0 + overhead
    return dynamic + leakage
