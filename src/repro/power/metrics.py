"""Derived performance/efficiency metrics: TOPS/W, DMIPS, MEP."""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.technology import (
    PowerProfile,
    ProfileLike,
    cpu_profile,
    frequency_model,
    models_for,
    resolve_profile,
)

#: VAX 11/780 reference: 1757 Dhrystones/second == 1 MIPS
DHRYSTONES_PER_SECOND_PER_MIPS = 1757.0


def bnn_tops_per_watt(voltage: float, ops_per_cycle: int | None = None,
                      device: ProfileLike = None) -> float:
    """NN-mode compute efficiency (the paper counts one MAC as one op).

    ``ops_per_cycle`` defaults to the device profile's parallelism (400
    for the NCPU's 20x20 neuron-cell array).
    """
    models = models_for(resolve_profile(device))
    if ops_per_cycle is None:
        ops_per_cycle = models.profile.accel_ops_per_cycle
    f_hz = models.frequency.f_hz(voltage)
    power_w = models.accel.total_power_w(voltage)
    return ops_per_cycle * f_hz / power_w / 1e12


@dataclass(frozen=True)
class DhrystoneResult:
    """Dhrystone scoring from a cycle count per iteration."""

    cycles_per_iteration: float
    frequency_mhz: float
    power_mw: float

    @property
    def iterations_per_second(self) -> float:
        return self.frequency_mhz * 1e6 / self.cycles_per_iteration

    @property
    def dmips(self) -> float:
        return self.iterations_per_second / DHRYSTONES_PER_SECOND_PER_MIPS

    @property
    def dmips_per_mhz(self) -> float:
        return self.dmips / self.frequency_mhz

    @property
    def dmips_per_mw(self) -> float:
        return self.dmips / self.power_mw


def score_dhrystone(cycles_per_iteration: float, voltage: float = 1.0,
                    profile: PowerProfile | None = None,
                    device: ProfileLike = None) -> DhrystoneResult:
    """Score a measured Dhrystone iteration cost at a supply voltage.

    ``profile`` overrides the fitted CPU-mode power model; ``device``
    selects the device profile both it and the frequency model default to.
    """
    profile = profile if profile is not None else cpu_profile(device)
    f_mhz = frequency_model(device).f_mhz(voltage)
    power_mw = profile.total_power_w(voltage) * 1e3
    return DhrystoneResult(cycles_per_iteration=cycles_per_iteration,
                           frequency_mhz=f_mhz, power_mw=power_mw)


def cpu_mep_voltage(device: ProfileLike = None) -> float:
    """The CPU-mode minimum-energy-point voltage from the fitted model."""
    return models_for(resolve_profile(device)).cpu_mep_voltage()


def bnn_mep_voltage(device: ProfileLike = None) -> float:
    return models_for(resolve_profile(device)).accel_mep_voltage()
