"""Derived performance/efficiency metrics: TOPS/W, DMIPS, MEP."""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.technology import (
    PowerProfile,
    bnn_profile,
    cpu_profile,
    frequency_model,
    mep_voltage,
)

#: VAX 11/780 reference: 1757 Dhrystones/second == 1 MIPS
DHRYSTONES_PER_SECOND_PER_MIPS = 1757.0


def bnn_tops_per_watt(voltage: float, ops_per_cycle: int = 400) -> float:
    """BNN-mode compute efficiency (the paper counts one MAC as one op)."""
    f_hz = frequency_model().f_hz(voltage)
    power_w = bnn_profile().total_power_w(voltage)
    return ops_per_cycle * f_hz / power_w / 1e12


@dataclass(frozen=True)
class DhrystoneResult:
    """Dhrystone scoring from a cycle count per iteration."""

    cycles_per_iteration: float
    frequency_mhz: float
    power_mw: float

    @property
    def iterations_per_second(self) -> float:
        return self.frequency_mhz * 1e6 / self.cycles_per_iteration

    @property
    def dmips(self) -> float:
        return self.iterations_per_second / DHRYSTONES_PER_SECOND_PER_MIPS

    @property
    def dmips_per_mhz(self) -> float:
        return self.dmips / self.frequency_mhz

    @property
    def dmips_per_mw(self) -> float:
        return self.dmips / self.power_mw


def score_dhrystone(cycles_per_iteration: float, voltage: float = 1.0,
                    profile: PowerProfile | None = None) -> DhrystoneResult:
    """Score a measured Dhrystone iteration cost at a supply voltage."""
    profile = profile if profile is not None else cpu_profile()
    f_mhz = frequency_model().f_mhz(voltage)
    power_mw = profile.total_power_w(voltage) * 1e3
    return DhrystoneResult(cycles_per_iteration=cycles_per_iteration,
                           frequency_mhz=f_mhz, power_mw=power_mw)


def cpu_mep_voltage() -> float:
    """The CPU-mode minimum-energy-point voltage from the fitted model."""
    return mep_voltage(cpu_profile())


def bnn_mep_voltage() -> float:
    return mep_voltage(bnn_profile())
