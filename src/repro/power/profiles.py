"""Name-keyed device-profile registry: pluggable power/technology anchors.

A :class:`DeviceProfile` bundles everything the power layer used to read
from module globals — frequency/power/leakage anchor points, voltage
limits, the SRAM Vmin, area/technology parameters and per-phase overhead
coefficients (init, memory I/O, pre/post-processing: the end-to-end
costs vendor TOPS numbers hide) — as one frozen, hashable value.  The
solver layer (:func:`repro.power.technology.models_for`) turns a profile
into fitted frequency/power models, memoized per profile.

The registry mirrors :mod:`repro.engine.registry`: profiles register
under their ``name`` with :func:`register_profile`, every consumer
resolves them through :func:`get_profile` / :func:`resolve_profile`, and
:func:`profile_table` is the single serializer behind ``repro info``,
``docs/DEVICES.md`` and the docs lint, so they cannot drift apart.

``ncpu-65nm`` carries the paper test chip's measured silicon anchors and
is the default everywhere — its fitted models are bit-identical to the
pre-registry module-global fit.  The μNPU profiles (``max78000``,
``ethos-u55``, ``mcxn947-neutron``) are calibrated from the datasheet /
benchmark tables surveyed in SNIPPETS.md ("Benchmarking Ultra-Low-Power
μNPUs"; eIQ Neutron measurements); they are engineering estimates, not
silicon fits, and say so via ``silicon_measured=False``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Tuple, Union

from repro.errors import ConfigurationError

#: the profile every layer assumes when none is named — the paper's chip
DEFAULT_PROFILE = "ncpu-65nm"


@dataclasses.dataclass(frozen=True)
class PhaseOverheads:
    """Per-phase end-to-end overheads, in host-CPU cycles.

    These model the work *around* the accelerator that vendor
    TOPS/latency figures hide (μNPU-Bench's central observation): runtime
    and weight-load setup (``init``), data movement per kilobyte
    (``memory_io``), input preparation per kilobyte (``preprocess``) and
    host-side epilogue such as softmax/argmax on NPUs without native
    support (``postprocess``).  The device-zoo comparison charges each
    phase at the profile's CPU-mode power.
    """

    init_cycles: float = 0.0
    memory_io_cycles_per_kb: float = 0.0
    preprocess_cycles_per_kb: float = 0.0
    postprocess_cycles: float = 0.0

    def validate(self, path: str) -> None:
        for name in ("init_cycles", "memory_io_cycles_per_kb",
                     "preprocess_cycles_per_kb", "postprocess_cycles"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value < 0:
                raise ConfigurationError(
                    f"{path}.{name}: expected a non-negative number, "
                    f"got {value!r}")


@dataclasses.dataclass(frozen=True)
class DeviceProfile:
    """One device's calibrated operating envelope.

    The anchor fields parameterize the same model forms the paper's chip
    uses — alpha-power-law frequency, ``C_eff V^2 f`` dynamic power,
    ``P0 V e^(eta V)`` leakage, a two-domain (core + Vmin-pinned SRAM)
    CPU mode — so one solver serves every device.
    """

    name: str
    title: str
    technology_nm: int
    # -- voltage limits ---------------------------------------------------
    vth: float
    vdd_min: float
    vdd_nominal: float
    sram_vmin: float
    # -- frequency anchors (Fmax at vdd_min / vdd_nominal) ----------------
    f_min_mhz: float
    f_nominal_mhz: float
    # -- accelerator (NN) mode power anchors ------------------------------
    accel_power_nominal_w: float
    accel_power_min_w: float
    accel_leak_share_nominal: float
    # -- host/CPU mode power anchors --------------------------------------
    cpu_power_nominal_w: float
    cpu_power_min_w: float
    #: CPU-mode leakage share at vdd_nominal (the two-domain fit's third
    #: constraint; 0.05 reproduces the 65 nm chip's fit)
    cpu_leak_share_nominal: float
    #: documented minimum-energy-point anchor (None when unobserved)
    cpu_mep_voltage: float | None
    #: golden-section search window for the model's own MEP
    mep_search_lo: float
    mep_search_hi: float
    # -- compute geometry (the paper counts 1 MAC as 1 op) ----------------
    accel_ops_per_cycle: int
    #: model/weight storage the memory_io overhead moves, in KB
    model_size_kb: float
    # -- capability / validity flags --------------------------------------
    #: True for a single core that morphs CPU<->NN (the NCPU); False for a
    #: separate host CPU + NPU pair
    reconfigurable: bool
    #: True when the full vdd_min..vdd_nominal range is a valid DVFS sweep
    dvfs: bool
    #: True when anchors come from silicon measurements of this chip
    silicon_measured: bool
    overheads: PhaseOverheads
    #: provenance note shown in docs/DEVICES.md
    calibration: str = ""

    def validate(self, path: str = "profile") -> None:
        """Structural sanity; solver feasibility is checked lazily by
        :func:`repro.power.technology.models_for`."""
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(f"{path}.name: expected a non-empty "
                                     f"string, got {self.name!r}")
        if not self.vth < self.vdd_min < self.vdd_nominal:
            raise ConfigurationError(
                f"{path}: need vth < vdd_min < vdd_nominal, got "
                f"{self.vth} / {self.vdd_min} / {self.vdd_nominal}")
        if not self.vdd_min <= self.sram_vmin <= self.vdd_nominal:
            raise ConfigurationError(
                f"{path}.sram_vmin: must sit in [{self.vdd_min}, "
                f"{self.vdd_nominal}], got {self.sram_vmin}")
        if not 0 < self.f_min_mhz < self.f_nominal_mhz:
            raise ConfigurationError(
                f"{path}: need 0 < f_min_mhz < f_nominal_mhz, got "
                f"{self.f_min_mhz} / {self.f_nominal_mhz}")
        for field_name in ("accel_power_nominal_w", "accel_power_min_w",
                          "cpu_power_nominal_w", "cpu_power_min_w",
                          "model_size_kb"):
            value = getattr(self, field_name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ConfigurationError(
                    f"{path}.{field_name}: expected a positive number, "
                    f"got {value!r}")
        for field_name in ("accel_leak_share_nominal",
                           "cpu_leak_share_nominal"):
            value = getattr(self, field_name)
            if not 0.0 < value < 1.0:
                raise ConfigurationError(
                    f"{path}.{field_name}: must be in (0, 1), got {value}")
        if self.accel_ops_per_cycle < 1:
            raise ConfigurationError(
                f"{path}.accel_ops_per_cycle: must be >= 1, "
                f"got {self.accel_ops_per_cycle}")
        if not isinstance(self.overheads, PhaseOverheads):
            raise ConfigurationError(
                f"{path}.overheads: expected a PhaseOverheads, "
                f"got {self.overheads!r}")
        self.overheads.validate(f"{path}.overheads")

    def info(self) -> Dict[str, Any]:
        """JSON-ready block for ``repro info`` / the docs profile table."""
        return {
            "name": self.name,
            "title": self.title,
            "technology_nm": self.technology_nm,
            "vdd_range_v": [self.vdd_min, self.vdd_nominal],
            "sram_vmin_v": self.sram_vmin,
            "f_nominal_mhz": self.f_nominal_mhz,
            "accel_ops_per_cycle": self.accel_ops_per_cycle,
            "flags": {
                "reconfigurable": self.reconfigurable,
                "dvfs": self.dvfs,
                "silicon_measured": self.silicon_measured,
            },
            "calibration": self.calibration,
        }


_REGISTRY: Dict[str, DeviceProfile] = {}


def register_profile(profile: DeviceProfile) -> DeviceProfile:
    """Register ``profile`` under ``profile.name``; returns it unchanged.

    Usable inline (``P = register_profile(DeviceProfile(...))``).  The
    profile is structurally validated on admission; registering a
    different profile under an existing name is an error, re-registering
    an equal profile (module reloads) is a no-op.
    """
    if not isinstance(profile, DeviceProfile):
        raise ConfigurationError(
            f"register_profile expects a DeviceProfile, got {profile!r}")
    profile.validate(f"profile {profile.name!r}")
    existing = _REGISTRY.get(profile.name)
    if existing is not None and existing != profile:
        raise ConfigurationError(
            f"device profile {profile.name!r} registered twice with "
            "different parameters")
    _REGISTRY[profile.name] = profile
    return profile


def profile_names() -> Tuple[str, ...]:
    """All registered profile names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_profile(name: str) -> DeviceProfile:
    """The registered profile called ``name``.

    Raises :class:`~repro.errors.ConfigurationError` naming the
    registered profiles, sorted, when ``name`` is unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown device profile {name!r}; registered profiles: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def resolve_profile(profile: Union[DeviceProfile, str, None] = None
                    ) -> DeviceProfile:
    """Resolve ``profile`` to a registered :class:`DeviceProfile`.

    A :class:`DeviceProfile` instance passes through; a name looks up
    the registry; ``None`` follows the current session's
    ``SimConfig.profile`` (falling back to :data:`DEFAULT_PROFILE` so
    the power layer stays importable without a session).
    """
    if isinstance(profile, DeviceProfile):
        return profile
    if profile is None:
        # imported lazily: repro.sim imports the scenario schema, which
        # validates device profiles through this module
        try:
            from repro.sim.session import get_session

            profile = get_session().config.profile
        except ImportError:  # pragma: no cover - bootstrap ordering
            profile = DEFAULT_PROFILE
    return get_profile(profile)


def ensure_known_profile(name: str) -> str:
    """Validate ``name`` against the registry; returns it unchanged."""
    get_profile(name)
    return name


def profile_table() -> List[Dict[str, Any]]:
    """Sorted ``info()`` blocks of every registered profile.

    One serializer for ``repro info --json``, the docs profile table and
    the docs lint (``tools/check_docs.py`` check 9), so they cannot
    drift apart.
    """
    return [_REGISTRY[name].info() for name in sorted(_REGISTRY)]


# -- built-in profiles ----------------------------------------------------

#: the paper's 65 nm test chip (Fig 7, Fig 9, Table 2/3) — every anchor
#: here must equal the historical module globals in
#: :mod:`repro.power.technology` bit-for-bit: the default profile's fit
#: is pinned bit-identical to the pre-registry model by golden tests
NCPU_65NM = register_profile(DeviceProfile(
    name=DEFAULT_PROFILE,
    title="NCPU reconfigurable neural CPU (65 nm test chip)",
    technology_nm=65,
    vth=0.35, vdd_min=0.4, vdd_nominal=1.0, sram_vmin=0.55,
    f_min_mhz=18.0, f_nominal_mhz=960.0,
    accel_power_nominal_w=0.241, accel_power_min_w=1.2e-3,
    accel_leak_share_nominal=0.05,
    cpu_power_nominal_w=0.112, cpu_power_min_w=0.8e-3,
    cpu_leak_share_nominal=0.05,
    cpu_mep_voltage=0.5,
    mep_search_lo=0.36, mep_search_hi=1.0,
    accel_ops_per_cycle=400,
    model_size_kb=48.5,
    reconfigurable=True, dvfs=True, silicon_measured=True,
    overheads=PhaseOverheads(
        init_cycles=2_000.0,            # trans_bnn mode switch + trigger
        memory_io_cycles_per_kb=500.0,  # L2 -> neuron-cell SRAM DMA
        preprocess_cycles_per_kb=800.0,
        postprocess_cycles=400.0,       # argmax on the same core
    ),
    calibration="silicon anchors: 960 MHz@1.0V / 18 MHz@0.4V, "
                "241 mW BNN / 112 mW CPU at 1 V, MEP@0.5V",
))

#: Analog Devices MAX78000: Cortex-M4 host + 64-processor CNN
#: accelerator with dedicated weight SRAM (fixed-voltage part)
MAX78000 = register_profile(DeviceProfile(
    name="max78000",
    title="MAX78000 (Cortex-M4 + 64-unit CNN accelerator)",
    technology_nm=40,
    vth=0.5, vdd_min=0.9, vdd_nominal=1.1, sram_vmin=0.9,
    f_min_mhz=30.0, f_nominal_mhz=100.0,
    accel_power_nominal_w=30e-3, accel_power_min_w=14e-3,
    accel_leak_share_nominal=0.15,
    cpu_power_nominal_w=12e-3, cpu_power_min_w=5e-3,
    cpu_leak_share_nominal=0.30,
    cpu_mep_voltage=None,
    mep_search_lo=0.91, mep_search_hi=1.1,
    accel_ops_per_cycle=64,
    model_size_kb=300.0,
    reconfigurable=False, dvfs=False, silicon_measured=False,
    overheads=PhaseOverheads(
        init_cycles=400_000.0,            # CNN config + weight load
        memory_io_cycles_per_kb=2_000.0,
        preprocess_cycles_per_kb=1_500.0,
        postprocess_cycles=3_000.0,       # softmax on the M4
    ),
    calibration="μNPU-Bench survey: 100 MHz M4 + 50 MHz CNN array, "
                "per-inference energies in the tens of μJ",
))

#: Arm Ethos-U55 microNPU as deployed on the Himax WE2 vision SoC
ETHOS_U55 = register_profile(DeviceProfile(
    name="ethos-u55",
    title="Ethos-U55 microNPU (Himax WE2 deployment)",
    technology_nm=16,
    vth=0.35, vdd_min=0.6, vdd_nominal=0.8, sram_vmin=0.6,
    f_min_mhz=120.0, f_nominal_mhz=400.0,
    accel_power_nominal_w=48e-3, accel_power_min_w=12e-3,
    accel_leak_share_nominal=0.08,
    cpu_power_nominal_w=15e-3, cpu_power_min_w=4e-3,
    cpu_leak_share_nominal=0.36,
    cpu_mep_voltage=None,
    mep_search_lo=0.61, mep_search_hi=0.8,
    accel_ops_per_cycle=64,
    model_size_kb=300.0,
    reconfigurable=False, dvfs=True, silicon_measured=False,
    overheads=PhaseOverheads(
        init_cycles=250_000.0,            # Vela runtime + command stream
        memory_io_cycles_per_kb=4_000.0,  # weights streamed over AXI
        preprocess_cycles_per_kb=1_200.0,
        postprocess_cycles=6_000.0,       # no native softmax on the NPU
    ),
    calibration="μNPU-Bench survey: 400 MHz U55-64 configuration; "
                "softmax falls back to the Cortex-M55 host",
))

#: NXP MCX N947: Cortex-M33 host + eIQ Neutron N1-16 NPU
MCXN947_NEUTRON = register_profile(DeviceProfile(
    name="mcxn947-neutron",
    title="MCX N947 eIQ Neutron N1-16 (Cortex-M33 host)",
    technology_nm=28,
    vth=0.45, vdd_min=0.8, vdd_nominal=1.1, sram_vmin=0.8,
    f_min_mhz=50.0, f_nominal_mhz=150.0,
    accel_power_nominal_w=20e-3, accel_power_min_w=7e-3,
    accel_leak_share_nominal=0.1,
    cpu_power_nominal_w=10e-3, cpu_power_min_w=3.5e-3,
    cpu_leak_share_nominal=0.32,
    cpu_mep_voltage=None,
    mep_search_lo=0.81, mep_search_hi=1.1,
    accel_ops_per_cycle=32,
    model_size_kb=300.0,
    reconfigurable=False, dvfs=False, silicon_measured=False,
    overheads=PhaseOverheads(
        init_cycles=150_000.0,            # eIQ runtime graph setup
        memory_io_cycles_per_kb=2_500.0,
        preprocess_cycles_per_kb=1_500.0,
        postprocess_cycles=4_000.0,       # unsupported ops on the M33
    ),
    calibration="eIQ Neutron measurements: 4.8 GOPS at 150 MHz "
                "(32 MACs/cycle), person_detect 26.3 Mcyc / 175 ms",
))
