"""65 nm technology model fitted to the paper's silicon measurements.

The test chip's measured anchors (Fig 7, Fig 9, Table 2/3):

* frequency: 960 MHz at 1.0 V, 18 MHz at 0.4 V,
* BNN-mode power: 241 mW at 1.0 V, 1.2 mW at 0.4 V,
* CPU-mode power: 112 mW at 1.0 V, 0.8 mW at 0.4 V,
* CPU-mode minimum-energy point (MEP) at 0.5 V,
* SRAM Vmin 0.55 V (below it, SRAM stays at 0.55 V).

The model forms:

* frequency: alpha-power law ``f(V) = K (V - Vth)^alpha / V``,
* dynamic power: ``P_dyn = C_eff V^2 f(V)``,
* leakage: ``P_leak = P0 · V · exp(eta V)`` (subthreshold + DIBL shape).

The three power parameters per operating mode are solved from the two power
anchors plus either a fixed 1 V leakage share (BNN mode, whose MEP lies below
0.4 V) or the MEP-position constraint (CPU mode).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError

V_NOMINAL = 1.0
V_MIN = 0.4
SRAM_VMIN = 0.55
VTH = 0.35

F_NOMINAL_MHZ = 960.0
F_VMIN_MHZ = 18.0

BNN_POWER_1V_W = 0.241
BNN_POWER_04V_W = 1.2e-3
CPU_POWER_1V_W = 0.112
CPU_POWER_04V_W = 0.8e-3
CPU_MEP_VOLTAGE = 0.5
BNN_LEAK_SHARE_1V = 0.05


class FrequencyModel:
    """Alpha-power-law Fmax vs. supply voltage."""

    def __init__(self, vth: float = VTH,
                 v_lo: float = V_MIN, f_lo_mhz: float = F_VMIN_MHZ,
                 v_hi: float = V_NOMINAL, f_hi_mhz: float = F_NOMINAL_MHZ):
        if not vth < v_lo < v_hi:
            raise ConfigurationError("need vth < v_lo < v_hi")
        ratio = (f_hi_mhz * v_hi) / (f_lo_mhz * v_lo)
        self.vth = vth
        self.alpha = math.log(ratio) / math.log((v_hi - vth) / (v_lo - vth))
        self.k_mhz = f_hi_mhz * v_hi / (v_hi - vth) ** self.alpha

    def f_mhz(self, voltage: float) -> float:
        """Maximum operating frequency in MHz at ``voltage``."""
        if voltage <= self.vth:
            raise ConfigurationError(
                f"voltage {voltage} V at or below threshold {self.vth} V"
            )
        return self.k_mhz * (voltage - self.vth) ** self.alpha / voltage

    def f_hz(self, voltage: float) -> float:
        return self.f_mhz(voltage) * 1e6


@dataclass(frozen=True)
class PowerProfile:
    """Fitted power model of one operating mode.

    ``dynamic = c_eff * V^2 * f``; ``leakage = leak_p0 * V * exp(leak_eta V)``.
    """

    name: str
    c_eff: float  # F (effective switched capacitance)
    leak_p0: float  # W
    leak_eta: float
    frequency: FrequencyModel

    def dynamic_power_w(self, voltage: float, f_hz: float | None = None) -> float:
        f = self.frequency.f_hz(voltage) if f_hz is None else f_hz
        return self.c_eff * voltage ** 2 * f

    def leakage_power_w(self, voltage: float) -> float:
        return self.leak_p0 * voltage * math.exp(self.leak_eta * voltage)

    def total_power_w(self, voltage: float, f_hz: float | None = None) -> float:
        return self.dynamic_power_w(voltage, f_hz) + self.leakage_power_w(voltage)

    def energy_per_cycle_j(self, voltage: float) -> float:
        """Energy per clock cycle when running at Fmax(V)."""
        return self.total_power_w(voltage) / self.frequency.f_hz(voltage)

    def energy_j(self, cycles: float, voltage: float,
                 f_hz: float | None = None) -> float:
        """Energy to run ``cycles`` at ``voltage`` (at Fmax unless given)."""
        f = self.frequency.f_hz(voltage) if f_hz is None else f_hz
        seconds = cycles / f
        return self.dynamic_power_w(voltage, f) * seconds \
            + self.leakage_power_w(voltage) * seconds

    @property
    def leak_share_1v(self) -> float:
        return self.leakage_power_w(V_NOMINAL) / self.total_power_w(V_NOMINAL)


def _solve_profile(name: str, frequency: FrequencyModel, p_1v: float,
                   p_04v: float, leak_1v: float) -> PowerProfile:
    """Solve (c_eff, leak_p0, leak_eta) from the two anchors + 1 V leakage."""
    c_eff = (p_1v - leak_1v) / (V_NOMINAL ** 2 * frequency.f_hz(V_NOMINAL))
    dyn_04 = c_eff * V_MIN ** 2 * frequency.f_hz(V_MIN)
    leak_04 = p_04v - dyn_04
    if leak_04 <= 0:
        raise ConfigurationError(
            f"{name}: leakage share {leak_1v:.3g} W at 1 V leaves no leakage "
            f"budget at 0.4 V (dynamic alone is {dyn_04:.3g} W)"
        )
    # leak(V) = p0 V e^{eta V}:  leak_1v / leak_04 = (1/0.4) e^{0.6 eta}
    eta = math.log(leak_1v / leak_04 * V_MIN / V_NOMINAL) / (V_NOMINAL - V_MIN)
    p0 = leak_1v / (V_NOMINAL * math.exp(eta * V_NOMINAL))
    return PowerProfile(name=name, c_eff=c_eff, leak_p0=p0, leak_eta=eta,
                        frequency=frequency)


def _mep_voltage(profile: PowerProfile, lo: float = 0.36, hi: float = 1.0) -> float:
    """Voltage minimizing energy/cycle (golden-section search)."""
    phi = (math.sqrt(5.0) - 1) / 2
    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    for _ in range(80):
        if profile.energy_per_cycle_j(c) < profile.energy_per_cycle_j(d):
            b = d
        else:
            a = c
        c = b - phi * (b - a)
        d = a + phi * (b - a)
    return (a + b) / 2


@lru_cache(maxsize=None)
def frequency_model() -> FrequencyModel:
    return FrequencyModel()


@lru_cache(maxsize=None)
def bnn_profile() -> PowerProfile:
    """BNN-mode power fit (leakage share at 1 V fixed; MEP below 0.4 V)."""
    return _solve_profile("bnn", frequency_model(), BNN_POWER_1V_W,
                          BNN_POWER_04V_W, BNN_LEAK_SHARE_1V * BNN_POWER_1V_W)


class TwoDomainProfile:
    """CPU-mode power model with separate core and SRAM voltage domains.

    The paper scales core and SRAM together from 1 V down to the SRAM's
    0.55 V Vmin; below that only the core voltage drops (section VI.C).
    The stranded SRAM domain is what produces the measured 0.5 V
    minimum-energy point: below it, the SRAM's (voltage-pinned) dynamic and
    leakage power divide by an ever-slower clock.

    Duck-type compatible with :class:`PowerProfile`.
    """

    name = "cpu"

    def __init__(self, frequency: FrequencyModel, p_1v: float, p_04v: float,
                 leak_share_1v_target: float = 0.05,
                 sram_dynamic_share: float = 0.25,
                 sram_leak_share: float = 0.77):
        self.frequency = frequency
        leak_1v = leak_share_1v_target * p_1v
        self.c_total = (p_1v - leak_1v) / frequency.f_hz(V_NOMINAL)
        self.c_sram = self.c_total * sram_dynamic_share
        self.c_core = self.c_total - self.c_sram
        self._leak_core_1v = leak_1v * (1.0 - sram_leak_share)
        self._leak_sram_1v = leak_1v * sram_leak_share
        # solve the leakage exponent from the 0.4 V power anchor
        f_04 = frequency.f_hz(V_MIN)
        dyn_04 = (self.c_core * V_MIN ** 2 + self.c_sram * SRAM_VMIN ** 2) * f_04
        leak_04_target = p_04v - dyn_04
        if leak_04_target <= 0:
            raise ConfigurationError("no leakage budget at 0.4 V; bad shares")

        def leak_total(eta: float) -> float:
            core = self._leak_core_1v * V_MIN * math.exp(eta * (V_MIN - 1.0))
            sram = self._leak_sram_1v * SRAM_VMIN * math.exp(eta * (SRAM_VMIN - 1.0))
            return core + sram

        lo, hi = 0.1, 12.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if leak_total(mid) > leak_04_target:
                lo = mid  # larger eta shrinks low-voltage leakage
            else:
                hi = mid
        self.leak_eta = 0.5 * (lo + hi)

    def _sram_voltage(self, voltage: float) -> float:
        return effective_voltage_for_sram(voltage)

    def dynamic_power_w(self, voltage: float, f_hz: float | None = None) -> float:
        f = self.frequency.f_hz(voltage) if f_hz is None else f_hz
        vs = self._sram_voltage(voltage)
        return (self.c_core * voltage ** 2 + self.c_sram * vs ** 2) * f

    def leakage_power_w(self, voltage: float) -> float:
        vs = self._sram_voltage(voltage)
        core = self._leak_core_1v * voltage * math.exp(self.leak_eta * (voltage - 1.0))
        sram = self._leak_sram_1v * vs * math.exp(self.leak_eta * (vs - 1.0))
        return core + sram

    def total_power_w(self, voltage: float, f_hz: float | None = None) -> float:
        return self.dynamic_power_w(voltage, f_hz) + self.leakage_power_w(voltage)

    def energy_per_cycle_j(self, voltage: float) -> float:
        return self.total_power_w(voltage) / self.frequency.f_hz(voltage)

    def energy_j(self, cycles: float, voltage: float,
                 f_hz: float | None = None) -> float:
        f = self.frequency.f_hz(voltage) if f_hz is None else f_hz
        seconds = cycles / f
        return self.dynamic_power_w(voltage, f) * seconds \
            + self.leakage_power_w(voltage) * seconds

    @property
    def leak_share_1v(self) -> float:
        return self.leakage_power_w(V_NOMINAL) / self.total_power_w(V_NOMINAL)


@lru_cache(maxsize=None)
def cpu_profile() -> TwoDomainProfile:
    """CPU-mode power model (two voltage domains; MEP emerges near 0.5 V)."""
    return TwoDomainProfile(frequency_model(), CPU_POWER_1V_W, CPU_POWER_04V_W)


def mep_voltage(profile: PowerProfile) -> float:
    """Public MEP search for a fitted profile."""
    return _mep_voltage(profile)


def effective_voltage_for_sram(voltage: float) -> float:
    """SRAM domain voltage: scaled with the core down to its 0.55 V Vmin."""
    return max(voltage, SRAM_VMIN)
