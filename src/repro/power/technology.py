"""Technology model solvers, fitted per :class:`~repro.power.profiles.DeviceProfile`.

The default fit reproduces the paper's 65 nm test chip, whose measured
anchors (Fig 7, Fig 9, Table 2/3) live in the ``ncpu-65nm`` profile:

* frequency: 960 MHz at 1.0 V, 18 MHz at 0.4 V,
* BNN-mode power: 241 mW at 1.0 V, 1.2 mW at 0.4 V,
* CPU-mode power: 112 mW at 1.0 V, 0.8 mW at 0.4 V,
* CPU-mode minimum-energy point (MEP) at 0.5 V,
* SRAM Vmin 0.55 V (below it, SRAM stays at 0.55 V).

The model forms (shared by every registered device profile):

* frequency: alpha-power law ``f(V) = K (V - Vth)^alpha / V``,
* dynamic power: ``P_dyn = C_eff V^2 f(V)``,
* leakage: ``P_leak = P0 · V · exp(eta V)`` (subthreshold + DIBL shape).

The three power parameters per operating mode are solved from the two power
anchors plus either a fixed nominal-voltage leakage share (accelerator mode,
whose MEP lies below the voltage floor) or the MEP-position constraint
(CPU mode).

:func:`models_for` is the one entry point that turns a profile into fitted
models; it is memoized on the frozen profile so repeated power traces and
experiment sweeps reuse the same solver outputs.  The historical zero-arg
accessors (:func:`frequency_model`, :func:`bnn_profile`, :func:`cpu_profile`)
now accept an optional profile and resolve ``None`` through the current
session, defaulting to ``ncpu-65nm`` — their default outputs are pinned
bit-identical to the pre-registry module-global fit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Union

from repro.errors import ConfigurationError
from repro.power.profiles import DeviceProfile, resolve_profile

# The ncpu-65nm anchors, kept as module constants for backward
# compatibility and for the NCPU-specific helpers in repro.power.energy.
# The registry's ncpu-65nm profile carries the same values; golden tests
# pin the two representations bit-identical.
V_NOMINAL = 1.0
V_MIN = 0.4
SRAM_VMIN = 0.55
VTH = 0.35

F_NOMINAL_MHZ = 960.0
F_VMIN_MHZ = 18.0

BNN_POWER_1V_W = 0.241
BNN_POWER_04V_W = 1.2e-3
CPU_POWER_1V_W = 0.112
CPU_POWER_04V_W = 0.8e-3
CPU_MEP_VOLTAGE = 0.5
BNN_LEAK_SHARE_1V = 0.05


class FrequencyModel:
    """Alpha-power-law Fmax vs. supply voltage."""

    def __init__(self, vth: float = VTH,
                 v_lo: float = V_MIN, f_lo_mhz: float = F_VMIN_MHZ,
                 v_hi: float = V_NOMINAL, f_hi_mhz: float = F_NOMINAL_MHZ):
        if not vth < v_lo < v_hi:
            raise ConfigurationError("need vth < v_lo < v_hi")
        ratio = (f_hi_mhz * v_hi) / (f_lo_mhz * v_lo)
        self.vth = vth
        self.alpha = math.log(ratio) / math.log((v_hi - vth) / (v_lo - vth))
        self.k_mhz = f_hi_mhz * v_hi / (v_hi - vth) ** self.alpha

    def f_mhz(self, voltage: float) -> float:
        """Maximum operating frequency in MHz at ``voltage``."""
        if voltage <= self.vth:
            raise ConfigurationError(
                f"voltage {voltage} V at or below threshold {self.vth} V"
            )
        return self.k_mhz * (voltage - self.vth) ** self.alpha / voltage

    def f_hz(self, voltage: float) -> float:
        return self.f_mhz(voltage) * 1e6


@dataclass(frozen=True)
class PowerProfile:
    """Fitted power model of one operating mode.

    ``dynamic = c_eff * V^2 * f``; ``leakage = leak_p0 * V * exp(leak_eta V)``.
    """

    name: str
    c_eff: float  # F (effective switched capacitance)
    leak_p0: float  # W
    leak_eta: float
    frequency: FrequencyModel
    v_nominal: float = V_NOMINAL

    def dynamic_power_w(self, voltage: float, f_hz: float | None = None) -> float:
        f = self.frequency.f_hz(voltage) if f_hz is None else f_hz
        return self.c_eff * voltage ** 2 * f

    def leakage_power_w(self, voltage: float) -> float:
        return self.leak_p0 * voltage * math.exp(self.leak_eta * voltage)

    def total_power_w(self, voltage: float, f_hz: float | None = None) -> float:
        return self.dynamic_power_w(voltage, f_hz) + self.leakage_power_w(voltage)

    def energy_per_cycle_j(self, voltage: float) -> float:
        """Energy per clock cycle when running at Fmax(V)."""
        return self.total_power_w(voltage) / self.frequency.f_hz(voltage)

    def energy_j(self, cycles: float, voltage: float,
                 f_hz: float | None = None) -> float:
        """Energy to run ``cycles`` at ``voltage`` (at Fmax unless given)."""
        f = self.frequency.f_hz(voltage) if f_hz is None else f_hz
        seconds = cycles / f
        return self.dynamic_power_w(voltage, f) * seconds \
            + self.leakage_power_w(voltage) * seconds

    @property
    def leak_share_1v(self) -> float:
        """Leakage share at the profile's nominal voltage."""
        return self.leakage_power_w(self.v_nominal) \
            / self.total_power_w(self.v_nominal)


def _solve_profile(name: str, frequency: FrequencyModel, p_hi: float,
                   p_lo: float, leak_hi: float,
                   v_hi: float = V_NOMINAL, v_lo: float = V_MIN) -> PowerProfile:
    """Solve (c_eff, leak_p0, leak_eta) from the two anchors + nominal leakage."""
    c_eff = (p_hi - leak_hi) / (v_hi ** 2 * frequency.f_hz(v_hi))
    dyn_lo = c_eff * v_lo ** 2 * frequency.f_hz(v_lo)
    leak_lo = p_lo - dyn_lo
    if leak_lo <= 0:
        raise ConfigurationError(
            f"{name}: leakage share {leak_hi:.3g} W at {v_hi} V leaves no "
            f"leakage budget at {v_lo} V (dynamic alone is {dyn_lo:.3g} W)"
        )
    # leak(V) = p0 V e^{eta V}:  leak_hi / leak_lo = (v_hi/v_lo) e^{eta (v_hi-v_lo)}
    eta = math.log(leak_hi / leak_lo * v_lo / v_hi) / (v_hi - v_lo)
    p0 = leak_hi / (v_hi * math.exp(eta * v_hi))
    return PowerProfile(name=name, c_eff=c_eff, leak_p0=p0, leak_eta=eta,
                        frequency=frequency, v_nominal=v_hi)


def _mep_voltage(profile: PowerProfile, lo: float = 0.36, hi: float = 1.0) -> float:
    """Voltage minimizing energy/cycle (golden-section search)."""
    phi = (math.sqrt(5.0) - 1) / 2
    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    for _ in range(80):
        if profile.energy_per_cycle_j(c) < profile.energy_per_cycle_j(d):
            b = d
        else:
            a = c
        c = b - phi * (b - a)
        d = a + phi * (b - a)
    return (a + b) / 2


class TwoDomainProfile:
    """CPU-mode power model with separate core and SRAM voltage domains.

    The paper scales core and SRAM together from nominal voltage down to
    the SRAM's Vmin; below that only the core voltage drops (section
    VI.C).  The stranded SRAM domain is what produces the measured 0.5 V
    minimum-energy point on the 65 nm chip: below it, the SRAM's
    (voltage-pinned) dynamic and leakage power divide by an ever-slower
    clock.

    Duck-type compatible with :class:`PowerProfile`.
    """

    name = "cpu"

    def __init__(self, frequency: FrequencyModel, p_1v: float, p_04v: float,
                 leak_share_1v_target: float = 0.05,
                 sram_dynamic_share: float = 0.25,
                 sram_leak_share: float = 0.77,
                 v_nominal: float = V_NOMINAL,
                 v_min: float = V_MIN,
                 sram_vmin: float = SRAM_VMIN):
        self.frequency = frequency
        self.v_nominal = v_nominal
        self.v_min = v_min
        self.sram_vmin = sram_vmin
        leak_1v = leak_share_1v_target * p_1v
        self.c_total = (p_1v - leak_1v) / frequency.f_hz(v_nominal)
        self.c_sram = self.c_total * sram_dynamic_share
        self.c_core = self.c_total - self.c_sram
        self._leak_core_1v = leak_1v * (1.0 - sram_leak_share)
        self._leak_sram_1v = leak_1v * sram_leak_share
        # solve the leakage exponent from the low-voltage power anchor
        f_lo = frequency.f_hz(v_min)
        vs_lo = max(v_min, sram_vmin)
        dyn_lo = (self.c_core * v_min ** 2 + self.c_sram * vs_lo ** 2) * f_lo
        leak_lo_target = p_04v - dyn_lo
        if leak_lo_target <= 0:
            raise ConfigurationError(
                f"{self.name}: no leakage budget at {v_min} V; bad shares")

        def leak_total(eta: float) -> float:
            core = self._leak_core_1v * v_min \
                * math.exp(eta * (v_min - v_nominal))
            sram = self._leak_sram_1v * vs_lo \
                * math.exp(eta * (vs_lo - v_nominal))
            return core + sram

        lo, hi = 0.1, 12.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if leak_total(mid) > leak_lo_target:
                lo = mid  # larger eta shrinks low-voltage leakage
            else:
                hi = mid
        self.leak_eta = 0.5 * (lo + hi)

    def _sram_voltage(self, voltage: float) -> float:
        return max(voltage, self.sram_vmin)

    def dynamic_power_w(self, voltage: float, f_hz: float | None = None) -> float:
        f = self.frequency.f_hz(voltage) if f_hz is None else f_hz
        vs = self._sram_voltage(voltage)
        return (self.c_core * voltage ** 2 + self.c_sram * vs ** 2) * f

    def leakage_power_w(self, voltage: float) -> float:
        vs = self._sram_voltage(voltage)
        core = self._leak_core_1v * voltage \
            * math.exp(self.leak_eta * (voltage - self.v_nominal))
        sram = self._leak_sram_1v * vs \
            * math.exp(self.leak_eta * (vs - self.v_nominal))
        return core + sram

    def total_power_w(self, voltage: float, f_hz: float | None = None) -> float:
        return self.dynamic_power_w(voltage, f_hz) + self.leakage_power_w(voltage)

    def energy_per_cycle_j(self, voltage: float) -> float:
        return self.total_power_w(voltage) / self.frequency.f_hz(voltage)

    def energy_j(self, cycles: float, voltage: float,
                 f_hz: float | None = None) -> float:
        f = self.frequency.f_hz(voltage) if f_hz is None else f_hz
        seconds = cycles / f
        return self.dynamic_power_w(voltage, f) * seconds \
            + self.leakage_power_w(voltage) * seconds

    @property
    def leak_share_1v(self) -> float:
        """Leakage share at the profile's nominal voltage."""
        return self.leakage_power_w(self.v_nominal) \
            / self.total_power_w(self.v_nominal)


@dataclass(frozen=True)
class DeviceModels:
    """Fitted solver bundle for one device profile.

    Built (and memoized) by :func:`models_for`; every consuming layer —
    Timeline power traces, experiments, metrics, the CLI — pulls its
    frequency/power models from here rather than from module globals.
    """

    profile: DeviceProfile = field(compare=False)
    frequency: FrequencyModel = field(compare=False)
    accel: PowerProfile = field(compare=False)
    cpu: TwoDomainProfile = field(compare=False)

    def mode_profile(self, mode: str) -> Union[PowerProfile, TwoDomainProfile]:
        """The fitted power model for ``mode`` (``"cpu"`` or ``"bnn"``)."""
        if mode == "cpu":
            return self.cpu
        if mode == "bnn":
            return self.accel
        raise ConfigurationError(f"unknown core mode {mode!r}")

    def cpu_mep_voltage(self) -> float:
        """Model MEP of the CPU mode, searched in the profile's window."""
        return _mep_voltage(self.cpu, lo=self.profile.mep_search_lo,
                            hi=self.profile.mep_search_hi)

    def accel_mep_voltage(self) -> float:
        """Model MEP of the accelerator mode (often pinned at the floor)."""
        return _mep_voltage(self.accel, lo=self.profile.mep_search_lo,
                            hi=self.profile.mep_search_hi)

    def effective_voltage_for_sram(self, voltage: float) -> float:
        return max(voltage, self.profile.sram_vmin)


@lru_cache(maxsize=None)
def models_for(profile: DeviceProfile) -> DeviceModels:
    """Fit frequency/power models for ``profile`` (memoized per profile).

    The frozen profile is the cache key, so every consumer asking for the
    same device shares one solver run; a test pins that repeated Timeline
    power traces reuse these objects.
    """
    frequency = FrequencyModel(
        vth=profile.vth,
        v_lo=profile.vdd_min, f_lo_mhz=profile.f_min_mhz,
        v_hi=profile.vdd_nominal, f_hi_mhz=profile.f_nominal_mhz)
    accel = _solve_profile(
        "bnn", frequency,
        profile.accel_power_nominal_w, profile.accel_power_min_w,
        profile.accel_leak_share_nominal * profile.accel_power_nominal_w,
        v_hi=profile.vdd_nominal, v_lo=profile.vdd_min)
    cpu = TwoDomainProfile(
        frequency, profile.cpu_power_nominal_w, profile.cpu_power_min_w,
        leak_share_1v_target=profile.cpu_leak_share_nominal,
        v_nominal=profile.vdd_nominal, v_min=profile.vdd_min,
        sram_vmin=profile.sram_vmin)
    return DeviceModels(profile=profile, frequency=frequency,
                        accel=accel, cpu=cpu)


ProfileLike = Union[DeviceProfile, str, None]


def frequency_model(profile: ProfileLike = None) -> FrequencyModel:
    """Fmax model for ``profile`` (session default when ``None``)."""
    return models_for(resolve_profile(profile)).frequency


def bnn_profile(profile: ProfileLike = None) -> PowerProfile:
    """Accelerator (BNN/NN) mode power fit — nominal leakage share fixed."""
    return models_for(resolve_profile(profile)).accel


def cpu_profile(profile: ProfileLike = None) -> TwoDomainProfile:
    """CPU-mode power model (two voltage domains; MEP emerges near 0.5 V
    on the default 65 nm profile)."""
    return models_for(resolve_profile(profile)).cpu


def mep_voltage(profile: PowerProfile,
                lo: float = 0.36, hi: float = 1.0) -> float:
    """Public MEP search for a fitted mode profile."""
    return _mep_voltage(profile, lo=lo, hi=hi)


def effective_voltage_for_sram(voltage: float,
                               sram_vmin: float = SRAM_VMIN) -> float:
    """SRAM domain voltage: scaled with the core down to its Vmin."""
    return max(voltage, sram_vmin)
