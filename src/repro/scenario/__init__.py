"""Declarative scenario schema + differential scenario fuzzing.

* :mod:`repro.scenario.schema` — the frozen dataclass tree
  (:class:`Scenario` = :class:`WorkloadSpec` + :class:`EngineSpec` +
  :class:`DevicePoint` + seed/batch/repeat scalars) with field-exact
  validation and canonical JSON round-tripping,
* :mod:`repro.scenario.materialize` — builders turning a scenario into
  an assembled program / seeded model + inputs / an executed run,
* :mod:`repro.scenario.fuzz` — the seeded random-scenario generator and
  the three-way engine differential harness behind ``repro fuzz``.

The fuzz module is imported lazily (``import repro.scenario.fuzz``) so
the schema stays cheap to import from :mod:`repro.sim.config`.
"""

from repro.scenario.schema import (
    ARRIVAL_PROCESSES,
    BATCH_POLICIES,
    CPU_PROGRAMS,
    WORKLOAD_KINDS,
    DevicePoint,
    EngineSpec,
    Scenario,
    ServeSpec,
    WorkloadSpec,
    load_scenario,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "BATCH_POLICIES",
    "CPU_PROGRAMS",
    "DevicePoint",
    "EngineSpec",
    "Scenario",
    "ServeSpec",
    "WORKLOAD_KINDS",
    "WorkloadSpec",
    "load_scenario",
]
