"""Differential scenario fuzzing: random scenarios, every engine agrees.

The engine registry's admission contract is *bit-identical architectural
results*.  The hand-written differential suites pin that on a few fixed
workloads; this module turns the contract into a property-based harness:
a seeded :class:`ScenarioFuzzer` draws bounded random scenarios (shapes,
batch sizes, seeds, operating points — engines come from the live
registry), and :func:`run_differential` executes each one on every
engine and compares the outputs bit for bit:

* **BNN scenarios** — class scores, argmax predictions and per-layer
  hidden sign activations must be array-equal across engines, and the
  accelerator's cycle/MAC accounting (which is engine-independent by
  protocol) must be exactly equal.
* **CPU scenarios** — stop reason, final PC, all 32 architectural
  registers, retired-instruction counts, memory traffic and the
  per-mnemonic histogram must match.  Cycle counts are deliberately
  *not* compared: engines without ``timing_accurate`` report functional
  single-cycle timing (the pipeline stays the timing oracle).

``repro fuzz --count N --seed S`` drives this from the CLI; a fresh
engine becomes trustworthy by surviving a fuzz run, not by hand-writing
a fourth differential suite.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.scenario.schema import (
    BATCH_POLICIES,
    CPU_PROGRAMS,
    DevicePoint,
    EngineSpec,
    Scenario,
    WorkloadSpec,
)

#: engines every fuzz run compares by default (the registry's full set
#: at the time of writing; ``--engines`` / the ``engines`` argument can
#: restrict or extend it as backends come and go)
def default_engines() -> Tuple[str, ...]:
    from repro.engine import engine_names

    return engine_names()


#: fuzzer draw bounds — small enough that a 25-scenario run stays in
#: seconds, wide enough to hit odd shapes (non-multiple-of-64 widths
#: stress the bit-packed kernels' tail masking).  Hidden/output widths
#: respect the accelerator array's 100-neuron fan-out limit; the input
#: width (fan-in of layer 1) is architecturally unbounded.
INPUT_WIDTH_CHOICES = (1, 3, 17, 33, 64, 65, 100, 127, 200)
HIDDEN_WIDTH_CHOICES = (1, 3, 10, 17, 33, 64, 65, 100)
CLASS_COUNT_CHOICES = (2, 4, 10)
BATCH_SIZE_CHOICES = (1, 2, 7, 16, 33, 64)
CPU_ITERATION_CHOICES = (1, 2, 5, 10)
VDD_CHOICES = (0.4, 0.6, 0.8, 1.0)
MAX_HIDDEN_LAYERS = 3


class ScenarioFuzzer:
    """Deterministic random-scenario generator.

    The same ``seed`` always yields the same scenario sequence
    (``random.Random`` is stable across platforms and Python builds),
    so a failing fuzz run is reproducible from its seed + index alone.
    """

    def __init__(self, seed: int = 0,
                 engines: Optional[Sequence[str]] = None,
                 kinds: Sequence[str] = ("bnn", "cpu")):
        self.seed = seed
        self.engines = tuple(engines) if engines else default_engines()
        self.kinds = tuple(kinds)
        self._rng = random.Random(seed)
        self._drawn = 0

    def draw(self) -> Scenario:
        """The next random scenario in this fuzzer's sequence."""
        rng = self._rng
        index = self._drawn
        self._drawn += 1
        kind = rng.choice(self.kinds)
        seed = rng.randrange(0, 2**31)
        engine = EngineSpec(name=rng.choice(self.engines))
        device = DevicePoint(vdd=rng.choice(VDD_CHOICES))
        if kind == "cpu":
            workload = WorkloadSpec(
                kind="cpu", name=rng.choice(CPU_PROGRAMS),
                layer_sizes=(),
                iterations=rng.choice(CPU_ITERATION_CHOICES))
            batch_size = 1
        else:
            hidden = [rng.choice(HIDDEN_WIDTH_CHOICES)
                      for _ in range(rng.randint(1, MAX_HIDDEN_LAYERS))]
            sizes = ([rng.choice(INPUT_WIDTH_CHOICES)] + hidden
                     + [rng.choice(CLASS_COUNT_CHOICES)])
            workload = WorkloadSpec(kind="bnn", name="random",
                                    layer_sizes=tuple(sizes), iterations=1)
            batch_size = rng.choice(BATCH_SIZE_CHOICES)
        return Scenario(name=f"fuzz-{self.seed}-{index}",
                        workload=workload, engine=engine, seed=seed,
                        batch_size=batch_size,
                        batch_policy=rng.choice(BATCH_POLICIES),
                        device=device, repeats=1)

    def scenarios(self, count: int) -> Iterator[Scenario]:
        for _ in range(count):
            yield self.draw()


@dataclasses.dataclass
class Mismatch:
    """One field two engines disagreed on."""

    field: str
    engine: str
    reference_engine: str
    detail: str

    def __str__(self) -> str:
        return (f"{self.field}: {self.engine} != {self.reference_engine} "
                f"({self.detail})")


@dataclasses.dataclass
class DifferentialResult:
    """Outcome of running one scenario across every compared engine."""

    scenario: Scenario
    engines: Tuple[str, ...]
    mismatches: List[Mismatch] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "engines": list(self.engines),
            "ok": self.ok,
            "mismatches": [str(m) for m in self.mismatches],
        }


def _compare_arrays(field: str, reference: Any, candidate: Any,
                    engine: str, reference_engine: str,
                    mismatches: List[Mismatch]) -> None:
    import numpy as np

    ref = np.asarray(reference)
    got = np.asarray(candidate)
    if ref.shape != got.shape:
        mismatches.append(Mismatch(field, engine, reference_engine,
                                   f"shape {got.shape} vs {ref.shape}"))
        return
    if not np.array_equal(ref, got):
        bad = int(np.count_nonzero(ref != got))
        mismatches.append(Mismatch(field, engine, reference_engine,
                                   f"{bad}/{ref.size} elements differ"))


def _compare_scalar(field: str, reference: Any, candidate: Any,
                    engine: str, reference_engine: str,
                    mismatches: List[Mismatch]) -> None:
    if reference != candidate:
        mismatches.append(Mismatch(field, engine, reference_engine,
                                   f"{candidate!r} vs {reference!r}"))


def _bnn_observation(scenario: Scenario, engine_name: str) -> Dict[str, Any]:
    from repro.bnn import BNNAccelerator
    from repro.engine import get_engine
    from repro.scenario.materialize import build_inputs, build_model

    engine = get_engine(engine_name)
    model = build_model(scenario)
    inputs = build_inputs(scenario)
    predictions, timing = BNNAccelerator().infer_batch(
        model, inputs, stream_weights=scenario.batch_policy == "stream",
        engine=engine)
    return {
        "scores": engine.scores(model, inputs),
        "predictions": predictions,
        "hidden": engine.hidden_forward(model, inputs),
        "total_cycles": int(timing.total_cycles),
        "macs": int(timing.macs),
    }


def _cpu_observation(scenario: Scenario, engine_name: str) -> Dict[str, Any]:
    from repro.engine import get_engine
    from repro.scenario.materialize import build_program

    cpu, result = get_engine(engine_name).run_program(
        build_program(scenario),
        prefer_functional=scenario.engine.prefer_functional)
    return {
        "stop_reason": result.stop_reason,
        "pc": result.pc,
        "registers": [cpu.regs.read(index) for index in range(32)],
        "instructions": result.stats.instructions,
        "mem_reads": result.stats.mem_reads,
        "mem_writes": result.stats.mem_writes,
        "instr_counts": dict(result.stats.instr_counts),
    }


#: observation fields compared exactly as arrays (everything else is
#: compared as plain scalars/mappings)
_ARRAY_FIELDS = ("scores", "predictions", "hidden", "registers")


def run_differential(scenario: Scenario,
                     engines: Optional[Sequence[str]] = None
                     ) -> DifferentialResult:
    """Run ``scenario`` on every engine; the first engine is the oracle."""
    names = tuple(engines) if engines else default_engines()
    observe = (_cpu_observation if scenario.workload.kind == "cpu"
               else _bnn_observation)
    result = DifferentialResult(scenario=scenario, engines=names)
    reference_engine = names[0]
    reference = observe(scenario, reference_engine)
    for engine_name in names[1:]:
        observed = observe(scenario, engine_name)
        for field, expected in reference.items():
            compare = (_compare_arrays if field in _ARRAY_FIELDS
                       else _compare_scalar)
            compare(field, expected, observed[field], engine_name,
                    reference_engine, result.mismatches)
    return result


def fuzz(count: int = 25, seed: int = 0,
         engines: Optional[Sequence[str]] = None,
         kinds: Sequence[str] = ("bnn", "cpu"),
         on_result=None) -> List[DifferentialResult]:
    """Generate ``count`` scenarios and differentially run each one.

    ``on_result`` (when given) is called with each
    :class:`DifferentialResult` as it completes — the CLI uses it for
    per-scenario progress lines.  Runs inside a throwaway session so
    fuzzing never pollutes the caller's stats or artifact cache.
    """
    from repro.sim import use_session

    fuzzer = ScenarioFuzzer(seed=seed, engines=engines, kinds=kinds)
    results: List[DifferentialResult] = []
    with use_session(cache_enabled=False):
        for scenario in fuzzer.scenarios(count):
            result = run_differential(scenario, engines=fuzzer.engines)
            results.append(result)
            if on_result is not None:
                on_result(result)
    return results
