"""Turn a validated :class:`~repro.scenario.schema.Scenario` into work.

The schema deliberately stays declarative — pure data, importable
everywhere.  This module is the one place that knows how to *realize* a
scenario: assemble its CPU kernel, build its (seeded) random BNN model
and input batch, and execute the whole thing on the engine it names.
The CLI (``repro run --scenario``), the benchmark registry and the
differential fuzzer all share these builders, so a scenario means the
same concrete workload everywhere it is consumed.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.scenario.schema import Scenario

#: offset added to ``Scenario.seed`` for the input-batch RNG, so model
#: weights and inputs come from distinct, reproducible streams
INPUT_SEED_OFFSET = 1


def build_source(scenario: Scenario) -> str:
    """The assembly source of a ``cpu``-kind scenario's kernel."""
    workload = scenario.workload
    if workload.kind != "cpu":
        raise ConfigurationError(
            f"scenario {scenario.name!r} is kind={workload.kind!r}; only "
            "cpu scenarios assemble to a program")
    if workload.name == "dhrystone":
        from repro.workloads.dhrystone import dhrystone_asm

        return dhrystone_asm(iterations=workload.iterations)
    if workload.name == "hotspot":
        from repro.metrics.bench import hotspot_asm

        return hotspot_asm(passes=workload.iterations)
    raise ConfigurationError(  # pragma: no cover - schema validates names
        f"scenario.workload.name: unknown CPU program {workload.name!r}")


def build_program(scenario: Scenario):
    """Assemble the scenario's CPU kernel into a loadable program."""
    from repro.isa import assemble

    return assemble(build_source(scenario))


def build_model(scenario: Scenario):
    """The scenario's seeded random binary network (``bnn`` kind only)."""
    import numpy as np

    from repro.bnn import BNNModel

    workload = scenario.workload
    if workload.kind != "bnn":
        raise ConfigurationError(
            f"scenario {scenario.name!r} is kind={workload.kind!r}; only "
            "bnn scenarios build a model")
    return BNNModel.random(list(workload.layer_sizes),
                           np.random.default_rng(scenario.seed))


def build_inputs(scenario: Scenario,
                 batch_size: Optional[int] = None):
    """A seeded sign-domain input batch ``(batch, input_width)``."""
    import numpy as np

    from repro.bnn import binarize_sign

    n = scenario.batch_size if batch_size is None else batch_size
    rng = np.random.default_rng(scenario.seed + INPUT_SEED_OFFSET)
    width = scenario.workload.layer_sizes[0]
    return binarize_sign(rng.standard_normal((n, width)))


def run_scenario(scenario: Scenario,
                 engine: Optional[str] = None,
                 attribute: bool = False) -> Dict[str, Any]:
    """Execute one scenario end-to-end; returns a JSON-ready summary.

    ``engine`` overrides the scenario's engine spec (the CLI threads
    ``--engine`` through here).  CPU scenarios run their kernel through
    the engine's ``run_program``; BNN scenarios classify the input batch
    through the accelerator's engine-dispatched batch path, so cycle/MAC
    accounting comes from the engine-independent timing model.

    ``attribute=True`` additionally splits the run's simulated cycles
    into the six ``repro.obs`` phases (``summary["phase_cycles"]``,
    exact sum-to-total) — derived from the stats/timing the run already
    produced, so the workload is not executed twice.
    """
    from repro.engine import resolve_engine

    resolved = resolve_engine(engine or scenario.engine.name)
    summary: Dict[str, Any] = {
        "scenario": scenario.to_dict(),
        "engine": resolved.name,
    }
    if scenario.workload.kind == "cpu":
        _, result = resolved.run_program(
            build_program(scenario),
            prefer_functional=scenario.engine.prefer_functional)
        summary["kind"] = "cpu"
        summary["stop_reason"] = result.stop_reason
        summary["cycles"] = result.stats.cycles
        summary["instructions"] = result.stats.instructions
        if attribute:
            from repro.obs import cpu_phase_cycles

            summary["phase_cycles"] = cpu_phase_cycles(result.stats)
        return summary
    from repro.bnn import BNNAccelerator

    model = build_model(scenario)
    inputs = build_inputs(scenario)
    stream = scenario.batch_policy == "stream"
    predictions, timing = BNNAccelerator().infer_batch(
        model, inputs, stream_weights=stream, engine=resolved)
    summary["kind"] = "bnn"
    summary["batch_size"] = int(len(inputs))
    summary["predictions"] = [int(p) for p in predictions]
    summary["total_cycles"] = int(timing.total_cycles)
    summary["macs"] = int(timing.macs)
    if attribute:
        from repro.obs import bnn_phase_cycles

        summary["phase_cycles"] = bnn_phase_cycles(timing)
    return summary


def scenario_signature(scenario: Scenario) -> Tuple[str, str]:
    """``(kind, short description)`` used by CLI/report one-liners."""
    workload = scenario.workload
    if workload.kind == "cpu":
        detail = f"{workload.name} x{workload.iterations}"
    else:
        sizes = "-".join(str(size) for size in workload.layer_sizes)
        detail = f"{workload.name} [{sizes}] batch={scenario.batch_size}"
    return workload.kind, detail
