"""The declarative scenario schema: one object that names a whole run.

A :class:`Scenario` describes everything the simulator needs to reproduce
a run — the workload (a CPU kernel or a BNN classification task), the
execution engine, the RNG seed, the batch size/policy, the device
operating point and the repeat count — as one frozen dataclass tree that
round-trips canonically through JSON.  Every layer that runs the
simulator (``repro run``/``bench``/``experiments``, the fuzzer, the
session config) consumes the same object, so adding a scenario dimension
means adding one field here instead of touching every call site.

Validation is field-exact: a bad value raises
:class:`~repro.errors.ConfigurationError` whose message starts with the
offending field path (``scenario.workload.layer_sizes[1]: ...``), both
when constructing the dataclasses directly and when loading from a dict
or a JSON file.  :meth:`Scenario.identity_dict` is the canonical form
folded into :func:`repro.sim.config.config_hash`; it deliberately
excludes the engine spec, because every registered engine produces
identical architectural results (PR-6 semantics) and cached artifacts
must be reusable across engines.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

#: workload kinds the schema accepts
WORKLOAD_KINDS = ("bnn", "cpu")

#: assembly kernels a ``cpu`` workload may name (materialized by
#: :mod:`repro.scenario.materialize`)
CPU_PROGRAMS = ("dhrystone", "hotspot")

#: how a batch is presented to the accelerator: all rows at once
#: (``fixed``) or streamed row-by-row (``stream``)
BATCH_POLICIES = ("fixed", "stream")

#: arrival processes the serve-layer load generator can synthesize
ARRIVAL_PROCESSES = ("poisson", "uniform", "bursty")

#: schema bounds — generous, but finite so fuzzed scenarios stay cheap
MAX_LAYERS = 8
MAX_LAYER_WIDTH = 4096
MAX_BATCH_SIZE = 65536
MAX_ITERATIONS = 100_000
MAX_REPEATS = 1000

#: the fabricated NCPU chip's voltage range (0.4 V near-threshold .. 1.0 V
#: nominal, paper section VI) — the default device profile's limits; other
#: profiles carry their own range and ``DevicePoint`` validates against
#: the named profile's limits
VDD_MIN = 0.4
VDD_MAX = 1.0


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise ConfigurationError(f"{path}: {message}")


def _check_int(value: Any, path: str, minimum: int, maximum: int) -> None:
    _require(isinstance(value, int) and not isinstance(value, bool), path,
             f"expected an integer, got {value!r}")
    _require(minimum <= value <= maximum, path,
             f"must be in [{minimum}, {maximum}], got {value}")


def _reject_unknown(cls, data: Mapping, path: str) -> None:
    known = {field.name for field in dataclasses.fields(cls)}
    for key in sorted(set(data) - known):
        raise ConfigurationError(
            f"{path}.{key}: unknown field (known fields: "
            f"{', '.join(sorted(known))})")


def _as_mapping(data: Any, path: str) -> Mapping:
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"{path}: expected a JSON object, got {type(data).__name__}")
    return data


def _construct(factory, path: str, default_prefix: str):
    """Run ``factory`` and re-root its validation errors at ``path``.

    Dataclass constructors validate with their local default prefix
    (``workload.kind``); when built through ``from_dict`` the error must
    name the full path from the document root (``scenario.workload.kind``).
    """
    try:
        return factory()
    except ConfigurationError as exc:
        message = str(exc)
        if message.startswith(default_prefix + "."):
            message = path + message[len(default_prefix):]
        raise ConfigurationError(message) from None


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """What the scenario executes.

    ``kind="bnn"`` is a synthetic classification task: a random binary
    network of ``layer_sizes`` (first entry = input width, last =
    classes) inferring ``Scenario.batch_size`` sign-domain inputs.
    ``kind="cpu"`` assembles and runs one of the named kernels
    (:data:`CPU_PROGRAMS`) for ``iterations`` outer iterations.
    """

    kind: str = "bnn"
    name: str = "random"
    layer_sizes: Tuple[int, ...] = (100, 100, 100, 10)
    iterations: int = 10

    def __post_init__(self):
        object.__setattr__(self, "layer_sizes", tuple(self.layer_sizes))
        self.validate("workload")

    def validate(self, path: str = "workload") -> None:
        _require(self.kind in WORKLOAD_KINDS, f"{path}.kind",
                 f"must be one of {', '.join(WORKLOAD_KINDS)}, "
                 f"got {self.kind!r}")
        _require(isinstance(self.name, str) and bool(self.name),
                 f"{path}.name", f"expected a non-empty string, "
                 f"got {self.name!r}")
        _check_int(self.iterations, f"{path}.iterations", 1, MAX_ITERATIONS)
        if self.kind == "cpu":
            _require(self.name in CPU_PROGRAMS, f"{path}.name",
                     f"unknown CPU program; known programs: "
                     f"{', '.join(CPU_PROGRAMS)}")
            _require(not self.layer_sizes, f"{path}.layer_sizes",
                     "only meaningful for kind='bnn' (set it to [])")
            return
        _require(2 <= len(self.layer_sizes) <= MAX_LAYERS,
                 f"{path}.layer_sizes",
                 f"need 2..{MAX_LAYERS} layers (input width first, "
                 f"classes last), got {len(self.layer_sizes)}")
        for index, width in enumerate(self.layer_sizes):
            _check_int(width, f"{path}.layer_sizes[{index}]", 1,
                       MAX_LAYER_WIDTH)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "layer_sizes": list(self.layer_sizes),
                "iterations": self.iterations}

    @classmethod
    def from_dict(cls, data: Any, path: str = "workload") -> "WorkloadSpec":
        data = _as_mapping(data, path)
        _reject_unknown(cls, data, path)
        sizes = data.get("layer_sizes", cls.layer_sizes)
        _require(isinstance(sizes, (list, tuple)), f"{path}.layer_sizes",
                 f"expected a list of integers, got {sizes!r}")
        kind = data.get("kind", cls.kind)
        if kind == "cpu" and "layer_sizes" not in data:
            sizes = ()
        return _construct(
            lambda: cls(kind=kind, name=data.get("name", cls.name),
                        layer_sizes=tuple(sizes),
                        iterations=data.get("iterations", cls.iterations)),
            path, "workload")


@dataclasses.dataclass(frozen=True)
class EngineSpec:
    """Which execution backend runs the scenario.

    ``name`` must be registered in :mod:`repro.engine`;
    ``prefer_functional`` selects the functional ISS over the pipeline
    for engines that distinguish the two (the ``accurate`` engine).
    """

    name: str = "accurate"
    prefer_functional: bool = False

    def __post_init__(self):
        self.validate("engine")

    def validate(self, path: str = "engine") -> None:
        _require(isinstance(self.name, str) and bool(self.name),
                 f"{path}.name", f"expected a non-empty engine name, "
                 f"got {self.name!r}")
        _require(isinstance(self.prefer_functional, bool),
                 f"{path}.prefer_functional",
                 f"expected a boolean, got {self.prefer_functional!r}")
        # imported lazily: the registry loads provider modules that
        # import repro.sim, which must not happen at schema import time
        from repro.engine import ensure_known

        try:
            ensure_known(self.name)
        except ConfigurationError as exc:
            raise ConfigurationError(f"{path}.name: {exc}") from None

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name,
                "prefer_functional": self.prefer_functional}

    @classmethod
    def from_dict(cls, data: Any, path: str = "engine") -> "EngineSpec":
        data = _as_mapping(data, path)
        _reject_unknown(cls, data, path)
        return _construct(
            lambda: cls(name=data.get("name", cls.name),
                        prefer_functional=data.get("prefer_functional",
                                                   cls.prefer_functional)),
            path, "engine")


@dataclasses.dataclass(frozen=True)
class DevicePoint:
    """The core operating point: device profile, supply voltage, clock.

    ``profile`` names a registered device profile
    (:mod:`repro.power.profiles`); ``vdd`` must sit inside that profile's
    [vdd_min, vdd_nominal] range (the NCPU's 0.4–1.0 V for the default
    ``ncpu-65nm``); ``clock_mhz=None`` means "whatever the profile's
    frequency model yields at ``vdd``"
    (:func:`repro.power.frequency_model`).
    """

    vdd: float = 1.0
    clock_mhz: Optional[float] = None
    profile: str = "ncpu-65nm"

    def __post_init__(self):
        if isinstance(self.vdd, int) and not isinstance(self.vdd, bool):
            object.__setattr__(self, "vdd", float(self.vdd))
        if isinstance(self.clock_mhz, int) \
                and not isinstance(self.clock_mhz, bool):
            object.__setattr__(self, "clock_mhz", float(self.clock_mhz))
        self.validate("device")

    def validate(self, path: str = "device") -> None:
        _require(isinstance(self.profile, str) and bool(self.profile),
                 f"{path}.profile",
                 f"expected a non-empty profile name, got {self.profile!r}")
        # imported lazily, mirroring the engine registry check above
        from repro.power.profiles import get_profile

        try:
            device_profile = get_profile(self.profile)
        except ConfigurationError as exc:
            raise ConfigurationError(f"{path}.profile: {exc}") from None
        _require(isinstance(self.vdd, float), f"{path}.vdd",
                 f"expected a number, got {self.vdd!r}")
        _require(device_profile.vdd_min <= self.vdd
                 <= device_profile.vdd_nominal, f"{path}.vdd",
                 f"must be in [{device_profile.vdd_min}, "
                 f"{device_profile.vdd_nominal}] V, got {self.vdd}")
        if self.clock_mhz is not None:
            _require(isinstance(self.clock_mhz, float), f"{path}.clock_mhz",
                     f"expected a number or null, got {self.clock_mhz!r}")
            _require(self.clock_mhz > 0, f"{path}.clock_mhz",
                     f"must be positive, got {self.clock_mhz}")

    def to_dict(self) -> Dict[str, Any]:
        return {"vdd": self.vdd, "clock_mhz": self.clock_mhz,
                "profile": self.profile}

    @classmethod
    def from_dict(cls, data: Any, path: str = "device") -> "DevicePoint":
        data = _as_mapping(data, path)
        _reject_unknown(cls, data, path)
        return _construct(
            lambda: cls(vdd=data.get("vdd", cls.vdd),
                        clock_mhz=data.get("clock_mhz", cls.clock_mhz),
                        profile=data.get("profile", cls.profile)),
            path, "device")


@dataclasses.dataclass(frozen=True)
class ServeSpec:
    """How the serve layer offers this scenario's workload under load.

    ``arrival``/``rate_rps``/``requests``/``burst_factor`` parameterize
    the open-loop load generator (:mod:`repro.serve.loadgen`); the rest
    are the batching/admission policy knobs of
    :class:`repro.serve.NCPUServer`.  The block only matters to
    ``repro serve`` / ``repro loadgen`` — architectural results do not
    depend on it, so it is excluded from :meth:`Scenario.identity_dict`
    exactly like the engine spec.
    """

    arrival: str = "poisson"
    rate_rps: float = 500.0
    requests: int = 64
    burst_factor: float = 4.0
    batch_window_ms: float = 2.0
    max_batch: int = 16
    max_queue_depth: int = 256
    timeout_ms: float = 250.0
    latency_budget_ms: float = 50.0
    slo_target: float = 0.99

    def __post_init__(self):
        for name in ("rate_rps", "burst_factor", "batch_window_ms",
                     "timeout_ms", "latency_budget_ms", "slo_target"):
            value = getattr(self, name)
            if isinstance(value, int) and not isinstance(value, bool):
                object.__setattr__(self, name, float(value))
        self.validate("serve")

    def validate(self, path: str = "serve") -> None:
        _require(self.arrival in ARRIVAL_PROCESSES, f"{path}.arrival",
                 f"must be one of {', '.join(ARRIVAL_PROCESSES)}, "
                 f"got {self.arrival!r}")
        for name, low, high in (("rate_rps", 1e-3, 1e6),
                                ("burst_factor", 1.0, 1000.0),
                                ("timeout_ms", 1e-3, 600_000.0),
                                ("latency_budget_ms", 1e-3, 600_000.0)):
            value = getattr(self, name)
            _require(isinstance(value, float), f"{path}.{name}",
                     f"expected a number, got {value!r}")
            _require(low <= value <= high, f"{path}.{name}",
                     f"must be in [{low:g}, {high:g}], got {value}")
        _require(isinstance(self.batch_window_ms, float),
                 f"{path}.batch_window_ms",
                 f"expected a number, got {self.batch_window_ms!r}")
        _require(0.0 <= self.batch_window_ms <= 60_000.0,
                 f"{path}.batch_window_ms",
                 f"must be in [0, 60000] ms, got {self.batch_window_ms}")
        _check_int(self.requests, f"{path}.requests", 1, MAX_BATCH_SIZE)
        _check_int(self.max_batch, f"{path}.max_batch", 1, MAX_BATCH_SIZE)
        _check_int(self.max_queue_depth, f"{path}.max_queue_depth", 1,
                   MAX_BATCH_SIZE)
        _require(isinstance(self.slo_target, float), f"{path}.slo_target",
                 f"expected a number, got {self.slo_target!r}")
        _require(0.0 < self.slo_target <= 1.0, f"{path}.slo_target",
                 f"must be in (0, 1], got {self.slo_target}")

    def to_dict(self) -> Dict[str, Any]:
        return {"arrival": self.arrival, "rate_rps": self.rate_rps,
                "requests": self.requests,
                "burst_factor": self.burst_factor,
                "batch_window_ms": self.batch_window_ms,
                "max_batch": self.max_batch,
                "max_queue_depth": self.max_queue_depth,
                "timeout_ms": self.timeout_ms,
                "latency_budget_ms": self.latency_budget_ms,
                "slo_target": self.slo_target}

    @classmethod
    def from_dict(cls, data: Any, path: str = "serve") -> "ServeSpec":
        data = _as_mapping(data, path)
        _reject_unknown(cls, data, path)
        fields = {field.name: data.get(field.name, getattr(cls, field.name))
                  for field in dataclasses.fields(cls)}
        return _construct(lambda: cls(**fields), path, "serve")


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One fully-specified simulator run.

    The dataclass tree is frozen and hashable; :meth:`to_dict` /
    :meth:`from_dict` round-trip exactly (``from_dict(to_dict(s)) == s``)
    and :meth:`identity_dict` is the canonical, engine-free form that
    cached artifacts key on.
    """

    name: str = "default"
    workload: WorkloadSpec = dataclasses.field(default_factory=WorkloadSpec)
    engine: EngineSpec = dataclasses.field(default_factory=EngineSpec)
    seed: int = 0
    batch_size: int = 16
    batch_policy: str = "fixed"
    device: DevicePoint = dataclasses.field(default_factory=DevicePoint)
    repeats: int = 1
    serve: ServeSpec = dataclasses.field(default_factory=ServeSpec)

    def __post_init__(self):
        self.validate("scenario")

    def validate(self, path: str = "scenario") -> None:
        _require(isinstance(self.name, str) and bool(self.name),
                 f"{path}.name",
                 f"expected a non-empty string, got {self.name!r}")
        _require(isinstance(self.workload, WorkloadSpec), f"{path}.workload",
                 f"expected a WorkloadSpec, got {self.workload!r}")
        _require(isinstance(self.engine, EngineSpec), f"{path}.engine",
                 f"expected an EngineSpec, got {self.engine!r}")
        _require(isinstance(self.device, DevicePoint), f"{path}.device",
                 f"expected a DevicePoint, got {self.device!r}")
        _require(isinstance(self.serve, ServeSpec), f"{path}.serve",
                 f"expected a ServeSpec, got {self.serve!r}")
        _check_int(self.seed, f"{path}.seed", 0, 2**63 - 1)
        _check_int(self.batch_size, f"{path}.batch_size", 1, MAX_BATCH_SIZE)
        _require(self.batch_policy in BATCH_POLICIES, f"{path}.batch_policy",
                 f"must be one of {', '.join(BATCH_POLICIES)}, "
                 f"got {self.batch_policy!r}")
        _check_int(self.repeats, f"{path}.repeats", 1, MAX_REPEATS)
        self.workload.validate(f"{path}.workload")
        self.engine.validate(f"{path}.engine")
        self.device.validate(f"{path}.device")
        self.serve.validate(f"{path}.serve")

    # -- canonical forms --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The canonical, JSON-ready dict (stable key set and order)."""
        return {
            "name": self.name,
            "workload": self.workload.to_dict(),
            "engine": self.engine.to_dict(),
            "seed": self.seed,
            "batch_size": self.batch_size,
            "batch_policy": self.batch_policy,
            "device": self.device.to_dict(),
            "repeats": self.repeats,
            "serve": self.serve.to_dict(),
        }

    def identity_dict(self) -> Dict[str, Any]:
        """The canonical dict *minus the engine and serve specs*.

        This is what :attr:`repro.sim.config.SimConfig.hash` folds in:
        every registered engine produces bit-identical architectural
        results, so cached artifacts stay valid across engine swaps —
        and the serve block only shapes *when* work arrives, never what
        it computes, so serving-policy sweeps reuse the same artifacts.

        ``device.profile`` deliberately *stays* in the identity: unlike
        the engine, the device profile changes the physics (frequency,
        power, per-phase overheads), so artifacts computed for one
        device must never be served for another.
        """
        identity = self.to_dict()
        del identity["engine"]
        del identity["serve"]
        return identity

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @property
    def hash(self) -> str:
        """Deterministic identity digest (engine-free, like the dict)."""
        from repro.sim.config import config_hash

        return config_hash(self.identity_dict())

    @classmethod
    def from_dict(cls, data: Any, path: str = "scenario") -> "Scenario":
        data = _as_mapping(data, path)
        _reject_unknown(cls, data, path)
        workload = WorkloadSpec.from_dict(data["workload"],
                                          f"{path}.workload") \
            if "workload" in data else WorkloadSpec()
        engine = EngineSpec.from_dict(data["engine"], f"{path}.engine") \
            if "engine" in data else EngineSpec()
        device = DevicePoint.from_dict(data["device"], f"{path}.device") \
            if "device" in data else DevicePoint()
        serve = ServeSpec.from_dict(data["serve"], f"{path}.serve") \
            if "serve" in data else ServeSpec()
        return _construct(
            lambda: cls(name=data.get("name", cls.name),
                        workload=workload, engine=engine,
                        seed=data.get("seed", cls.seed),
                        batch_size=data.get("batch_size", cls.batch_size),
                        batch_policy=data.get("batch_policy",
                                              cls.batch_policy),
                        device=device,
                        repeats=data.get("repeats", cls.repeats),
                        serve=serve),
            path, "scenario")

    @classmethod
    def from_file(cls, path) -> "Scenario":
        """Load and validate a scenario JSON file.

        File-shaped problems (missing file, malformed JSON, non-object
        top level) raise :class:`~repro.errors.ConfigurationError`, so
        CLI callers uniformly exit 2 instead of tracebacking.
        """
        target = Path(path)
        try:
            text = target.read_text()
        except FileNotFoundError:
            raise ConfigurationError(
                f"scenario file not found: {target}") from None
        except OSError as exc:
            raise ConfigurationError(
                f"scenario file {target}: {exc}") from None
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"scenario file {target}: not valid JSON ({exc})") from None
        return cls.from_dict(data, path="scenario")

    # -- derived views ----------------------------------------------------
    def with_engine(self, name: Optional[str] = None,
                    prefer_functional: Optional[bool] = None) -> "Scenario":
        """A copy with engine fields replaced (CLI flags override files)."""
        engine = dataclasses.replace(
            self.engine,
            name=self.engine.name if name is None else name,
            prefer_functional=self.engine.prefer_functional
            if prefer_functional is None else prefer_functional)
        return dataclasses.replace(self, engine=engine)

    def with_profile(self, name: Optional[str] = None,
                     vdd: Optional[float] = None) -> "Scenario":
        """A copy on another device profile (CLI flags override files).

        When ``vdd`` is not given and the scenario's operating point
        falls outside the new profile's voltage range, it snaps to the
        profile's nominal voltage — a `--profile max78000` override
        should not be rejected just because the file pinned the NCPU's
        1.0 V.  An explicit ``vdd`` is validated as-is.
        """
        if name is None and vdd is None:
            return self
        profile_name = self.device.profile if name is None else name
        new_vdd = self.device.vdd if vdd is None else vdd
        if vdd is None:
            from repro.power.profiles import get_profile

            try:
                device_profile = get_profile(profile_name)
            except ConfigurationError:
                device_profile = None  # replace() below raises field-exact
            if device_profile is not None and not (
                    device_profile.vdd_min <= new_vdd
                    <= device_profile.vdd_nominal):
                new_vdd = device_profile.vdd_nominal
        device = _construct(
            lambda: dataclasses.replace(self.device, profile=profile_name,
                                        vdd=new_vdd),
            "scenario.device", "device")
        return dataclasses.replace(self, device=device)

    def with_overrides(self, **fields: Any) -> "Scenario":
        """A copy with top-level scalar fields replaced."""
        return dataclasses.replace(self, **fields)

    def with_serve(self, **fields: Any) -> "Scenario":
        """A copy with serve-spec fields replaced (CLI flags override
        files); ``None`` values mean "keep the scenario's own value"."""
        updates = {name: value for name, value in fields.items()
                   if value is not None}
        return dataclasses.replace(
            self, serve=dataclasses.replace(self.serve, **updates))


def load_scenario(path) -> Scenario:
    """Module-level alias of :meth:`Scenario.from_file`."""
    return Scenario.from_file(path)
