"""``repro.serve`` — the asyncio serving layer with SLO observability.

Turns the closed-loop simulator into a *served system*: an asyncio
front-end (:class:`NCPUServer`) coalesces incoming classification
requests into dynamic batches under a latency budget and dispatches
them to any registered execution engine, while an open-loop load
generator (:mod:`repro.serve.loadgen`) replays deterministic Poisson /
uniform / bursty arrival schedules against it.

Observability is first-class rather than bolted on:

* every request's lifecycle (enqueue → batch-assemble → dispatch →
  engine-infer → respond) is published as ``serve.*`` probe events, so
  an installed :class:`~repro.trace.Tracer` renders per-request
  Perfetto lanes next to the engine's shard tracks;
* :mod:`repro.serve.slo` estimates p50/p95/p99 latency with fixed-bucket
  log-scale streaming histograms (no per-request allocation) and folds
  queue-depth / inflight / shed / timeout telemetry into the standard
  ``repro.metrics`` OpenMetrics/JSON path;
* :mod:`repro.serve.report` emits the manifest-stamped ``repro-serve/1``
  SLO document (attainment vs target) that ``repro serve`` prints and
  the regression gate consumes.
"""

from repro.serve.loadgen import (
    arrival_offsets,
    drive,
    serve_scenario,
    summarize_offsets,
)
from repro.serve.report import (
    SLO_SCHEMA,
    build_slo_report,
    render_slo_report,
    validate_slo_report,
    write_slo_report,
)
from repro.serve.server import NCPUServer, Request, ServePolicy
from repro.serve.slo import (
    SERVE_METRIC_HELP,
    SLO_QUANTILES,
    LatencyHistogram,
    SLORecorder,
    add_serve_metrics,
)

__all__ = [
    "LatencyHistogram",
    "NCPUServer",
    "Request",
    "SERVE_METRIC_HELP",
    "SLO_QUANTILES",
    "SLO_SCHEMA",
    "SLORecorder",
    "ServePolicy",
    "add_serve_metrics",
    "arrival_offsets",
    "build_slo_report",
    "drive",
    "render_slo_report",
    "serve_scenario",
    "summarize_offsets",
    "validate_slo_report",
    "write_slo_report",
]
