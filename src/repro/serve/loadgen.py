"""Open-loop load generation: deterministic arrival processes + driver.

Open-loop means arrival times are fixed *before* the run — request ``k``
is submitted at its scheduled offset whether or not earlier requests
finished — which is the only way queueing delay shows up honestly (a
closed-loop driver self-throttles and hides it).  Three processes:

* ``poisson`` — i.i.d. exponential gaps at ``rate_rps`` (the memoryless
  default for independent users);
* ``uniform`` — constant ``1/rate_rps`` gaps (a pacing baseline);
* ``bursty`` — an ON/OFF modulated Poisson process: ON windows arrive at
  ``burst_factor * rate_rps``, OFF windows are silent, duty-cycled so
  the long-run mean rate stays ``rate_rps``.

Everything derives from ``random.Random(seed)``, so a (process, rate,
count, seed, burst_factor) tuple replays the identical schedule on any
host.  :func:`serve_scenario` is the one-stop entry the CLI, the bench
registry and the tests share: build the scenario's seeded inputs, start
a server, drive the schedule, and return the SLO report document.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.scenario.schema import ARRIVAL_PROCESSES, Scenario

#: ON/OFF window of the bursty process, in units of mean inter-arrivals
_BURST_WINDOW_ARRIVALS = 8.0


def arrival_offsets(process: str, rate_rps: float, count: int,
                    seed: int = 0, burst_factor: float = 4.0) -> List[float]:
    """Monotonic submission offsets (seconds from start) for ``count``
    requests."""
    if process not in ARRIVAL_PROCESSES:
        raise ConfigurationError(
            f"serve.arrival: unknown process {process!r}; known: "
            f"{', '.join(ARRIVAL_PROCESSES)}")
    if rate_rps <= 0:
        raise ConfigurationError(
            f"serve.rate_rps: must be positive, got {rate_rps}")
    if count < 1:
        raise ConfigurationError(
            f"serve.requests: must be >= 1, got {count}")
    rng = random.Random(seed)
    mean_gap = 1.0 / rate_rps
    offsets: List[float] = []
    t = 0.0
    if process == "uniform":
        for index in range(count):
            offsets.append(index * mean_gap)
        return offsets
    if process == "poisson":
        for _ in range(count):
            t += rng.expovariate(rate_rps)
            offsets.append(t)
        return offsets
    # bursty: alternate ON windows (rate * burst_factor) and OFF gaps of
    # (burst_factor - 1) ON-durations — each cycle is on_window *
    # burst_factor long and carries on_window * rate * burst_factor
    # expected arrivals, so the long-run mean rate stays rate_rps
    on_window = _BURST_WINDOW_ARRIVALS * mean_gap
    while len(offsets) < count:
        window_end = t + on_window
        while t < window_end and len(offsets) < count:
            t += rng.expovariate(rate_rps * burst_factor)
            if t < window_end:
                offsets.append(t)
        t = window_end + on_window * (burst_factor - 1.0)
    return offsets


def summarize_offsets(offsets: List[float]) -> Dict[str, float]:
    """Duration / achieved-rate / gap summary of a schedule."""
    gaps = [b - a for a, b in zip(offsets, offsets[1:])]
    duration = offsets[-1] - offsets[0] if len(offsets) > 1 else 0.0
    return {
        "requests": len(offsets),
        "duration_s": duration,
        "mean_rate_rps": (len(offsets) - 1) / duration if duration else 0.0,
        "min_gap_s": min(gaps) if gaps else 0.0,
        "max_gap_s": max(gaps) if gaps else 0.0,
    }


async def drive(server, rows, offsets: List[float]) -> List[Any]:
    """Submit ``rows[k]`` at ``offsets[k]``; returns completed requests.

    The schedule is anchored to the loop clock at entry, so a slow batch
    delays nothing: every submission fires at its pre-computed offset
    (open loop), and the call returns once all futures resolved.
    """
    if len(rows) < len(offsets):
        raise ConfigurationError(
            f"loadgen: {len(offsets)} offsets but only {len(rows)} input "
            "rows")
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def one(index: int, offset: float):
        delay = start + offset - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        return await server.submit(rows[index])

    return list(await asyncio.gather(
        *(one(index, offset) for index, offset in enumerate(offsets))))


def serve_scenario(scenario: Scenario, engine: Optional[str] = None,
                   session=None, with_server: bool = False):
    """Run one full serve session and return the SLO report document.

    The scenario's ``serve`` block supplies the arrival schedule and the
    batching policy; inputs are the scenario's seeded sign-domain rows
    (cycled if ``serve.requests`` exceeds the generated pool).  Must be
    called without a running event loop (it owns ``asyncio.run``).
    ``with_server=True`` returns ``(report, server)`` so callers can
    export the recorder's histograms (the CLI's ``--metrics-out``).
    """
    from repro.scenario.materialize import build_inputs
    from repro.serve.report import build_slo_report
    from repro.serve.server import NCPUServer

    spec = scenario.serve
    pool = build_inputs(scenario,
                        batch_size=min(spec.requests, scenario.batch_size))
    rows = [pool[index % len(pool)] for index in range(spec.requests)]
    offsets = arrival_offsets(spec.arrival, spec.rate_rps, spec.requests,
                              seed=scenario.seed,
                              burst_factor=spec.burst_factor)

    async def session_main():
        server = NCPUServer(scenario, engine=engine, session=session)
        async with server:
            await drive(server, rows, offsets)
        return server

    server = asyncio.run(session_main())
    report = build_slo_report(server, offsets)
    if with_server:
        return report, server
    return report
