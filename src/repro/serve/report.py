"""The SLO report: one JSON document per serve session, plus markdown.

``repro serve`` / ``repro loadgen`` end by emitting a
``repro-serve/1`` document — manifest-stamped like every other exported
artifact, so a report is attributable to a config hash, engine, seed and
git SHA.  :func:`validate_slo_report` is the schema check the CI smoke
step and the gate round-trip rely on (quantile monotonicity, request
count conservation, attainment in [0, 1]); :func:`render_slo_report`
prints the human-readable summary table.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping

from repro.obs import PHASES

#: schema tag of the serve SLO report document
SLO_SCHEMA = "repro-serve/1"


def build_slo_report(server, offsets: List[float]) -> Dict[str, Any]:
    """Assemble the report document from a finished server run."""
    from repro.metrics import RunManifest
    from repro.serve.loadgen import summarize_offsets

    recorder = server.recorder
    spec = server.scenario.serve
    budget_s = server.policy.latency_budget_s
    attainment = recorder.attainment(budget_s)
    sizes = recorder.batch_sizes
    doc: Dict[str, Any] = {
        "schema": SLO_SCHEMA,
        "manifest": RunManifest.collect(server.session).as_dict(),
        "scenario": server.scenario.to_dict(),
        "engine": server.engine.name,
        "profile": server.scenario.device.profile,
        "policy": server.policy.as_dict(),
        "arrival": dict({"process": spec.arrival,
                         "rate_rps": spec.rate_rps,
                         "burst_factor": spec.burst_factor,
                         "seed": server.scenario.seed},
                        **summarize_offsets(offsets)),
        "requests": {
            "submitted": recorder.requests,
            "completed": recorder.completed,
            "shed": recorder.shed,
            "timeout": recorder.timeouts,
        },
        "latency_ms": recorder.latency.summary_ms()
        if recorder.latency.count else None,
        "phases_ms": {
            phase: {"p50": recorder.phase_latency[phase].quantile(0.5) * 1e3,
                    "p99": recorder.phase_latency[phase].quantile(0.99) * 1e3,
                    "mean": recorder.phase_latency[phase].mean_s * 1e3}
            for phase in PHASES
        } if recorder.latency.count else None,
        "batches": {
            "count": len(sizes),
            "size_mean": sum(sizes) / len(sizes) if sizes else 0.0,
            "size_max": max(sizes) if sizes else 0,
            "sim_cycles": server.sim_cycles,
            "sim_macs": server.sim_macs,
        },
        "queue": {
            "depth_peak": recorder.queue_depth_peak,
            "depth_mean": recorder.queue_depth_mean,
            "inflight_peak": recorder.inflight_peak,
        },
        "wall_s": server.wall_s,
        "throughput_rps": recorder.completed / server.wall_s
        if server.wall_s > 0 else 0.0,
        "slo": {
            "budget_ms": budget_s * 1e3,
            "target": server.policy.slo_target,
            "attainment": attainment,
            "met": attainment >= server.policy.slo_target,
        },
        "quantile_error_bound": recorder.latency.relative_error_bound,
    }
    return doc


def validate_slo_report(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """Schema check for SLO reports; raises ``ValueError`` on problems."""
    if not isinstance(doc, Mapping):
        raise ValueError("SLO report must be a JSON object")
    if doc.get("schema") != SLO_SCHEMA:
        raise ValueError(f"unknown SLO report schema {doc.get('schema')!r}")
    for key in ("manifest", "scenario", "engine", "policy", "arrival",
                "requests", "batches", "queue", "slo", "wall_s",
                "throughput_rps"):
        if key not in doc:
            raise ValueError(f"SLO report missing {key!r}")
    requests = doc["requests"]
    for key in ("submitted", "completed", "shed", "timeout"):
        if not isinstance(requests.get(key), int) or requests[key] < 0:
            raise ValueError(f"SLO report requests.{key} must be a "
                             "non-negative integer")
    accounted = requests["completed"] + requests["shed"] + requests["timeout"]
    if accounted != requests["submitted"]:
        raise ValueError(
            f"SLO report loses requests: completed+shed+timeout="
            f"{accounted} but submitted={requests['submitted']}")
    latency = doc.get("latency_ms")
    if requests["completed"] and latency is None:
        raise ValueError("SLO report has completed requests but no "
                         "latency_ms block")
    if latency is not None:
        for key in ("p50", "p95", "p99", "mean", "min", "max"):
            if not isinstance(latency.get(key), (int, float)):
                raise ValueError(f"SLO report latency_ms.{key} missing")
        if not latency["p50"] <= latency["p95"] <= latency["p99"]:
            raise ValueError(
                f"SLO report latency quantiles not monotone: "
                f"p50={latency['p50']} p95={latency['p95']} "
                f"p99={latency['p99']}")
        if not latency["min"] <= latency["p50"] <= latency["max"]:
            raise ValueError("SLO report p50 outside [min, max]")
        phases = doc.get("phases_ms")
        if not isinstance(phases, Mapping) or set(phases) != set(PHASES):
            raise ValueError(
                "SLO report phases_ms must cover exactly the six obs "
                f"phases {list(PHASES)}")
    slo = doc["slo"]
    for key in ("budget_ms", "target", "attainment", "met"):
        if key not in slo:
            raise ValueError(f"SLO report slo.{key} missing")
    if not 0.0 <= slo["attainment"] <= 1.0:
        raise ValueError(
            f"SLO report attainment must be in [0, 1], got "
            f"{slo['attainment']}")
    if slo["met"] != (slo["attainment"] >= slo["target"]):
        raise ValueError("SLO report 'met' flag contradicts attainment "
                         "vs target")
    return {"requests": requests["submitted"],
            "batches": doc["batches"]["count"],
            "met": slo["met"]}


def render_slo_report(doc: Mapping[str, Any]) -> str:
    """Markdown summary of one SLO report (CLI default output)."""
    requests = doc["requests"]
    slo = doc["slo"]
    arrival = doc["arrival"]
    lines = [
        f"# SLO report — {doc['scenario']['name']} on `{doc['engine']}`",
        "",
        f"device profile: `{doc.get('profile', 'ncpu-65nm')}`",
        f"arrival: {arrival['process']} @ {arrival['rate_rps']:g} rps "
        f"({requests['submitted']} requests over "
        f"{arrival['duration_s'] * 1e3:.1f} ms)",
        f"policy: window {doc['policy']['batch_window_ms']:g} ms, "
        f"max batch {doc['policy']['max_batch']}, "
        f"queue depth {doc['policy']['max_queue_depth']}, "
        f"timeout {doc['policy']['timeout_ms']:g} ms",
        "",
        "| outcome | count |",
        "|---|---|",
        f"| completed | {requests['completed']} |",
        f"| shed | {requests['shed']} |",
        f"| timeout | {requests['timeout']} |",
        "",
    ]
    latency = doc.get("latency_ms")
    if latency:
        lines += [
            "| latency | ms |",
            "|---|---|",
            *(f"| {key} | {latency[key]:.3f} |"
              for key in ("p50", "p95", "p99", "mean", "min", "max")),
            "",
            "| phase | p50 ms | p99 ms |",
            "|---|---|---|",
            *(f"| {phase} | {doc['phases_ms'][phase]['p50']:.3f} "
              f"| {doc['phases_ms'][phase]['p99']:.3f} |"
              for phase in PHASES),
            "",
        ]
    verdict = "MET" if slo["met"] else "MISSED"
    lines += [
        f"batches: {doc['batches']['count']} "
        f"(mean size {doc['batches']['size_mean']:.1f}, "
        f"max {doc['batches']['size_max']}); "
        f"queue peak {doc['queue']['depth_peak']}, "
        f"inflight peak {doc['queue']['inflight_peak']}",
        f"throughput: {doc['throughput_rps']:.0f} rps over "
        f"{doc['wall_s'] * 1e3:.1f} ms "
        f"({doc['batches']['sim_cycles']} simulated cycles)",
        f"SLO {verdict}: {slo['attainment']:.1%} of requests under "
        f"{slo['budget_ms']:g} ms (target {slo['target']:.0%}, quantile "
        f"error bound {doc['quantile_error_bound']:.1%})",
        "",
    ]
    return "\n".join(lines)


def write_slo_report(doc: Mapping[str, Any], path) -> Path:
    """Write the JSON document to ``path``; returns the path."""
    target = Path(path)
    with open(target, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target
