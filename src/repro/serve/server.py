"""The asyncio serving front-end: dynamic batching over a scenario model.

:class:`NCPUServer` accepts classification requests (one sign-domain
input row each), coalesces them into dynamic batches — the first arrival
opens a ``batch_window_s`` window, the batch closes when the window
expires or ``max_batch`` rows arrived — and dispatches each batch to the
configured execution engine through the accelerator's engine-dispatched
batch path, off the event loop so arrivals keep flowing during compute.

Observability is the point: every request carries the full lifecycle
timestamp chain (submit → enqueue → batch-assemble → dispatch →
engine-infer → respond), published as ``serve.request`` /
``serve.batch`` / ``serve.shed`` / ``serve.timeout`` probe events on the
session :class:`~repro.sim.StatsRegistry` — so an installed tracer shows
per-request Perfetto lanes with zero extra code here — and folded into
the :class:`~repro.serve.slo.SLORecorder` as six-phase wall buckets that
sum to the request latency (the ``repro.obs`` vocabulary, applied to a
request instead of a run).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs import (
    INFERENCE,
    INIT,
    MEMORY_IO,
    OVERHEAD,
    PHASES,
    POSTPROCESS,
    PREPROCESS,
)
from repro.scenario.schema import Scenario, ServeSpec
from repro.serve.slo import SLORecorder

#: request outcomes
OK = "ok"
SHED = "shed"
TIMEOUT = "timeout"

#: queue sentinel that tells the batcher to drain and exit
_CLOSE = object()


@dataclass(frozen=True)
class ServePolicy:
    """Batching/admission knobs in seconds (derived from a ServeSpec)."""

    batch_window_s: float = 0.002
    max_batch: int = 16
    max_queue_depth: int = 256
    timeout_s: float = 0.25
    latency_budget_s: float = 0.05
    slo_target: float = 0.99

    @classmethod
    def from_spec(cls, spec: ServeSpec) -> "ServePolicy":
        return cls(batch_window_s=spec.batch_window_ms / 1e3,
                   max_batch=spec.max_batch,
                   max_queue_depth=spec.max_queue_depth,
                   timeout_s=spec.timeout_ms / 1e3,
                   latency_budget_s=spec.latency_budget_ms / 1e3,
                   slo_target=spec.slo_target)

    def as_dict(self) -> Dict[str, Any]:
        return {"batch_window_ms": self.batch_window_s * 1e3,
                "max_batch": self.max_batch,
                "max_queue_depth": self.max_queue_depth,
                "timeout_ms": self.timeout_s * 1e3,
                "latency_budget_ms": self.latency_budget_s * 1e3,
                "slo_target": self.slo_target}


@dataclass
class Request:
    """One served classification request and its lifecycle timestamps.

    All ``t_*`` fields are seconds relative to the server start;
    unreached stages stay at 0.0 (a shed request never assembles).
    """

    index: int
    status: str = OK
    prediction: Optional[int] = None
    batch_index: Optional[int] = None
    batch_size: int = 0
    t_submit: float = 0.0
    t_enqueue: float = 0.0
    t_assembled: float = 0.0
    t_dispatch: float = 0.0
    t_infer_done: float = 0.0
    t_respond: float = 0.0
    phases_s: Dict[str, float] = field(default_factory=dict)

    @property
    def latency_s(self) -> float:
        return self.t_respond - self.t_submit

    def finalize_phases(self) -> Dict[str, float]:
        """Split the request's latency into the six obs phases.

        The lifecycle segments partition ``[t_submit, t_respond]``:
        the stamp chain is walked in order and attribution stops at the
        first unreached stage (its stamp still 0.0), so a truncated
        lifecycle — shed at admission, timed out at assembly — puts its
        unattributable tail in ``overhead`` and the buckets always sum
        to the latency (clamped >= 0 against clock jitter).
        """
        chain = (
            (INIT, self.t_enqueue),
            (PREPROCESS, self.t_assembled),
            (MEMORY_IO, self.t_dispatch),
            (INFERENCE, self.t_infer_done),
            (POSTPROCESS, self.t_respond),
        )
        buckets = {phase: 0.0 for phase in PHASES}
        previous = self.t_submit
        for phase, stamp in chain:
            if stamp < previous:  # lifecycle truncated at this stage
                break
            buckets[phase] = stamp - previous
            previous = stamp
        attributed = previous - self.t_submit
        buckets[OVERHEAD] = max(0.0, self.latency_s - attributed)
        self.phases_s = buckets
        return buckets


class _Pending:
    """Queue entry: the request record, its input row, and its future."""

    __slots__ = ("request", "row", "future")

    def __init__(self, request: Request, row, future: asyncio.Future):
        self.request = request
        self.row = row
        self.future = future


class NCPUServer:
    """Dynamic-batching inference server over one bnn scenario.

    Use as an async context manager (or :meth:`start` / :meth:`stop`);
    :meth:`submit` returns the completed :class:`Request`.  One server
    instance belongs to one event loop.
    """

    def __init__(self, scenario: Scenario, engine: Optional[str] = None,
                 policy: Optional[ServePolicy] = None, session=None):
        from repro.bnn import BNNAccelerator
        from repro.engine import resolve_engine
        from repro.scenario.materialize import build_model
        from repro.sim import get_session

        if scenario.workload.kind != "bnn":
            raise ConfigurationError(
                f"scenario {scenario.name!r} is "
                f"kind={scenario.workload.kind!r}; the serve layer batches "
                "bnn classification scenarios only")
        self.scenario = scenario
        self.policy = policy if policy is not None \
            else ServePolicy.from_spec(scenario.serve)
        self.engine = resolve_engine(engine or scenario.engine.name)
        self.session = session if session is not None else get_session()
        self.model = build_model(scenario)
        self.accelerator = BNNAccelerator()
        self.stream_weights = scenario.batch_policy == "stream"
        self.recorder = SLORecorder()
        self.requests: List[Request] = []
        self.sim_cycles = 0
        self.sim_macs = 0
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[asyncio.Task] = None
        self._t0 = 0.0
        self._t_stop: Optional[float] = None
        self._n_submitted = 0
        self._n_resolved = 0
        self._n_batches = 0

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "NCPUServer":
        if self._batcher is not None:
            raise RuntimeError("server already started")
        self._queue = asyncio.Queue()
        self._t0 = time.perf_counter()
        self._t_stop = None
        self._batcher = asyncio.ensure_future(self._batch_loop())
        return self

    async def stop(self) -> None:
        """Drain queued work, dispatch the final batch, stop the batcher."""
        if self._batcher is None:
            return
        await self._queue.put(_CLOSE)
        await self._batcher
        self._batcher = None
        self._t_stop = time.perf_counter()

    async def __aenter__(self) -> "NCPUServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    @property
    def wall_s(self) -> float:
        """Serving wall time: start .. stop (or now while running)."""
        end = self._t_stop if self._t_stop is not None else time.perf_counter()
        return end - self._t0

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    @property
    def inflight(self) -> int:
        return self._n_submitted - self._n_resolved

    # -- request path ----------------------------------------------------
    async def submit(self, row) -> Request:
        """Serve one input row; returns the completed request record.

        Admission control is synchronous: over ``max_queue_depth`` the
        request is shed immediately (no queue slot, no batch work).
        """
        if self._batcher is None:
            raise RuntimeError("server is not running (use 'async with')")
        request = Request(index=self._n_submitted, t_submit=self._now())
        self._n_submitted += 1
        self.requests.append(request)
        depth = self._queue.qsize()
        self.recorder.record_submit(depth, self.inflight)
        if depth >= self.policy.max_queue_depth:
            request.status = SHED
            request.t_respond = self._now()
            request.finalize_phases()
            self._n_resolved += 1
            self.recorder.record_shed()
            self.session.stats.incr("serve.requests.shed")
            self.session.stats.emit("serve.shed", {
                "request": request.index, "t_s": request.t_respond,
                "queue_depth": depth})
            return request
        future = asyncio.get_running_loop().create_future()
        request.t_enqueue = self._now()
        self._queue.put_nowait(_Pending(request, row, future))
        self.session.stats.incr("serve.requests.submitted")
        await future
        return request

    # -- batcher ---------------------------------------------------------
    async def _batch_loop(self) -> None:
        closing = False
        while not closing:
            first = await self._queue.get()
            if first is _CLOSE:
                break
            batch = [first]
            deadline = asyncio.get_running_loop().time() \
                + self.policy.batch_window_s
            while len(batch) < self.policy.max_batch:
                remaining = deadline - asyncio.get_running_loop().time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(),
                                                  timeout=remaining)
                except asyncio.TimeoutError:
                    break
                if item is _CLOSE:
                    closing = True
                    break
                batch.append(item)
            await self._dispatch(batch)
        # drain anything still queued after the close sentinel
        tail: List[_Pending] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _CLOSE:
                tail.append(item)
        for start in range(0, len(tail), self.policy.max_batch):
            await self._dispatch(tail[start:start + self.policy.max_batch])

    async def _dispatch(self, batch: List[_Pending]) -> None:
        import numpy as np

        t_assembled = self._now()
        live: List[_Pending] = []
        for pending in batch:
            pending.request.t_assembled = t_assembled
            age = t_assembled - pending.request.t_submit
            if age > self.policy.timeout_s:
                self._resolve_timeout(pending, age)
            else:
                live.append(pending)
        if not live:
            return
        batch_index = self._n_batches
        self._n_batches += 1
        matrix = np.stack([pending.row for pending in live])
        t_dispatch = self._now()
        loop = asyncio.get_running_loop()
        predictions, timing = await loop.run_in_executor(
            None, lambda: self.accelerator.infer_batch(
                self.model, matrix, stream_weights=self.stream_weights,
                engine=self.engine))
        t_infer_done = self._now()
        self.sim_cycles += int(timing.total_cycles)
        self.sim_macs += int(timing.macs)
        self.recorder.record_batch(len(live))
        self.session.stats.incr("serve.batches")
        self.session.stats.incr("serve.batch_rows", len(live))
        for position, pending in enumerate(live):
            request = pending.request
            request.t_dispatch = t_dispatch
            request.t_infer_done = t_infer_done
            request.prediction = int(predictions[position])
            request.batch_index = batch_index
            request.batch_size = len(live)
            request.t_respond = self._now()
            request.finalize_phases()
            self._n_resolved += 1
            self.recorder.record_completion(request.latency_s,
                                            request.phases_s)
            self.session.stats.incr("serve.requests.completed")
            self.session.stats.emit("serve.request", {
                "request": request.index, "status": request.status,
                "batch": batch_index, "batch_size": len(live),
                "submit_s": request.t_submit,
                "enqueue_s": request.t_enqueue,
                "assembled_s": request.t_assembled,
                "dispatch_s": request.t_dispatch,
                "infer_done_s": request.t_infer_done,
                "respond_s": request.t_respond})
            if not pending.future.done():
                pending.future.set_result(request)
        self.session.stats.emit("serve.batch", {
            "batch": batch_index, "size": len(live),
            "assembled_s": t_assembled, "dispatch_s": t_dispatch,
            "infer_done_s": t_infer_done,
            "queue_depth": self._queue.qsize(),
            "cycles": int(timing.total_cycles)})

    def _resolve_timeout(self, pending: _Pending, age_s: float) -> None:
        request = pending.request
        request.status = TIMEOUT
        request.t_respond = self._now()
        request.finalize_phases()
        self._n_resolved += 1
        self.recorder.record_timeout()
        self.session.stats.incr("serve.requests.timeout")
        self.session.stats.emit("serve.timeout", {
            "request": request.index, "t_s": request.t_respond,
            "age_s": age_s})
        if not pending.future.done():
            pending.future.set_result(request)
