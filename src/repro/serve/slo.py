"""Streaming SLO telemetry: log-scale latency histograms and quantiles.

The serve layer must answer "what fraction of requests met the latency
budget" while handling thousands of requests, so it cannot keep a list
of every latency sample.  :class:`LatencyHistogram` is the classic
fixed-bucket log-scale alternative: ``buckets_per_decade`` geometric
buckets spanning ``[lo_s, hi_s)`` plus two out-of-range buckets, all
pre-allocated — :meth:`observe` is one ``log10`` + one list increment,
no allocation on the hot path.  Quantiles come back with a bounded
relative error of ``10**(1/(2 * buckets_per_decade)) - 1`` (about 2.3 %
at the default 50 buckets/decade), and two histograms with the same
configuration :meth:`merge` associatively, so per-shard recorders can be
combined after the fact.

:class:`SLORecorder` bundles the histograms a server needs — total
latency, one per obs phase, batch sizes — with the admission counters
and queue-depth/inflight gauges, and :func:`add_serve_metrics` folds a
recorder into a :class:`~repro.metrics.MetricsCollection` using the
canonical metric families in :data:`SERVE_METRIC_HELP` (the table
``docs/SERVING.md`` mirrors, linted by ``tools/check_docs.py``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

from repro.obs import PHASES

#: default histogram range: 1 us .. 1000 s covers sub-window hits through
#: pathological queue waits
DEFAULT_LO_S = 1e-6
DEFAULT_HI_S = 1e3

#: default resolution — ~2.3 % worst-case relative quantile error
DEFAULT_BUCKETS_PER_DECADE = 50

#: the latency quantiles every SLO report and metric export carries
SLO_QUANTILES = (0.5, 0.95, 0.99)

#: canonical serve metric families -> one-line help (the contract between
#: :func:`add_serve_metrics`, docs/SERVING.md and tools/check_docs.py)
SERVE_METRIC_HELP: Dict[str, str] = {
    "repro_serve_requests": "requests submitted to the server",
    "repro_serve_completed": "requests that received a prediction",
    "repro_serve_shed": "requests rejected by queue-depth admission "
                        "control",
    "repro_serve_timeouts": "requests dropped after exceeding the "
                            "request timeout",
    "repro_serve_batches": "dynamic batches dispatched to the engine",
    "repro_serve_latency_seconds": "end-to-end request latency quantile "
                                   "(streaming histogram estimate)",
    "repro_serve_phase_seconds": "per-phase request wall-time quantile "
                                 "(six-phase obs vocabulary)",
    "repro_serve_batch_size": "rows per dispatched dynamic batch",
    "repro_serve_queue_depth_peak": "peak arrival-queue depth observed",
    "repro_serve_queue_depth_mean": "mean arrival-queue depth sampled at "
                                    "each enqueue",
    "repro_serve_inflight_peak": "peak concurrently-inflight requests",
    "repro_serve_throughput_rps": "completed requests per wall second",
    "repro_serve_attainment": "fraction of completed requests under the "
                              "latency budget",
    "repro_serve_trace_dropped_records": "trace ring-buffer records "
                                         "evicted while serving",
}


class LatencyHistogram:
    """Fixed-bucket log-scale histogram with mergeable streaming quantiles.

    Buckets are geometric: bucket ``i`` (0-based, after the underflow
    bucket) covers ``[lo_s * r**i, lo_s * r**(i+1))`` with
    ``r = 10**(1/buckets_per_decade)``.  A quantile is estimated as the
    geometric midpoint of the bucket holding the target rank, clamped to
    the exact observed ``[min, max]`` — so a single-sample histogram
    reports that sample exactly.
    """

    __slots__ = ("lo_s", "hi_s", "buckets_per_decade", "counts", "count",
                 "sum_s", "min_s", "max_s", "_log_lo", "_n_buckets")

    def __init__(self, lo_s: float = DEFAULT_LO_S, hi_s: float = DEFAULT_HI_S,
                 buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE):
        if lo_s <= 0 or hi_s <= lo_s:
            raise ValueError("need 0 < lo_s < hi_s")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.lo_s = float(lo_s)
        self.hi_s = float(hi_s)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(hi_s / lo_s)
        self._n_buckets = max(1, math.ceil(decades * buckets_per_decade))
        self._log_lo = math.log10(self.lo_s)
        # [underflow] + n geometric buckets + [overflow], fixed at init
        self.counts: List[int] = [0] * (self._n_buckets + 2)
        self.count = 0
        self.sum_s = 0.0
        self.min_s = math.inf
        self.max_s = -math.inf

    @property
    def relative_error_bound(self) -> float:
        """Worst-case relative quantile error for in-range samples."""
        return 10.0 ** (1.0 / (2.0 * self.buckets_per_decade)) - 1.0

    def _index(self, value: float) -> int:
        if value < self.lo_s:
            return 0
        if value >= self.hi_s:
            return self._n_buckets + 1
        offset = (math.log10(value) - self._log_lo) * self.buckets_per_decade
        # float rounding at an exact bucket edge may land one off; clamp
        return min(int(offset), self._n_buckets - 1) + 1

    def observe(self, seconds: float) -> None:
        """Record one latency sample (allocation-free)."""
        value = float(seconds)
        if value < 0 or math.isnan(value):
            raise ValueError(f"latency sample must be >= 0, got {seconds!r}")
        self.counts[self._index(value)] += 1
        self.count += 1
        self.sum_s += value
        if value < self.min_s:
            self.min_s = value
        if value > self.max_s:
            self.max_s = value

    @property
    def mean_s(self) -> float:
        if not self.count:
            raise ValueError("mean of an empty histogram")
        return self.sum_s / self.count

    def _bucket_estimate(self, index: int) -> float:
        if index == 0:  # underflow: best estimate is the range floor
            return self.lo_s
        if index == self._n_buckets + 1:  # overflow: the range ceiling
            return self.hi_s
        ratio = 10.0 ** (1.0 / self.buckets_per_decade)
        low = self.lo_s * ratio ** (index - 1)
        return low * math.sqrt(ratio)  # geometric midpoint

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate, clamped to [min, max]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            raise ValueError("quantile of an empty histogram")
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                estimate = self._bucket_estimate(index)
                return min(max(estimate, self.min_s), self.max_s)
        return self.max_s  # pragma: no cover - ranks always land above

    def count_at_or_below(self, seconds: float) -> int:
        """How many samples were <= ``seconds`` (bucket-resolution).

        Whole buckets at or below the bucket holding ``seconds`` are
        counted, which is exact when ``seconds`` sits on a bucket edge
        (pick budgets accordingly) and bucket-accurate otherwise.
        """
        target = self._index(float(seconds))
        return sum(self.counts[:target + 1])

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another histogram in (identical configuration required)."""
        if (self.lo_s, self.hi_s, self.buckets_per_decade) != \
                (other.lo_s, other.hi_s, other.buckets_per_decade):
            raise ValueError(
                "cannot merge histograms with different bucket layouts "
                f"({self.lo_s}/{self.hi_s}/{self.buckets_per_decade} vs "
                f"{other.lo_s}/{other.hi_s}/{other.buckets_per_decade})")
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.sum_s += other.sum_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)
        return self

    def summary_ms(self) -> Dict[str, float]:
        """p50/p95/p99 + mean/min/max in milliseconds (report block)."""
        if not self.count:
            raise ValueError("summary of an empty histogram")
        block = {f"p{int(q * 100)}": self.quantile(q) * 1e3
                 for q in SLO_QUANTILES}
        block["mean"] = self.mean_s * 1e3
        block["min"] = self.min_s * 1e3
        block["max"] = self.max_s * 1e3
        return block


class SLORecorder:
    """All the streaming telemetry one server run accumulates.

    One latency histogram for end-to-end request latency, one per obs
    phase, a per-batch size list (batches are few, so storing their
    sizes is cheap and keeps the OpenMetrics histogram exact), counters
    for admission-control outcomes and queue/inflight peaks.
    """

    def __init__(self, lo_s: float = DEFAULT_LO_S, hi_s: float = DEFAULT_HI_S,
                 buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE):
        make = lambda: LatencyHistogram(lo_s, hi_s, buckets_per_decade)  # noqa: E731
        self.latency = make()
        self.phase_latency: Dict[str, LatencyHistogram] = {
            phase: make() for phase in PHASES}
        self.batch_sizes: List[int] = []
        self.requests = 0
        self.completed = 0
        self.shed = 0
        self.timeouts = 0
        self.queue_depth_peak = 0
        self.queue_depth_sum = 0
        self.queue_depth_samples = 0
        self.inflight_peak = 0

    def record_submit(self, queue_depth: int, inflight: int) -> None:
        self.requests += 1
        self.queue_depth_sum += int(queue_depth)
        self.queue_depth_samples += 1
        if queue_depth > self.queue_depth_peak:
            self.queue_depth_peak = int(queue_depth)
        if inflight > self.inflight_peak:
            self.inflight_peak = int(inflight)

    def record_completion(self, latency_s: float,
                          phases_s: Mapping[str, float]) -> None:
        self.completed += 1
        self.latency.observe(latency_s)
        for phase in PHASES:
            self.phase_latency[phase].observe(float(phases_s.get(phase, 0.0)))

    def record_shed(self) -> None:
        self.shed += 1

    def record_timeout(self) -> None:
        self.timeouts += 1

    def record_batch(self, size: int) -> None:
        self.batch_sizes.append(int(size))

    @property
    def queue_depth_mean(self) -> float:
        if not self.queue_depth_samples:
            return 0.0
        return self.queue_depth_sum / self.queue_depth_samples

    def attainment(self, budget_s: float) -> float:
        """Fraction of completed requests at or under ``budget_s``."""
        if not self.latency.count:
            return 0.0
        return self.latency.count_at_or_below(budget_s) / self.latency.count


def add_serve_metrics(collection, recorder: SLORecorder, *,
                      budget_s: float, wall_s: float,
                      labels: Optional[Mapping[str, str]] = None,
                      trace_dropped: int = 0) -> None:
    """Fold an :class:`SLORecorder` into a metrics collection.

    Emits exactly the families of :data:`SERVE_METRIC_HELP`; histogram
    quantiles become per-quantile-labelled gauges so the OpenMetrics
    exposition needs no native summary support for streaming estimates.
    """
    base = dict(labels or {})

    def put_counter(name: str, value: float, **extra: str) -> None:
        collection.counter(name, value, labels=dict(base, **extra),
                           help=SERVE_METRIC_HELP[name])

    def put_gauge(name: str, value: float, unit: str = "",
                  **extra: str) -> None:
        collection.gauge(name, value, labels=dict(base, **extra),
                         unit=unit, help=SERVE_METRIC_HELP[name])

    put_counter("repro_serve_requests", recorder.requests)
    put_counter("repro_serve_completed", recorder.completed)
    put_counter("repro_serve_shed", recorder.shed)
    put_counter("repro_serve_timeouts", recorder.timeouts)
    put_counter("repro_serve_batches", len(recorder.batch_sizes))
    put_counter("repro_serve_trace_dropped_records", max(0, trace_dropped))
    if recorder.latency.count:
        for q in SLO_QUANTILES:
            put_gauge("repro_serve_latency_seconds",
                      recorder.latency.quantile(q), unit="seconds",
                      quantile=f"{q:g}")
        for phase in PHASES:
            histogram = recorder.phase_latency[phase]
            for q in (0.5, 0.99):
                put_gauge("repro_serve_phase_seconds",
                          histogram.quantile(q), unit="seconds",
                          phase=phase, quantile=f"{q:g}")
    if recorder.batch_sizes:
        collection.histogram("repro_serve_batch_size",
                             [float(size) for size in recorder.batch_sizes],
                             labels=base,
                             help=SERVE_METRIC_HELP["repro_serve_batch_size"])
    put_gauge("repro_serve_queue_depth_peak", recorder.queue_depth_peak)
    put_gauge("repro_serve_queue_depth_mean", recorder.queue_depth_mean)
    put_gauge("repro_serve_inflight_peak", recorder.inflight_peak)
    throughput = recorder.completed / wall_s if wall_s > 0 else 0.0
    put_gauge("repro_serve_throughput_rps", throughput)
    put_gauge("repro_serve_attainment", recorder.attainment(budget_s))
