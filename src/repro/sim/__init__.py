"""Unified simulation session layer.

Every simulator stack in the reproduction — the cycle-accurate pipeline
(:mod:`repro.cpu.pipeline`), the BNN accelerator (:mod:`repro.bnn.accelerator`)
and the SoC discrete-event timeline (:mod:`repro.core.events`) — reports into
one shared :class:`StatsRegistry`, and every expensive artifact (trained BNN
models, completed experiment results) is memoized through one on-disk
:class:`ArtifactCache`.  A :class:`SimSession` bundles the two together with a
deterministic :class:`SimConfig`; :func:`get_session` returns the process-wide
current session.
"""

from repro.sim.cache import ArtifactCache
from repro.sim.config import (
    CACHE_ENV_VAR,
    DEFAULT_CACHE_DIR,
    DEFAULT_DEVICE_PROFILE,
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    NO_CACHE_ENV_VAR,
    PROFILE_ENV_VAR,
    SimConfig,
    config_hash,
    source_fingerprint,
)
from repro.sim.instrument import (
    ALL_EVENTS,
    PROBE_ERROR_COUNTER,
    STRICT_PROBES_ENV_VAR,
    StatsRegistry,
    StatsScope,
)
from repro.sim.session import (
    SimSession,
    current_engine,
    current_profile,
    get_session,
    reset_session,
    set_session,
    use_session,
)

__all__ = [
    "ALL_EVENTS",
    "ArtifactCache",
    "CACHE_ENV_VAR",
    "DEFAULT_DEVICE_PROFILE",
    "DEFAULT_ENGINE",
    "ENGINE_ENV_VAR",
    "PROFILE_ENV_VAR",
    "PROBE_ERROR_COUNTER",
    "STRICT_PROBES_ENV_VAR",
    "DEFAULT_CACHE_DIR",
    "NO_CACHE_ENV_VAR",
    "SimConfig",
    "SimSession",
    "StatsRegistry",
    "StatsScope",
    "config_hash",
    "current_engine",
    "current_profile",
    "get_session",
    "reset_session",
    "set_session",
    "source_fingerprint",
    "use_session",
]
