"""On-disk artifact cache with an in-memory first level.

Memoizes expensive simulation artifacts — trained BNN models, completed
experiment results — keyed by namespace + content hash.  Artifacts are
pickled under ``<root>/<namespace>/<key>.pkl``; the root defaults to
``~/.cache/repro`` and is overridable with ``REPRO_CACHE_DIR``.

Writes are atomic (temp file + ``os.replace``) so parallel experiment
workers can share one cache directory, and every filesystem error degrades
to a cache miss — the cache can never make a run fail, only slower.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.config import CACHE_ENV_VAR, DEFAULT_CACHE_DIR

_MISS = object()


class ArtifactCache:
    """Two-level (memory + disk) artifact store."""

    def __init__(self, root: Optional[os.PathLike] = None,
                 enabled: bool = True):
        if root is None:
            root = os.environ.get(CACHE_ENV_VAR, DEFAULT_CACHE_DIR)
        self.root = Path(root).expanduser()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._memory: Dict[Tuple[str, str], Any] = {}

    # -- paths ----------------------------------------------------------
    def path_for(self, namespace: str, key: str) -> Path:
        return self.root / namespace / f"{key}.pkl"

    # -- lookup ---------------------------------------------------------
    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        value = self._lookup(namespace, key)
        if value is _MISS:
            self.misses += 1
            return default
        self.hits += 1
        return value

    def has(self, namespace: str, key: str) -> bool:
        return self._lookup(namespace, key) is not _MISS

    def _lookup(self, namespace: str, key: str) -> Any:
        if not self.enabled:
            return _MISS
        memory_key = (namespace, key)
        if memory_key in self._memory:
            return self._memory[memory_key]
        path = self.path_for(namespace, key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError):
            return _MISS
        self._memory[memory_key] = value
        return value

    # -- storage --------------------------------------------------------
    def put(self, namespace: str, key: str, value: Any) -> None:
        if not self.enabled:
            return
        self._memory[(namespace, key)] = value
        path = self.path_for(namespace, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(dir=str(path.parent),
                                             suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
            self.stores += 1
        except (OSError, pickle.PickleError, AttributeError, TypeError):
            # unwritable/unpicklable: stay memory-only for this artifact
            pass

    def fetch(self, namespace: str, key: str,
              builder: Callable[[], Any]) -> Any:
        """Return the cached artifact or build, store, and return it."""
        value = self._lookup(namespace, key)
        if value is not _MISS:
            self.hits += 1
            return value
        self.misses += 1
        value = builder()
        self.put(namespace, key, value)
        return value

    # -- maintenance ----------------------------------------------------
    def clear(self, namespace: Optional[str] = None) -> None:
        """Drop cached artifacts (one namespace, or everything)."""
        if namespace is None:
            self._memory.clear()
            target = self.root
        else:
            self._memory = {mk: v for mk, v in self._memory.items()
                            if mk[0] != namespace}
            target = self.root / namespace
        shutil.rmtree(target, ignore_errors=True)

    def clear_memory(self) -> None:
        """Drop only the in-memory level (keeps on-disk artifacts)."""
        self._memory.clear()

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}
