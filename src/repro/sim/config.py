"""Deterministic simulation configuration and content hashing.

The cache layer keys every artifact on a :func:`config_hash` of the inputs
that produced it.  The hash is canonical: dict ordering, tuple-vs-list and
numpy scalar types do not change it, so the same logical configuration maps
to the same on-disk artifact across processes and platforms.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
from pathlib import Path
from typing import Any, Mapping, Tuple

from repro.errors import ConfigurationError

#: environment variable overriding the artifact-cache root directory
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: environment variable disabling the on-disk cache entirely (set to "1")
NO_CACHE_ENV_VAR = "REPRO_NO_CACHE"

#: environment variable selecting the default execution engine
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: default artifact-cache root (expanded lazily)
DEFAULT_CACHE_DIR = "~/.cache/repro"

#: execution engine selected when no ``--engine``/``REPRO_ENGINE`` is given;
#: the full set of valid names lives in the :mod:`repro.engine` registry
DEFAULT_ENGINE = "accurate"


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-encodable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: _canonical(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, Mapping):
        return {str(key): _canonical(value[key])
                for key in sorted(value, key=str)}
    if isinstance(value, (set, frozenset)):
        return [_canonical(item) for item in sorted(value, key=repr)]
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _canonical(value.item())
    return repr(value)


def config_hash(*parts: Any) -> str:
    """A stable hex digest of any JSON-canonicalizable configuration."""
    payload = json.dumps([_canonical(part) for part in parts],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def source_fingerprint(obj: Any) -> str:
    """Hash of an object's (module/function/class) source code.

    Used to invalidate cached artifacts when the code that produced them
    changes; falls back to the qualified name when source is unavailable
    (frozen/compiled distributions).
    """
    try:
        source = inspect.getsource(obj)
    except (OSError, TypeError):
        source = getattr(obj, "__qualname__", None) or getattr(
            obj, "__name__", repr(obj))
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:20]


@dataclasses.dataclass(frozen=True)
class SimConfig:
    """Configuration of one simulation session.

    ``seed`` and ``params`` identify the simulated configuration and feed
    the deterministic :attr:`hash`; ``cache_dir``/``cache_enabled`` only
    say where artifacts are stored and are deliberately excluded from it.
    ``engine`` names a backend registered in :mod:`repro.engine`
    (``accurate``, ``fast``, ``parallel``, ...); every engine produces
    identical architectural results (the equivalence suites pin this), so
    the engine is excluded from the hash too.
    """

    cache_dir: str = DEFAULT_CACHE_DIR
    cache_enabled: bool = True
    seed: int = 0
    params: Tuple[Tuple[str, Any], ...] = ()
    engine: str = DEFAULT_ENGINE

    def __post_init__(self):
        # imported lazily: repro.engine loads provider modules that import
        # repro.sim, so validation must not run at repro.sim import time
        from repro.engine import ensure_known

        ensure_known(self.engine)

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "SimConfig":
        """Build a config from ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` /
        ``REPRO_ENGINE``."""
        env = os.environ if environ is None else environ
        disabled = env.get(NO_CACHE_ENV_VAR, "").lower() not in ("", "0", "false")
        try:
            return cls(cache_dir=env.get(CACHE_ENV_VAR, DEFAULT_CACHE_DIR),
                       cache_enabled=not disabled,
                       engine=env.get(ENGINE_ENV_VAR, DEFAULT_ENGINE))
        except ConfigurationError as exc:
            raise ConfigurationError(f"{ENGINE_ENV_VAR}: {exc}") from exc

    def with_params(self, **params: Any) -> "SimConfig":
        """A copy with extra named parameters folded into the hash."""
        merged = dict(self.params)
        merged.update(params)
        return dataclasses.replace(
            self, params=tuple(sorted(merged.items())))

    def param(self, name: str, default: Any = None) -> Any:
        return dict(self.params).get(name, default)

    @property
    def resolved_cache_dir(self) -> Path:
        return Path(self.cache_dir).expanduser()

    @property
    def hash(self) -> str:
        """Deterministic identity of the simulated configuration."""
        return config_hash({"seed": self.seed, "params": self.params})
