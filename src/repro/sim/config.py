"""Deterministic simulation configuration and content hashing.

The cache layer keys every artifact on a :func:`config_hash` of the inputs
that produced it.  The hash is canonical: dict ordering, tuple-vs-list and
numpy scalar types do not change it, so the same logical configuration maps
to the same on-disk artifact across processes and platforms.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.scenario.schema import Scenario

#: environment variable overriding the artifact-cache root directory
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: environment variable disabling the on-disk cache entirely (set to "1")
NO_CACHE_ENV_VAR = "REPRO_NO_CACHE"

#: environment variable selecting the default execution engine
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: environment variable selecting the default device profile
PROFILE_ENV_VAR = "REPRO_PROFILE"

#: default artifact-cache root (expanded lazily)
DEFAULT_CACHE_DIR = "~/.cache/repro"

#: execution engine selected when no ``--engine``/``REPRO_ENGINE`` is given;
#: the full set of valid names lives in the :mod:`repro.engine` registry
DEFAULT_ENGINE = "accurate"

#: device profile selected when no ``--device-profile``/``REPRO_PROFILE``
#: is given; the registry lives in :mod:`repro.power.profiles`
DEFAULT_DEVICE_PROFILE = "ncpu-65nm"


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-encodable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: _canonical(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, Mapping):
        return {str(key): _canonical(value[key])
                for key in sorted(value, key=str)}
    if isinstance(value, (set, frozenset)):
        return [_canonical(item) for item in sorted(value, key=repr)]
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _canonical(value.item())
    return repr(value)


def config_hash(*parts: Any) -> str:
    """A stable hex digest of any JSON-canonicalizable configuration."""
    payload = json.dumps([_canonical(part) for part in parts],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def source_fingerprint(obj: Any) -> str:
    """Hash of an object's (module/function/class) source code.

    Used to invalidate cached artifacts when the code that produced them
    changes; falls back to the qualified name when source is unavailable
    (frozen/compiled distributions).
    """
    try:
        source = inspect.getsource(obj)
    except (OSError, TypeError):
        source = getattr(obj, "__qualname__", None) or getattr(
            obj, "__name__", repr(obj))
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:20]


@dataclasses.dataclass(frozen=True)
class SimConfig:
    """Configuration of one simulation session.

    ``seed``, ``params`` and ``scenario`` identify the simulated
    configuration and feed the deterministic :attr:`hash`;
    ``cache_dir``/``cache_enabled`` only say where artifacts are stored
    and are deliberately excluded from it.  ``engine`` names a backend
    registered in :mod:`repro.engine` (``accurate``, ``fast``,
    ``parallel``, ...); every engine produces identical architectural
    results (the equivalence suites pin this), so the engine — and the
    scenario's engine spec — are excluded from the hash too.  ``profile``
    names a device profile registered in :mod:`repro.power.profiles`; it
    is what :func:`repro.power.resolve_profile` falls back to when a
    power-layer call names no profile.  Unlike the engine it *does*
    change results, but it enters the hash through the scenario's
    ``device.profile`` field rather than separately here.
    """

    cache_dir: str = DEFAULT_CACHE_DIR
    cache_enabled: bool = True
    seed: int = 0
    params: Tuple[Tuple[str, Any], ...] = ()
    engine: str = DEFAULT_ENGINE
    profile: str = DEFAULT_DEVICE_PROFILE
    scenario: Optional[Scenario] = None

    def __post_init__(self):
        # imported lazily: repro.engine loads provider modules that import
        # repro.sim, so validation must not run at repro.sim import time
        from repro.engine import ensure_known
        from repro.power.profiles import ensure_known_profile

        ensure_known(self.engine)
        ensure_known_profile(self.profile)
        if self.scenario is not None and \
                not isinstance(self.scenario, Scenario):
            raise ConfigurationError(
                f"SimConfig.scenario: expected a Scenario, "
                f"got {self.scenario!r}")

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "SimConfig":
        """Build a config from ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` /
        ``REPRO_ENGINE``.

        The engine name is validated here, against the live registry,
        before anything else is constructed — so ``repro run``/``bench``
        with a bad ``REPRO_ENGINE`` fail fast with the registered-engine
        list instead of deep inside program assembly.
        """
        env = os.environ if environ is None else environ
        disabled = env.get(NO_CACHE_ENV_VAR, "").lower() not in ("", "0", "false")
        engine = env.get(ENGINE_ENV_VAR, DEFAULT_ENGINE)
        try:
            from repro.engine import ensure_known

            ensure_known(engine)
        except ConfigurationError as exc:
            raise ConfigurationError(f"{ENGINE_ENV_VAR}: {exc}") from exc
        profile = env.get(PROFILE_ENV_VAR, DEFAULT_DEVICE_PROFILE)
        try:
            from repro.power.profiles import ensure_known_profile

            ensure_known_profile(profile)
        except ConfigurationError as exc:
            raise ConfigurationError(f"{PROFILE_ENV_VAR}: {exc}") from exc
        return cls(cache_dir=env.get(CACHE_ENV_VAR, DEFAULT_CACHE_DIR),
                   cache_enabled=not disabled, engine=engine,
                   profile=profile)

    @classmethod
    def from_scenario(cls, scenario: Scenario,
                      environ: Mapping[str, str] | None = None,
                      **overrides: Any) -> "SimConfig":
        """Build a config whose seed/engine/identity come from a scenario.

        Cache location settings still come from the environment (or
        explicit ``overrides``); the scenario provides the seed, the
        engine and the canonical identity folded into :attr:`hash`.
        """
        base = cls.from_env(environ)
        fields = dict(cache_dir=base.cache_dir,
                      cache_enabled=base.cache_enabled,
                      seed=scenario.seed, engine=scenario.engine.name,
                      profile=scenario.device.profile,
                      scenario=scenario)
        fields.update(overrides)
        return cls(**fields)

    def with_params(self, **params: Any) -> "SimConfig":
        """A copy with extra named parameters folded into the hash."""
        merged = dict(self.params)
        merged.update(params)
        return dataclasses.replace(
            self, params=tuple(sorted(merged.items())))

    def param(self, name: str, default: Any = None) -> Any:
        return dict(self.params).get(name, default)

    @property
    def resolved_cache_dir(self) -> Path:
        return Path(self.cache_dir).expanduser()

    @property
    def effective_scenario(self) -> Scenario:
        """The attached scenario, or a minimal one mirroring this config.

        Always returns a :class:`~repro.scenario.schema.Scenario`, so
        run metadata and reports can record the canonical scenario dict
        whether or not the run was scenario-driven.
        """
        if self.scenario is not None:
            return self.scenario
        from repro.power.profiles import get_profile
        from repro.scenario.schema import DevicePoint, EngineSpec

        return Scenario(name="session-default", seed=self.seed,
                        engine=EngineSpec(name=self.engine),
                        device=DevicePoint(
                            vdd=get_profile(self.profile).vdd_nominal,
                            profile=self.profile))

    @property
    def hash(self) -> str:
        """Deterministic identity of the simulated configuration.

        The scenario joins the payload through its engine-free
        :meth:`~repro.scenario.schema.Scenario.identity_dict` — the hash
        changes whenever any scenario field changes, but stays stable
        across engine swaps so cached artifacts are reusable (the PR-6
        contract).  Configs without a scenario hash exactly as before,
        keeping existing cached artifacts valid.
        """
        payload = {"seed": self.seed, "params": self.params}
        if self.scenario is not None:
            payload["scenario"] = self.scenario.identity_dict()
        return config_hash(payload)
