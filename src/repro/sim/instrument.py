"""Shared instrumentation: named counters, gauges, and probe events.

All three simulator stacks emit into one :class:`StatsRegistry`:

* the pipeline publishes its :class:`~repro.cpu.env.ExecStats` deltas under
  ``cpu.pipeline.*`` (the functional ISS under ``cpu.functional.*``),
* the BNN accelerator publishes batch/inference/cycle/MAC counts under
  ``bnn.*``,
* the DMA engine publishes transfer counts under ``dma.*``,
* every :class:`~repro.core.events.Timeline` segment lands in
  ``timeline.*`` counters, and utilization queries set per-core gauges.

Counters are monotonically increasing sums; gauges hold the last written
value.  Probes subscribe to named events (``"*"`` for all) and receive
``(event, payload)`` — the structured side channel for tracing tools.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from typing import Any, Callable, Dict, List, Mapping, Optional

ProbeFn = Callable[[str, Mapping[str, Any]], None]

#: subscription key receiving every event
ALL_EVENTS = "*"

#: counter tracking probe callbacks that raised during :meth:`emit`
PROBE_ERROR_COUNTER = "stats.probe_errors"

#: set to ``1`` to re-raise probe exceptions instead of counting them
STRICT_PROBES_ENV_VAR = "REPRO_STRICT_PROBES"


class StatsRegistry:
    """Process-wide named counters, gauges, and probe/event hooks."""

    def __init__(self):
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, Any] = {}
        self._probes: Dict[str, List[ProbeFn]] = defaultdict(list)

    # -- counters -------------------------------------------------------
    def incr(self, name: str, amount: float = 1) -> float:
        """Add ``amount`` to a counter; returns the new total."""
        total = self._counters.get(name, 0) + amount
        self._counters[name] = total
        return total

    def get(self, name: str, default: float = 0) -> float:
        """Current value of a counter (or gauge, if no counter matches)."""
        if name in self._counters:
            return self._counters[name]
        return self._gauges.get(name, default)

    def counters(self, prefix: str = "") -> Dict[str, float]:
        return {name: value for name, value in sorted(self._counters.items())
                if name.startswith(prefix)}

    # -- gauges ---------------------------------------------------------
    def set_gauge(self, name: str, value: Any) -> None:
        self._gauges[name] = value

    def gauges(self, prefix: str = "") -> Dict[str, Any]:
        return {name: value for name, value in sorted(self._gauges.items())
                if name.startswith(prefix)}

    # -- probes / events ------------------------------------------------
    def subscribe(self, event: str, probe: ProbeFn) -> ProbeFn:
        """Register ``probe`` for ``event`` (``"*"`` matches everything)."""
        self._probes[event].append(probe)
        return probe

    def unsubscribe(self, event: str, probe: ProbeFn) -> None:
        if probe in self._probes.get(event, []):
            self._probes[event].remove(probe)

    def emit(self, event: str, payload: Optional[Mapping[str, Any]] = None,
             **fields: Any) -> None:
        """Deliver a structured event to its subscribers (cheap when none).

        A raising probe must never abort the simulation: exceptions are
        swallowed and counted under ``stats.probe_errors``, unless
        ``REPRO_STRICT_PROBES=1`` is set (debugging), in which case they
        propagate.
        """
        if not self._probes:
            return
        merged = dict(payload or {})
        merged.update(fields)
        for probe in self._probes.get(event, []):
            self._dispatch(probe, event, merged)
        for probe in self._probes.get(ALL_EVENTS, []):
            self._dispatch(probe, event, merged)

    def _dispatch(self, probe: ProbeFn, event: str,
                  payload: Mapping[str, Any]) -> None:
        try:
            probe(event, payload)
        except Exception:
            if os.environ.get(STRICT_PROBES_ENV_VAR) == "1":
                raise
            self.incr(PROBE_ERROR_COUNTER)

    # -- snapshots (delta-based assertions) ------------------------------
    def snapshot(self, prefix: str = "") -> Dict[str, float]:
        """Freeze the current counter values under ``prefix``.

        Pair with :meth:`diff` so tests and the profiler can assert on
        *growth* instead of absolute process-wide totals (which bleed
        across tests sharing one session).
        """
        return self.counters(prefix)

    def diff(self, before: Mapping[str, float],
             prefix: str = "") -> Dict[str, float]:
        """Counter growth since a :meth:`snapshot` (zero deltas omitted)."""
        current = self.counters(prefix)
        deltas: Dict[str, float] = {}
        for name in sorted(set(current) | set(before)):
            delta = current.get(name, 0) - before.get(name, 0)
            if delta:
                deltas[name] = delta
        return deltas

    # -- export ---------------------------------------------------------
    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": self.counters(), "gauges": self.gauges()}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True,
                          default=str)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()

    def scope(self, prefix: str) -> "StatsScope":
        """A view that prepends ``prefix.`` to every name."""
        return StatsScope(self, prefix)


class StatsScope:
    """A prefixed view onto a :class:`StatsRegistry`."""

    def __init__(self, registry: StatsRegistry, prefix: str):
        self.registry = registry
        self.prefix = prefix.rstrip(".")

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def incr(self, name: str, amount: float = 1) -> float:
        return self.registry.incr(self._name(name), amount)

    def get(self, name: str, default: float = 0) -> float:
        return self.registry.get(self._name(name), default)

    def set_gauge(self, name: str, value: Any) -> None:
        self.registry.set_gauge(self._name(name), value)

    def emit(self, event: str, payload: Optional[Mapping[str, Any]] = None,
             **fields: Any) -> None:
        self.registry.emit(self._name(event), payload, **fields)

    def incr_many(self, amounts: Mapping[str, float]) -> None:
        for name, amount in amounts.items():
            if amount:
                self.incr(name, amount)
