"""The simulation session: config + stats registry + artifact cache.

A process has one *current* session (:func:`get_session`); simulators look
it up lazily at publish time, so constructing CPUs/accelerators/timelines
stays decoupled from session management.  Tests and sweep drivers install
their own session with :func:`set_session` or the :func:`use_session`
context manager.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Optional

from repro.sim.cache import ArtifactCache
from repro.sim.config import SimConfig
from repro.sim.instrument import StatsRegistry


class SimSession:
    """One simulation context: shared stats, shared artifact cache."""

    def __init__(self, config: Optional[SimConfig] = None,
                 stats: Optional[StatsRegistry] = None,
                 cache: Optional[ArtifactCache] = None):
        self.config = config if config is not None else SimConfig.from_env()
        self.stats = stats if stats is not None else StatsRegistry()
        self.cache = cache if cache is not None else ArtifactCache(
            root=self.config.resolved_cache_dir,
            enabled=self.config.cache_enabled,
        )
        #: the session's active :class:`repro.trace.Tracer` (None when
        #: tracing is off; installed by :func:`repro.trace.install_tracer`)
        self.tracer = None
        #: the most recent :class:`repro.obs.RunAttribution` published in
        #: this session (None until an attributed run completes)
        self.last_attribution = None

    @classmethod
    def from_scenario(cls, scenario, **config_overrides) -> "SimSession":
        """A session configured from a declarative scenario.

        ``scenario`` is a :class:`repro.scenario.schema.Scenario` (or a
        path to a scenario JSON file); its seed/engine/identity flow
        into the session's :class:`SimConfig`, so the config hash — and
        therefore every cached artifact — keys on the scenario.
        """
        from repro.scenario.schema import Scenario

        if not isinstance(scenario, Scenario):
            scenario = Scenario.from_file(scenario)
        return cls(SimConfig.from_scenario(scenario, **config_overrides))

    @property
    def config_hash(self) -> str:
        return self.config.hash

    def stats_json(self, indent: Optional[int] = 2) -> str:
        return self.stats.to_json(indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SimSession(hash={self.config_hash}, "
                f"cache={self.cache.root}, enabled={self.cache.enabled})")


_current: Optional[SimSession] = None


def get_session() -> SimSession:
    """The process-wide current session (created on first use)."""
    global _current
    if _current is None:
        _current = SimSession()
    return _current


def set_session(session: Optional[SimSession]) -> Optional[SimSession]:
    """Install ``session`` as current; returns the previous one."""
    global _current
    previous = _current
    _current = session
    return previous


def reset_session() -> None:
    """Drop the current session (a fresh default is created on next use)."""
    set_session(None)


def current_engine(override: Optional[str] = None) -> str:
    """Resolve the active execution engine's name.

    ``override`` wins when given; otherwise the current session's
    ``SimConfig.engine`` applies.  Resolution goes through the
    :mod:`repro.engine` registry, so a
    :class:`~repro.errors.ConfigurationError` naming the registered
    engines is raised on unknown names.
    """
    from repro.engine import resolve_engine

    return resolve_engine(override).name


def current_profile(override: Optional[str] = None) -> str:
    """Resolve the active device profile's name.

    ``override`` wins when given; otherwise the current session's
    ``SimConfig.profile`` applies.  Resolution goes through the
    :mod:`repro.power.profiles` registry, so a
    :class:`~repro.errors.ConfigurationError` naming the registered
    profiles is raised on unknown names.
    """
    from repro.power.profiles import resolve_profile

    if override is not None:
        return resolve_profile(override).name
    return resolve_profile(get_session().config.profile).name


@contextmanager
def use_session(session: Optional[SimSession] = None, **config_kwargs: Any):
    """Temporarily install a session (built from ``config_kwargs`` if not
    given); restores the previous session on exit."""
    if session is None:
        session = SimSession(SimConfig(**config_kwargs))
    previous = set_session(session)
    try:
        yield session
    finally:
        set_session(previous)
