"""``repro.trace`` — cycle-accurate tracing and profiling.

Layered on the session :class:`~repro.sim.StatsRegistry` probe channel:

* :class:`Tracer` — spans/instants/counters with cycle timestamps, a
  bounded ring buffer, and optional sampling (:mod:`repro.trace.tracer`);
* exporters — Chrome/Perfetto trace-event JSON and JSONL
  (:mod:`repro.trace.export`);
* profilers — per-PC hot spots with exact stall attribution, per-layer
  BNN breakdowns, utilization-gap analysis (:mod:`repro.trace.profile`,
  :mod:`repro.trace.report`).

Quick start::

    from repro.trace import tracing, write_chrome_trace, build_report
    with tracing() as tracer:
        PipelinedCPU(program).run()
    write_chrome_trace(tracer, "trace.json")   # load in ui.perfetto.dev
    print(render_report(build_report(tracer)))
"""

from repro.trace.export import (
    chrome_trace,
    iter_chrome_events,
    read_jsonl,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.profile import (
    PAPER_UTILIZATION,
    CoreUtilization,
    CpuProfile,
    HotSpot,
    LayerStat,
    bnn_profile,
    cpu_profile,
    render_bnn_profile,
    render_utilization,
    utilization_report,
)
from repro.trace.report import RunReport, build_report, render_report
from repro.trace.tracer import (
    BNN_TRACK,
    CPU_TRACK,
    CYCLE_EVENT,
    DEFAULT_CAPACITY,
    DMA_TRACK,
    DROPPED_RECORDS_STAT,
    FLUSH_EVENT,
    SERVE_REQUEST_LANES,
    SERVE_TRACK,
    STALL_EVENT,
    ProbeBridge,
    TraceEvent,
    Tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)

__all__ = [
    "BNN_TRACK",
    "CPU_TRACK",
    "CYCLE_EVENT",
    "CoreUtilization",
    "CpuProfile",
    "DEFAULT_CAPACITY",
    "DMA_TRACK",
    "DROPPED_RECORDS_STAT",
    "FLUSH_EVENT",
    "HotSpot",
    "LayerStat",
    "PAPER_UTILIZATION",
    "ProbeBridge",
    "RunReport",
    "SERVE_REQUEST_LANES",
    "SERVE_TRACK",
    "STALL_EVENT",
    "TraceEvent",
    "Tracer",
    "bnn_profile",
    "build_report",
    "chrome_trace",
    "cpu_profile",
    "install_tracer",
    "iter_chrome_events",
    "read_jsonl",
    "render_bnn_profile",
    "render_report",
    "render_utilization",
    "tracing",
    "uninstall_tracer",
    "utilization_report",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
    "write_jsonl",
]
