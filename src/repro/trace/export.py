"""Trace exporters: Chrome/Perfetto trace-event JSON and plain JSONL.

:func:`chrome_trace` renders a tracer's events into the Chrome trace-event
format (the ``{"traceEvents": [...]}`` object form) that loads directly in
``ui.perfetto.dev`` or ``chrome://tracing``.  One timeline *track* maps to
one named thread; the pipeline's per-cycle occupancy records are expanded
into five per-stage lanes with consecutive same-PC cycles merged into one
span, so an instruction parked in a stage reads as a single block.

Timestamps are simulated cycles rendered as microseconds (1 cycle == 1 us
by default), which keeps Perfetto's time axis readable; ``otherData``
records the convention.

:func:`validate_chrome_trace` is the exporter's schema check — used by the
golden-file test and the CI smoke step, with no external schema library.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional

from repro.trace.tracer import CYCLE_EVENT, TraceEvent, Tracer, events_of

#: pipeline stage order for the expanded per-stage lanes
PIPELINE_STAGES = ("IF", "ID", "EX", "MEM", "WB")

#: Chrome trace-event phases the exporter produces
ALLOWED_PHASES = frozenset({"X", "i", "I", "C", "M", "B", "E"})

#: process id used for every simulated engine
TRACE_PID = 1

#: tool tag recorded in ``otherData``
GENERATOR = "repro.trace"


def _merge_stage_runs(cycle_events: List[TraceEvent],
                      stage: str) -> List[Dict[str, Any]]:
    """Run-length merge one stage's occupancy into (pc, start, dur) spans."""
    spans: List[Dict[str, Any]] = []
    current_pc: Optional[int] = None
    start = 0.0
    end = 0.0
    for event in cycle_events:
        pc = event.args.get(stage)
        contiguous = event.ts == end
        if pc is not None and pc == current_pc and contiguous:
            end = event.ts + event.dur
            continue
        if current_pc is not None:
            spans.append({"pc": current_pc, "start": start,
                          "dur": end - start})
        current_pc = pc
        start = event.ts
        end = event.ts + event.dur
    if current_pc is not None:
        spans.append({"pc": current_pc, "start": start, "dur": end - start})
    return spans


def chrome_trace(source, expand_cycles: bool = True,
                 cycles_per_us: float = 1.0) -> Dict[str, Any]:
    """Render events (or a Tracer) as a Chrome trace-event JSON object."""
    if cycles_per_us <= 0:
        raise ValueError("cycles_per_us must be positive")
    events = list(events_of(source))
    scale = 1.0 / cycles_per_us

    tids: Dict[str, int] = {}

    def tid_for(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
        return tids[track]

    body: List[Dict[str, Any]] = []
    cycle_groups: Dict[str, List[TraceEvent]] = defaultdict(list)
    for event in events:
        if expand_cycles and event.name == CYCLE_EVENT:
            cycle_groups[event.track].append(event)
            continue
        entry: Dict[str, Any] = {
            "name": event.name,
            "cat": event.cat or "sim",
            "ph": event.ph,
            "ts": event.ts * scale,
            "pid": TRACE_PID,
            "tid": tid_for(event.track),
        }
        if event.ph == "X":
            entry["dur"] = event.dur * scale
        if event.ph == "i":
            entry["s"] = "t"  # thread-scoped instant
        if event.args:
            entry["args"] = event.args
        body.append(entry)

    for track, group in sorted(cycle_groups.items()):
        group.sort(key=lambda e: e.ts)
        for stage in PIPELINE_STAGES:
            lane = f"{track}/{stage}"
            for span in _merge_stage_runs(group, stage):
                body.append({
                    "name": f"{span['pc']:#x}",
                    "cat": "cpu",
                    "ph": "X",
                    "ts": span["start"] * scale,
                    "dur": span["dur"] * scale,
                    "pid": TRACE_PID,
                    "tid": tid_for(lane),
                })

    metadata: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": TRACE_PID, "tid": 0,
        "args": {"name": "repro-sim"},
    }]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        metadata.append({"name": "thread_name", "ph": "M", "pid": TRACE_PID,
                         "tid": tid, "args": {"name": track}})
        metadata.append({"name": "thread_sort_index", "ph": "M",
                         "pid": TRACE_PID, "tid": tid,
                         "args": {"sort_index": tid}})

    other_data: Dict[str, Any] = {
        "generator": GENERATOR,
        "time_unit": f"cycles ({cycles_per_us:g} cycle(s) == 1 us)",
        "n_events": len(body),
        "tracks": [t for t, _ in sorted(tids.items(),
                                        key=lambda kv: kv[1])],
    }
    # completeness metadata: a trace whose ring buffer wrapped (or whose
    # sampler skipped cycles) must say so, or profiles silently lie
    if isinstance(source, Tracer):
        other_data["dropped_records"] = source.dropped
        other_data["sampled_out"] = source.sampled_out
    return {
        "traceEvents": metadata + body,
        "displayTimeUnit": "ms",
        "otherData": other_data,
    }


def write_chrome_trace(source, path, expand_cycles: bool = True,
                       cycles_per_us: float = 1.0) -> Dict[str, Any]:
    """Write the Chrome trace JSON to ``path``; returns the payload."""
    payload = chrome_trace(source, expand_cycles=expand_cycles,
                           cycles_per_us=cycles_per_us)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return payload


def write_jsonl(source, path) -> int:
    """Write one JSON object per event line; returns the event count."""
    count = 0
    with open(path, "w") as handle:
        for event in events_of(source):
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path) -> List[TraceEvent]:
    """Load a JSONL event log back into :class:`TraceEvent` records."""
    events: List[TraceEvent] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            events.append(TraceEvent(
                name=raw["name"], ph=raw["ph"], ts=raw["ts"],
                track=raw["track"], dur=raw.get("dur", 0.0),
                cat=raw.get("cat", ""), args=raw.get("args", {})))
    return events


# -- schema validation ---------------------------------------------------
def validate_chrome_trace(payload: Any) -> Dict[str, Any]:
    """Check a Chrome trace-event payload against the exporter's schema.

    Raises :class:`ValueError` with the first problem found; returns a
    summary dict (event count, track names) on success.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    tracks: Dict[int, str] = {}
    n_body = 0
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        for key, kind in (("name", str), ("ph", str)):
            if not isinstance(event.get(key), kind):
                raise ValueError(f"{where}: missing/invalid {key!r}")
        if event["ph"] not in ALLOWED_PHASES:
            raise ValueError(f"{where}: unknown phase {event['ph']!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: missing/invalid {key!r}")
        if event["ph"] == "M":
            args = event.get("args")
            if not isinstance(args, dict):
                raise ValueError(f"{where}: metadata event without args")
            if event["name"] == "thread_name":
                tracks[event["tid"]] = args.get("name", "")
            continue
        n_body += 1
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: missing/negative ts")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: X event needs dur >= 0")
    return {
        "events": n_body,
        "tracks": [tracks[tid] for tid in sorted(tracks)],
    }


def validate_chrome_trace_file(path) -> Dict[str, Any]:
    """Load ``path`` and validate it; returns the summary dict."""
    with open(path) as handle:
        return validate_chrome_trace(json.load(handle))


def iter_chrome_events(payload: Dict[str, Any]) -> Iterable[Dict[str, Any]]:
    """Non-metadata events of a validated payload (test helper)."""
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "M":
            yield event
