"""Fold a trace event stream into profiles: where did the cycles go?

Three analyses, matching the paper's headline claims:

* :func:`cpu_profile` — per-PC hot-spot table plus stall/flush-cycle
  attribution by hazard cause.  Every simulated cycle is attributed exactly
  once (retired instruction, stall bubble, flush bubble, or fill/drain), so
  the table's total equals ``ExecStats.cycles`` for a fully captured run.
* :func:`bnn_profile` — per-layer cycle/MAC breakdown of accelerator runs
  (the XNOR-engine style component breakdown).
* :func:`utilization_report` — per-core busy fraction from the timeline
  spans, with the gap against the paper's ~99 % utilization claim.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.trace.tracer import (
    BNN_TRACK,
    CPU_TRACK,
    CYCLE_EVENT,
    FLUSH_EVENT,
    STALL_EVENT,
    events_of,
)

#: the paper's core-utilization claim (section VII / Table 4)
PAPER_UTILIZATION = 0.99

#: timeline segment kinds counted as useful work (mirrors core.events)
ACTIVE_KINDS = ("cpu", "bnn", "switch")
#: all timeline segment kinds (anything else is not a timeline span)
TIMELINE_KINDS = ("cpu", "bnn", "switch", "idle", "dma")


@dataclass
class HotSpot:
    """Cycles attributed to one PC (or one bubble category)."""

    pc: Optional[int]
    label: str
    cycles: int

    def row(self, total: int) -> tuple:
        where = f"{self.pc:#06x}" if self.pc is not None else "-"
        share = self.cycles / total * 100 if total else 0.0
        return (where, self.label, str(self.cycles), f"{share:5.1f}%")


@dataclass
class CpuProfile:
    """Exact cycle attribution for one pipelined-CPU track."""

    track: str = CPU_TRACK
    total_cycles: int = 0
    retired_cycles: int = 0  # cycles with an instruction in WB
    instructions: Dict[int, int] = field(default_factory=dict)  # pc -> cycles
    mnemonics: Dict[int, str] = field(default_factory=dict)
    stall_cycles: Dict[str, int] = field(default_factory=dict)  # cause -> n
    flush_cycles: int = 0
    fill_drain_cycles: int = 0
    dropped: int = 0  # ring-buffer evictions (attribution then inexact)

    @property
    def attributed_cycles(self) -> int:
        """Sum of every table row — equals ``total_cycles`` exactly."""
        return (self.retired_cycles + sum(self.stall_cycles.values())
                + self.flush_cycles + self.fill_drain_cycles)

    def hotspots(self, limit: Optional[int] = None) -> List[HotSpot]:
        spots = [HotSpot(pc=pc, label=self.mnemonics.get(pc, "?"),
                         cycles=cycles)
                 for pc, cycles in self.instructions.items()]
        spots.sort(key=lambda s: (-s.cycles, s.pc))
        if limit is not None:
            spots = spots[:limit]
        return spots

    def bubble_rows(self) -> List[HotSpot]:
        rows = [HotSpot(pc=None, label=f"<stall:{cause}>", cycles=n)
                for cause, n in sorted(self.stall_cycles.items())]
        if self.flush_cycles:
            rows.append(HotSpot(pc=None, label="<flush:control>",
                                cycles=self.flush_cycles))
        if self.fill_drain_cycles:
            rows.append(HotSpot(pc=None, label="<fill/drain>",
                                cycles=self.fill_drain_cycles))
        return rows

    def render(self, limit: int = 20) -> str:
        """The hot-spot table (top ``limit`` PCs + bubble attribution)."""
        spots = self.hotspots(limit)
        shown = sum(s.cycles for s in spots)
        other = self.retired_cycles - shown
        rows = [("pc", "instr", "cycles", "share")]
        rows += [s.row(self.total_cycles) for s in spots]
        if other > 0:
            rows.append(HotSpot(None, "<other pcs>", other)
                        .row(self.total_cycles))
        rows += [s.row(self.total_cycles) for s in self.bubble_rows()]
        rows.append(("", "total", str(self.attributed_cycles), "100.0%"))
        widths = [max(len(r[i]) for r in rows) for i in range(4)]
        lines = [f"hot spots — {self.track} "
                 f"({self.total_cycles} cycles attributed)"]
        if self.dropped:
            lines.append(f"warning: {self.dropped} events evicted from the "
                         "ring buffer; attribution is partial")
        for row in rows:
            lines.append("  ".join(cell.ljust(width)
                                   for cell, width in zip(row, widths))
                         .rstrip())
        return "\n".join(lines)


def cpu_profile(source, track: str = CPU_TRACK,
                dropped: int = 0) -> CpuProfile:
    """Fold per-cycle occupancy + stall/flush instants into a profile."""
    profile = CpuProfile(track=track, dropped=dropped)
    retired: Counter = Counter()
    stalls: Counter = Counter()
    flushes = 0
    for event in events_of(source):
        if event.track != track:
            continue
        if event.name == CYCLE_EVENT:
            profile.total_cycles += int(event.dur) or 1
            wb_pc = event.args.get("WB")
            if wb_pc is not None:
                retired[wb_pc] += 1
                name = event.args.get("wb_name")
                if name:
                    profile.mnemonics[wb_pc] = name
        elif event.name == STALL_EVENT:
            stalls[event.args.get("cause", "unknown")] += 1
        elif event.name == FLUSH_EVENT:
            flushes += int(event.args.get("squashed", 2))
    profile.instructions = dict(retired)
    profile.retired_cycles = sum(retired.values())
    # Every cycle without a WB instruction is a bubble.  Bubbles are
    # attributed to their cause: one per stall instant, ``squashed`` per
    # flush, and the remainder is pipeline fill/drain.  Clamping keeps the
    # attribution exact even when a flush squashes an existing bubble.
    bubbles = profile.total_cycles - profile.retired_cycles
    remaining = bubbles
    for cause, count in stalls.items():
        attributed = min(count, remaining)
        if attributed:
            profile.stall_cycles[cause] = attributed
        remaining -= attributed
    profile.flush_cycles = min(flushes, remaining)
    remaining -= profile.flush_cycles
    profile.fill_drain_cycles = remaining
    return profile


@dataclass
class LayerStat:
    """One BNN layer's share of an accelerator run."""

    layer: int
    cycles: float = 0.0
    macs: float = 0.0
    spans: int = 0

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.cycles if self.cycles else 0.0


def bnn_profile(source, track: str = BNN_TRACK) -> List[LayerStat]:
    """Per-layer cycle/MAC totals from the accelerator's layer spans."""
    layers: Dict[int, LayerStat] = {}
    for event in events_of(source):
        if event.track != track or event.ph != "X":
            continue
        index = event.args.get("layer")
        if index is None:
            continue
        stat = layers.setdefault(index, LayerStat(layer=index))
        stat.cycles += event.dur
        stat.macs += event.args.get("macs", 0)
        stat.spans += 1
    return [layers[index] for index in sorted(layers)]


def render_bnn_profile(stats: List[LayerStat]) -> str:
    if not stats:
        return "bnn layers — no accelerator spans captured"
    rows = [("layer", "cycles", "macs", "macs/cycle")]
    for stat in stats:
        rows.append((str(stat.layer), f"{stat.cycles:.0f}",
                     f"{stat.macs:.0f}", f"{stat.macs_per_cycle:.2f}"))
    total_cycles = sum(s.cycles for s in stats)
    total_macs = sum(s.macs for s in stats)
    rows.append(("total", f"{total_cycles:.0f}", f"{total_macs:.0f}",
                 f"{total_macs / total_cycles:.2f}" if total_cycles else "-"))
    widths = [max(len(r[i]) for r in rows) for i in range(4)]
    lines = ["bnn layers — cycle/MAC breakdown"]
    for row in rows:
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class CoreUtilization:
    """Busy fraction of one core track over the trace makespan."""

    core: str
    busy_cycles: float
    span_cycles: float

    @property
    def utilization(self) -> float:
        return self.busy_cycles / self.span_cycles if self.span_cycles else 0.0

    @property
    def gap_vs_paper(self) -> float:
        """How far below the paper's ~99 % utilization claim this core is."""
        return PAPER_UTILIZATION - self.utilization


def utilization_report(source) -> Dict[str, CoreUtilization]:
    """Per-core utilization from the bridged timeline spans."""
    busy: Dict[str, float] = defaultdict(float)
    ends: Dict[str, float] = defaultdict(float)
    for event in events_of(source):
        if (event.ph != "X" or event.cat not in TIMELINE_KINDS
                or event.args.get("src") != "timeline"):
            continue
        track = event.track
        ends[track] = max(ends[track], event.ts + event.dur)
        if event.cat in ACTIVE_KINDS:
            busy[track] += event.dur
    makespan = max(ends.values(), default=0.0)
    return {core: CoreUtilization(core=core, busy_cycles=busy.get(core, 0.0),
                                  span_cycles=makespan)
            for core in sorted(ends)}


def render_utilization(report: Dict[str, CoreUtilization]) -> str:
    if not report:
        return "utilization — no timeline spans captured"
    lines = [f"utilization — vs the paper's ~{PAPER_UTILIZATION:.0%} claim"]
    for core, stat in report.items():
        lines.append(f"  {core:<12} {stat.utilization:7.1%}  "
                     f"(gap {stat.gap_vs_paper:+.1%}, "
                     f"busy {stat.busy_cycles:.0f} / "
                     f"{stat.span_cycles:.0f} cycles)")
    return "\n".join(lines)
