"""Run reports: fold one trace into a human-readable profile summary.

``repro run --profile`` and the tests use :func:`build_report` /
:func:`render_report` to turn a captured event stream into the combined
CPU hot-spot, stall-attribution, BNN-layer, and utilization-gap view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.trace.profile import (
    CoreUtilization,
    CpuProfile,
    LayerStat,
    bnn_profile,
    cpu_profile,
    render_bnn_profile,
    render_utilization,
    utilization_report,
)
from repro.trace.tracer import CPU_TRACK, CYCLE_EVENT, Tracer, events_of


@dataclass
class RunReport:
    """Everything the profiler learned from one trace."""

    cpu: Optional[CpuProfile] = None
    bnn_layers: List[LayerStat] = field(default_factory=list)
    utilization: Dict[str, CoreUtilization] = field(default_factory=dict)
    n_events: int = 0
    dropped: int = 0

    def to_dict(self) -> Dict:
        """JSON-ready summary (scripting / runner integration)."""
        out: Dict = {"n_events": self.n_events, "dropped": self.dropped}
        if self.cpu is not None:
            out["cpu"] = {
                "track": self.cpu.track,
                "total_cycles": self.cpu.total_cycles,
                "attributed_cycles": self.cpu.attributed_cycles,
                "retired_cycles": self.cpu.retired_cycles,
                "stall_cycles": dict(self.cpu.stall_cycles),
                "flush_cycles": self.cpu.flush_cycles,
                "fill_drain_cycles": self.cpu.fill_drain_cycles,
            }
        if self.bnn_layers:
            out["bnn_layers"] = [{"layer": s.layer, "cycles": s.cycles,
                                  "macs": s.macs} for s in self.bnn_layers]
        if self.utilization:
            out["utilization"] = {core: stat.utilization
                                  for core, stat in self.utilization.items()}
        return out


def build_report(source, track: str = CPU_TRACK) -> RunReport:
    """Fold a Tracer (or event iterable) into a :class:`RunReport`."""
    events = list(events_of(source))
    dropped = source.dropped if isinstance(source, Tracer) else 0
    report = RunReport(n_events=len(events), dropped=dropped)
    if any(e.name == CYCLE_EVENT and e.track == track for e in events):
        report.cpu = cpu_profile(events, track=track, dropped=dropped)
    report.bnn_layers = bnn_profile(events)
    report.utilization = utilization_report(events)
    return report


def render_report(report: RunReport, limit: int = 20) -> str:
    """The ``--profile`` text block."""
    sections = [f"profile — {report.n_events} trace events"
                + (f" ({report.dropped} dropped)" if report.dropped else "")]
    if report.cpu is not None:
        sections.append(report.cpu.render(limit=limit))
    else:
        sections.append("hot spots — no per-cycle records captured "
                        "(pipelined runs only)")
    if report.bnn_layers:
        sections.append(render_bnn_profile(report.bnn_layers))
    if report.utilization:
        sections.append(render_utilization(report.utilization))
    return "\n\n".join(sections)
