"""The cycle-stamped tracer: spans, instants, counters, and the probe bridge.

A :class:`Tracer` collects structured :class:`TraceEvent` records with
simulated-cycle timestamps into a bounded ring buffer.  Simulators emit
into it two ways:

* **direct call sites** for high-rate data — the pipelined CPU records one
  occupancy event per cycle plus stall/flush instants with their hazard
  cause (it looks the tracer up once per run, so the disabled path costs a
  single attribute load per cycle);
* the **probe bridge** — a ``"*"`` subscriber on the session
  :class:`~repro.sim.StatsRegistry` that converts the registry's existing
  probe events (``timeline.segment``, ``dma.transfer``, ``bnn.batch``,
  ``soc.mode_switch``, ...) into spans and instants, so every simulator
  that already publishes probe events is traced without new code.

Install with :func:`install_tracer` / :func:`uninstall_tracer` or the
:func:`tracing` context manager; the active tracer lives on the current
:class:`~repro.sim.SimSession` as ``session.tracer``.  Nothing subscribes
to the registry until a tracer is installed, so the untraced fast path
(``StatsRegistry.emit`` returning on "no probes") is preserved.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.logutil import get_logger
from repro.sim import get_session

logger = get_logger("trace")

#: event name of the pipeline's per-cycle occupancy record
CYCLE_EVENT = "cpu.cycle"
#: instant event emitted once per stall bubble, with its hazard cause
STALL_EVENT = "cpu.stall"
#: instant event emitted once per control-flow squash (two bubbles)
FLUSH_EVENT = "cpu.flush"

#: default track (Perfetto lane) of the pipelined CPU
CPU_TRACK = "cpu.pipeline"
#: default track of the BNN accelerator
BNN_TRACK = "bnn"
#: default track of the DMA engine
DMA_TRACK = "dma"
#: track of the parallel engine's per-shard wall-time spans
PARALLEL_TRACK = "bnn.parallel"
#: track prefix of the serve layer's lanes (batcher, admission, queue)
SERVE_TRACK = "serve"
#: per-request serve lanes rotate over this many tracks, so a long load
#: run stays readable in Perfetto (args carry the exact request id)
SERVE_REQUEST_LANES = 16

#: stats-registry counter that mirrors ring-buffer evictions
DROPPED_RECORDS_STAT = "trace.dropped_records"

#: default ring-buffer capacity (events); None = unbounded
DEFAULT_CAPACITY = 1 << 20


@dataclass
class TraceEvent:
    """One cycle-stamped trace record (Chrome trace-event flavoured).

    ``ph`` follows the Chrome trace-event phase codes: ``"X"`` complete
    (span with duration), ``"i"`` instant, ``"C"`` counter.  ``ts`` and
    ``dur`` are in simulated cycles; ``track`` names the Perfetto lane.
    """

    name: str
    ph: str
    ts: float
    track: str
    dur: float = 0.0
    cat: str = ""
    args: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-ready flat representation."""
        out: Dict[str, Any] = {"name": self.name, "ph": self.ph,
                               "ts": self.ts, "track": self.track}
        if self.ph == "X":
            out["dur"] = self.dur
        if self.cat:
            out["cat"] = self.cat
        if self.args:
            out["args"] = self.args
        return out


class _Span:
    """Handle yielded by :meth:`Tracer.span`; lets the body attach args."""

    __slots__ = ("args",)

    def __init__(self, args: Dict[str, Any]):
        self.args = args

    def set(self, **fields: Any) -> None:
        self.args.update(fields)


class Tracer:
    """Bounded, optionally sampling collector of :class:`TraceEvent`\\ s."""

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY,
                 sample_every: int = 1, enabled: bool = True,
                 clock: Optional[Callable[[], float]] = None):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.capacity = capacity
        self.sample_every = sample_every
        self.enabled = enabled
        self.clock = clock
        self.dropped = 0  # events evicted from the ring buffer
        self.sampled_out = 0  # cycle records skipped by sampling
        #: stats registry mirroring drops as ``trace.dropped_records``
        #: (attached by :func:`install_tracer`; optional for bare tracers)
        self.stats = None
        self._events: deque = deque(maxlen=capacity)
        self._cursors: Dict[str, float] = {}
        self._cycle_seen = 0
        self._warned_dropped = False

    # -- state ----------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.enabled

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._cursors.clear()
        self.dropped = 0
        self.sampled_out = 0
        self._cycle_seen = 0
        self._warned_dropped = False

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def _append(self, event: TraceEvent) -> None:
        if self.capacity is not None and len(self._events) == self.capacity:
            self.dropped += 1
            if self.stats is not None:
                self.stats.incr(DROPPED_RECORDS_STAT)
            if not self._warned_dropped:
                self._warned_dropped = True
                logger.warning(
                    "trace ring buffer full (capacity %d): evicting oldest "
                    "records; raise capacity (capacity=None for unbounded) "
                    "or sample_every to keep the whole run", self.capacity)
        self._events.append(event)

    # -- emission -------------------------------------------------------
    def complete(self, name: str, track: str, start: float, dur: float,
                 cat: str = "", **args: Any) -> None:
        """A span: ``name`` occupied ``track`` for cycles [start, start+dur)."""
        if not self.enabled:
            return
        self._append(TraceEvent(name=name, ph="X", ts=start, dur=dur,
                                track=track, cat=cat, args=args))

    def instant(self, name: str, track: str, ts: Optional[float] = None,
                cat: str = "", **args: Any) -> None:
        """A zero-duration marker at cycle ``ts`` (tracer clock if None)."""
        if not self.enabled:
            return
        if ts is None:
            ts = self.clock() if self.clock is not None else self.cursor(track)
        self._append(TraceEvent(name=name, ph="i", ts=ts, track=track,
                                cat=cat, args=args))

    def counter(self, name: str, track: str, ts: float, value: float,
                cat: str = "") -> None:
        """A counter sample (renders as a value track in Perfetto)."""
        if not self.enabled:
            return
        self._append(TraceEvent(name=name, ph="C", ts=ts, track=track,
                                cat=cat, args={"value": value}))

    @contextmanager
    def span(self, name: str, track: str = "main", cat: str = "",
             clock: Optional[Callable[[], float]] = None, **args: Any):
        """Context manager recording a span around the body.

        ``clock`` (or the tracer's default clock) supplies the begin/end
        timestamps; without one, the track cursor is used and advanced by
        zero — pass explicit timing via :meth:`complete` instead.
        """
        if not self.enabled:
            yield None
            return
        clock = clock if clock is not None else self.clock
        handle = _Span(dict(args))
        start = clock() if clock is not None else self.cursor(track)
        try:
            yield handle
        finally:
            end = clock() if clock is not None else start
            self.complete(name, track=track, start=start,
                          dur=max(end - start, 0.0), cat=cat, **handle.args)

    # -- per-track cursors (engines without a global clock) --------------
    def cursor(self, track: str) -> float:
        """Monotonic per-track position for engines with no global clock."""
        return self._cursors.get(track, 0.0)

    def lay(self, name: str, track: str, dur: float, cat: str = "",
            **args: Any) -> float:
        """Lay a span at the track cursor and advance it; returns the start."""
        start = self.cursor(track)
        if self.enabled:
            self.complete(name, track=track, start=start, dur=dur,
                          cat=cat, **args)
        self._cursors[track] = start + dur
        return start

    # -- pipeline fast path ----------------------------------------------
    def cpu_cycle(self, cycle: int, track: str = CPU_TRACK,
                  **stages: Optional[int]) -> None:
        """One per-cycle stage-occupancy record (subject to sampling).

        ``stages`` maps stage names (``IF``..``WB``) to the occupying PC
        (None = bubble) plus optional extras such as ``wb_name``.
        """
        if not self.enabled:
            return
        self._cycle_seen += 1
        if self.sample_every > 1 and (self._cycle_seen - 1) % self.sample_every:
            self.sampled_out += 1
            return
        self._append(TraceEvent(name=CYCLE_EVENT, ph="X", ts=cycle - 1,
                                dur=1, track=track, cat="cpu", args=stages))


class ProbeBridge:
    """Converts :class:`~repro.sim.StatsRegistry` probe events to traces."""

    def __init__(self, tracer: Tracer):
        self.tracer = tracer

    def __call__(self, event: str, payload: Mapping[str, Any]) -> None:
        tracer = self.tracer
        if not tracer.enabled:
            return
        if event == "timeline.segment":
            start = payload["start"]
            tracer.complete(payload.get("label") or payload["kind"],
                            track=payload["core"], start=start,
                            dur=payload["end"] - start, cat=payload["kind"],
                            src="timeline")
        elif event == "dma.transfer":
            tracer.lay(payload.get("description", "transfer"),
                       track=DMA_TRACK, dur=payload["cycles"], cat="dma",
                       words=payload.get("words", 0),
                       setup_cycles=payload.get("setup_cycles", 0))
        elif event in ("bnn.batch", "bnn.infer"):
            self._bnn_spans(event, payload)
        elif event == "soc.mode_switch":
            tracer.instant(event, track=payload.get("core", "soc"),
                           ts=payload.get("cycle"), cat="switch",
                           to=payload.get("to"), cost=payload.get("cost", 0))
        elif event == "cpu.run":
            track = ("cpu.functional"
                     if payload.get("simulator") == "functional"
                     else CPU_TRACK)
            tracer.instant(event, track=track, ts=payload.get("cycles"),
                           cat="cpu", **dict(payload))
        elif event == "bnn.parallel.shard":
            # wall seconds -> microsecond ticks on a per-shard lane, so
            # Perfetto shows serialize / queue-wait / compute end to end
            track = f"{PARALLEL_TRACK}.shard{payload.get('shard', 0)}"
            for piece in ("serialize", "queue_wait", "compute"):
                tracer.lay(piece, track=track,
                           dur=float(payload.get(f"{piece}_s", 0.0)) * 1e6,
                           cat="parallel", rows=payload.get("rows", 0))
        elif event == "bnn.parallel.merge":
            tracer.lay("merge", track=PARALLEL_TRACK,
                       dur=float(payload.get("merge_s", 0.0)) * 1e6,
                       cat="parallel", shards=payload.get("shards", 0),
                       rows=payload.get("rows", 0))
        elif event == "bnn.parallel.fallback":
            tracer.instant(event, track=PARALLEL_TRACK,
                           ts=tracer.cursor(PARALLEL_TRACK), cat="parallel",
                           rows=payload.get("rows", 0),
                           reason=payload.get("reason", ""))
        elif event == "obs.phase":
            track = f"obs.{payload.get('engine', 'run')}"
            tracer.lay(payload.get("phase", "phase"), track=track,
                       dur=float(payload.get("cycles", 0)), cat="obs",
                       wall_s=payload.get("wall_s", 0.0),
                       kind=payload.get("kind", ""),
                       scenario=payload.get("scenario", ""))
        elif event == "serve.request":
            self._serve_request_spans(payload)
        elif event == "serve.batch":
            # wall seconds -> microsecond ticks, same convention as the
            # parallel shard lanes, so serve and engine tracks line up
            start = float(payload.get("assembled_s", 0.0)) * 1e6
            end = float(payload.get("infer_done_s", start)) * 1e6
            tracer.complete(f"batch x{payload.get('size', 0)}",
                            track=f"{SERVE_TRACK}.batcher", start=start,
                            dur=max(end - start, 0.0), cat="serve",
                            batch=payload.get("batch", 0),
                            size=payload.get("size", 0),
                            cycles=payload.get("cycles", 0))
            tracer.counter("queue_depth", track=f"{SERVE_TRACK}.queue",
                           ts=end,
                           value=float(payload.get("queue_depth", 0)),
                           cat="serve")
        elif event in ("serve.shed", "serve.timeout"):
            tracer.instant(event, track=f"{SERVE_TRACK}.admission",
                           ts=float(payload.get("t_s", 0.0)) * 1e6,
                           cat="serve", **dict(payload))

    def _serve_request_spans(self, payload: Mapping[str, Any]) -> None:
        """One request's lifecycle chain as spans on a rotating lane.

        The five lifecycle segments (enqueue → batch-assemble → dispatch
        → engine-infer → respond) are laid with absolute wall-us
        timestamps; lanes rotate over :data:`SERVE_REQUEST_LANES` tracks
        so long load runs stay readable (the exact request id rides in
        the span args).
        """
        tracer = self.tracer
        index = int(payload.get("request", 0))
        track = f"{SERVE_TRACK}.req{index % SERVE_REQUEST_LANES:02d}"
        chain = (("enqueue", "submit_s", "enqueue_s"),
                 ("batch_assemble", "enqueue_s", "assembled_s"),
                 ("dispatch", "assembled_s", "dispatch_s"),
                 ("engine_infer", "dispatch_s", "infer_done_s"),
                 ("respond", "infer_done_s", "respond_s"))
        for name, start_key, end_key in chain:
            start = float(payload.get(start_key, 0.0)) * 1e6
            end = float(payload.get(end_key, 0.0)) * 1e6
            tracer.complete(name, track=track, start=start,
                            dur=max(end - start, 0.0), cat="serve",
                            request=index,
                            batch=payload.get("batch"),
                            status=payload.get("status", "ok"))

    def _bnn_spans(self, event: str, payload: Mapping[str, Any]) -> None:
        """Per-layer spans for one accelerator batch/inference."""
        tracer = self.tracer
        layer_cycles = payload.get("layer_cycles") or []
        layer_macs = payload.get("layer_macs") or [0] * len(layer_cycles)
        n_inputs = payload.get("n_inputs", 1)
        for index, cycles in enumerate(layer_cycles):
            macs = layer_macs[index] if index < len(layer_macs) else 0
            tracer.lay(f"layer{index}", track=BNN_TRACK, dur=cycles,
                       cat="bnn", layer=index, macs=macs * n_inputs)
        total = payload.get("total_cycles", payload.get("cycles", 0))
        pipelined = total - sum(layer_cycles)
        if pipelined > 0:
            tracer.lay(f"steady-state x{n_inputs}", track=BNN_TRACK,
                       dur=pipelined, cat="bnn")
        tracer.instant(event, track=BNN_TRACK,
                       ts=tracer.cursor(BNN_TRACK), cat="bnn",
                       **{k: v for k, v in payload.items()
                          if not isinstance(v, (list, tuple))})


# -- session wiring -----------------------------------------------------
def install_tracer(session=None, **tracer_kwargs: Any) -> Tracer:
    """Create a tracer, attach it to the session, subscribe the bridge."""
    session = session if session is not None else get_session()
    uninstall_tracer(session)
    tracer = Tracer(**tracer_kwargs)
    # mirror ring-buffer evictions into the session stats, so dropped
    # records are as visible as any other counter (metrics diffs pick up
    # ``trace.dropped_records`` with no extra wiring)
    tracer.stats = session.stats
    bridge = ProbeBridge(tracer)
    session.stats.subscribe("*", bridge)
    tracer._bridge = bridge
    session.tracer = tracer
    return tracer


def uninstall_tracer(session=None) -> Optional[Tracer]:
    """Detach the session's tracer (and its bridge); returns it."""
    session = session if session is not None else get_session()
    tracer = getattr(session, "tracer", None)
    if tracer is None:
        return None
    bridge = getattr(tracer, "_bridge", None)
    if bridge is not None:
        session.stats.unsubscribe("*", bridge)
    session.tracer = None
    return tracer


@contextmanager
def tracing(session=None, **tracer_kwargs: Any):
    """``with tracing() as tracer:`` — install for the block, then detach."""
    session = session if session is not None else get_session()
    tracer = install_tracer(session, **tracer_kwargs)
    try:
        yield tracer
    finally:
        uninstall_tracer(session)


def events_of(source) -> Iterable[TraceEvent]:
    """Accept a Tracer or a plain event iterable (exporter/profiler input)."""
    if isinstance(source, Tracer):
        return source.events
    return source
