"""ASCII rendering of timelines and data series (no plotting deps).

The paper's figures are regenerated as data by :mod:`repro.experiments`;
this module draws them in a terminal:

* :func:`render_timeline` — Gantt-style core activity lanes (Figs 13/16),
* :func:`render_series` — a scatter/line chart (Figs 9/12b/14/18),
* :func:`render_bars` — labelled horizontal bars (Figs 10/11/12a/19b).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.events import Timeline
from repro.errors import ConfigurationError

#: lane glyph per segment kind
KIND_GLYPHS = {"cpu": "C", "bnn": "B", "idle": ".", "dma": "d", "switch": "s"}


def render_timeline(timeline: Timeline, width: int = 64) -> str:
    """Draw one character column per time bucket, one lane per core."""
    if width < 8:
        raise ConfigurationError("timeline width must be at least 8")
    end = timeline.end
    if end == 0:
        return "(empty timeline)"
    names = timeline.core_names()
    label_width = max(len(name) for name in names) + 1
    lines = []
    for name in names:
        lane = ["."] * width
        for segment in timeline.core_segments(name):
            start = int(segment.start / end * width)
            stop = max(start + 1, int(segment.end / end * width))
            glyph = KIND_GLYPHS.get(segment.kind, "?")
            for column in range(start, min(stop, width)):
                lane[column] = glyph
        lines.append(f"{name.ljust(label_width)}|{''.join(lane)}|")
    legend = "  ".join(f"{glyph}={kind}" for kind, glyph in KIND_GLYPHS.items())
    lines.append(f"{' ' * label_width} 0 .. {end} cycles   {legend}")
    return "\n".join(lines)


def render_series(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 12,
    title: str = "",
    y_label: str = "",
) -> str:
    """Scatter-plot a series with axis annotations."""
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must align")
    if not xs:
        return "(empty series)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.3g} +{''.join(grid[0])}")
    for row in grid[1:-1]:
        lines.append(f"{'':>10} |{''.join(row)}")
    lines.append(f"{y_lo:>10.3g} +{''.join(grid[-1])}")
    lines.append(f"{'':>11}{x_lo:<.3g}{'':>{max(1, width - 12)}}{x_hi:.3g}")
    if y_label:
        lines.append(f"y: {y_label}")
    return "\n".join(lines)


def render_bars(
    values: Dict[str, float],
    width: int = 48,
    unit: str = "",
    reference: Optional[Dict[str, float]] = None,
) -> str:
    """Horizontal bars; optional per-key reference values shown inline."""
    if not values:
        return "(no bars)"
    label_width = max(len(key) for key in values)
    peak = max(abs(v) for v in values.values()) or 1.0
    lines: List[str] = []
    for key, value in values.items():
        bar = "#" * max(1, int(abs(value) / peak * width))
        ref = ""
        if reference and key in reference:
            ref = f"  (paper {reference[key]:.4g}{unit})"
        lines.append(f"{key.ljust(label_width)} |{bar} {value:.4g}{unit}{ref}")
    return "\n".join(lines)
