"""Workloads: assembly kernels + golden models for the paper's use cases.

* :mod:`repro.workloads.image_pipeline` — resize / grayscale filter /
  normalization (image classification use case, Fig 15a),
* :mod:`repro.workloads.motion_features` — mean / histogram / MAV feature
  extraction (motion detection use case, Fig 15b),
* :mod:`repro.workloads.audio_features` — frame energy / zero-crossing
  features (keyword-detection use case, paper section III's voice target),
* :mod:`repro.workloads.bnn_kernels` — software BNN inference on the CPU
  (Table 1's standalone-CPU baseline),
* :mod:`repro.workloads.dhrystone` — Dhrystone-like benchmark (Table 2),
* :mod:`repro.workloads.mibench` — MiBench-style kernels (Fig 11a),
* :mod:`repro.workloads.layout` — shared data-memory layout.
"""

from repro.workloads import (  # noqa: F401
    audio_features,
    bnn_kernels,
    dhrystone,
    image_pipeline,
    layout,
    mibench,
    motion_features,
)

__all__ = [
    "audio_features",
    "bnn_kernels",
    "dhrystone",
    "image_pipeline",
    "layout",
    "mibench",
    "motion_features",
]
