"""Keyword-detection feature extraction workload (third use case).

The paper's section III names voice detection as a target BNN application
(its ref [42] is a BNN voice-activity chip).  This workload demonstrates
the NCPU flow on a 1-D signal: the CPU frames a 256-sample window into 16
frames and extracts two classic time-domain voice features per frame —
**energy** (sum of |x|) and **zero-crossing count** — yielding 32 features
that are binarized against training thresholds and packed for the BNN.

As with the other workloads, a numpy golden model and an RV32I assembly
kernel exist side by side and are proven bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads import layout

#: fixed-point scale for audio samples
AUDIO_SCALE = 256

WINDOW_LENGTH = 256
N_FRAMES = 16
FRAME_LENGTH = WINDOW_LENGTH // N_FRAMES
FEATURES_PER_FRAME = 2  # energy, zero crossings
N_FEATURES = N_FRAMES * FEATURES_PER_FRAME

FEATURE_BASE = layout.SCRATCH0_BASE
THRESHOLD_BASE = layout.SCRATCH1_BASE


def quantize_signal(signal: np.ndarray) -> np.ndarray:
    """Float window -> int32 fixed point."""
    signal = np.asarray(signal, dtype=np.float64)
    if signal.shape[-1] != WINDOW_LENGTH:
        raise ConfigurationError(
            f"window must have {WINDOW_LENGTH} samples, got {signal.shape}"
        )
    return np.round(signal * AUDIO_SCALE).astype(np.int64)


# ---------------------------------------------------------------------------
# numpy reference
# ---------------------------------------------------------------------------

def features_reference(quantized: np.ndarray) -> np.ndarray:
    """Per-frame (energy, zero-crossings), matching the assembly exactly.

    Energy is the sum of absolute sample values right-shifted by 4; a zero
    crossing is counted when consecutive samples have strictly opposite
    signs (zero counts as non-negative, matching the kernel's sign test).
    """
    quantized = np.asarray(quantized, dtype=np.int64).reshape(-1)
    out = []
    for frame_index in range(N_FRAMES):
        frame = quantized[frame_index * FRAME_LENGTH:
                          (frame_index + 1) * FRAME_LENGTH]
        energy = int(np.abs(frame).sum()) >> 4
        negative = frame < 0
        crossings = int(np.sum(negative[1:] != negative[:-1]))
        out.extend([energy, crossings])
    return np.array(out, dtype=np.int64)


def float_features(signal: np.ndarray) -> np.ndarray:
    """Feature extractor for dataset building."""
    return features_reference(quantize_signal(signal)).astype(np.float64)


def training_thresholds(feature_matrix: np.ndarray) -> np.ndarray:
    lo = feature_matrix.min(axis=0)
    hi = feature_matrix.max(axis=0)
    return np.ceil((lo + hi) / 2.0).astype(np.int64)


# ---------------------------------------------------------------------------
# memory helpers
# ---------------------------------------------------------------------------

def write_window(memory, quantized: np.ndarray,
                 base: int = layout.RAW_BASE) -> None:
    for index, value in enumerate(np.asarray(quantized, dtype=np.int64)):
        memory.store(base + 4 * index, int(value) & 0xFFFFFFFF, 4)


def write_thresholds(memory, thresholds: np.ndarray,
                     base: int = THRESHOLD_BASE) -> None:
    for index, value in enumerate(np.asarray(thresholds, dtype=np.int64)):
        memory.store(base + 4 * index, int(value) & 0xFFFFFFFF, 4)


def read_features(memory, base: int = FEATURE_BASE) -> np.ndarray:
    from repro.isa.encoding import to_signed32

    return np.array([to_signed32(memory.load(base + 4 * i, 4))
                     for i in range(N_FEATURES)], dtype=np.int64)


def read_packed_features(memory, base: int = layout.PACKED_INPUT_BASE) -> np.ndarray:
    from repro.bnn import quantize as q

    n_words = (N_FEATURES + 31) // 32
    words = np.array([memory.load(base + 4 * i, 4) for i in range(n_words)],
                     dtype=np.uint32)
    return q.unpack_bits(words, N_FEATURES)


# ---------------------------------------------------------------------------
# assembly kernels
# ---------------------------------------------------------------------------

def frame_features_asm(raw_base: int = layout.RAW_BASE,
                       feature_base: int = FEATURE_BASE,
                       standalone: bool = True) -> str:
    """Energy + zero-crossing count per frame, interleaved feature layout."""
    body = f"""
    # ---- {N_FRAMES} frames x (energy, zero crossings) over {WINDOW_LENGTH} samples
        li s0, {raw_base}
        li s1, {feature_base}
        li s2, 0                 # frame index
    af_frame:
        li t0, 0                 # sample index within frame
        li t3, 0                 # energy accumulator
        li t5, 0                 # crossing count
        li t6, 0                 # previous sign (0 = non-negative)
        # first sample decides the initial sign
        lw t4, 0(s0)
        bge t4, x0, af_first_pos
        li t6, 1
    af_first_pos:
    af_sample:
        slli t2, t0, 2
        add a0, s0, t2
        lw t4, 0(a0)
        # energy: accumulate |x|
        bge t4, x0, af_abs_done
        sub t4, x0, t4
    af_abs_done:
        add t3, t3, t4
        # zero crossing: compare current sign to previous
        lw t4, 0(a0)
        slt a1, t4, x0           # 1 if negative
        beq a1, t6, af_no_cross
        addi t5, t5, 1
        mv t6, a1
    af_no_cross:
        addi t0, t0, 1
        li t2, {FRAME_LENGTH}
        blt t0, t2, af_sample
        srai t3, t3, 4           # energy >> 4
        slli t2, s2, 3           # 2 features x 4 bytes per frame
        add a0, s1, t2
        sw t3, 0(a0)
        sw t5, 4(a0)
        addi s0, s0, {4 * FRAME_LENGTH}
        addi s2, s2, 1
        li t2, {N_FRAMES}
        blt s2, t2, af_frame
    """
    return body + ("\n        ebreak\n" if standalone else "")


def binarize_asm(feature_base: int = FEATURE_BASE,
                 threshold_base: int = THRESHOLD_BASE,
                 packed_base: int = layout.PACKED_INPUT_BASE,
                 standalone: bool = True) -> str:
    """Compare the 32 features to thresholds and pack one word of bits."""
    body = f"""
    # ---- binarize {N_FEATURES} features and pack
        li s0, {feature_base}
        li s1, {threshold_base}
        li s2, {packed_base}
        li t0, 0
        li s5, 0
        li s6, 0
    ab_feat:
        slli t2, t0, 2
        add a0, s0, t2
        lw t3, 0(a0)
        add a1, s1, t2
        lw t4, 0(a1)
        slt t5, t3, t4
        xori t5, t5, 1
        sll t5, t5, s6
        or s5, s5, t5
        addi s6, s6, 1
        li t4, 32
        bne s6, t4, ab_next
        sw s5, 0(s2)
        addi s2, s2, 4
        li s5, 0
        li s6, 0
    ab_next:
        addi t0, t0, 1
        li t4, {N_FEATURES}
        blt t0, t4, ab_feat
        beq s6, x0, ab_done
        sw s5, 0(s2)
    ab_done:
    """
    return body + ("\n        ebreak\n" if standalone else "")


def full_keyword_asm(finish: str = "ebreak") -> str:
    """Feature extraction + binarization, ending in ebreak/trans_bnn."""
    if finish not in ("ebreak", "trans_bnn"):
        raise ConfigurationError(f"unsupported finish {finish!r}")
    return (frame_features_asm(standalone=False)
            + binarize_asm(standalone=False)
            + f"\n        {finish}\n")
