"""Software BNN inference kernels for the RV32I CPU (paper Table 1).

Table 1 compares a *standalone CPU* running BNN inference in software
against the accelerator.  Two implementations are generated:

* **naive** — weights stored one int8 per byte, scalar multiply-accumulate
  (what simple compiled C looks like); the paper's standalone-CPU baseline,
* **packed** — weights and activations bit-packed, XNOR + SWAR popcount
  per 32 inputs; the optimized hand-written kernel.

Both produce exactly the same classification as :class:`repro.bnn.BNNModel`
(the unit tests prove it), and their measured cycle counts calibrate the
analytic estimates in :mod:`repro.bnn.reference`.

Memory layout (naive):  for each layer, ``fan_out*fan_in`` int8 weights then
``fan_out`` int32 biases, all layers consecutive from ``WEIGHTS_BASE``.
Activations ping-pong between two word buffers; the input activation vector
(one word per ±1 value) is written by the caller.  The predicted class index
lands in ``RESULT_BASE``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.bnn import quantize as q
from repro.bnn.model import BNNModel
from repro.workloads import layout

WEIGHTS_BASE = layout.RAW_BASE
RESULT_ADDR = layout.RESULT_BASE


def buffer_bases(model: BNNModel, implementation: str) -> Tuple[int, int, int]:
    """(act_a, act_b, scores) placed after the stored model, overlap-free."""
    if implementation == "naive":
        end = WEIGHTS_BASE
        for layer in model.layers:
            end += layer.fan_in * layer.fan_out
            end = (end + 3) & ~3
            end += 4 * layer.fan_out
    else:
        end = WEIGHTS_BASE
        for layer in model.layers:
            end += 4 * layer.fan_out * ((layer.fan_in + 31) // 32)
            end += 4 * layer.fan_out
    act_bytes = 4 * max(layer.fan_in for layer in model.layers)
    act_a = (end + 63) & ~63
    act_b = act_a + ((act_bytes + 63) & ~63)
    scores = act_b + ((act_bytes + 63) & ~63)
    return act_a, act_b, scores


# ---------------------------------------------------------------------------
# data placement
# ---------------------------------------------------------------------------

def write_naive_model(memory, model: BNNModel) -> List[Tuple[int, int]]:
    """Store int8 weights + int32 biases; returns per-layer (w_addr, b_addr)."""
    addr = WEIGHTS_BASE
    locations = []
    for layer in model.layers:
        w_addr = addr
        flat = layer.weights.reshape(-1)
        for index, value in enumerate(flat):
            memory.store(addr + index, int(value) & 0xFF, 1)
        addr += len(flat)
        addr = (addr + 3) & ~3  # word-align the biases
        b_addr = addr
        for index, bias in enumerate(layer.bias):
            memory.store(addr + 4 * index, int(bias) & 0xFFFFFFFF, 4)
        addr += 4 * len(layer.bias)
        locations.append((w_addr, b_addr))
    return locations


def write_packed_model(memory, model: BNNModel) -> List[Tuple[int, int]]:
    """Store bit-packed weights + int32 biases per layer."""
    addr = WEIGHTS_BASE
    locations = []
    for layer in model.layers:
        w_addr = addr
        packed = layer.packed_weights().reshape(-1)
        for index, word in enumerate(packed):
            memory.store(addr + 4 * index, int(word), 4)
        addr += 4 * len(packed)
        b_addr = addr
        for index, bias in enumerate(layer.bias):
            memory.store(addr + 4 * index, int(bias) & 0xFFFFFFFF, 4)
        addr += 4 * len(layer.bias)
        locations.append((w_addr, b_addr))
    return locations


def write_sign_activations(memory, x_sign: np.ndarray, base: int) -> None:
    for index, value in enumerate(np.asarray(x_sign, dtype=np.int64)):
        memory.store(base + 4 * index, int(value) & 0xFFFFFFFF, 4)


def write_packed_activations(memory, x_sign: np.ndarray, base: int) -> None:
    words = q.pack_bits(q.sign_to_bits(np.asarray(x_sign)))
    for index, word in enumerate(words):
        memory.store(base + 4 * index, int(word), 4)


# ---------------------------------------------------------------------------
# kernel generation
# ---------------------------------------------------------------------------

def naive_bnn_asm(model: BNNModel, locations: List[Tuple[int, int]],
                  bases: Tuple[int, int, int]) -> str:
    """Scalar int8 MAC inference for ``model``."""
    parts = ["    # ---- naive software BNN inference"]
    in_base, out_base, scores_base = bases
    for index, layer in enumerate(model.layers):
        w_addr, b_addr = locations[index]
        last = index == len(model.layers) - 1
        dest = scores_base if last else out_base
        parts.append(f"""
        # layer {index}: {layer.fan_in} -> {layer.fan_out}
        li s0, {w_addr}          # weight byte pointer (walks forward)
        li s1, {b_addr}
        li s2, {in_base}
        li s3, {dest}
        li t0, 0                 # neuron
    l{index}_neuron:
        slli t1, t0, 2
        add a1, s1, t1
        lw t3, 0(a1)             # acc = bias
        li t1, 0                 # input index
    l{index}_mac:
        add a0, s0, t1
        lb t4, 0(a0)             # weight (+-1)
        slli t2, t1, 2
        add a1, s2, t2
        lw t5, 0(a1)             # activation (+-1)
        mul t4, t4, t5
        add t3, t3, t4
        addi t1, t1, 1
        li t4, {layer.fan_in}
        blt t1, t4, l{index}_mac
        add s0, s0, t4           # next neuron's weight row
    """)
        if last:
            parts.append(f"""
        slli t1, t0, 2
        add a1, s3, t1
        sw t3, 0(a1)             # raw score
    """)
        else:
            parts.append(f"""
        li t4, 1
        bge t3, x0, l{index}_sign
        li t4, -1
    l{index}_sign:
        slli t1, t0, 2
        add a1, s3, t1
        sw t4, 0(a1)
    """)
        parts.append(f"""
        addi t0, t0, 1
        li t4, {layer.fan_out}
        blt t0, t4, l{index}_neuron
    """)
        in_base, out_base = out_base, in_base
    parts.append(_argmax_asm(model.n_classes, scores_base))
    return "\n".join(parts)


def packed_bnn_asm(model: BNNModel, locations: List[Tuple[int, int]],
                   bases: Tuple[int, int, int]) -> str:
    """Bit-packed XNOR + SWAR-popcount inference for ``model``."""
    parts = [f"""
    # ---- packed software BNN inference
        li s8, 0x55555555
        li s9, 0x33333333
        li s10, 0x0f0f0f0f
    """]
    in_base, out_base, scores_base = bases
    for index, layer in enumerate(model.layers):
        w_addr, b_addr = locations[index]
        last = index == len(model.layers) - 1
        dest = scores_base if last else out_base
        n_words = (layer.fan_in + 31) // 32
        tail = layer.fan_in % 32
        tail_mask = (1 << tail) - 1 if tail else 0xFFFFFFFF
        parts.append(f"""
        # layer {index}: {layer.fan_in} -> {layer.fan_out} ({n_words} words)
        li s0, {w_addr}
        li s1, {b_addr}
        li s2, {in_base}
        li s3, {dest}
        li s4, 0                 # output word accumulator
        li s5, 0                 # output bit position
        li t0, 0                 # neuron
    p{index}_neuron:
        li t1, 0                 # word index
        li t3, 0                 # match count
    p{index}_word:
        slli t2, t1, 2
        add a0, s0, t2
        lw t4, 0(a0)             # weight word
        add a1, s2, t2
        lw t5, 0(a1)             # activation word
        xor t4, t4, t5
        not t4, t4               # xnor
        li t6, {n_words - 1}
        bne t1, t6, p{index}_popc
        li t6, {tail_mask & 0xFFFFFFFF}
        and t4, t4, t6           # mask the padding bits
    p{index}_popc:
        srli t5, t4, 1
        and t5, t5, s8
        sub t4, t4, t5
        srli t5, t4, 2
        and t5, t5, s9
        and t4, t4, s9
        add t4, t4, t5
        srli t5, t4, 4
        add t4, t4, t5
        and t4, t4, s10
        srli t5, t4, 8
        add t4, t4, t5
        srli t5, t4, 16
        add t4, t4, t5
        andi t4, t4, 63
        add t3, t3, t4
        addi t1, t1, 1
        li t6, {n_words}
        blt t1, t6, p{index}_word
        li t6, {4 * n_words}
        add s0, s0, t6           # next neuron's weight row
    """)
        parts.append(f"""
        # dot = 2*matches - fan_in, then add bias
        slli t3, t3, 1
        addi t3, t3, {-layer.fan_in}
        slli t2, t0, 2
        add a1, s1, t2
        lw t4, 0(a1)
        add t3, t3, t4
    """)
        if last:
            parts.append(f"""
        add a1, s3, t2
        sw t3, 0(a1)
    """)
        else:
            parts.append(f"""
        slt t4, t3, x0
        xori t4, t4, 1           # bit = (pre >= 0)
        sll t4, t4, s5
        or s4, s4, t4
        addi s5, s5, 1
        li t4, 32
        bne s5, t4, p{index}_nobits
        slli t2, t0, 2
        srli t2, t2, 7           # word index = neuron//32
        slli t2, t2, 2
        add a1, s3, t2
        sw s4, 0(a1)
        li s4, 0
        li s5, 0
    p{index}_nobits:
    """)
        parts.append(f"""
        addi t0, t0, 1
        li t4, {layer.fan_out}
        blt t0, t4, p{index}_neuron
    """)
        if not last and layer.fan_out % 32:
            final_word = (layer.fan_out // 32) * 4
            parts.append(f"""
        li a1, {dest + final_word}
        sw s4, 0(a1)             # flush partial activation word
        li s4, 0
        li s5, 0
    """)
        in_base, out_base = out_base, in_base
    parts.append(_argmax_asm(model.n_classes, scores_base))
    return "\n".join(parts)


def _argmax_asm(n_classes: int, scores_base: int) -> str:
    return f"""
        # ---- argmax over {n_classes} scores
        li s0, {scores_base}
        lw t1, 0(s0)             # best score
        li t2, 0                 # best index
        li t0, 1
    argmax_loop:
        slli t3, t0, 2
        add a0, s0, t3
        lw t4, 0(a0)
        ble t4, t1, argmax_keep
        mv t1, t4
        mv t2, t0
    argmax_keep:
        addi t0, t0, 1
        li t4, {n_classes}
        blt t0, t4, argmax_loop
        li a0, {RESULT_ADDR}
        sw t2, 0(a0)
        ebreak
    """


# ---------------------------------------------------------------------------
# execution helpers
# ---------------------------------------------------------------------------

def run_software_bnn(model: BNNModel, x_sign: np.ndarray,
                     implementation: str = "naive"):
    """Run one software inference on the pipeline; returns (prediction, stats)."""
    from repro.cpu import FlatMemory, run_pipelined
    from repro.isa import assemble

    memory = FlatMemory(size=1 << 18)
    bases = buffer_bases(model, implementation)
    if implementation == "naive":
        locations = write_naive_model(memory, model)
        write_sign_activations(memory, x_sign, bases[0])
        source = naive_bnn_asm(model, locations, bases)
    elif implementation == "packed":
        locations = write_packed_model(memory, model)
        write_packed_activations(memory, x_sign, bases[0])
        source = packed_bnn_asm(model, locations, bases)
    else:
        raise ValueError(f"unknown implementation {implementation!r}")
    program = assemble(source)
    _, result = run_pipelined(program, memory=memory)
    if result.stop_reason != "halt":
        raise RuntimeError(f"software BNN did not halt: {result.stop_reason}")
    prediction = memory.load(RESULT_ADDR, 4)
    return prediction, result.stats
