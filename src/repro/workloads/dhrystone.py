"""A Dhrystone-like synthetic integer benchmark (paper Table 2).

The original Dhrystone mixes record assignments, string copies/compares,
integer arithmetic, conditionals, and function calls in fixed proportions.
This kernel reproduces that mix in RV32I assembly so the simulator can
measure a cycles-per-iteration figure; :mod:`repro.power.metrics` converts
it into DMIPS/MHz and DMIPS/mW exactly as the paper's Table 2 does
(1 DMIPS == 1757 Dhrystones/s).

The absolute score depends on this kernel's size the same way real
Dhrystone scores depend on the compiler; the paper's NCPU reports
0.86 DMIPS/MHz (~660 cycles/iteration) and ours lands in the same band.
"""

from __future__ import annotations

from repro.workloads import layout

#: scratch record locations (8-word "records", 32-byte strings)
RECORD_A = layout.RAW_BASE
RECORD_B = layout.RAW_BASE + 0x40
STRING_A = layout.RAW_BASE + 0x80
STRING_B = layout.RAW_BASE + 0xC0
RESULT_SLOT = layout.RAW_BASE + 0x100


def dhrystone_asm(iterations: int = 50) -> str:
    """The benchmark program; leaves a checksum in ``RESULT_SLOT``."""
    return f"""
    # ---- Dhrystone-like synthetic benchmark, {iterations} iterations
        li sp, {layout.SCRATCH0_BASE}
        li s0, {RECORD_A}
        li s1, {RECORD_B}
        li s2, {STRING_A}
        li s3, {STRING_B}
        li s4, 0                 # iteration counter
        li s5, {iterations}
        li s7, 0                 # checksum

        # initialize the records and strings
        li t0, 0
    init:
        slli t1, t0, 2
        add a0, s0, t1
        addi t2, t0, 17
        sw t2, 0(a0)
        add a0, s2, t1
        addi t2, t0, 65          # 'A' + i
        sw t2, 0(a0)
        add a0, s3, t1
        sw t2, 0(a0)
        addi t0, t0, 1
        li t1, 8
        blt t0, t1, init

    main_loop:
        # Proc1/Proc3: record assignments (two 8-word copies A <-> B)
        call proc_record
        call proc_record
        # Proc6-style pointer chase over the record (twice, plus another
        # record refresh, matching real Dhrystone's access-heavy profile)
        call proc_scan
        add s7, s7, a0
        call proc_record
        call proc_scan
        add s7, s7, a0
        # string copy (8 words) and compare, twice (Str_Comp dominates
        # real Dhrystone's profile)
        call proc_strcpy
        call proc_strcmp
        add s7, s7, a0           # fold the compare result
        call proc_strcpy
        call proc_strcmp
        add s7, s7, a0
        # integer arithmetic block (Proc7/Func1 style)
        addi t0, s4, 2
        addi t1, s4, 3
        add t2, t0, t1
        sub t3, t2, s4
        slli t4, t3, 2
        xor t5, t4, t0
        and t6, t5, t1
        or t2, t6, t3
        srai t2, t2, 1
        add s7, s7, t2
        # conditional chain (Func2/Func3 style)
        andi t0, s4, 3
        beqz t0, case_zero
        li t1, 1
        beq t0, t1, case_one
        addi s7, s7, 5
        j case_done
    case_zero:
        addi s7, s7, 1
        j case_done
    case_one:
        addi s7, s7, 3
    case_done:
        addi s4, s4, 1
        blt s4, s5, main_loop

        li a1, {RESULT_SLOT}
        sw s7, 0(a1)
        ebreak

    proc_record:
        lw t0, 0(s0)
        sw t0, 0(s1)
        lw t0, 4(s0)
        sw t0, 4(s1)
        lw t0, 8(s0)
        sw t0, 8(s1)
        lw t0, 12(s0)
        sw t0, 12(s1)
        lw t0, 16(s0)
        sw t0, 16(s1)
        lw t0, 20(s0)
        sw t0, 20(s1)
        lw t0, 24(s0)
        sw t0, 24(s1)
        lw t0, 28(s0)
        addi t0, t0, 1           # record version bump
        sw t0, 28(s1)
        ret

    proc_scan:
        # walk the record accumulating a checksum (load-heavy inner loop)
        li t0, 0
        li a0, 0
    scan_loop:
        slli t1, t0, 2
        add a1, s1, t1
        lw t2, 0(a1)
        add a0, a0, t2
        andi a0, a0, 0xff
        addi t0, t0, 1
        li t1, 8
        blt t0, t1, scan_loop
        ret

    proc_strcpy:
        li t0, 0
    strcpy_loop:
        slli t1, t0, 2
        add a0, s2, t1
        lw t2, 0(a0)
        add a0, s3, t1
        sw t2, 0(a0)
        addi t0, t0, 1
        li t1, 8
        blt t0, t1, strcpy_loop
        ret

    proc_strcmp:
        li t0, 0
        li a0, 0
    strcmp_loop:
        slli t1, t0, 2
        add a1, s2, t1
        lw t2, 0(a1)
        add a1, s3, t1
        lw t3, 0(a1)
        bne t2, t3, strcmp_diff
        addi t0, t0, 1
        li t1, 8
        blt t0, t1, strcmp_loop
        li a0, 1                 # equal
        ret
    strcmp_diff:
        li a0, 0
        ret
    """


def reference_checksum(iterations: int = 50) -> int:
    """Python model of the benchmark's checksum (for verification)."""
    # the record after copying: A = [17..24], B[7] bumped to 25
    record_b = list(range(17, 24)) + [25]
    scan = 0
    for value in record_b:
        scan = (scan + value) & 0xFF
    checksum = 0
    for i in range(iterations):
        checksum += 2 * scan  # two proc_scans over the copied record
        checksum += 2  # two strcmps always find the strings equal
        t2 = (i + 2) + (i + 3)
        t3 = t2 - i
        t4 = (t3 << 2) & 0xFFFFFFFF
        t5 = t4 ^ (i + 2)
        t6 = t5 & (i + 3)
        t2b = t6 | t3
        checksum += t2b >> 1
        selector = i & 3
        if selector == 0:
            checksum += 1
        elif selector == 1:
            checksum += 3
        else:
            checksum += 5
    return checksum & 0xFFFFFFFF


def measure_cycles_per_iteration(iterations: int = 50) -> float:
    """Run the benchmark on the cycle-accurate pipeline."""
    from repro.cpu import run_pipelined
    from repro.isa import assemble

    program = assemble(dhrystone_asm(iterations))
    _, result = run_pipelined(program)
    if result.stop_reason != "halt":
        raise RuntimeError(f"benchmark did not halt: {result.stop_reason}")
    # subtract the fixed setup portion by measuring two lengths
    program2 = assemble(dhrystone_asm(iterations * 2))
    _, result2 = run_pipelined(program2)
    return (result2.stats.cycles - result.stats.cycles) / iterations
