"""Image-classification pre-processing workload (paper Fig 15a).

The CPU takes a raw RGB frame and produces the binarized, bit-packed BNN
input, through the paper's three stages:

1. **resize** — 2x2 box-average downsample of each colour plane,
2. **grayscale filter** — RGB-to-gray conversion ``(r + 2g + b) >> 2``
   followed by an integer 3x3 Gaussian smoothing kernel
   ``[[1,2,1],[2,4,2],[1,2,1]] / 16`` (borders passed through),
3. **normalization** — mean computation, mean-centering, and binarization
   against the training threshold, bit-packed into the image memory.

Every stage exists twice: a numpy reference (golden model) and an RV32I
assembly kernel generated for the cycle-accurate simulator.  The unit tests
prove they agree bit-for-bit.

Pixels are 8-bit values stored one per 32-bit word in planar layout (plane
``c`` of an ``H x W`` frame starts at ``base + c*H*W*4``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bnn import quantize as q
from repro.errors import ConfigurationError
from repro.workloads import layout

#: binarization threshold on 0..255 pixels (matches Dataset.binarized(0.5))
BINARIZE_THRESHOLD = 128


@dataclass(frozen=True)
class ImageShape:
    """Raw-frame geometry; output is a (height/2, width/2) gray image."""

    height: int = 32
    width: int = 32

    def __post_init__(self):
        if self.height % 2 or self.width % 2:
            raise ConfigurationError("raw frame dimensions must be even")

    @property
    def out_height(self) -> int:
        return self.height // 2

    @property
    def out_width(self) -> int:
        return self.width // 2

    @property
    def n_outputs(self) -> int:
        return self.out_height * self.out_width


# ---------------------------------------------------------------------------
# numpy references (golden models)
# ---------------------------------------------------------------------------

def resize_reference(raw: np.ndarray) -> np.ndarray:
    """2x2 box downsample of a (3, H, W) uint frame."""
    raw = np.asarray(raw, dtype=np.int64)
    return (raw[:, 0::2, 0::2] + raw[:, 0::2, 1::2]
            + raw[:, 1::2, 0::2] + raw[:, 1::2, 1::2]) >> 2


def grayscale_reference(resized: np.ndarray) -> np.ndarray:
    """(3, h, w) -> (h, w) via (r + 2g + b) >> 2, then 3x3 Gaussian."""
    resized = np.asarray(resized, dtype=np.int64)
    gray = (resized[0] + 2 * resized[1] + resized[2]) >> 2
    smoothed = gray.copy()
    kernel = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=np.int64)
    h, w = gray.shape
    for y in range(1, h - 1):
        for x in range(1, w - 1):
            window = gray[y - 1:y + 2, x - 1:x + 2]
            smoothed[y, x] = int((window * kernel).sum()) >> 4
    return smoothed


def normalize_reference(filtered: np.ndarray):
    """Mean-center and binarize; returns ``(mean, packed_words)``.

    The binarization compares the centered pixel against the centered
    training threshold, which is arithmetically ``px >= BINARIZE_THRESHOLD``
    — the mean subtraction is the normalization work the CPU performs.
    """
    filtered = np.asarray(filtered, dtype=np.int64).reshape(-1)
    n = filtered.size
    if n & (n - 1):
        raise ConfigurationError("pixel count must be a power of two")
    mean = int(filtered.sum()) >> int(np.log2(n))
    centered = filtered - mean
    bits = (centered >= (BINARIZE_THRESHOLD - mean)).astype(np.uint8)
    return mean, q.pack_bits(bits)


def pipeline_reference(raw: np.ndarray):
    """Full pre-processing chain; returns ``(gray, packed_words)``."""
    resized = resize_reference(raw)
    filtered = grayscale_reference(resized)
    _, packed = normalize_reference(filtered)
    return filtered, packed


def synthesize_raw_frame(gray_image: np.ndarray, rng=None) -> np.ndarray:
    """Turn a dataset gray image in [0, 1] into a plausible raw RGB frame.

    The frame is a 2x nearest-neighbour upscale with the gray value on all
    three channels (plus optional per-channel jitter), so the pre-processing
    pipeline approximately recovers the dataset image.
    """
    gray_image = np.asarray(gray_image, dtype=np.float64)
    pixels = np.clip(gray_image * 255.0, 0, 255).astype(np.int64)
    upscaled = np.kron(pixels, np.ones((2, 2), dtype=np.int64))
    frame = np.stack([upscaled, upscaled, upscaled])
    if rng is not None:
        jitter = rng.integers(-6, 7, size=frame.shape)
        frame = np.clip(frame + jitter, 0, 255)
    return frame


def preprocess_images(images: np.ndarray, size: int = 16, rng=None) -> np.ndarray:
    """Run the reference pipeline over dataset images; returns sign inputs.

    Used to train the image-use-case BNN on exactly what the CPU pipeline
    will feed the accelerator.
    """
    signs = []
    for image in images:
        raw = synthesize_raw_frame(image.reshape(size, size), rng=rng)
        filtered, _ = pipeline_reference(raw)
        bits = (filtered.reshape(-1) >= BINARIZE_THRESHOLD).astype(np.uint8)
        signs.append(q.bits_to_sign(bits))
    return np.array(signs)


# ---------------------------------------------------------------------------
# memory helpers
# ---------------------------------------------------------------------------

def write_raw_frame(memory, raw: np.ndarray, base: int = layout.RAW_BASE) -> None:
    """Store a (3, H, W) frame planar, one pixel per word."""
    flat = np.asarray(raw, dtype=np.int64).reshape(-1)
    for index, value in enumerate(flat):
        memory.store(base + 4 * index, int(value), 4)


def read_plane(memory, base: int, height: int, width: int) -> np.ndarray:
    values = [memory.load(base + 4 * i, 4) for i in range(height * width)]
    return np.array(values, dtype=np.int64).reshape(height, width)


def read_packed_input(memory, n_bits: int,
                      base: int = layout.PACKED_INPUT_BASE) -> np.ndarray:
    n_words = (n_bits + 31) // 32
    words = np.array([memory.load(base + 4 * i, 4) for i in range(n_words)],
                     dtype=np.uint32)
    return q.unpack_bits(words, n_bits)


# ---------------------------------------------------------------------------
# assembly kernels
# ---------------------------------------------------------------------------

def resize_asm(shape: ImageShape = ImageShape(),
               raw_base: int = layout.RAW_BASE,
               out_base: int = layout.SCRATCH0_BASE,
               standalone: bool = True) -> str:
    """2x2 box downsample over three planes.

    Register plan: s0=input plane ptr base, s1=output ptr, s2=channel,
    t0=oy, t1=ox, t2/t3/t4 scratch, a-regs addresses.
    """
    h, w = shape.height, shape.width
    body = f"""
    # ---- resize: (3, {h}, {w}) -> (3, {h // 2}, {w // 2}) 2x2 box average
        li s2, 0                 # channel
        li s1, {out_base}        # output pointer (runs contiguously)
    resize_ch:
        li t6, {4 * h * w}
        mul t5, s2, t6
        li s0, {raw_base}
        add s0, s0, t5           # input plane base
        li t0, 0                 # oy
    resize_row:
        li t1, 0                 # ox
    resize_px:
        slli t2, t0, 1           # iy = 2*oy
        li t3, {w}
        mul t2, t2, t3           # iy * W
        slli t3, t1, 1           # ix = 2*ox
        add t2, t2, t3           # iy*W + ix
        slli t2, t2, 2
        add a0, s0, t2           # &in[iy][ix]
        lw t3, 0(a0)
        lw t4, 4(a0)
        add t3, t3, t4
        lw t4, {4 * w}(a0)
        add t3, t3, t4
        lw t4, {4 * w + 4}(a0)
        add t3, t3, t4
        srli t3, t3, 2
        sw t3, 0(s1)
        addi s1, s1, 4
        addi t1, t1, 1
        li t4, {w // 2}
        blt t1, t4, resize_px
        addi t0, t0, 1
        li t4, {h // 2}
        blt t0, t4, resize_row
        addi s2, s2, 1
        li t4, 3
        blt s2, t4, resize_ch
    """
    return body + ("\n        ebreak\n" if standalone else "")


def grayscale_asm(shape: ImageShape = ImageShape(),
                  in_base: int = layout.SCRATCH0_BASE,
                  gray_base: int = layout.SCRATCH1_BASE,
                  out_base: int = layout.SCRATCH2_BASE,
                  standalone: bool = True) -> str:
    """RGB->gray conversion then 3x3 Gaussian smoothing."""
    h, w = shape.out_height, shape.out_width
    plane = 4 * h * w
    body = f"""
    # ---- grayscale: (r + 2g + b) >> 2 over {h}x{w}
        li s0, {in_base}
        li s1, {gray_base}
        li s7, {plane}           # plane stride in bytes
        li t0, 0
    gray_px:
        slli t2, t0, 2
        add a0, s0, t2
        lw t3, 0(a0)             # r
        add a1, a0, s7
        lw t4, 0(a1)             # g
        slli t4, t4, 1
        add t3, t3, t4
        add a1, a1, s7
        lw t4, 0(a1)             # b
        add t3, t3, t4
        srli t3, t3, 2
        add a1, s1, t2
        sw t3, 0(a1)
        addi t0, t0, 1
        li t4, {h * w}
        blt t0, t4, gray_px

    # ---- 3x3 Gaussian [1 2 1; 2 4 2; 1 2 1] >> 4 (inner pixels)
        li s0, {gray_base}
        li s1, {out_base}
        li t0, 0                 # copy borders first: out = gray
    blur_copy:
        slli t2, t0, 2
        add a0, s0, t2
        lw t3, 0(a0)
        add a1, s1, t2
        sw t3, 0(a1)
        addi t0, t0, 1
        li t4, {h * w}
        blt t0, t4, blur_copy

        li t0, 1                 # y
    blur_row:
        li t1, 1                 # x
    blur_px:
        li t2, {w}
        mul t2, t0, t2
        add t2, t2, t1
        slli t2, t2, 2
        add a0, s0, t2           # &gray[y][x]
        # row above
        lw t3, {-4 * w - 4}(a0)
        lw t4, {-4 * w}(a0)
        slli t4, t4, 1
        add t3, t3, t4
        lw t4, {-4 * w + 4}(a0)
        add t3, t3, t4
        # centre row
        lw t4, -4(a0)
        slli t4, t4, 1
        add t3, t3, t4
        lw t4, 0(a0)
        slli t4, t4, 2
        add t3, t3, t4
        lw t4, 4(a0)
        slli t4, t4, 1
        add t3, t3, t4
        # row below
        lw t4, {4 * w - 4}(a0)
        add t3, t3, t4
        lw t4, {4 * w}(a0)
        slli t4, t4, 1
        add t3, t3, t4
        lw t4, {4 * w + 4}(a0)
        add t3, t3, t4
        srli t3, t3, 4
        add a1, s1, t2
        sw t3, 0(a1)
        addi t1, t1, 1
        li t4, {w - 1}
        blt t1, t4, blur_px
        addi t0, t0, 1
        li t4, {h - 1}
        blt t0, t4, blur_row
    """
    return body + ("\n        ebreak\n" if standalone else "")


def normalize_asm(shape: ImageShape = ImageShape(),
                  in_base: int = layout.SCRATCH2_BASE,
                  packed_base: int = layout.PACKED_INPUT_BASE,
                  standalone: bool = True) -> str:
    """Mean, mean-centering, binarization, and bit packing."""
    n = shape.n_outputs
    shift = n.bit_length() - 1
    if 1 << shift != n:
        raise ConfigurationError("output pixel count must be a power of two")
    n_words = (n + 31) // 32
    body = f"""
    # ---- normalization over {n} pixels: mean, centre, binarize, pack
        li s0, {in_base}
        li t0, 0
        li t3, 0                 # sum
    norm_sum:
        slli t2, t0, 2
        add a0, s0, t2
        lw t4, 0(a0)
        add t3, t3, t4
        addi t0, t0, 1
        li t4, {n}
        blt t0, t4, norm_sum
        srai s3, t3, {shift}     # mean
        li s4, {BINARIZE_THRESHOLD}
        sub s4, s4, s3           # centred threshold

        li s1, {packed_base}
        li t0, 0                 # pixel index
        li s5, 0                 # current word
        li s6, 0                 # bit position
    norm_px:
        slli t2, t0, 2
        add a0, s0, t2
        lw t3, 0(a0)
        sub t3, t3, s3           # centred pixel
        slt t4, t3, s4           # 1 if below threshold
        xori t4, t4, 1           # bit = centred >= threshold
        sll t4, t4, s6
        or s5, s5, t4
        addi s6, s6, 1
        li t4, 32
        bne s6, t4, norm_next
        sw s5, 0(s1)
        addi s1, s1, 4
        li s5, 0
        li s6, 0
    norm_next:
        addi t0, t0, 1
        li t4, {n}
        blt t0, t4, norm_px
        bne s6, x0, norm_flush   # flush a partial last word
        j norm_done
    norm_flush:
        sw s5, 0(s1)
    norm_done:
    """
    _ = n_words
    return body + ("\n        ebreak\n" if standalone else "")


def full_pipeline_asm(shape: ImageShape = ImageShape(),
                      finish: str = "ebreak") -> str:
    """All three stages back-to-back, ending in ``ebreak`` or ``trans_bnn``.

    The ``trans_bnn`` ending is the NCPU flow: the packed input is already
    sitting in the image memory when the core flips into BNN mode.
    """
    if finish not in ("ebreak", "trans_bnn"):
        raise ConfigurationError(f"unsupported finish {finish!r}")
    stages = (resize_asm(shape, standalone=False)
              + grayscale_asm(shape, standalone=False)
              + normalize_asm(shape, standalone=False))
    return stages + f"\n        {finish}\n"


#: stage name -> generator, for the breakdown experiments
STAGE_GENERATORS = {
    "resize": resize_asm,
    "grayscale": grayscale_asm,
    "normalize": normalize_asm,
}
