"""Data-memory layout conventions for the workload assembly kernels.

All workload programs run against the NCPU's CPU-mode data space (the reused
SRAM banks behind the address arbiter, see :mod:`repro.mem.memory_map`):

* raw inputs and scratch buffers live in the reused *weight* banks,
* the final binarized, bit-packed BNN input is written into the *image*
  memory (base 0), exactly where the accelerator expects it after a
  ``trans_bnn`` mode switch,
* classification results are read back from the *output* memory.

A plain :class:`~repro.cpu.memory.FlatMemory` works too (the layout only
assumes a flat little-endian space), which the unit tests use.
"""

from __future__ import annotations

from repro.mem.memory_map import IMAGE_BYTES, OUTPUT_BYTES, W1_BYTES, W2_BYTES

#: packed BNN input bits (the accelerator's image memory)
PACKED_INPUT_BASE = 0x0000

#: BNN classification results (the accelerator's output memory)
RESULT_BASE = IMAGE_BYTES  # 0x1000

#: raw workload input (reused w1 bank, 25 kB)
RAW_BASE = IMAGE_BYTES + OUTPUT_BYTES  # 0x1400

#: first scratch buffer (reused w2 bank)
SCRATCH0_BASE = RAW_BASE + W1_BYTES  # 0x7800

#: second scratch buffer (reused w3 bank)
SCRATCH1_BASE = SCRATCH0_BASE + W2_BYTES  # 0x9200

#: third scratch buffer (reused w4 bank)
SCRATCH2_BASE = SCRATCH1_BASE + W2_BYTES  # 0xAC00
