"""MiBench-style embedded kernels (paper Fig 11a tests "multiple embedded
programs from the MiBench benchmark suite").

Each kernel is a self-contained RV32I program with a numpy/python golden
model; ``run_kernel`` executes it on the cycle-accurate pipeline and checks
the result, returning the run statistics (used by the Fig 11a power-overhead
experiment, which needs each program's retired-instruction mix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.cpu import FlatMemory, run_pipelined
from repro.cpu.env import ExecStats
from repro.isa import assemble
from repro.workloads import layout

DATA = layout.RAW_BASE
OUT = layout.SCRATCH0_BASE


@dataclass
class KernelResult:
    name: str
    stats: ExecStats
    passed: bool


# ---------------------------------------------------------------------------
# crc32 (telecomm/CRC32): bitwise, polynomial 0xEDB88320
# ---------------------------------------------------------------------------

def crc32_reference(data: bytes) -> int:
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0xEDB88320
            else:
                crc >>= 1
    return crc ^ 0xFFFFFFFF


def crc32_asm(n_bytes: int) -> str:
    return f"""
        li s0, {DATA}
        li s1, {n_bytes}
        li t0, -1                # crc = 0xffffffff
        li s2, 0xedb88320
        li t1, 0                 # index
    crc_byte:
        add a0, s0, t1
        lbu t2, 0(a0)
        xor t0, t0, t2
        li t3, 0
    crc_bit:
        andi t4, t0, 1
        srli t0, t0, 1
        beqz t4, crc_nopoly
        xor t0, t0, s2
    crc_nopoly:
        addi t3, t3, 1
        li t4, 8
        blt t3, t4, crc_bit
        addi t1, t1, 1
        blt t1, s1, crc_byte
        not t0, t0
        li a0, {OUT}
        sw t0, 0(a0)
        ebreak
    """


# ---------------------------------------------------------------------------
# qsort stand-in (auto/qsort): insertion sort of n words
# ---------------------------------------------------------------------------

def sort_asm(n: int) -> str:
    return f"""
        li s0, {DATA}
        li t0, 1                 # i
    sort_outer:
        slli t1, t0, 2
        add a0, s0, t1
        lw t2, 0(a0)             # key
        addi t3, t0, -1          # j
    sort_inner:
        bltz t3, sort_place
        slli t1, t3, 2
        add a0, s0, t1
        lw t4, 0(a0)
        ble t4, t2, sort_place
        sw t4, 4(a0)
        addi t3, t3, -1
        j sort_inner
    sort_place:
        addi t3, t3, 1
        slli t1, t3, 2
        add a0, s0, t1
        sw t2, 0(a0)
        addi t0, t0, 1
        li t1, {n}
        blt t0, t1, sort_outer
        ebreak
    """


# ---------------------------------------------------------------------------
# FIR filter (telecomm/FFT stand-in): 8-tap integer FIR over n samples
# ---------------------------------------------------------------------------

FIR_TAPS = [1, 3, 5, 7, 7, 5, 3, 1]


def fir_reference(samples: np.ndarray) -> np.ndarray:
    samples = np.asarray(samples, dtype=np.int64)
    out = np.zeros(len(samples) - len(FIR_TAPS) + 1, dtype=np.int64)
    for i in range(len(out)):
        acc = sum(int(samples[i + j]) * tap for j, tap in enumerate(FIR_TAPS))
        out[i] = (acc >> 5) & 0xFFFFFFFF
    return out


def fir_asm(n_samples: int, taps_base: int = layout.SCRATCH1_BASE) -> str:
    n_out = n_samples - len(FIR_TAPS) + 1
    return f"""
        li s0, {DATA}
        li s1, {OUT}
        li s2, {taps_base}
        li t0, 0                 # output index
    fir_out:
        li t1, 0                 # tap index
        li t3, 0                 # acc
    fir_tap:
        add t2, t0, t1
        slli t2, t2, 2
        add a0, s0, t2
        lw t4, 0(a0)
        slli t2, t1, 2
        add a1, s2, t2
        lw t5, 0(a1)
        mul t4, t4, t5
        add t3, t3, t4
        addi t1, t1, 1
        li t4, {len(FIR_TAPS)}
        blt t1, t4, fir_tap
        srai t3, t3, 5
        slli t2, t0, 2
        add a1, s1, t2
        sw t3, 0(a1)
        addi t0, t0, 1
        li t4, {n_out}
        blt t0, t4, fir_out
        ebreak
    """


# ---------------------------------------------------------------------------
# bitcount (auto/bitcount): SWAR popcount over n words
# ---------------------------------------------------------------------------

def bitcount_asm(n_words: int) -> str:
    return f"""
        li s0, {DATA}
        li s3, 0x55555555
        li s4, 0x33333333
        li s5, 0x0f0f0f0f
        li t6, 0                 # total
        li t0, 0
    bc_word:
        slli t1, t0, 2
        add a0, s0, t1
        lw t2, 0(a0)
        srli t3, t2, 1
        and t3, t3, s3
        sub t2, t2, t3           # pairs
        srli t3, t2, 2
        and t3, t3, s4
        and t2, t2, s4
        add t2, t2, t3           # nibbles
        srli t3, t2, 4
        add t2, t2, t3
        and t2, t2, s5           # bytes
        srli t3, t2, 8
        add t2, t2, t3
        srli t3, t2, 16
        add t2, t2, t3
        andi t2, t2, 63
        add t6, t6, t2
        addi t0, t0, 1
        li t1, {n_words}
        blt t0, t1, bc_word
        li a0, {OUT}
        sw t6, 0(a0)
        ebreak
    """


# ---------------------------------------------------------------------------
# stringsearch (office/stringsearch): naive substring search
# ---------------------------------------------------------------------------

def stringsearch_asm(haystack_len: int, needle_len: int,
                     needle_base: int = layout.SCRATCH1_BASE) -> str:
    return f"""
        li s0, {DATA}            # haystack bytes
        li s1, {needle_base}     # needle bytes
        li a2, -1                # found position
        li t0, 0                 # start
    ss_start:
        li t1, 0                 # offset
    ss_cmp:
        add a0, s0, t0
        add a0, a0, t1
        lbu t2, 0(a0)
        add a1, s1, t1
        lbu t3, 0(a1)
        bne t2, t3, ss_next
        addi t1, t1, 1
        li t4, {needle_len}
        blt t1, t4, ss_cmp
        mv a2, t0                # match
        j ss_done
    ss_next:
        addi t0, t0, 1
        li t4, {haystack_len - needle_len + 1}
        blt t0, t4, ss_start
    ss_done:
        li a0, {OUT}
        sw a2, 0(a0)
        ebreak
    """


# ---------------------------------------------------------------------------
# matmul (dense 8x8, susan/matrix stand-in)
# ---------------------------------------------------------------------------

def matmul_asm(n: int, b_base: int = layout.SCRATCH1_BASE) -> str:
    return f"""
        li s0, {DATA}            # A
        li s1, {b_base}          # B
        li s2, {OUT}             # C
        li t0, 0                 # i
    mm_i:
        li t1, 0                 # j
    mm_j:
        li t3, 0                 # acc
        li t2, 0                 # k
    mm_k:
        li t4, {n}
        mul t5, t0, t4
        add t5, t5, t2
        slli t5, t5, 2
        add a0, s0, t5
        lw t5, 0(a0)             # A[i][k]
        li t4, {n}
        mul t6, t2, t4
        add t6, t6, t1
        slli t6, t6, 2
        add a1, s1, t6
        lw t6, 0(a1)             # B[k][j]
        mul t5, t5, t6
        add t3, t3, t5
        addi t2, t2, 1
        li t4, {n}
        blt t2, t4, mm_k
        li t4, {n}
        mul t5, t0, t4
        add t5, t5, t1
        slli t5, t5, 2
        add a1, s2, t5
        sw t3, 0(a1)
        addi t1, t1, 1
        li t4, {n}
        blt t1, t4, mm_j
        addi t0, t0, 1
        li t4, {n}
        blt t0, t4, mm_i
        ebreak
    """


# ---------------------------------------------------------------------------
# dijkstra (network/dijkstra): single-source shortest paths, dense matrix
# ---------------------------------------------------------------------------

DIJKSTRA_INF = 0x3FFFFFFF


def dijkstra_reference(adjacency: np.ndarray, source: int = 0) -> np.ndarray:
    n = len(adjacency)
    dist = np.full(n, DIJKSTRA_INF, dtype=np.int64)
    dist[source] = 0
    visited = np.zeros(n, dtype=bool)
    for _ in range(n):
        candidates = [(dist[i], i) for i in range(n) if not visited[i]]
        d, u = min(candidates)
        visited[u] = True
        for v in range(n):
            weight = int(adjacency[u][v])
            if weight and dist[u] + weight < dist[v]:
                dist[v] = dist[u] + weight
    return dist


def dijkstra_asm(n: int, dist_base: int = OUT,
                 visited_base: int = layout.SCRATCH2_BASE) -> str:
    """Dense-matrix Dijkstra from node 0; adjacency at DATA (n*n words)."""
    return f"""
        li s0, {DATA}            # adjacency
        li s1, {dist_base}       # dist
        li s2, {visited_base}    # visited flags
        li s3, {DIJKSTRA_INF}
        # init dist[i] = INF, visited = 0; dist[0] = 0
        li t0, 0
    dj_init:
        slli t1, t0, 2
        add a0, s1, t1
        sw s3, 0(a0)
        add a0, s2, t1
        sw x0, 0(a0)
        addi t0, t0, 1
        li t1, {n}
        blt t0, t1, dj_init
        sw x0, 0(s1)

        li s4, 0                 # outer iteration
    dj_outer:
        # find the unvisited node with minimum distance
        li t2, -1                # best index
        mv t3, s3                # best distance = INF
        li t0, 0
    dj_scan:
        slli t1, t0, 2
        add a0, s2, t1
        lw t4, 0(a0)
        bnez t4, dj_scan_next
        add a0, s1, t1
        lw t4, 0(a0)
        bge t4, t3, dj_scan_next
        mv t3, t4
        mv t2, t0
    dj_scan_next:
        addi t0, t0, 1
        li t1, {n}
        blt t0, t1, dj_scan
        bltz t2, dj_done         # all remaining unreachable
        # mark visited
        slli t1, t2, 2
        add a0, s2, t1
        li t4, 1
        sw t4, 0(a0)
        add a0, s1, t1
        lw s5, 0(a0)             # dist[u]
        # relax every edge u -> v
        li t5, {n}
        mul t6, t2, t5
        slli t6, t6, 2
        add s6, s0, t6           # &adj[u][0]
        li t0, 0
    dj_relax:
        slli t1, t0, 2
        add a0, s6, t1
        lw t4, 0(a0)             # weight
        beqz t4, dj_relax_next
        add t4, t4, s5           # dist[u] + w
        add a1, s1, t1
        lw t5, 0(a1)
        bge t4, t5, dj_relax_next
        sw t4, 0(a1)
    dj_relax_next:
        addi t0, t0, 1
        li t1, {n}
        blt t0, t1, dj_relax
        addi s4, s4, 1
        li t1, {n}
        blt s4, t1, dj_outer
    dj_done:
        ebreak
    """


# ---------------------------------------------------------------------------
# quicksort (auto/qsort proper): recursive, exercises the call stack
# ---------------------------------------------------------------------------

def quicksort_asm(n: int, stack_top: int = layout.SCRATCH2_BASE + 0x1000) -> str:
    """Recursive Hoare-style quicksort of n words at DATA."""
    return f"""
        li sp, {stack_top}
        li a0, 0                 # lo
        li a1, {n - 1}           # hi
        call qsort
        ebreak

    qsort:
        bge a0, a1, qs_return
        addi sp, sp, -16
        sw ra, 0(sp)
        sw s0, 4(sp)
        sw s1, 8(sp)
        sw s2, 12(sp)
        mv s0, a0                # lo
        mv s1, a1                # hi
        # pivot = data[hi]
        li t0, {DATA}
        slli t1, s1, 2
        add t1, t0, t1
        lw t2, 0(t1)             # pivot
        mv t3, s0                # store index i
        mv t4, s0                # scan index j
    qs_partition:
        bge t4, s1, qs_swap_pivot
        slli t5, t4, 2
        li t0, {DATA}
        add t5, t0, t5
        lw t6, 0(t5)
        bge t6, t2, qs_part_next
        # swap data[i] <-> data[j]
        slli a2, t3, 2
        add a2, t0, a2
        lw a3, 0(a2)
        sw t6, 0(a2)
        sw a3, 0(t5)
        addi t3, t3, 1
    qs_part_next:
        addi t4, t4, 1
        j qs_partition
    qs_swap_pivot:
        li t0, {DATA}
        slli t5, t3, 2
        add t5, t0, t5
        lw a3, 0(t5)
        sw t2, 0(t5)
        sw a3, 0(t1)
        mv s2, t3                # pivot position
        # recurse left
        mv a0, s0
        addi a1, s2, -1
        call qsort
        # recurse right
        addi a0, s2, 1
        mv a1, s1
        call qsort
        lw ra, 0(sp)
        lw s0, 4(sp)
        lw s1, 8(sp)
        lw s2, 12(sp)
        addi sp, sp, 16
    qs_return:
        ret
    """


# ---------------------------------------------------------------------------
# FNV-1a hash (security/sha stand-in: word-mixing loop)
# ---------------------------------------------------------------------------

def fnv1a_reference(data: bytes) -> int:
    state = 0x811C9DC5
    for byte in data:
        state ^= byte
        state = (state * 0x01000193) & 0xFFFFFFFF
    return state


def fnv1a_asm(n_bytes: int) -> str:
    return f"""
        li s0, {DATA}
        li t0, 0x811c9dc5        # offset basis
        li s2, 0x01000193        # prime
        li t1, 0
    fnv_byte:
        add a0, s0, t1
        lbu t2, 0(a0)
        xor t0, t0, t2
        mul t0, t0, s2
        addi t1, t1, 1
        li t3, {n_bytes}
        blt t1, t3, fnv_byte
        li a0, {OUT}
        sw t0, 0(a0)
        ebreak
    """


# ---------------------------------------------------------------------------
# integer square root (auto/basicmath): bit-by-bit method
# ---------------------------------------------------------------------------

def isqrt_reference(values) -> list:
    return [int(np.floor(np.sqrt(float(v)))) for v in values]


def isqrt_asm(n_values: int) -> str:
    return f"""
        li s0, {DATA}
        li s1, {OUT}
        li s2, 0                 # index
    sq_value:
        slli t0, s2, 2
        add a0, s0, t0
        lw a1, 0(a0)             # x
        li t1, 0                 # result
        li t2, 0x40000000        # bit
    sq_bit:
        beqz t2, sq_store
        add t3, t1, t2           # result + bit
        srli t1, t1, 1
        bltu a1, t3, sq_next
        sub a1, a1, t3
        add t1, t1, t2
    sq_next:
        srli t2, t2, 2
        j sq_bit
    sq_store:
        slli t0, s2, 2
        add a0, s1, t0
        sw t1, 0(a0)
        addi s2, s2, 1
        li t0, {n_values}
        blt s2, t0, sq_value
        ebreak
    """


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def _write_bytes(memory, base: int, data: bytes) -> None:
    for index, byte in enumerate(data):
        memory.store(base + index, byte, 1)


def run_kernel(name: str, seed: int = 0) -> KernelResult:
    """Run one named kernel on the pipeline and verify its output."""
    rng = np.random.default_rng(seed)
    memory = FlatMemory(size=1 << 17)

    if name == "crc32":
        data = bytes(rng.integers(0, 256, size=64, dtype=np.uint8))
        _write_bytes(memory, DATA, data)
        program = assemble(crc32_asm(len(data)))
        _, result = run_pipelined(program, memory=memory)
        passed = memory.load(OUT, 4) == crc32_reference(data)
    elif name == "sort":
        values = rng.integers(0, 10_000, size=32)
        memory.write_words(DATA, [int(v) for v in values])
        program = assemble(sort_asm(len(values)))
        _, result = run_pipelined(program, memory=memory)
        got = memory.read_words(DATA, len(values))
        passed = got == sorted(int(v) for v in values)
    elif name == "fir":
        samples = rng.integers(-100, 100, size=64)
        memory.write_words(DATA, [int(v) & 0xFFFFFFFF for v in samples])
        memory.write_words(layout.SCRATCH1_BASE, FIR_TAPS)
        program = assemble(fir_asm(len(samples)))
        _, result = run_pipelined(program, memory=memory)
        expected = fir_reference(samples)
        got = memory.read_words(OUT, len(expected))
        passed = got == [int(v) for v in expected]
    elif name == "bitcount":
        words = rng.integers(0, 2 ** 32, size=48, dtype=np.uint64)
        memory.write_words(DATA, [int(w) for w in words])
        program = assemble(bitcount_asm(len(words)))
        _, result = run_pipelined(program, memory=memory)
        passed = memory.load(OUT, 4) == sum(bin(int(w)).count("1") for w in words)
    elif name == "stringsearch":
        haystack = bytes(rng.integers(97, 123, size=128, dtype=np.uint8))
        position = int(rng.integers(20, 100))
        needle = haystack[position:position + 6]
        _write_bytes(memory, DATA, haystack)
        _write_bytes(memory, layout.SCRATCH1_BASE, needle)
        program = assemble(stringsearch_asm(len(haystack), len(needle)))
        _, result = run_pipelined(program, memory=memory)
        expected = haystack.find(needle)
        passed = memory.load(OUT, 4) == expected
    elif name == "matmul":
        n = 8
        a = rng.integers(-20, 20, size=(n, n))
        b = rng.integers(-20, 20, size=(n, n))
        memory.write_words(DATA, [int(v) & 0xFFFFFFFF for v in a.reshape(-1)])
        memory.write_words(layout.SCRATCH1_BASE,
                           [int(v) & 0xFFFFFFFF for v in b.reshape(-1)])
        program = assemble(matmul_asm(n))
        _, result = run_pipelined(program, memory=memory)
        expected = (a @ b).reshape(-1)
        got = memory.read_words(OUT, n * n)
        passed = got == [int(v) & 0xFFFFFFFF for v in expected]
    elif name == "dijkstra":
        n = 10
        adjacency = rng.integers(0, 10, size=(n, n))
        np.fill_diagonal(adjacency, 0)
        memory.write_words(DATA, [int(v) for v in adjacency.reshape(-1)])
        program = assemble(dijkstra_asm(n))
        _, result = run_pipelined(program, memory=memory)
        expected = dijkstra_reference(adjacency)
        got = memory.read_words(OUT, n)
        passed = got == [int(v) for v in expected]
    elif name == "quicksort":
        values = rng.integers(0, 100_000, size=48)
        memory.write_words(DATA, [int(v) for v in values])
        program = assemble(quicksort_asm(len(values)))
        _, result = run_pipelined(program, memory=memory)
        got = memory.read_words(DATA, len(values))
        passed = got == sorted(int(v) for v in values)
    elif name == "fnv1a":
        data = bytes(rng.integers(0, 256, size=96, dtype=np.uint8))
        _write_bytes(memory, DATA, data)
        program = assemble(fnv1a_asm(len(data)))
        _, result = run_pipelined(program, memory=memory)
        passed = memory.load(OUT, 4) == fnv1a_reference(data)
    elif name == "isqrt":
        values = rng.integers(0, 2 ** 31, size=24)
        memory.write_words(DATA, [int(v) for v in values])
        program = assemble(isqrt_asm(len(values)))
        _, result = run_pipelined(program, memory=memory)
        expected = isqrt_reference(values)
        got = memory.read_words(OUT, len(values))
        passed = got == expected
    else:
        raise ValueError(f"unknown kernel {name!r}")

    if result.stop_reason != "halt":
        raise RuntimeError(f"{name} did not halt: {result.stop_reason}")
    return KernelResult(name=name, stats=result.stats, passed=passed)


KERNEL_NAMES = ("crc32", "sort", "fir", "bitcount", "stringsearch", "matmul",
                "dijkstra", "quicksort", "fnv1a", "isqrt")


def run_all(seed: int = 0) -> List[KernelResult]:
    return [run_kernel(name, seed=seed) for name in KERNEL_NAMES]


def instruction_mixes(seed: int = 0) -> Dict[str, Dict[str, int]]:
    """Retired-instruction mix per kernel (for the Fig 11a experiment)."""
    return {result.name: dict(result.stats.instr_counts)
            for result in run_all(seed=seed)}
