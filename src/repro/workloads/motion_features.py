"""Human-motion-detection feature extraction workload (paper Fig 15b).

The CPU reads a 6-channel accelerometer window and extracts three
time-domain features per channel (paper section VII.B: "mean and histogram"
family):

1. **mean** — per-channel average,
2. **histogram** — 8 bins over the fixed sensor range,
3. **MAV** — mean absolute value (the integer-friendly stand-in for RMS).

That yields ``6 * (1 + 8 + 1) = 60`` features, which are binarized against
per-feature thresholds (training-set midpoints) and bit-packed into the image
memory for the BNN.

Samples are signed integers produced by :func:`quantize_trace` (raw float
sensor values scaled by 64); the histogram covers [-4, 4) in sensor units,
i.e. [-256, 256) quantized.
"""

from __future__ import annotations


import numpy as np

from repro.bnn import quantize as q
from repro.errors import ConfigurationError
from repro.workloads import layout

#: fixed-point scale for sensor samples
SENSOR_SCALE = 64

#: histogram bins over the quantized range [-256, 256)
N_BINS = 8
HIST_MIN = -4 * SENSOR_SCALE
HIST_MAX = 4 * SENSOR_SCALE
BIN_WIDTH = (HIST_MAX - HIST_MIN) // N_BINS  # 64

N_CHANNELS = 6
FEATURES_PER_CHANNEL = 1 + N_BINS + 1
N_FEATURES = N_CHANNELS * FEATURES_PER_CHANNEL  # 60

#: memory layout for the kernel (word offsets from RAW_BASE)
#:   samples  : channels x length words
#:   then the kernel writes features to SCRATCH0, reads thresholds at
#:   SCRATCH1, and packs bits to the image memory.
FEATURE_BASE = layout.SCRATCH0_BASE
THRESHOLD_BASE = layout.SCRATCH1_BASE


def quantize_trace(trace: np.ndarray) -> np.ndarray:
    """Float (channels, length) sensor window -> int32 fixed point."""
    return np.round(np.asarray(trace) * SENSOR_SCALE).astype(np.int64)


# ---------------------------------------------------------------------------
# numpy reference
# ---------------------------------------------------------------------------

def features_reference(quantized: np.ndarray) -> np.ndarray:
    """Integer features of a quantized (channels, length) window.

    Matches the assembly kernel exactly: integer mean via arithmetic shift,
    clamped histogram counts, and MAV via shift.
    """
    quantized = np.asarray(quantized, dtype=np.int64)
    channels, length = quantized.shape
    shift = length.bit_length() - 1
    if 1 << shift != length:
        raise ConfigurationError("window length must be a power of two")
    out = []
    for channel in quantized:
        mean = int(channel.sum()) >> shift
        bins = np.clip((channel - HIST_MIN) // BIN_WIDTH, 0, N_BINS - 1)
        hist = np.bincount(bins.astype(np.int64), minlength=N_BINS)[:N_BINS]
        mav = int(np.abs(channel).sum()) >> shift
        out.extend([mean, *hist.tolist(), mav])
    return np.array(out, dtype=np.int64)


def float_features(trace: np.ndarray) -> np.ndarray:
    """Feature extractor for dataset building (same math, float input)."""
    return features_reference(quantize_trace(trace)).astype(np.float64)


def binarize_features(features: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """Sign-domain BNN input: +1 where feature >= threshold."""
    return q.binarize_sign(np.asarray(features) - np.asarray(thresholds) + 0.5)


def training_thresholds(feature_matrix: np.ndarray) -> np.ndarray:
    """Per-feature binarization thresholds: training-set range midpoints.

    Mirrors ``Dataset.binarized(0.5)`` after min-max normalization: a
    normalized feature is >= 0.5 exactly when the raw feature is >= the
    midpoint of its training range.
    """
    lo = feature_matrix.min(axis=0)
    hi = feature_matrix.max(axis=0)
    return np.ceil((lo + hi) / 2.0).astype(np.int64)


# ---------------------------------------------------------------------------
# memory helpers
# ---------------------------------------------------------------------------

def write_window(memory, quantized: np.ndarray,
                 base: int = layout.RAW_BASE) -> None:
    flat = np.asarray(quantized, dtype=np.int64).reshape(-1)
    for index, value in enumerate(flat):
        memory.store(base + 4 * index, int(value) & 0xFFFFFFFF, 4)


def write_thresholds(memory, thresholds: np.ndarray,
                     base: int = THRESHOLD_BASE) -> None:
    for index, value in enumerate(np.asarray(thresholds, dtype=np.int64)):
        memory.store(base + 4 * index, int(value) & 0xFFFFFFFF, 4)


def read_features(memory, base: int = FEATURE_BASE,
                  count: int = N_FEATURES) -> np.ndarray:
    from repro.isa.encoding import to_signed32

    return np.array([to_signed32(memory.load(base + 4 * i, 4))
                     for i in range(count)], dtype=np.int64)


def read_packed_features(memory, base: int = layout.PACKED_INPUT_BASE) -> np.ndarray:
    n_words = (N_FEATURES + 31) // 32
    words = np.array([memory.load(base + 4 * i, 4) for i in range(n_words)],
                     dtype=np.uint32)
    return q.unpack_bits(words, N_FEATURES)


# ---------------------------------------------------------------------------
# assembly kernels
# ---------------------------------------------------------------------------

def mean_asm(length: int = 64, raw_base: int = layout.RAW_BASE,
             feature_base: int = FEATURE_BASE, standalone: bool = True) -> str:
    """Per-channel mean, stored at feature slots ch*10 + 0."""
    shift = length.bit_length() - 1
    if 1 << shift != length:
        raise ConfigurationError("window length must be a power of two")
    body = f"""
    # ---- mean over {N_CHANNELS} channels of {length} samples
        li s0, {raw_base}
        li s1, {feature_base}
        li s2, 0                 # channel
    mean_ch:
        li t0, 0
        li t3, 0                 # sum
    mean_sample:
        slli t2, t0, 2
        add a0, s0, t2
        lw t4, 0(a0)
        add t3, t3, t4
        addi t0, t0, 1
        li t4, {length}
        blt t0, t4, mean_sample
        srai t3, t3, {shift}
        li t4, {4 * FEATURES_PER_CHANNEL}
        mul t5, s2, t4
        add a1, s1, t5
        sw t3, 0(a1)
        addi s0, s0, {4 * length}
        addi s2, s2, 1
        li t4, {N_CHANNELS}
        blt s2, t4, mean_ch
    """
    return body + ("\n        ebreak\n" if standalone else "")


def histogram_asm(length: int = 64, raw_base: int = layout.RAW_BASE,
                  feature_base: int = FEATURE_BASE,
                  standalone: bool = True) -> str:
    """Per-channel 8-bin histogram, stored at feature slots ch*10 + 1..8."""
    bin_shift = BIN_WIDTH.bit_length() - 1
    body = f"""
    # ---- 8-bin histogram per channel, bins of width {BIN_WIDTH}
        li s0, {raw_base}
        li s1, {feature_base + 4}   # first hist slot of channel 0
        li s2, 0                 # channel
    hist_ch:
        # zero the 8 bins
        li t0, 0
    hist_zero:
        slli t2, t0, 2
        add a1, s1, t2
        sw x0, 0(a1)
        addi t0, t0, 1
        li t4, {N_BINS}
        blt t0, t4, hist_zero
        li t0, 0
    hist_sample:
        slli t2, t0, 2
        add a0, s0, t2
        lw t3, 0(a0)
        addi t3, t3, {-HIST_MIN} # shift range to start at 0
        srai t3, t3, {bin_shift} # bin index
        bge t3, x0, hist_lo_ok
        li t3, 0
    hist_lo_ok:
        li t4, {N_BINS - 1}
        ble t3, t4, hist_hi_ok
        mv t3, t4
    hist_hi_ok:
        slli t3, t3, 2
        add a1, s1, t3
        lw t4, 0(a1)
        addi t4, t4, 1
        sw t4, 0(a1)
        addi t0, t0, 1
        li t4, {length}
        blt t0, t4, hist_sample
        addi s0, s0, {4 * length}
        addi s1, s1, {4 * FEATURES_PER_CHANNEL}
        addi s2, s2, 1
        li t4, {N_CHANNELS}
        blt s2, t4, hist_ch
    """
    return body + ("\n        ebreak\n" if standalone else "")


def mav_asm(length: int = 64, raw_base: int = layout.RAW_BASE,
            feature_base: int = FEATURE_BASE, standalone: bool = True) -> str:
    """Per-channel mean absolute value, stored at feature slots ch*10 + 9."""
    shift = length.bit_length() - 1
    body = f"""
    # ---- mean absolute value per channel
        li s0, {raw_base}
        li s1, {feature_base + 4 * (1 + N_BINS)}
        li s2, 0
    mav_ch:
        li t0, 0
        li t3, 0
    mav_sample:
        slli t2, t0, 2
        add a0, s0, t2
        lw t4, 0(a0)
        bge t4, x0, mav_pos
        sub t4, x0, t4
    mav_pos:
        add t3, t3, t4
        addi t0, t0, 1
        li t4, {length}
        blt t0, t4, mav_sample
        srai t3, t3, {shift}
        sw t3, 0(s1)
        addi s0, s0, {4 * length}
        addi s1, s1, {4 * FEATURES_PER_CHANNEL}
        addi s2, s2, 1
        li t4, {N_CHANNELS}
        blt s2, t4, mav_ch
    """
    return body + ("\n        ebreak\n" if standalone else "")


def binarize_asm(feature_base: int = FEATURE_BASE,
                 threshold_base: int = THRESHOLD_BASE,
                 packed_base: int = layout.PACKED_INPUT_BASE,
                 standalone: bool = True) -> str:
    """Compare features to thresholds, pack the sign bits."""
    body = f"""
    # ---- binarize {N_FEATURES} features against thresholds and pack
        li s0, {feature_base}
        li s1, {threshold_base}
        li s2, {packed_base}
        li t0, 0
        li s5, 0                 # word accumulator
        li s6, 0                 # bit position
    bin_feat:
        slli t2, t0, 2
        add a0, s0, t2
        lw t3, 0(a0)
        add a1, s1, t2
        lw t4, 0(a1)
        slt t5, t3, t4           # 1 if feature < threshold
        xori t5, t5, 1
        sll t5, t5, s6
        or s5, s5, t5
        addi s6, s6, 1
        li t4, 32
        bne s6, t4, bin_next
        sw s5, 0(s2)
        addi s2, s2, 4
        li s5, 0
        li s6, 0
    bin_next:
        addi t0, t0, 1
        li t4, {N_FEATURES}
        blt t0, t4, bin_feat
        beq s6, x0, bin_done
        sw s5, 0(s2)
    bin_done:
    """
    return body + ("\n        ebreak\n" if standalone else "")


def full_motion_asm(length: int = 64, finish: str = "ebreak") -> str:
    """All feature stages plus binarization, ending in ebreak/trans_bnn."""
    if finish not in ("ebreak", "trans_bnn"):
        raise ConfigurationError(f"unsupported finish {finish!r}")
    stages = (mean_asm(length, standalone=False)
              + histogram_asm(length, standalone=False)
              + mav_asm(length, standalone=False)
              + binarize_asm(standalone=False))
    return stages + f"\n        {finish}\n"


STAGE_GENERATORS = {
    "mean": mean_asm,
    "histogram": histogram_asm,
    "mav": mav_asm,
    "binarize": binarize_asm,
}
