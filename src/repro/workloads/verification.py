"""Self-checking per-instruction verification programs (riscv-tests style).

For every supported instruction this module generates a small directed test
program that computes results for several operand patterns, compares them
against expected values baked in at generation time (computed by the
*Python golden semantics*, so the simulator is checked against an
independent oracle), and writes a pass/fail signature:

* ``SIGNATURE_ADDR`` receives ``0x600D`` on success or ``0xBAD0 + case``
  identifying the first failing case.

``generate_all`` returns the full suite; the test harness runs each program
on both the functional ISS and the cycle-accurate pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.encoding import to_signed32, to_unsigned32

SIGNATURE_ADDR = 0x4000
PASS_VALUE = 0x600D
FAIL_BASE = 0xBAD0

#: operand patterns exercising sign, overflow, and shift corner cases
OPERAND_PATTERNS: List[Tuple[int, int]] = [
    (0, 0),
    (1, 1),
    (5, 3),
    (-1, 1),
    (-5, -3),
    (0x7FFFFFFF, 1),
    (-0x80000000, -1),
    (0x12345678, 0x0F0F0F0F),
    (-0x7FFFFFFF, 0x55555555),
]

#: shift amounts for the shift instructions
SHIFT_PATTERNS: List[Tuple[int, int]] = [
    (0x80000001, 0), (0x80000001, 1), (0x80000001, 31),
    (-8, 2), (0x12345678, 16), (1, 31),
]

_R_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "slt": lambda a, b: int(to_signed32(a) < to_signed32(b)),
    "sltu": lambda a, b: int(to_unsigned32(a) < to_unsigned32(b)),
    "mul": lambda a, b: to_signed32(a) * to_signed32(b),
}

_SHIFT_OPS = {
    "sll": lambda a, sh: a << sh,
    "srl": lambda a, sh: to_unsigned32(a) >> sh,
    "sra": lambda a, sh: to_signed32(a) >> sh,
}

_I_OPS = {
    "addi": lambda a, imm: a + imm,
    "andi": lambda a, imm: a & to_unsigned32(imm),
    "ori": lambda a, imm: a | to_unsigned32(imm),
    "xori": lambda a, imm: a ^ to_unsigned32(imm),
    "slti": lambda a, imm: int(to_signed32(a) < imm),
    "sltiu": lambda a, imm: int(to_unsigned32(a) < to_unsigned32(imm)),
}

_BRANCHES = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: to_signed32(a) < to_signed32(b),
    "bge": lambda a, b: to_signed32(a) >= to_signed32(b),
    "bltu": lambda a, b: to_unsigned32(a) < to_unsigned32(b),
    "bgeu": lambda a, b: to_unsigned32(a) >= to_unsigned32(b),
}

_IMM12_PATTERNS = [0, 1, -1, 7, -2048, 2047]


def _prologue() -> List[str]:
    return [f"    li s11, {SIGNATURE_ADDR}", "    li s10, 0  # case number"]


def _epilogue() -> List[str]:
    return [
        "pass_all:",
        f"    li t6, {PASS_VALUE}",
        "    sw t6, 0(s11)",
        "    ebreak",
        "fail:",
        f"    li t6, {FAIL_BASE}",
        "    add t6, t6, s10",
        "    sw t6, 0(s11)",
        "    ebreak",
    ]


def _check(expected: int, case: int) -> List[str]:
    """Compare t2 against an expected constant; branch to fail on mismatch."""
    return [
        f"    li s10, {case}",
        f"    li t3, {to_unsigned32(expected)}",
        "    bne t2, t3, fail",
    ]


def r_type_test(name: str) -> str:
    semantics = _R_OPS[name]
    lines = _prologue()
    for case, (a, b) in enumerate(OPERAND_PATTERNS, start=1):
        expected = to_unsigned32(semantics(to_unsigned32(a), to_unsigned32(b))
                                 if name in ("and", "or", "xor")
                                 else semantics(a, b))
        lines += [
            f"    li t0, {a}",
            f"    li t1, {b}",
            f"    {name} t2, t0, t1",
        ] + _check(expected, case)
    lines += ["    j pass_all"] + _epilogue()
    return "\n".join(lines)


def shift_test(name: str, immediate: bool) -> str:
    semantics = _SHIFT_OPS[name.rstrip("i") if immediate else name]
    lines = _prologue()
    for case, (a, shamt) in enumerate(SHIFT_PATTERNS, start=1):
        expected = to_unsigned32(semantics(a, shamt))
        lines.append(f"    li t0, {a}")
        if immediate:
            lines.append(f"    {name} t2, t0, {shamt}")
        else:
            lines.append(f"    li t1, {shamt}")
            lines.append(f"    {name} t2, t0, t1")
        lines += _check(expected, case)
    lines += ["    j pass_all"] + _epilogue()
    return "\n".join(lines)


def i_type_test(name: str) -> str:
    semantics = _I_OPS[name]
    lines = _prologue()
    case = 0
    for a, _ in OPERAND_PATTERNS[:6]:
        for imm in _IMM12_PATTERNS[:4]:
            case += 1
            expected = to_unsigned32(semantics(to_unsigned32(a), imm))
            lines += [
                f"    li t0, {a}",
                f"    {name} t2, t0, {imm}",
            ] + _check(expected, case)
    lines += ["    j pass_all"] + _epilogue()
    return "\n".join(lines)


def branch_test(name: str) -> str:
    semantics = _BRANCHES[name]
    lines = _prologue()
    for case, (a, b) in enumerate(OPERAND_PATTERNS, start=1):
        taken = semantics(to_unsigned32(a), to_unsigned32(b))
        lines += [
            f"    li s10, {case}",
            f"    li t0, {a}",
            f"    li t1, {b}",
            "    li t2, 0",
            f"    {name} t0, t1, taken_{case}",
            "    li t2, 1",
            f"taken_{case}:",
            # t2 == 0 iff the branch was taken
            f"    li t3, {0 if taken else 1}",
            "    bne t2, t3, fail",
        ]
    lines += ["    j pass_all"] + _epilogue()
    return "\n".join(lines)


def load_store_test() -> str:
    """sb/sh/sw + all five loads against known byte patterns."""
    base = 0x2000
    lines = _prologue()
    lines += [
        f"    li s0, {base}",
        "    li t0, 0xdeadbeef",
        "    sw t0, 0(s0)",
    ]
    checks = [
        ("lw", 0, 0xDEADBEEF),
        ("lh", 0, to_unsigned32(to_signed32(0xFFFFBEEF))),
        ("lhu", 0, 0xBEEF),
        ("lh", 2, to_unsigned32(to_signed32(0xFFFFDEAD))),
        ("lb", 0, to_unsigned32(to_signed32(0xFFFFFFEF))),
        ("lbu", 3, 0xDE),
        ("lb", 1, to_unsigned32(to_signed32(0xFFFFFFBE))),
    ]
    for case, (op, offset, expected) in enumerate(checks, start=1):
        lines += [
            f"    {op} t2, {offset}(s0)",
        ] + _check(expected, case)
    # byte/half stores merge into the word
    lines += [
        "    li t0, 0x11",
        "    sb t0, 4(s0)",
        "    li t0, 0x2233",
        "    sh t0, 6(s0)",
        "    lw t2, 4(s0)",
    ] + _check(0x22330011, 90)
    lines += ["    j pass_all"] + _epilogue()
    return "\n".join(lines)


def upper_and_jump_test() -> str:
    """lui / auipc / jal / jalr link-register and target behaviour."""
    lines = _prologue()
    lines += [
        "    lui t2, 0xfffff",
    ] + _check(0xFFFFF000, 1)
    lines += [
        "start_auipc:",
        "    auipc t0, 0",
        "    la t1, start_auipc",
        "    sub t2, t0, t1",
    ] + _check(0, 2)
    lines += [
        "    jal t0, jal_target",
        "jal_return:",
        "    j after_jal",
        "jal_target:",
        "    la t1, jal_return",
        "    sub t2, t0, t1",
        "    beq t2, x0, jal_link_ok",
        "    li s10, 3",
        "    j fail",
        "jal_link_ok:",
        "    jal x0, after_jal",
        "after_jal:",
        "    la t0, jalr_target",
        "    jalr t1, t0, 0",
        "jalr_return:",
        "    j pass_all",
        "jalr_target:",
        "    la t3, jalr_return",
        "    sub t2, t1, t3",
        "    beq t2, x0, jalr_ok",
        "    li s10, 4",
        "    j fail",
        "jalr_ok:",
        "    jr t1",
    ]
    lines += _epilogue()
    return "\n".join(lines)


def generate_all() -> Dict[str, str]:
    """name -> self-checking program source for the whole ISA."""
    suite: Dict[str, str] = {}
    for name in _R_OPS:
        suite[name] = r_type_test(name)
    for name in ("sll", "srl", "sra"):
        suite[name] = shift_test(name, immediate=False)
    for name in ("slli", "srli", "srai"):
        suite[name] = shift_test(name, immediate=True)
    for name in _I_OPS:
        suite[name] = i_type_test(name)
    for name in _BRANCHES:
        suite[name] = branch_test(name)
    suite["loads_stores"] = load_store_test()
    suite["upper_jumps"] = upper_and_jump_test()
    return suite
