"""Tests for the cycle-level accelerator model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bnn import (
    AcceleratorConfig,
    BNNAccelerator,
    BNNModel,
    LAYER_OVERHEAD_CYCLES,
    binarize_sign,
)
from repro.errors import ConfigurationError


def model_4x100(input_size=256, width=100, classes=10):
    return BNNModel.paper_topology(input_size=input_size,
                                   neurons_per_layer=width, n_classes=classes)


class TestConfig:
    def test_defaults_match_chip(self):
        config = AcceleratorConfig()
        assert config.neurons_per_layer == 100
        assert config.n_physical_layers == 4
        assert config.peak_macs_per_cycle == 400  # paper's TOPS accounting

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AcceleratorConfig(neurons_per_layer=0)
        with pytest.raises(ConfigurationError):
            AcceleratorConfig(dma_words_per_cycle=0)


class TestTiming:
    def test_layer_cycles_are_fan_in_plus_overhead(self):
        acc = BNNAccelerator()
        model = model_4x100()
        assert acc.layer_cycles(model) == [
            256 + LAYER_OVERHEAD_CYCLES,
            100 + LAYER_OVERHEAD_CYCLES,
            100 + LAYER_OVERHEAD_CYCLES,
            100 + LAYER_OVERHEAD_CYCLES,
        ]

    def test_latency_is_sum(self):
        acc = BNNAccelerator()
        model = model_4x100()
        assert acc.latency_cycles(model) == sum(acc.layer_cycles(model))

    def test_interval_is_slowest_layer(self):
        acc = BNNAccelerator()
        model = model_4x100()
        assert acc.interval_cycles(model) == 256 + LAYER_OVERHEAD_CYCLES

    def test_batch_pipelining(self):
        acc = BNNAccelerator()
        model = model_4x100()
        timing = acc.batch_timing(model, 10, stream_weights=False)
        expected = acc.latency_cycles(model) + 9 * acc.interval_cycles(model)
        assert timing.total_cycles == expected
        assert timing.cycles_per_inference < acc.latency_cycles(model)

    def test_batch_size_validated(self):
        with pytest.raises(ConfigurationError):
            BNNAccelerator().batch_timing(model_4x100(), 0)

    def test_deep_model_wraps_and_blocks_pipelining(self):
        rng = np.random.default_rng(0)
        deep = BNNModel.random([64] + [100] * 5 + [10], rng)
        acc = BNNAccelerator()
        assert acc.wraps(deep)
        assert acc.interval_cycles(deep) == acc.latency_cycles(deep)

    def test_too_wide_model_rejected(self):
        rng = np.random.default_rng(0)
        wide = BNNModel.random([64, 128, 10], rng)
        with pytest.raises(ConfigurationError):
            BNNAccelerator().check_model(wide)

    def test_weight_streaming_resident_first_layer(self):
        acc = BNNAccelerator(AcceleratorConfig(dma_words_per_cycle=1.0))
        model = model_4x100()
        streamed_bytes = sum(l.weight_bytes for l in model.layers[1:])
        assert acc.weight_stream_cycles(model) == streamed_bytes // 4

    def test_streaming_can_dominate_small_batches(self):
        acc = BNNAccelerator(AcceleratorConfig(dma_words_per_cycle=0.25))
        model = model_4x100()
        with_stream = acc.batch_timing(model, 1, stream_weights=True)
        without = acc.batch_timing(model, 1, stream_weights=False)
        assert with_stream.total_cycles > without.total_cycles
        assert with_stream.total_cycles == with_stream.weight_stream_cycles

    @given(st.integers(1, 50))
    def test_total_cycles_monotone_in_batch(self, n):
        acc = BNNAccelerator()
        model = model_4x100()
        t_n = acc.batch_timing(model, n).total_cycles
        t_n1 = acc.batch_timing(model, n + 1).total_cycles
        assert t_n1 >= t_n


class TestFunctional:
    def test_inference_matches_model(self):
        rng = np.random.default_rng(1)
        model = BNNModel.random([32, 20, 20, 20, 4], rng)
        acc = BNNAccelerator()
        x = binarize_sign(rng.standard_normal(32))
        result = acc.infer(model, x)
        assert result.prediction == model.predict(x)
        assert result.macs == model.total_macs
        assert result.cycles == acc.latency_cycles(model)

    def test_infer_batch(self):
        rng = np.random.default_rng(2)
        model = BNNModel.random([16, 12, 3], rng)
        acc = BNNAccelerator()
        xs = binarize_sign(rng.standard_normal((7, 16)))
        predictions, timing = acc.infer_batch(model, xs)
        np.testing.assert_array_equal(predictions, model.predict_batch(xs))
        assert timing.n_inputs == 7

    def test_effective_macs_below_peak(self):
        acc = BNNAccelerator()
        model = model_4x100()
        effective = acc.effective_macs_per_cycle(model)
        assert 0 < effective <= acc.peak_ops_per_cycle()

    def test_peak_ops_per_cycle_paper_number(self):
        # 400 MACs/cycle at 960 MHz / 241 mW gives the paper's 1.6 TOPS/W
        assert BNNAccelerator().peak_ops_per_cycle() == 400
