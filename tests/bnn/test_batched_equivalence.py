"""Differential equivalence: batched bit-packed BNN kernels vs. scalar path.

The ``--engine fast`` contract is *bit-identical logits*, not approximate
agreement: for every topology and batch, :func:`repro.bnn.batched.
batched_scores` must equal the int32 matmul scores of the scalar path
exactly, and the probe/timing accounting must not depend on the engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn import BNNAccelerator, BNNModel
from repro.bnn.batched import (
    PackedModel,
    batched_predict,
    batched_scores,
    pack_bits64,
    packed_model,
    popcount64,
    predict_with_engine,
)
from repro.errors import ConfigurationError
from repro.sim import use_session


def _random_inputs(rng, batch, n):
    x = np.sign(rng.standard_normal((batch, n))).astype(np.int8)
    x[x == 0] = 1
    return x


def _scalar_scores(model, x):
    return np.stack([model.scores(row) for row in x])


class TestPackedPrimitives:
    def test_popcount64_matches_python_bin(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**64, size=100, dtype=np.uint64)
        expected = [bin(int(w)).count("1") for w in words]
        assert popcount64(words).tolist() == expected

    def test_popcount64_extremes(self):
        words = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        assert popcount64(words).tolist() == [0, 1, 1, 64]

    def test_pack_bits64_little_endian_layout(self):
        bits = np.zeros(70, dtype=np.uint8)
        bits[0] = 1   # bit 0 of word 0
        bits[65] = 1  # bit 1 of word 1
        packed = pack_bits64(bits)
        assert packed.shape == (2,)
        assert packed[0] == 1 and packed[1] == 2

    def test_pack_bits64_pads_with_zeros(self):
        packed = pack_bits64(np.ones(3, dtype=np.uint8))
        assert packed.shape == (1,) and packed[0] == 0b111


class TestBitIdenticalScores:
    @pytest.mark.parametrize("topology", [
        [100, 100, 100, 10],   # the chip's canonical network
        [784, 100, 100, 10],   # MNIST-sized input
        [64, 64, 4],           # exact word multiples
        [65, 64, 3],           # one bit past a word boundary
        [33, 7, 5],            # nothing aligns
        [1, 1, 1],             # degenerate
        [130, 2],              # single layer, multi-word
    ])
    def test_scores_bit_identical(self, topology):
        rng = np.random.default_rng(42)
        model = BNNModel.random(topology, rng)
        x = _random_inputs(rng, 23, topology[0])
        batched = batched_scores(model, x)
        assert batched.dtype == np.int32
        assert np.array_equal(batched, _scalar_scores(model, x))

    def test_predictions_match_predict_batch(self):
        rng = np.random.default_rng(7)
        model = BNNModel.random([100, 100, 100, 10], rng)
        x = _random_inputs(rng, 50, 100)
        assert np.array_equal(batched_predict(model, x),
                              model.predict_batch(x))

    def test_single_row_input_promoted(self):
        rng = np.random.default_rng(3)
        model = BNNModel.random([40, 10], rng)
        row = _random_inputs(rng, 1, 40)[0]
        assert np.array_equal(batched_scores(model, row)[0],
                              model.scores(row))

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_topologies_bit_identical(self, data):
        sizes = data.draw(st.lists(st.integers(1, 130), min_size=2,
                                   max_size=5))
        batch = data.draw(st.integers(1, 8))
        seed = data.draw(st.integers(0, 2**16))
        rng = np.random.default_rng(seed)
        model = BNNModel.random(sizes, rng)
        x = _random_inputs(rng, batch, sizes[0])
        assert np.array_equal(batched_scores(model, x),
                              _scalar_scores(model, x))


class TestPackedModelCache:
    def test_lowering_is_cached_per_model(self):
        model = BNNModel.random([30, 10], np.random.default_rng(0))
        assert packed_model(model) is packed_model(model)

    def test_distinct_models_get_distinct_lowerings(self):
        m1 = BNNModel.random([30, 10], np.random.default_rng(0))
        m2 = BNNModel.random([30, 10], np.random.default_rng(0))
        assert packed_model(m1) is not packed_model(m2)

    def test_packed_model_requires_layers(self):
        with pytest.raises(ConfigurationError):
            PackedModel([])


class TestInputValidation:
    def test_wrong_input_size_rejected(self):
        model = BNNModel.random([30, 10], np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            batched_scores(model, np.ones((4, 29), dtype=np.int8))

    def test_non_sign_values_rejected(self):
        model = BNNModel.random([30, 10], np.random.default_rng(0))
        bad = np.ones((2, 30), dtype=np.int8)
        bad[0, 0] = 0
        with pytest.raises(ConfigurationError):
            batched_scores(model, bad)


class TestEngineSelection:
    def test_engines_agree(self):
        rng = np.random.default_rng(11)
        model = BNNModel.random([100, 100, 10], rng)
        x = _random_inputs(rng, 16, 100)
        assert np.array_equal(
            predict_with_engine(model, x, engine="fast"),
            predict_with_engine(model, x, engine="accurate"))

    def test_default_engine_follows_session(self):
        rng = np.random.default_rng(11)
        model = BNNModel.random([50, 10], rng)
        x = _random_inputs(rng, 4, 50)
        with use_session(cache_enabled=False, engine="fast"):
            fast = predict_with_engine(model, x)
        with use_session(cache_enabled=False, engine="accurate"):
            accurate = predict_with_engine(model, x)
        assert np.array_equal(fast, accurate)

    def test_unknown_engine_rejected(self):
        model = BNNModel.random([50, 10], np.random.default_rng(0))
        x = _random_inputs(np.random.default_rng(1), 2, 50)
        with pytest.raises(ConfigurationError):
            predict_with_engine(model, x, engine="warp")


class TestAcceleratorAccounting:
    """Probe events and cycle/MAC accounting must be engine-independent."""

    def _run(self, engine):
        rng = np.random.default_rng(5)
        model = BNNModel.random([100, 100, 10], rng)
        x = _random_inputs(rng, 12, 100)
        with use_session(cache_enabled=False) as session:
            events = []
            session.stats.subscribe(
                "*", lambda name, payload: events.append((name, payload)))
            predictions, timing = BNNAccelerator().infer_batch(
                model, x, engine=engine)
            counters = session.stats.counters("bnn.")
        return predictions, timing, events, counters

    def test_identical_predictions_timing_probes_counters(self):
        fast = self._run("fast")
        accurate = self._run("accurate")
        assert np.array_equal(fast[0], accurate[0])
        assert fast[1] == accurate[1]
        assert fast[2] == accurate[2]
        assert fast[3] == accurate[3]
        names = [name for name, _ in fast[2]]
        assert "bnn.batch" in names
