"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.bnn import Dataset, digit_template, synthetic_mnist, synthetic_motion
from repro.errors import ConfigurationError


class TestDigitTemplate:
    def test_shape_and_range(self):
        image = digit_template(3)
        assert image.shape == (16, 16)
        assert image.min() >= 0 and image.max() <= 1

    def test_distinct_digits(self):
        assert not np.array_equal(digit_template(1), digit_template(8))

    def test_digit_range_checked(self):
        with pytest.raises(ConfigurationError):
            digit_template(10)

    def test_glyph_fits(self):
        with pytest.raises(ConfigurationError):
            digit_template(0, size=8, scale=2)


class TestSyntheticMnist:
    def test_deterministic(self):
        a = synthetic_mnist(n_samples=50, seed=7)
        b = synthetic_mnist(n_samples=50, seed=7)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a = synthetic_mnist(n_samples=50, seed=1)
        b = synthetic_mnist(n_samples=50, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_shapes(self):
        ds = synthetic_mnist(n_samples=100, size=16)
        assert ds.images.shape == (100, 256)
        assert ds.labels.shape == (100,)
        assert ds.n_classes == 10

    def test_values_in_unit_interval(self):
        ds = synthetic_mnist(n_samples=30)
        assert ds.images.min() >= 0 and ds.images.max() <= 1

    def test_all_classes_present(self):
        ds = synthetic_mnist(n_samples=500)
        assert set(np.unique(ds.labels)) == set(range(10))

    def test_binarized_domain(self):
        signs = synthetic_mnist(n_samples=10).binarized()
        assert set(np.unique(signs)) <= {-1, 1}

    def test_split_partitions(self):
        ds = synthetic_mnist(n_samples=100)
        train, test = ds.split(0.8)
        assert len(train) == 80 and len(test) == 20
        assert train.n_features == test.n_features == 256

    def test_split_deterministic(self):
        ds = synthetic_mnist(n_samples=60)
        t1, _ = ds.split(0.5, rng=np.random.default_rng(3))
        t2, _ = ds.split(0.5, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(t1.labels, t2.labels)

    def test_images_look_like_digits(self):
        # with low noise, samples correlate best with their own template
        ds = synthetic_mnist(n_samples=200, noise_flip=0.01, max_shift=0)
        templates = np.array([digit_template(d).reshape(-1) for d in range(10)])
        hits = 0
        for image, label in zip(ds.images, ds.labels):
            scores = templates @ image
            hits += int(np.argmax(scores) == label)
        assert hits / len(ds) > 0.9


class TestSyntheticMotion:
    def test_shapes(self):
        md = synthetic_motion(n_samples=40, length=64)
        assert md.traces.shape == (40, 6, 64)
        assert md.n_classes == 6
        assert md.n_channels == 6
        assert md.length == 64

    def test_deterministic(self):
        a = synthetic_motion(n_samples=20, seed=5)
        b = synthetic_motion(n_samples=20, seed=5)
        np.testing.assert_array_equal(a.traces, b.traces)

    def test_classes_have_distinct_low_noise_signatures(self):
        md = synthetic_motion(n_samples=300, noise_sigma=0.01)
        means = np.array([md.traces[md.labels == c].mean(axis=(0, 2))
                          for c in range(md.n_classes)])
        # class-mean channel offsets should differ pairwise
        for i in range(md.n_classes):
            for j in range(i + 1, md.n_classes):
                assert np.abs(means[i] - means[j]).max() > 0.05

    def test_feature_dataset(self):
        md = synthetic_motion(n_samples=30)
        ds = md.to_feature_dataset(lambda trace: trace.mean(axis=1))
        assert isinstance(ds, Dataset)
        assert ds.images.shape == (30, 6)
        assert ds.images.min() >= 0 and ds.images.max() <= 1

    def test_mismatched_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            Dataset(images=np.zeros((3, 4)), labels=np.zeros(2), n_classes=2)
