"""Tests for the BNN model math."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bnn import BNNLayer, BNNModel, binarize_sign
from repro.errors import ConfigurationError


def tiny_layer():
    weights = np.array([[1, -1, 1], [-1, -1, -1]], dtype=np.int8)
    bias = np.array([0, 1], dtype=np.int32)
    return BNNLayer(weights=weights, bias=bias)


class TestLayer:
    def test_pre_activation(self):
        layer = tiny_layer()
        x = np.array([1, 1, -1], dtype=np.int8)
        # neuron0: 1-1-1 = -1; neuron1: -1-1+1+1 = 0
        np.testing.assert_array_equal(layer.pre_activation(x), [-1, 0])

    def test_forward_sign(self):
        layer = tiny_layer()
        x = np.array([1, 1, -1], dtype=np.int8)
        np.testing.assert_array_equal(layer.forward(x), [-1, 1])

    def test_rejects_non_sign_weights(self):
        with pytest.raises(ConfigurationError):
            BNNLayer(weights=np.array([[0, 1]]), bias=np.array([0]))

    def test_rejects_mismatched_bias(self):
        with pytest.raises(ConfigurationError):
            BNNLayer(weights=np.ones((2, 3), dtype=np.int8), bias=np.array([0]))

    def test_macs(self):
        assert tiny_layer().macs == 6

    def test_weight_bytes(self):
        # 3 inputs -> 1 packed word per neuron, 2 neurons -> 8 bytes
        assert tiny_layer().weight_bytes == 8
        wide = BNNLayer(weights=np.ones((100, 256), dtype=np.int8),
                        bias=np.zeros(100, dtype=np.int32))
        assert wide.weight_bytes == 100 * 4 * 8

    def test_packed_weights_shape(self):
        assert tiny_layer().packed_weights().shape == (2, 1)


class TestModel:
    def test_layer_chaining_validated(self):
        l1 = BNNLayer(np.ones((4, 3), dtype=np.int8), np.zeros(4, dtype=np.int32))
        l2 = BNNLayer(np.ones((2, 5), dtype=np.int8), np.zeros(2, dtype=np.int32))
        with pytest.raises(ConfigurationError):
            BNNModel([l1, l2])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            BNNModel([])

    def test_topology_properties(self):
        model = BNNModel.paper_topology(input_size=256)
        assert model.input_size == 256
        assert model.n_layers == 4
        assert model.n_classes == 10
        assert model.total_macs == 256 * 100 + 100 * 100 + 100 * 100 + 100 * 10

    def test_binarize_input(self):
        model = BNNModel.paper_topology(input_size=4, neurons_per_layer=4,
                                        n_classes=2)
        signs = model.binarize_input(np.array([0.1, 0.9, 0.5, 0.4]))
        np.testing.assert_array_equal(signs, [-1, 1, 1, -1])

    def test_binarize_input_size_checked(self):
        model = BNNModel.paper_topology(input_size=4, neurons_per_layer=4,
                                        n_classes=2)
        with pytest.raises(ConfigurationError):
            model.binarize_input(np.zeros(5))

    def test_predict_matches_scores_argmax(self):
        rng = np.random.default_rng(0)
        model = BNNModel.random([16, 8, 4], rng)
        x = binarize_sign(rng.standard_normal(16))
        assert model.predict(x) == int(np.argmax(model.scores(x)))

    @given(st.integers(0, 1000))
    def test_batch_matches_single(self, seed):
        rng = np.random.default_rng(seed)
        model = BNNModel.random([12, 10, 10, 3], rng)
        xs = binarize_sign(rng.standard_normal((5, 12)))
        batch = model.predict_batch(xs)
        singles = [model.predict(x) for x in xs]
        np.testing.assert_array_equal(batch, singles)

    def test_accuracy_bounds(self):
        rng = np.random.default_rng(0)
        model = BNNModel.random([8, 6, 2], rng)
        xs = binarize_sign(rng.standard_normal((20, 8)))
        labels = rng.integers(0, 2, 20)
        acc = model.accuracy(xs, labels)
        assert 0.0 <= acc <= 1.0

    def test_scores_are_integers_with_parity(self):
        # pre-activation of a +-1 dot product has fixed parity with fan_in
        rng = np.random.default_rng(3)
        model = BNNModel.random([9, 5, 3], rng)
        x = binarize_sign(rng.standard_normal(9))
        hidden = model.layers[0].pre_activation(x) - model.layers[0].bias
        assert all((int(v) - 9) % 2 == 0 for v in hidden)

    def test_weight_bytes_total(self):
        model = BNNModel.paper_topology(input_size=256)
        assert model.weight_bytes == sum(l.weight_bytes for l in model.layers)
