"""Tests for the multi-bit extension: float MLP, PTQ, bit-serial timing."""

import numpy as np
import pytest

from repro.bnn import BNNModel
from repro.bnn.multibit import (
    FloatMLP,
    QuantizedModel,
    bnn_timing_equivalent,
    multibit_timing,
    quantize_model,
)
from repro.errors import ConfigurationError


def toy_data(n=500, seed=0):
    """Two linearly separable blobs in [0,1]^8."""
    rng = np.random.default_rng(seed)
    x = rng.random((n, 8))
    labels = (x[:, :4].mean(axis=1) > x[:, 4:].mean(axis=1)).astype(np.int64)
    return x, labels


class TestFloatMLP:
    def test_needs_two_sizes(self):
        with pytest.raises(ConfigurationError):
            FloatMLP([4])

    def test_learns_toy_problem(self):
        x, y = toy_data()
        mlp = FloatMLP([8, 16, 2], seed=0)
        mlp.train(x, y, epochs=80)
        assert mlp.accuracy(x, y) > 0.9

    def test_loss_decreases(self):
        x, y = toy_data()
        mlp = FloatMLP([8, 16, 2], seed=0)
        losses = mlp.train(x, y, epochs=10)
        assert losses[-1] < losses[0]

    def test_deterministic(self):
        x, y = toy_data()
        a = FloatMLP([8, 8, 2], seed=3)
        b = FloatMLP([8, 8, 2], seed=3)
        a.train(x, y, epochs=2, seed=5)
        b.train(x, y, epochs=2, seed=5)
        np.testing.assert_array_equal(a.predict_batch(x), b.predict_batch(x))


class TestQuantization:
    @pytest.fixture(scope="class")
    def trained(self):
        x, y = toy_data(800)
        mlp = FloatMLP([8, 24, 24, 2], seed=0)
        mlp.train(x, y, epochs=40)
        return mlp, x, y

    def test_bits_range_validated(self, trained):
        mlp, x, _ = trained
        with pytest.raises(ConfigurationError):
            quantize_model(mlp, 1, x[:50])
        with pytest.raises(ConfigurationError):
            quantize_model(mlp, 9, x[:50])

    def test_8bit_close_to_float(self, trained):
        mlp, x, y = trained
        quantized = quantize_model(mlp, 8, x[:200])
        assert quantized.accuracy(x, y) > mlp.accuracy(x, y) - 0.03

    def test_weights_fit_bit_budget(self, trained):
        mlp, x, _ = trained
        for bits in (8, 4, 2):
            quantized = quantize_model(mlp, bits, x[:200])
            limit = (1 << (bits - 1)) - 1
            for layer in quantized.layers:
                assert np.abs(layer.weights).max() <= limit

    def test_pure_integer_inference(self, trained):
        mlp, x, _ = trained
        quantized = quantize_model(mlp, 8, x[:200])
        grid = quantized.quantize_input(x[:10])
        assert grid.dtype == np.int64
        assert grid.max() <= 255

    def test_fewer_bits_less_storage(self, trained):
        mlp, x, _ = trained
        q8 = quantize_model(mlp, 8, x[:200])
        q4 = quantize_model(mlp, 4, x[:200])
        assert q4.weight_bytes < q8.weight_bytes

    def test_empty_model_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantizedModel([], bits=8)


class TestTiming:
    def make_quantized(self, bits):
        x, y = toy_data(300)
        mlp = FloatMLP([8, 16, 16, 2], seed=0)
        mlp.train(x, y, epochs=5)
        return quantize_model(mlp, bits, x[:100])

    def test_bit_serial_latency_scales(self):
        t4 = multibit_timing(self.make_quantized(4))
        t8 = multibit_timing(self.make_quantized(8))
        assert t8.latency_cycles == pytest.approx(2 * t4.latency_cycles,
                                                  rel=0.05)

    def test_area_scale_grows_with_bits(self):
        t4 = multibit_timing(self.make_quantized(4))
        t8 = multibit_timing(self.make_quantized(8))
        assert 1.0 < t4.neuron_area_scale < t8.neuron_area_scale

    def test_binary_point_consistent_with_accelerator(self):
        from repro.bnn import BNNAccelerator

        model = BNNModel.paper_topology(input_size=256)
        timing = bnn_timing_equivalent(model)
        assert timing.bits == 1
        assert timing.latency_cycles == BNNAccelerator().latency_cycles(model)

    def test_binary_is_cheapest(self):
        model = BNNModel.paper_topology(input_size=64,
                                        neurons_per_layer=16, n_classes=2)
        binary = bnn_timing_equivalent(model)
        quantized = multibit_timing(self.make_quantized(8))
        assert binary.neuron_area_scale <= quantized.neuron_area_scale
