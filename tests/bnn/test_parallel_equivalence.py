"""Differential equivalence of the ``parallel`` engine.

The sharding contract is *bit-identical logits*: chunking rows across
processes must change nothing, because every row's scores are an exact
integer function of that row alone.  These tests force real sharding
(``min_batch=1``, several workers) on small batches so they stay fast,
pin the serial-fallback decision logic, and check that the stats/probe
accounting is engine-independent — mirroring
``tests/bnn/test_batched_equivalence.py`` for the third engine.
"""

import os

import numpy as np
import pytest

from repro.bnn import BNNAccelerator, BNNModel, binarize_sign
from repro.bnn.batched import batched_scores
from repro.bnn.parallel import (
    MIN_PARALLEL_BATCH,
    PARALLEL_SHM_ENV_VAR,
    PARALLEL_WORKERS_ENV_VAR,
    chunk_bounds,
    default_workers,
    parallel_predict,
    parallel_scores,
    shm_default,
    shutdown_pool,
)
from repro.engine import engine_names, get_engine
from repro.errors import ConfigurationError
from repro.sim import use_session


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_pool()


def make_model(sizes=(60, 40, 10), seed=0):
    return BNNModel.random(list(sizes), np.random.default_rng(seed))


def make_inputs(model, n, seed=1):
    rng = np.random.default_rng(seed)
    return binarize_sign(rng.standard_normal((n, model.input_size)))


class TestChunking:
    def test_bounds_cover_exactly_once(self):
        bounds = chunk_bounds(1000, workers=3, min_chunk=100)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 1000
        for (_, stop), (next_start, _) in zip(bounds, bounds[1:]):
            assert stop == next_start

    def test_chunk_sizes_differ_by_at_most_one(self):
        bounds = chunk_bounds(1003, workers=4, min_chunk=1)
        sizes = [stop - start for start, stop in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_min_chunk_limits_split(self):
        bounds = chunk_bounds(300, workers=8, min_chunk=128)
        assert len(bounds) == 2  # 300 rows can hold only two 128-row chunks

    def test_small_batch_yields_single_chunk(self):
        assert chunk_bounds(100, workers=8, min_chunk=128) == [(0, 100)]

    def test_empty_batch(self):
        assert chunk_bounds(0, workers=4) == []


class TestWorkersConfig:
    def test_env_var_overrides(self):
        assert default_workers({PARALLEL_WORKERS_ENV_VAR: "3"}) == 3

    def test_default_is_cpu_count(self):
        assert default_workers({}) == (os.cpu_count() or 1)

    def test_rejects_non_integer(self):
        with pytest.raises(ConfigurationError):
            default_workers({PARALLEL_WORKERS_ENV_VAR: "many"})

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            default_workers({PARALLEL_WORKERS_ENV_VAR: "0"})


class TestShardedEquivalence:
    """Forced sharding (min_batch=1) must be bit-identical to serial."""

    def test_scores_match_fast_and_accurate(self):
        model = make_model()
        x = make_inputs(model, 37)
        sharded = parallel_scores(model, x, workers=4, min_batch=1)
        np.testing.assert_array_equal(sharded, batched_scores(model, x))
        np.testing.assert_array_equal(
            sharded, get_engine("accurate").scores(model, x))

    def test_predict_matches(self):
        model = make_model()
        x = make_inputs(model, 41)
        np.testing.assert_array_equal(
            parallel_predict(model, x, workers=3, min_batch=1),
            model.predict_batch(x))

    def test_uneven_batch_sizes(self):
        model = make_model()
        for n in (1, 2, 7, 33):
            x = make_inputs(model, n, seed=n)
            np.testing.assert_array_equal(
                parallel_scores(model, x, workers=4, min_batch=1),
                batched_scores(model, x))

    def test_pool_reuse_across_models(self):
        first, second = make_model(seed=2), make_model((48, 32, 4), seed=3)
        x1, x2 = make_inputs(first, 9), make_inputs(second, 9)
        np.testing.assert_array_equal(
            parallel_scores(first, x1, workers=2, min_batch=1),
            batched_scores(first, x1))
        np.testing.assert_array_equal(
            parallel_scores(second, x2, workers=2, min_batch=1),
            batched_scores(second, x2))

    def test_hidden_forward_matches_engines(self):
        model = make_model((60, 40, 30, 10))
        x = make_inputs(model, 11)
        np.testing.assert_array_equal(
            get_engine("parallel").hidden_forward(model, x),
            model.hidden_forward_batch(x))


class TestShardTransports:
    """Both shard transports must be bit-identical and probed."""

    def _run(self, use_shm):
        model = make_model()
        # 300 rows >= 2 * MIN_CHUNK_ROWS, so the chunker really shards
        x = make_inputs(model, 300)
        events = []
        with use_session(cache_enabled=False) as session:
            for event in ("bnn.parallel.shard", "bnn.parallel.merge"):
                session.stats.subscribe(
                    event, lambda name, payload: events.append(
                        (name, dict(payload))))
            scores = parallel_scores(model, x, workers=2, min_batch=1,
                                     use_shm=use_shm)
        np.testing.assert_array_equal(scores, batched_scores(model, x))
        return events

    def test_shared_memory_branch(self):
        events = self._run(use_shm=True)
        shards = [p for name, p in events if name == "bnn.parallel.shard"]
        merges = [p for name, p in events if name == "bnn.parallel.merge"]
        assert len(shards) >= 2 and len(merges) == 1
        assert all(p["transport"] == "shm" for p in shards + merges)
        assert sum(p["rows"] for p in shards) == 300

    def test_pickling_fallback_branch(self):
        events = self._run(use_shm=False)
        shards = [p for name, p in events if name == "bnn.parallel.shard"]
        merges = [p for name, p in events if name == "bnn.parallel.merge"]
        assert len(shards) >= 2 and len(merges) == 1
        assert all(p["transport"] == "pickle" for p in shards + merges)
        assert sum(p["rows"] for p in shards) == 300

    def test_env_var_disables_shared_memory(self):
        assert shm_default({PARALLEL_SHM_ENV_VAR: "0"}) is False
        assert shm_default({PARALLEL_SHM_ENV_VAR: "off"}) is False
        assert shm_default({}) is True

    def test_env_var_forces_pickling_end_to_end(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_SHM_ENV_VAR, "0")
        events = self._run(use_shm=None)
        shards = [p for name, p in events if name == "bnn.parallel.shard"]
        assert shards and all(p["transport"] == "pickle" for p in shards)

    def test_shm_unavailable_falls_back_to_pickling(self, monkeypatch):
        import repro.bnn.parallel as par

        monkeypatch.setattr(par, "_shared_memory_module", lambda: None)
        events = self._run(use_shm=None)
        shards = [p for name, p in events if name == "bnn.parallel.shard"]
        assert shards and all(p["transport"] == "pickle" for p in shards)


class TestSerialFallback:
    def test_small_batch_stays_serial(self, monkeypatch):
        import repro.bnn.parallel as par

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool used for a small batch")

        monkeypatch.setattr(par, "_get_pool", boom)
        model = make_model()
        x = make_inputs(model, MIN_PARALLEL_BATCH - 1)
        np.testing.assert_array_equal(
            par.parallel_scores(model, x, workers=4),
            batched_scores(model, x))

    def test_single_worker_stays_serial(self, monkeypatch):
        import repro.bnn.parallel as par

        monkeypatch.setattr(par, "_get_pool", lambda *a, **k: (
            (_ for _ in ()).throw(AssertionError("pool used"))))
        model = make_model()
        x = make_inputs(model, MIN_PARALLEL_BATCH + 8)
        np.testing.assert_array_equal(
            par.parallel_scores(model, x, workers=1, min_batch=1),
            batched_scores(model, x))


class TestEngineAccounting:
    """Stats registry and timing must not depend on the engine."""

    def _run(self, engine):
        model = make_model()
        x = make_inputs(model, 12)
        with use_session(cache_enabled=False, engine=engine) as session:
            predictions, timing = BNNAccelerator().infer_batch(model, x)
            counters = session.stats.counters("bnn.")
        return list(predictions), timing.total_cycles, counters

    def test_every_registered_engine_accounting_identical(self):
        """Auto-discovered four-way (accurate/fast/numpy/parallel today):
        timing, predictions and ``bnn.*`` counters must be identical
        under every registered engine, including any added later."""
        names = engine_names()
        assert {"accurate", "fast", "parallel", "numpy"} <= set(names)
        oracle = self._run("accurate")
        for name in names:
            assert self._run(name) == oracle, name
