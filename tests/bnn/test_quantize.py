"""Tests for binarization and bit-packing primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.bnn import quantize as q
from repro.errors import ConfigurationError


class TestBinarize:
    def test_sign_of_zero_is_plus_one(self):
        assert q.binarize_sign(np.array([0.0]))[0] == 1

    def test_signs(self):
        np.testing.assert_array_equal(
            q.binarize_sign(np.array([-0.5, 0.5, -2, 3])),
            np.array([-1, 1, -1, 1], dtype=np.int8),
        )

    def test_check_sign_domain_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            q.check_sign_domain(np.array([1, 0, -1]))

    def test_sign_bit_roundtrip(self):
        signs = np.array([1, -1, -1, 1], dtype=np.int8)
        np.testing.assert_array_equal(q.bits_to_sign(q.sign_to_bits(signs)), signs)


class TestPacking:
    def test_pack_known_pattern(self):
        bits = np.zeros(32, dtype=np.uint8)
        bits[0] = 1
        bits[31] = 1
        assert q.pack_bits(bits)[0] == 0x80000001

    def test_pack_pads_with_zeros(self):
        bits = np.ones(33, dtype=np.uint8)
        words = q.pack_bits(bits)
        assert words.shape == (2,)
        assert words[0] == 0xFFFFFFFF
        assert words[1] == 1

    @given(arrays(np.uint8, st.integers(1, 200), elements=st.integers(0, 1)))
    def test_pack_unpack_roundtrip(self, bits):
        np.testing.assert_array_equal(q.unpack_bits(q.pack_bits(bits), len(bits)),
                                      bits)

    def test_unpack_too_few_words(self):
        with pytest.raises(ConfigurationError):
            q.unpack_bits(np.array([0], dtype=np.uint32), 40)

    def test_pack_batch_axis(self):
        bits = np.random.default_rng(0).integers(0, 2, size=(5, 70), dtype=np.uint8)
        words = q.pack_bits(bits)
        assert words.shape == (5, 3)
        np.testing.assert_array_equal(q.unpack_bits(words, 70), bits)


class TestPopcount:
    @given(st.integers(0, 0xFFFFFFFF))
    def test_popcount_matches_bin(self, word):
        assert q.popcount32(np.array([word], dtype=np.uint32))[0] == bin(word).count("1")

    def test_popcount_vectorized(self):
        words = np.array([0, 1, 3, 0xFFFFFFFF], dtype=np.uint32)
        np.testing.assert_array_equal(q.popcount32(words), [0, 1, 2, 32])


class TestXnorPopcount:
    @given(st.integers(1, 150), st.integers(0, 2 ** 31))
    def test_matches_sign_dot(self, n_bits, seed):
        rng = np.random.default_rng(seed)
        a = q.binarize_sign(rng.standard_normal(n_bits))
        b = q.binarize_sign(rng.standard_normal(n_bits))
        matches = q.xnor_popcount(
            q.pack_bits(q.sign_to_bits(a)), q.pack_bits(q.sign_to_bits(b)), n_bits
        )
        # dot = matches - mismatches = 2*matches - n
        assert 2 * int(matches) - n_bits == q.sign_dot(a, b)

    def test_padding_bits_never_count(self):
        # 1-bit vectors disagree; padding must not add fake matches
        a = q.pack_bits(np.array([1], dtype=np.uint8))
        b = q.pack_bits(np.array([0], dtype=np.uint8))
        assert q.xnor_popcount(a, b, 1) == 0

    def test_identical_vectors_all_match(self):
        bits = np.random.default_rng(1).integers(0, 2, 100, dtype=np.uint8)
        words = q.pack_bits(bits)
        assert q.xnor_popcount(words, words, 100) == 100
