"""Tests for the STE trainer."""

import numpy as np
import pytest

from repro.bnn import BNNTrainer, synthetic_mnist, train_bnn
from repro.errors import ConfigurationError


def toy_problem(n=400, seed=0):
    """Linearly separable 2-class problem in sign domain."""
    rng = np.random.default_rng(seed)
    x = np.where(rng.standard_normal((n, 16)) > 0, 1, -1)
    labels = (x[:, :8].sum(axis=1) > x[:, 8:].sum(axis=1)).astype(np.int64)
    return x, labels


class TestTrainerBasics:
    def test_needs_two_sizes(self):
        with pytest.raises(ConfigurationError):
            BNNTrainer([10])

    def test_input_shape_checked(self):
        trainer = BNNTrainer([8, 2])
        with pytest.raises(ConfigurationError):
            trainer.train(np.ones((4, 9)), np.zeros(4, dtype=int), epochs=1)

    def test_labels_range_checked(self):
        trainer = BNNTrainer([8, 2])
        with pytest.raises(ConfigurationError):
            trainer.train(np.ones((4, 8)), np.array([0, 1, 2, 0]), epochs=1)

    def test_shadow_weights_stay_clipped(self):
        x, y = toy_problem()
        trainer = BNNTrainer([16, 8, 2], learning_rate=0.1)
        trainer.train(x, y, epochs=3)
        for shadow in trainer.shadow:
            assert np.all(np.abs(shadow) <= 1.0)

    def test_history_lengths(self):
        x, y = toy_problem()
        trainer = BNNTrainer([16, 2])
        history = trainer.train(x, y, epochs=5)
        assert len(history.loss) == 5
        assert len(history.train_accuracy) == 5

    def test_deterministic_given_seeds(self):
        x, y = toy_problem()
        m1 = train_bnn(x, y, [16, 8, 2], epochs=3, seed=42)
        m2 = train_bnn(x, y, [16, 8, 2], epochs=3, seed=42)
        for l1, l2 in zip(m1.layers, m2.layers):
            np.testing.assert_array_equal(l1.weights, l2.weights)
            np.testing.assert_array_equal(l1.bias, l2.bias)


class TestLearning:
    def test_learns_separable_problem(self):
        x, y = toy_problem()
        model = train_bnn(x, y, [16, 32, 2], epochs=30, seed=0)
        assert model.accuracy(x, y) > 0.9

    def test_loss_decreases(self):
        x, y = toy_problem()
        trainer = BNNTrainer([16, 16, 2], learning_rate=0.01)
        history = trainer.train(x, y, epochs=10)
        assert history.loss[-1] < history.loss[0]

    def test_exported_model_is_pure_integer(self):
        x, y = toy_problem()
        model = train_bnn(x, y, [16, 8, 2], epochs=2)
        for layer in model.layers:
            assert layer.weights.dtype == np.int8
            assert set(np.unique(layer.weights)) <= {-1, 1}
            assert layer.bias.dtype == np.int32

    def test_deep_network_trains_on_synthetic_mnist(self):
        # small/fast smoke version of the paper's 4x100 topology
        ds = synthetic_mnist(n_samples=1200, seed=0)
        train, test = ds.split(0.8)
        model = train_bnn(train.binarized(), train.labels,
                          [256, 64, 64, 64, 10], epochs=10, seed=0)
        accuracy = model.accuracy(test.binarized(), test.labels)
        assert accuracy > 0.6  # far above the 10 % random floor
