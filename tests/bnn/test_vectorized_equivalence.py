"""Differential equivalence of the ``numpy`` (vectorized) engine.

The whole-batch ndarray kernels must be *bit-identical* to the scalar
path and to every other registered engine — for both scoring strategies
(float32 GEMM and 3-D packed XNOR-popcount), both popcount backends
(``np.bitwise_count`` and the 16-bit LUT), and across odd topologies.
The four-way engine sweep auto-discovers engines from the registry, so
future backends are covered by construction.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.bnn.vectorized as vec
from repro.bnn import BNNModel, binarize_sign
from repro.bnn.batched import (
    batched_hidden_forward,
    batched_scores,
    popcount64,
)
from repro.bnn.vectorized import (
    GEMM_MAX_FAN_IN,
    LUT_BITS,
    STRATEGY_ENV_VAR,
    NumpyEngine,
    pick_strategy,
    popcount64_lut16,
    resolve_strategy,
    vectorized_hidden_forward,
    vectorized_model,
    vectorized_predict,
    vectorized_scores,
)
from repro.engine import engine_names, get_engine
from repro.errors import ConfigurationError
from repro.sim import use_session


def make_model(sizes=(60, 40, 10), seed=0):
    return BNNModel.random(list(sizes), np.random.default_rng(seed))


def make_inputs(model, n, seed=1):
    rng = np.random.default_rng(seed)
    return binarize_sign(rng.standard_normal((n, model.input_size)))


def _scalar_scores(model, x):
    return np.stack([model.scores(row) for row in x])


class TestPopcountLUT:
    def test_matches_bitwise_count_semantics(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**64, size=(13, 4), dtype=np.uint64)
        np.testing.assert_array_equal(popcount64_lut16(words),
                                      popcount64(words))

    def test_extremes(self):
        words = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        assert popcount64_lut16(words).tolist() == [0, 1, 1, 64]

    def test_table_shape(self):
        table = vec._popcount16_table()
        assert table.shape == (1 << LUT_BITS,)
        assert table.dtype == np.uint8
        assert table[0] == 0 and table[-1] == LUT_BITS


class TestStrategySelection:
    def test_explicit_argument_wins(self):
        assert resolve_strategy("packed") == "packed"

    def test_env_var_respected(self):
        assert resolve_strategy(None, {STRATEGY_ENV_VAR: "packed"}) == \
            "packed"

    def test_default_is_auto(self):
        assert resolve_strategy(None, {}) == "auto"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_strategy("turbo")

    def test_auto_prefers_gemm_within_exact_range(self):
        assert pick_strategy(GEMM_MAX_FAN_IN - 1, "auto") == "gemm"

    def test_auto_falls_back_to_packed_beyond_exact_range(self):
        assert pick_strategy(GEMM_MAX_FAN_IN, "auto") == "packed"

    def test_forced_strategy_ignores_fan_in(self):
        assert pick_strategy(GEMM_MAX_FAN_IN, "gemm") == "gemm"


class TestBitIdenticalScores:
    @pytest.mark.parametrize("strategy", ["gemm", "packed"])
    @pytest.mark.parametrize("topology", [
        [100, 100, 100, 10],   # the chip's canonical network
        [64, 64, 4],           # exact word multiples
        [65, 64, 3],           # one bit past a word boundary
        [33, 7, 5],            # nothing aligns
        [1, 1, 1],             # degenerate
        [130, 2],              # single layer, multi-word
    ])
    def test_scores_bit_identical(self, topology, strategy):
        model = make_model(topology, seed=42)
        x = make_inputs(model, 23, seed=2)
        got = vectorized_scores(model, x, strategy=strategy)
        assert got.dtype == np.int32
        np.testing.assert_array_equal(got, batched_scores(model, x))
        np.testing.assert_array_equal(got, _scalar_scores(model, x))

    @pytest.mark.parametrize("strategy", ["gemm", "packed"])
    def test_hidden_forward_bit_identical(self, strategy):
        model = make_model((60, 40, 30, 10))
        x = make_inputs(model, 11)
        got = vectorized_hidden_forward(model, x, strategy=strategy)
        np.testing.assert_array_equal(got, model.hidden_forward_batch(x))
        np.testing.assert_array_equal(got, batched_hidden_forward(model, x))

    def test_predict_matches(self):
        model = make_model()
        x = make_inputs(model, 41)
        np.testing.assert_array_equal(vectorized_predict(model, x),
                                      model.predict_batch(x))

    def test_lut_backend_bit_identical(self, monkeypatch):
        monkeypatch.setattr(vec, "_HAS_BITWISE_COUNT", False)
        model = make_model((65, 33, 5), seed=9)
        x = make_inputs(model, 17, seed=3)
        np.testing.assert_array_equal(
            vectorized_scores(model, x, strategy="packed"),
            batched_scores(model, x))

    def test_env_var_drives_default_strategy(self, monkeypatch):
        monkeypatch.setenv(STRATEGY_ENV_VAR, "packed")
        model = make_model()
        x = make_inputs(model, 9)
        np.testing.assert_array_equal(vectorized_scores(model, x),
                                      batched_scores(model, x))

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_topologies_bit_identical(self, data):
        sizes = data.draw(st.lists(st.integers(1, 130), min_size=2,
                                   max_size=5))
        batch = data.draw(st.integers(1, 8))
        seed = data.draw(st.integers(0, 2**16))
        strategy = data.draw(st.sampled_from(["gemm", "packed"]))
        model = make_model(sizes, seed=seed)
        x = make_inputs(model, batch, seed=seed + 1)
        np.testing.assert_array_equal(
            vectorized_scores(model, x, strategy=strategy),
            _scalar_scores(model, x))


class TestLoweringCache:
    def test_lowering_is_cached_per_model(self):
        model = make_model()
        assert vectorized_model(model) is vectorized_model(model)

    def test_distinct_models_get_distinct_lowerings(self):
        m1, m2 = make_model(seed=0), make_model(seed=0)
        assert vectorized_model(m1) is not vectorized_model(m2)


class TestInputValidation:
    def test_wrong_input_size_rejected(self):
        model = make_model((30, 10))
        with pytest.raises(ConfigurationError):
            vectorized_scores(model, np.ones((4, 29), dtype=np.int8))

    def test_non_sign_values_rejected(self):
        model = make_model((30, 10))
        bad = np.ones((2, 30), dtype=np.int8)
        bad[0, 0] = 0
        with pytest.raises(ConfigurationError):
            vectorized_scores(model, bad)


class TestRegisteredEngine:
    def test_numpy_engine_registered_with_capabilities(self):
        assert "numpy" in engine_names()
        engine = get_engine("numpy")
        assert isinstance(engine, NumpyEngine)
        caps = engine.capabilities
        assert caps.functional and caps.batched
        assert caps.phase_attribution and not caps.timing_accurate

    def test_all_registered_engines_bit_identical(self):
        """The four-way (and beyond) sweep: every registered engine must
        produce the oracle's scores, predictions and hidden activations
        bit for bit — auto-discovered, so new engines join for free."""
        model = make_model((100, 100, 100, 10), seed=5)
        x = make_inputs(model, 29, seed=6)
        oracle = get_engine("accurate")
        scores = oracle.scores(model, x)
        predictions = oracle.predict(model, x)
        hidden = oracle.hidden_forward(model, x)
        names = engine_names()
        assert {"accurate", "fast", "parallel", "numpy"} <= set(names)
        for name in names:
            engine = get_engine(name)
            np.testing.assert_array_equal(
                engine.scores(model, x), scores, err_msg=name)
            np.testing.assert_array_equal(
                engine.predict(model, x), predictions, err_msg=name)
            np.testing.assert_array_equal(
                engine.hidden_forward(model, x), hidden, err_msg=name)

    def test_session_engine_numpy_end_to_end(self):
        from repro.bnn import BNNAccelerator

        model = make_model()
        x = make_inputs(model, 12)
        with use_session(cache_enabled=False, engine="numpy"):
            numpy_pred, numpy_timing = BNNAccelerator().infer_batch(model, x)
        with use_session(cache_enabled=False, engine="accurate"):
            ref_pred, ref_timing = BNNAccelerator().infer_batch(model, x)
        np.testing.assert_array_equal(numpy_pred, ref_pred)
        assert numpy_timing == ref_timing
