"""Tests for the paper's section VI.A/VIII.A extension modes:

* deeper-than-4-layer models (wrapped on one core),
* smaller models configured through the ISA (transition neuron 2),
* two cores chained in series to form a deeper network,
* the forwarding-network ablation on the pipeline.
"""

import numpy as np
import pytest

from repro.bnn import BNNAccelerator, BNNModel, binarize_sign
from repro.bnn.quantize import pack_bits, sign_to_bits
from repro.core import NCPUCore, NCPUSoC
from repro.cpu import FlatMemory, PipelinedCPU
from repro.engine import engine_names
from repro.errors import ConfigurationError
from repro.isa import assemble


def deep_model(seed=0):
    rng = np.random.default_rng(seed)
    return BNNModel.random([48, 40, 40, 40, 40, 40, 4], rng)  # 6 layers


class TestModelRestructuring:
    def test_split_shapes(self):
        model = deep_model()
        front, back = model.split(3)
        assert front.n_layers == 3
        assert back.n_layers == 3
        assert front.n_classes == back.input_size

    def test_split_bounds(self):
        model = deep_model()
        with pytest.raises(ConfigurationError):
            model.split(0)
        with pytest.raises(ConfigurationError):
            model.split(6)

    def test_chained_halves_equal_whole(self):
        model = deep_model()
        front, back = model.split(3)
        rng = np.random.default_rng(1)
        xs = binarize_sign(rng.standard_normal((8, 48)))
        whole = model.predict_batch(xs)
        acts = front.hidden_forward_batch(xs)
        chained = back.predict_batch(acts)
        np.testing.assert_array_equal(whole, chained)

    def test_hidden_forward_is_sign_domain(self):
        model = deep_model()
        xs = binarize_sign(np.random.default_rng(2).standard_normal((3, 48)))
        acts = model.hidden_forward_batch(xs)
        assert set(np.unique(acts)) <= {-1, 1}

    def test_truncated(self):
        model = deep_model()
        small = model.truncated(2)
        assert small.n_layers == 2
        assert small.n_classes == 40
        with pytest.raises(ConfigurationError):
            model.truncated(0)
        with pytest.raises(ConfigurationError):
            model.truncated(7)


class TestDeepModelOnOneCore:
    def test_wrapping_blocks_pipelining_but_works(self):
        model = deep_model()
        accelerator = BNNAccelerator()
        assert accelerator.wraps(model)
        core = NCPUCore()
        core.load_model(model)
        x = binarize_sign(np.random.default_rng(3).standard_normal(48))
        words = pack_bits(sign_to_bits(x))
        core.memory.banks["image"].write_words(0, [int(w) for w in words])
        core.switch_to_bnn()
        assert core.run_bnn(n_inputs=1) == [model.predict(x)]

    def test_wrapped_weight_banks_shared(self):
        core = NCPUCore()
        core.load_model(deep_model())
        # layers 4 and 5 wrapped back into banks w1/w2
        assert core.memory.weight_bank_for_layer(4).name == "w1"
        assert core.memory.weight_bank_for_layer(5).name == "w2"


class TestIsaConfiguredSmallerModel:
    def test_transition_neuron_truncates(self):
        model = deep_model()
        core = NCPUCore()
        core.load_model(model)
        truncated = model.truncated(2)
        x = binarize_sign(np.random.default_rng(4).standard_normal(48))
        words = pack_bits(sign_to_bits(x))
        core.memory.banks["image"].write_words(0, [int(w) for w in words])
        core.run_cpu_program(assemble("""
            li a0, 2
            mv_neu 2, a0      # run only the first two layers
            trans_bnn
        """))
        assert core.run_bnn(n_inputs=1) == [truncated.predict(x)]

    def test_truncated_run_is_faster(self):
        model = deep_model()
        full_core = NCPUCore()
        full_core.load_model(model)
        small_core = NCPUCore()
        small_core.load_model(model)
        x = binarize_sign(np.random.default_rng(5).standard_normal(48))
        words = [int(w) for w in pack_bits(sign_to_bits(x))]
        for core in (full_core, small_core):
            core.memory.banks["image"].write_words(0, words)
        full_core.switch_to_bnn()
        full_core.run_bnn(n_inputs=1)
        small_core.env.write_transition_neuron(2, 2)
        small_core.switch_to_bnn()
        small_core.run_bnn(n_inputs=1)
        assert small_core.clock < full_core.clock


class TestChainedCores:
    @pytest.mark.parametrize("engine", sorted(engine_names()))
    def test_chained_predictions_match_model(self, engine):
        soc = NCPUSoC(n_cores=2, engine=engine)
        assert soc.cores[0].engine.name == engine
        model = deep_model()
        xs = binarize_sign(np.random.default_rng(6).standard_normal((5, 48)))
        predictions, makespan = soc.run_chained_inference(model, xs)
        np.testing.assert_array_equal(predictions, model.predict_batch(xs))
        assert makespan > 0

    def test_chained_timing_is_engine_independent(self):
        """The engine may change host-side math only: predictions AND the
        simulated makespan must agree across every registered engine."""
        model = deep_model()
        xs = binarize_sign(np.random.default_rng(16).standard_normal((7, 48)))
        outcomes = []
        for engine in sorted(engine_names()):
            soc = NCPUSoC(n_cores=2, engine=engine)
            outcomes.append(soc.run_chained_inference(model, xs))
        reference_predictions, reference_makespan = outcomes[0]
        for predictions, makespan in outcomes[1:]:
            assert predictions == reference_predictions
            assert makespan == reference_makespan

    def test_single_input_accepted(self):
        soc = NCPUSoC(n_cores=2)
        model = deep_model()
        x = binarize_sign(np.random.default_rng(7).standard_normal(48))
        predictions, _ = soc.run_chained_inference(model, x)
        assert predictions == [model.predict(x)]

    def test_chaining_beats_wrapping_on_throughput(self):
        """The cooperative mode's point: chained cores pipeline a deep net
        that a single (wrapping) core must serialize."""
        soc = NCPUSoC(n_cores=2)
        model = deep_model()
        n = 10
        xs = binarize_sign(np.random.default_rng(8).standard_normal((n, 48)))
        _, chained_makespan = soc.run_chained_inference(model, xs)
        single = BNNAccelerator()
        wrapped = single.batch_timing(model, n, stream_weights=False)
        assert chained_makespan < wrapped.total_cycles

    def test_needs_two_cores(self):
        soc = NCPUSoC(n_cores=1)
        with pytest.raises(ConfigurationError):
            soc.run_chained_inference(deep_model(), np.ones(48, dtype=np.int8))

    def test_intermediate_activations_in_core1_image_memory(self):
        soc = NCPUSoC(n_cores=2)
        model = deep_model()
        x = binarize_sign(np.random.default_rng(9).standard_normal(48))
        soc.run_chained_inference(model, x, split_at=3)
        front, _ = model.split(3)
        expected = front.hidden_forward_batch(x[None, :])[0]
        from repro.bnn.quantize import bits_to_sign, unpack_bits

        words = np.array(soc.core(1).memory.banks["image"].read_words(
            0, (front.n_classes + 31) // 32), dtype=np.uint32)
        got = bits_to_sign(unpack_bits(words, front.n_classes))
        np.testing.assert_array_equal(got, expected)

    def test_results_in_core1_output_memory(self):
        soc = NCPUSoC(n_cores=2)
        model = deep_model()
        xs = binarize_sign(np.random.default_rng(10).standard_normal((3, 48)))
        predictions, _ = soc.run_chained_inference(model, xs)
        assert soc.core(1).read_results(3) == predictions


class TestForwardingAblation:
    SOURCE = """
        li a0, 1
        addi a1, a0, 2
        add a2, a1, a0
        add a3, a2, a1
        li t0, 64
        sw a3, 0(t0)
        lw a4, 0(t0)
        addi a5, a4, 1
        ebreak
    """

    def test_same_architectural_result(self):
        program = assemble(self.SOURCE)
        with_fwd = PipelinedCPU(program, memory=FlatMemory(size=256))
        without = PipelinedCPU(program, memory=FlatMemory(size=256),
                               forwarding=False)
        with_fwd.run()
        without.run()
        assert with_fwd.regs.snapshot() == without.regs.snapshot()

    def test_no_forwarding_costs_cycles(self):
        program = assemble(self.SOURCE)
        fast = PipelinedCPU(program, memory=FlatMemory(size=256)).run()
        slow = PipelinedCPU(program, memory=FlatMemory(size=256),
                            forwarding=False).run()
        assert slow.stats.cycles > fast.stats.cycles
        assert slow.stats.stalls > fast.stats.stalls

    def test_back_to_back_costs_two_bubbles(self):
        # operands are fetched at EX in this design, so the interlock holds
        # a back-to-back consumer for two cycles (ID-read designs need 3)
        program = assemble("li a0, 1\naddi a1, a0, 1\nebreak")
        result = PipelinedCPU(program, forwarding=False).run()
        assert result.stats.stalls == 2

    def test_cycle_invariant_still_holds(self):
        program = assemble(self.SOURCE)
        result = PipelinedCPU(program, memory=FlatMemory(size=256),
                              forwarding=False).run()
        stats = result.stats
        assert stats.cycles == stats.instructions + 4 + stats.stalls \
            + stats.flushes

    def test_independent_instructions_unaffected(self):
        program = assemble("li a0, 1\nli a1, 2\nli a2, 3\nebreak")
        fast = PipelinedCPU(program).run()
        slow = PipelinedCPU(program, forwarding=False).run()
        assert fast.stats.cycles == slow.stats.cycles
