"""Tests for timelines, segments, utilization, and power traces."""

import pytest

from repro.core import BNN, CPU, IDLE, SWITCH, Timeline
from repro.errors import ConfigurationError


class TestSegments:
    def test_segment_validation(self):
        timeline = Timeline()
        with pytest.raises(ConfigurationError):
            timeline.add("c", CPU, 10, 5)

    def test_cycles(self):
        timeline = Timeline()
        segment = timeline.add("c", CPU, 5, 15)
        assert segment.cycles == 10

    def test_end_of_empty(self):
        assert Timeline().end == 0


class TestUtilization:
    def make(self):
        timeline = Timeline()
        timeline.add("a", CPU, 0, 70)
        timeline.add("a", BNN, 70, 100)
        timeline.add("b", IDLE, 0, 50)
        timeline.add("b", BNN, 50, 100)
        return timeline

    def test_fully_busy_core(self):
        assert self.make().utilization("a") == 1.0

    def test_partially_idle_core(self):
        assert self.make().utilization("b") == 0.5

    def test_switch_counts_as_busy(self):
        timeline = Timeline()
        timeline.add("a", SWITCH, 0, 10)
        timeline.add("a", BNN, 10, 100)
        assert timeline.utilization("a") == 1.0

    def test_utilizations_dict(self):
        utils = self.make().utilizations()
        assert set(utils) == {"a", "b"}

    def test_core_names_order(self):
        assert self.make().core_names() == ["a", "b"]

    def test_busy_cycles_kind_filter(self):
        timeline = self.make()
        assert timeline.busy_cycles("a", kinds=(CPU,)) == 70


class TestValidation:
    def test_overlap_detected(self):
        timeline = Timeline()
        timeline.add("a", CPU, 0, 50)
        timeline.add("a", BNN, 40, 80)
        with pytest.raises(ConfigurationError):
            timeline.validate_no_overlap()

    def test_disjoint_ok(self):
        timeline = Timeline()
        timeline.add("a", CPU, 0, 50)
        timeline.add("a", BNN, 50, 80)
        timeline.validate_no_overlap()


class TestPowerTrace:
    def test_trace_structure(self):
        timeline = Timeline()
        timeline.add("a", CPU, 0, 100)
        timeline.add("a", BNN, 100, 150)
        traces = timeline.power_trace(voltage=1.0, f_hz=50e6)
        assert "a" in traces
        points = traces["a"]
        assert len(points) == 4  # two points per segment
        assert points[0][0] == 0.0
        assert points[-1][0] == pytest.approx(150 / 50e6 * 1e6)

    def test_bnn_draws_more_than_cpu(self):
        timeline = Timeline()
        timeline.add("a", CPU, 0, 100)
        timeline.add("a", BNN, 100, 200)
        points = timeline.power_trace(1.0, 50e6)["a"]
        cpu_power = points[0][1]
        bnn_power = points[2][1]
        assert bnn_power > cpu_power

    def test_idle_draws_leakage_only(self):
        timeline = Timeline()
        timeline.add("a", CPU, 0, 100)
        timeline.add("a", IDLE, 100, 200)
        points = timeline.power_trace(1.0, 50e6)["a"]
        assert points[2][1] < points[0][1]
        assert points[2][1] > 0
