"""Multi-round operation: the NCPU core alternating CPU and BNN phases over
a stream of frames, with post-processing reading the results back — the
paper's continuous real-time operation (Fig 5b's assembly flow)."""

import numpy as np

from repro.bnn import BNNModel, binarize_sign
from repro.bnn.quantize import pack_bits, sign_to_bits
from repro.core import CoreMode, NCPUCore
from repro.isa import assemble
from repro.workloads import layout


def small_model(seed=0):
    return BNNModel.random([64, 32, 32, 32, 4], np.random.default_rng(seed))


class TestContinuousOperation:
    def test_many_rounds_alternate_cleanly(self):
        model = small_model()
        core = NCPUCore()
        core.load_model(model)
        rng = np.random.default_rng(1)
        expected = []
        got = []
        for round_index in range(6):
            x = binarize_sign(rng.standard_normal(64))
            expected.append(model.predict(x))
            core.memory.banks["image"].write_words(
                0, [int(w) for w in pack_bits(sign_to_bits(x))])
            run = core.run_cpu_program(assemble("""
                li a0, 64
                mv_neu 0, a0
                li a0, 1
                mv_neu 1, a0
                trans_bnn
            """))
            assert run.stop_reason == "trans_bnn"
            got.extend(core.run_bnn())
            core.switch_to_cpu()
            assert core.mode is CoreMode.CPU
        assert got == expected
        core.timeline.validate_no_overlap()
        # 6 rounds = 12 switch segments, interleaved cpu/bnn
        kinds = [s.kind for s in core.timeline.core_segments(core.name)]
        assert kinds.count("switch") == 12
        assert kinds.count("bnn") == 6

    def test_post_processing_reads_results_via_cpu(self):
        """After BNN mode, CPU code loads the classification from the
        output memory (reconfigured as data cache) — the paper's
        'classification results directly from the output memory'."""
        model = small_model()
        core = NCPUCore()
        core.load_model(model)
        x = binarize_sign(np.random.default_rng(2).standard_normal(64))
        core.memory.banks["image"].write_words(
            0, [int(w) for w in pack_bits(sign_to_bits(x))])
        core.env.write_transition_neuron(0, 64)
        core.switch_to_bnn()
        prediction = core.run_bnn(n_inputs=1)[0]
        core.switch_to_cpu()

        post = assemble(f"""
            li a1, {layout.RESULT_BASE}
            lw a0, 0(a1)          # the BNN's classification
            addi a0, a0, 100      # post-process it
            sw a0, 4(a1)
            ebreak
        """)
        result = core.run_cpu_program(post)
        assert result.halted
        assert core.registers.read(10) == prediction + 100
        assert core.memory.banks["output"].load(
            layout.RESULT_BASE + 4, 4) == prediction + 100

    def test_clock_strictly_increases_across_rounds(self):
        model = small_model()
        core = NCPUCore()
        core.load_model(model)
        x = binarize_sign(np.random.default_rng(3).standard_normal(64))
        core.memory.banks["image"].write_words(
            0, [int(w) for w in pack_bits(sign_to_bits(x))])
        core.env.write_transition_neuron(0, 64)
        stamps = []
        for _ in range(3):
            core.switch_to_bnn()
            core.run_bnn(n_inputs=1)
            core.switch_to_cpu()
            stamps.append(core.clock)
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 3

    def test_utilization_stays_full_across_rounds(self):
        model = small_model()
        core = NCPUCore()
        core.load_model(model)
        x = binarize_sign(np.random.default_rng(4).standard_normal(64))
        core.memory.banks["image"].write_words(
            0, [int(w) for w in pack_bits(sign_to_bits(x))])
        core.env.write_transition_neuron(0, 64)
        for _ in range(4):
            core.switch_to_bnn()
            core.run_bnn(n_inputs=1)
            core.switch_to_cpu()
        # no idle segments were ever inserted
        assert core.utilization() == 1.0
