"""Integration tests for the reconfigurable NCPU core."""

import numpy as np
import pytest

from repro.bnn import BNNModel, binarize_sign
from repro.bnn.quantize import pack_bits, sign_to_bits
from repro.core import CoreMode, NCPUCore, TransitionPolicy
from repro.errors import ConfigurationError, SimulationError
from repro.isa import assemble
from repro.workloads import image_pipeline as ip
from repro.workloads import layout


def small_model(input_size=64, width=32, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return BNNModel.random([input_size, width, width, width, classes], rng)


def write_packed_input(core, x_sign):
    words = pack_bits(sign_to_bits(x_sign))
    core.memory.banks["image"].write_words(0, [int(w) for w in words])


class TestModes:
    def test_starts_in_cpu_mode(self):
        assert NCPUCore().mode is CoreMode.CPU

    def test_switch_roundtrip(self):
        core = NCPUCore()
        core.load_model(small_model())
        core.switch_to_bnn()
        assert core.mode is CoreMode.BNN
        core.switch_to_cpu()
        assert core.mode is CoreMode.CPU

    def test_run_bnn_requires_bnn_mode(self):
        core = NCPUCore()
        core.load_model(small_model())
        with pytest.raises(SimulationError):
            core.run_bnn()

    def test_run_cpu_requires_cpu_mode(self):
        core = NCPUCore()
        core.load_model(small_model())
        core.switch_to_bnn()
        with pytest.raises(SimulationError):
            core.run_cpu_program(assemble("ebreak"))

    def test_run_bnn_requires_model(self):
        core = NCPUCore()
        core.memory.set_mode(CoreMode.BNN)
        with pytest.raises(SimulationError):
            core.run_bnn()

    def test_switch_idempotent(self):
        core = NCPUCore()
        core.load_model(small_model())
        core.switch_to_bnn()
        clock = core.clock
        core.switch_to_bnn()
        assert core.clock == clock


class TestCpuExecution:
    def test_program_runs_on_banked_memory(self):
        core = NCPUCore()
        result = core.run_cpu_program(assemble("""
            li a0, 77
            li a1, 0x1400      # w1 bank reused as data cache
            sw a0, 0(a1)
            lw a2, 0(a1)
            ebreak
        """))
        assert result.halted
        assert core.memory.banks["w1"].writes == 1
        assert core.clock == result.stats.cycles

    def test_trans_bnn_switches_mode(self):
        core = NCPUCore()
        core.load_model(small_model())
        result = core.run_cpu_program(assemble("nop\ntrans_bnn"))
        assert result.stop_reason == "trans_bnn"
        assert core.mode is CoreMode.BNN

    def test_mv_neu_configures_transition_neurons(self):
        core = NCPUCore()
        core.load_model(small_model())
        core.run_cpu_program(assemble("""
            li a0, 64
            mv_neu 0, a0       # input size
            li a0, 2
            mv_neu 1, a0       # batch
            trans_bnn
        """))
        assert core.env.transition_neurons[0] == 64
        assert core.env.transition_neurons[1] == 2


class TestBnnExecution:
    def test_inference_matches_model(self):
        model = small_model()
        core = NCPUCore()
        core.load_model(model)
        x = binarize_sign(np.random.default_rng(1).standard_normal(64))
        write_packed_input(core, x)
        core.switch_to_bnn()
        predictions = core.run_bnn(n_inputs=1)
        assert predictions == [model.predict(x)]
        assert core.read_results(1) == predictions

    def test_batch_inference(self):
        model = small_model()
        core = NCPUCore()
        core.load_model(model)
        rng = np.random.default_rng(2)
        xs = binarize_sign(rng.standard_normal((3, 64)))
        words_per = 2  # 64 bits
        for index, x in enumerate(xs):
            words = pack_bits(sign_to_bits(x))
            core.memory.banks["image"].write_words(4 * words_per * index,
                                                   [int(w) for w in words])
        core.switch_to_bnn()
        predictions = core.run_bnn(n_inputs=3)
        np.testing.assert_array_equal(predictions, model.predict_batch(xs))

    def test_batch_from_transition_neuron(self):
        model = small_model()
        core = NCPUCore()
        core.load_model(model)
        x = binarize_sign(np.random.default_rng(3).standard_normal(64))
        write_packed_input(core, x)
        core.env.write_transition_neuron(1, 1)
        core.switch_to_bnn()
        assert len(core.run_bnn()) == 1

    def test_mismatched_input_size_rejected(self):
        core = NCPUCore()
        core.load_model(small_model())
        core.env.write_transition_neuron(0, 100)
        core.switch_to_bnn()
        with pytest.raises(ConfigurationError):
            core.run_bnn()

    def test_bnn_advances_clock(self):
        core = NCPUCore()
        core.load_model(small_model())
        x = binarize_sign(np.random.default_rng(4).standard_normal(64))
        write_packed_input(core, x)
        core.switch_to_bnn()
        before = core.clock
        core.run_bnn(n_inputs=1)
        assert core.clock > before


class TestTransitionCosts:
    def test_zero_latency_switch_is_cheap(self):
        core = NCPUCore(transition_policy=TransitionPolicy(zero_latency=True))
        core.load_model(small_model())
        core.switch_to_bnn()
        assert core.clock <= 8

    def test_ablated_switch_pays_weight_stream(self):
        fast = NCPUCore(transition_policy=TransitionPolicy(zero_latency=True))
        slow = NCPUCore(transition_policy=TransitionPolicy(zero_latency=False))
        model = small_model()
        fast.load_model(model)
        slow.load_model(model)
        fast.switch_to_bnn()
        slow.switch_to_bnn()
        assert slow.clock > fast.clock
        assert slow.clock >= fast.accelerator.weight_stream_cycles(model)

    def test_timeline_records_switch(self):
        core = NCPUCore()
        core.load_model(small_model())
        core.switch_to_bnn()
        kinds = [s.kind for s in core.timeline.core_segments(core.name)]
        assert "switch" in kinds


class TestEndToEndImageFlow:
    """The flagship integration test: raw pixels -> preprocessing assembly on
    the banked memory -> trans_bnn -> XNOR inference -> result memory."""

    def test_full_flow(self):
        rng = np.random.default_rng(7)
        model = BNNModel.paper_topology(input_size=256, rng=rng)
        core = NCPUCore()
        core.load_model(model)

        raw = rng.integers(0, 256, size=(3, 32, 32))
        data = core.memory.data_memory()
        ip.write_raw_frame(data, raw, base=layout.RAW_BASE)

        source = """
            li a0, 256
            mv_neu 0, a0
            li a0, 1
            mv_neu 1, a0
        """ + ip.full_pipeline_asm(ip.ImageShape(32, 32), finish="trans_bnn")
        result = core.run_cpu_program(assemble(source))
        assert result.stop_reason == "trans_bnn"
        assert core.mode is CoreMode.BNN

        predictions = core.run_bnn()

        # golden: numpy pipeline + model
        _, packed = ip.pipeline_reference(raw)
        from repro.bnn.quantize import bits_to_sign, unpack_bits

        expected_sign = bits_to_sign(unpack_bits(packed, 256))
        assert predictions == [model.predict(expected_sign)]

        core.switch_to_cpu()
        assert core.read_results(1) == predictions
        core.timeline.validate_no_overlap()
        assert core.utilization() > 0.99
