"""Tests for the discrete-event end-to-end scheduler (Figs 13/14/17)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    Item,
    SchedulerConfig,
    compare_end_to_end,
    items_for_fraction,
    simulate_heterogeneous,
    simulate_ncpu,
    simulate_single_ncpu,
)
from repro.errors import ConfigurationError

ZERO_COST = SchedulerConfig(offload_cycles=0, switch_cycles=0)


class TestItems:
    def test_items_for_fraction(self):
        items = items_for_fraction(0.7, 4, item_cycles=1000)
        assert len(items) == 4
        assert items[0].cpu_cycles == 700
        assert items[0].bnn_cycles == 300
        assert items[0].cpu_fraction == pytest.approx(0.7)

    def test_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            items_for_fraction(0.0, 2)
        with pytest.raises(ConfigurationError):
            items_for_fraction(1.0, 2)

    def test_negative_item_rejected(self):
        with pytest.raises(ConfigurationError):
            Item(cpu_cycles=-1, bnn_cycles=5)


class TestPaperNumbers:
    """The DES reproduces the paper's Fig 13 improvements from first
    principles (see DESIGN.md section 5 for the batch sizes)."""

    def test_fig13b_70_percent_batch2(self):
        items = items_for_fraction(0.70, 2)
        comparison = compare_end_to_end(items, ZERO_COST)
        # paper: 41.2 %
        assert comparison.improvement == pytest.approx(0.412, abs=0.002)

    def test_fig13a_40_percent_batch4(self):
        items = items_for_fraction(0.40, 4)
        comparison = compare_end_to_end(items, ZERO_COST)
        # paper: 28.5 %
        assert comparison.improvement == pytest.approx(0.286, abs=0.002)

    def test_image_use_case_fraction(self):
        # paper Fig 17: 43 % at the image use case's 76 % CPU fraction
        items = items_for_fraction(0.76, 2)
        comparison = compare_end_to_end(items, ZERO_COST)
        assert comparison.improvement == pytest.approx(0.432, abs=0.002)

    def test_single_ncpu_degradation(self):
        # paper Fig 17: single NCPU only 13.8 % slower than CPU+BNN
        items = items_for_fraction(0.76, 2)
        comparison = compare_end_to_end(items, ZERO_COST)
        assert comparison.single_core_degradation == pytest.approx(0.136, abs=0.003)


class TestHeterogeneous:
    def test_pipelining_overlaps(self):
        items = items_for_fraction(0.5, 3, item_cycles=1000)
        timeline = simulate_heterogeneous(items, ZERO_COST)
        # CPU: 3x500 serial; BNN trails one item: total = 4x500
        assert timeline.end == 2000

    def test_offload_blocks_cpu(self):
        items = items_for_fraction(0.5, 2, item_cycles=1000)
        with_offload = simulate_heterogeneous(
            items, SchedulerConfig(offload_cycles=100, switch_cycles=0))
        without = simulate_heterogeneous(items, ZERO_COST)
        assert with_offload.end > without.end

    def test_bnn_idle_time_recorded(self):
        items = items_for_fraction(0.7, 2)
        timeline = simulate_heterogeneous(items, ZERO_COST)
        idle = [s for s in timeline.core_segments("bnn") if s.kind == "idle"]
        assert idle, "the accelerator should wait on the CPU"

    def test_timelines_never_overlap(self):
        items = items_for_fraction(0.33, 5)
        simulate_heterogeneous(items, ZERO_COST).validate_no_overlap()


class TestNCPU:
    def test_split_across_cores(self):
        items = items_for_fraction(0.5, 4, item_cycles=1000)
        timeline = simulate_ncpu(items, n_cores=2, config=ZERO_COST)
        assert timeline.end == 2000  # each core: 2 x (500+500)

    def test_single_core_serializes(self):
        items = items_for_fraction(0.5, 4, item_cycles=1000)
        timeline = simulate_single_ncpu(items, ZERO_COST)
        assert timeline.end == 4000

    def test_switch_cost_applied(self):
        items = items_for_fraction(0.5, 2, item_cycles=1000)
        config = SchedulerConfig(switch_cycles=10)
        timeline = simulate_ncpu(items, n_cores=2, config=config)
        # each core: 1000 work + 2 switches
        assert timeline.end == 1020

    def test_non_zero_latency_pays_weight_stream(self):
        items = items_for_fraction(0.5, 2, item_cycles=1000)
        ablated = SchedulerConfig(switch_cycles=10, weight_stream_cycles=500,
                                  zero_latency=False)
        enabled = SchedulerConfig(switch_cycles=10, weight_stream_cycles=500,
                                  zero_latency=True)
        slow = simulate_ncpu(items, config=ablated)
        fast = simulate_ncpu(items, config=enabled)
        assert slow.end == fast.end + 500

    def test_core_count_validated(self):
        with pytest.raises(ConfigurationError):
            simulate_ncpu([Item(1, 1)], n_cores=0)

    def test_near_full_utilization(self):
        items = items_for_fraction(0.7, 4)
        timeline = simulate_ncpu(items, n_cores=2)
        utils = timeline.utilizations()
        # paper Table 4: 99.3 % on both cores
        assert all(u > 0.99 for u in utils.values())

    def test_no_overlap(self):
        items = items_for_fraction(0.6, 7)
        simulate_ncpu(items, n_cores=2).validate_no_overlap()


class TestComparisonProperties:
    @given(st.floats(min_value=0.1, max_value=0.9),
           st.integers(min_value=2, max_value=20))
    def test_two_cores_never_lose_to_baseline(self, fraction, batch):
        items = items_for_fraction(fraction, batch)
        comparison = compare_end_to_end(items, ZERO_COST)
        # odd batches at low CPU fraction can tie (the unbalanced core's BNN
        # tail matches the baseline's accelerator tail); never slower
        assert comparison.improvement >= -1e-9

    @given(st.floats(min_value=0.5, max_value=0.9),
           st.integers(min_value=1, max_value=10).map(lambda n: 2 * n))
    def test_two_cores_beat_baseline_even_batches(self, fraction, batch):
        items = items_for_fraction(fraction, batch)
        comparison = compare_end_to_end(items, ZERO_COST)
        assert comparison.improvement > 0

    @given(st.floats(min_value=0.1, max_value=0.9),
           st.integers(min_value=1, max_value=20))
    def test_single_ncpu_never_faster_without_offload(self, fraction, batch):
        items = items_for_fraction(fraction, batch)
        comparison = compare_end_to_end(items, ZERO_COST)
        assert comparison.single_core_degradation >= -1e-9

    @given(st.floats(min_value=0.55, max_value=0.9))
    def test_improvement_grows_with_cpu_fraction(self, fraction):
        lower = compare_end_to_end(items_for_fraction(fraction - 0.05, 2),
                                   ZERO_COST)
        higher = compare_end_to_end(items_for_fraction(fraction, 2), ZERO_COST)
        assert higher.improvement >= lower.improvement - 1e-9

    def test_improvement_declines_with_batch_under_offload(self):
        # Fig 14's mechanism: the baseline hides more of its offload at
        # larger batch sizes, shrinking the NCPU's advantage
        config = SchedulerConfig(offload_cycles=940, switch_cycles=4)
        improvements = []
        for batch in (2, 10, 50, 100):
            items = items_for_fraction(0.7, batch)
            improvements.append(compare_end_to_end(items, config).improvement)
        assert all(a >= b for a, b in zip(improvements, improvements[1:]))
        assert improvements[-1] > 0.35  # paper: >=37 % at batch 100
