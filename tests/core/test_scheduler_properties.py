"""Property tests: the DES must agree with the closed-form latency algebra,
and timeline energy accounting must be consistent."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Item,
    SchedulerConfig,
    simulate_heterogeneous,
    simulate_ncpu,
    simulate_single_ncpu,
)
from repro.power import timeline_energy_j

ZERO = SchedulerConfig(offload_cycles=0, switch_cycles=0)

items_strategy = st.lists(
    st.builds(Item,
              cpu_cycles=st.integers(min_value=1, max_value=5000),
              bnn_cycles=st.integers(min_value=1, max_value=5000)),
    min_size=1, max_size=12,
)


class TestClosedForms:
    @settings(max_examples=60, deadline=None)
    @given(items=items_strategy)
    def test_heterogeneous_matches_recurrence(self, items):
        """baseline end == the pipelined recurrence over CPU/BNN phases."""
        timeline = simulate_heterogeneous(items, ZERO)
        cpu_free = 0
        bnn_free = 0
        for item in items:
            cpu_free += item.cpu_cycles
            bnn_free = max(cpu_free, bnn_free) + item.bnn_cycles
        assert timeline.end == max(cpu_free, bnn_free)

    @settings(max_examples=60, deadline=None)
    @given(items=items_strategy)
    def test_ncpu_matches_per_core_sums(self, items):
        timeline = simulate_ncpu(items, n_cores=2, config=ZERO)
        core_sums = [0, 0]
        for index, item in enumerate(items):
            core_sums[index % 2] += item.total_cycles
        assert timeline.end == max(core_sums)

    @settings(max_examples=40, deadline=None)
    @given(items=items_strategy)
    def test_single_ncpu_is_serial_sum(self, items):
        timeline = simulate_single_ncpu(items, ZERO)
        assert timeline.end == sum(item.total_cycles for item in items)

    @settings(max_examples=40, deadline=None)
    @given(items=items_strategy,
           offload=st.integers(min_value=0, max_value=500))
    def test_offload_only_hurts_baseline(self, items, offload):
        config = SchedulerConfig(offload_cycles=offload, switch_cycles=0)
        with_cost = simulate_heterogeneous(items, config)
        without = simulate_heterogeneous(items, ZERO)
        assert with_cost.end >= without.end
        ncpu_with = simulate_ncpu(items, config=config)
        ncpu_without = simulate_ncpu(items, config=ZERO)
        assert ncpu_with.end == ncpu_without.end  # NCPU never offloads

    @settings(max_examples=40, deadline=None)
    @given(cpu=st.integers(min_value=1, max_value=5000),
           bnn=st.integers(min_value=1, max_value=5000),
           n_items=st.integers(min_value=1, max_value=16),
           cores=st.integers(min_value=1, max_value=4))
    def test_more_cores_never_slower_for_uniform_items(self, cpu, bnn,
                                                       n_items, cores):
        # (with heterogeneous items, round-robin splitting is not monotone
        # in core count — a documented property of the simple policy)
        items = [Item(cpu_cycles=cpu, bnn_cycles=bnn)] * n_items
        fewer = simulate_ncpu(items, n_cores=cores, config=ZERO)
        more = simulate_ncpu(items, n_cores=cores + 1, config=ZERO)
        assert more.end <= fewer.end

    @settings(max_examples=40, deadline=None)
    @given(items=items_strategy)
    def test_timelines_are_well_formed(self, items):
        for timeline in (simulate_heterogeneous(items, ZERO),
                         simulate_ncpu(items, config=ZERO)):
            timeline.validate_no_overlap()


class TestTimelineEnergy:
    def test_energy_scales_with_duration(self):
        from repro.core import Timeline, CPU

        short = Timeline()
        short.add("a", CPU, 0, 100)
        long = Timeline()
        long.add("a", CPU, 0, 200)
        e_short = timeline_energy_j(short, 1.0, 50e6)
        e_long = timeline_energy_j(long, 1.0, 50e6)
        assert e_long == pytest.approx(2 * e_short)

    def test_idle_cheaper_than_active(self):
        from repro.core import Timeline, CPU, IDLE

        active = Timeline()
        active.add("a", CPU, 0, 100)
        idle = Timeline()
        idle.add("a", IDLE, 0, 100)
        assert timeline_energy_j(idle, 1.0, 50e6) \
            < timeline_energy_j(active, 1.0, 50e6)

    def test_bnn_segment_more_expensive_than_cpu(self):
        from repro.core import Timeline, BNN, CPU

        cpu = Timeline()
        cpu.add("a", CPU, 0, 100)
        bnn = Timeline()
        bnn.add("a", BNN, 0, 100)
        assert timeline_energy_j(bnn, 1.0, 50e6) \
            > timeline_energy_j(cpu, 1.0, 50e6)

    def test_two_ncpus_use_less_energy_iso_work(self):
        """Finishing sooner means less leakage time: the energy side of
        the paper's end-to-end argument."""
        from repro.core import compare_end_to_end, items_for_fraction

        comparison = compare_end_to_end(items_for_fraction(0.76, 2),
                                        SchedulerConfig())
        e_base = timeline_energy_j(comparison.baseline, 1.0, 50e6,
                                   reconfigurable=False)
        e_ncpu = timeline_energy_j(comparison.ncpu_dual, 1.0, 50e6)
        assert e_ncpu < e_base
