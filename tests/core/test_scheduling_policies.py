"""Tests for the item-splitting policies (round-robin vs LPT)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Item, SchedulerConfig, simulate_ncpu
from repro.errors import ConfigurationError

ZERO = SchedulerConfig(offload_cycles=0, switch_cycles=0)

items_strategy = st.lists(
    st.builds(Item,
              cpu_cycles=st.integers(min_value=1, max_value=4000),
              bnn_cycles=st.integers(min_value=1, max_value=4000)),
    min_size=1, max_size=16,
)


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_ncpu([Item(1, 1)], policy="magic")

    def test_round_robin_is_default(self):
        items = [Item(100, 10), Item(1, 1), Item(100, 10), Item(1, 1)]
        default = simulate_ncpu(items, config=ZERO)
        explicit = simulate_ncpu(items, config=ZERO, policy="round_robin")
        assert default.end == explicit.end

    def test_lpt_balances_heterogeneous_batch(self):
        # round-robin puts both heavy items on core 0; LPT splits them
        items = [Item(1000, 1000), Item(1, 1), Item(1000, 1000), Item(1, 1)]
        rr = simulate_ncpu(items, config=ZERO, policy="round_robin")
        lpt = simulate_ncpu(items, config=ZERO, policy="lpt")
        assert rr.end == 4000
        assert lpt.end == 2002

    def test_lpt_equal_items_same_as_round_robin(self):
        items = [Item(500, 500)] * 6
        rr = simulate_ncpu(items, config=ZERO)
        lpt = simulate_ncpu(items, config=ZERO, policy="lpt")
        assert rr.end == lpt.end

    @settings(max_examples=80, deadline=None)
    @given(items=items_strategy)
    def test_lpt_within_7_6_of_round_robin(self, items):
        # LPT does not dominate round-robin outright (e.g. totals
        # [2,3,2,3,2] on 2 cores: LPT=7, RR=6), but Graham's bound
        # LPT <= (4/3 - 1/(3m)) * OPT and OPT <= RR give 7/6 for m=2
        rr = simulate_ncpu(items, config=ZERO, policy="round_robin")
        lpt = simulate_ncpu(items, config=ZERO, policy="lpt")
        assert lpt.end <= (7 / 6) * rr.end + 1

    @settings(max_examples=40, deadline=None)
    @given(items=items_strategy,
           cores=st.integers(min_value=1, max_value=4))
    def test_lpt_monotone_in_cores(self, items, cores):
        # LPT restores the more-cores-never-slower property that
        # round-robin lacks for heterogeneous items
        fewer = simulate_ncpu(items, n_cores=cores, config=ZERO, policy="lpt")
        more = simulate_ncpu(items, n_cores=cores + 1, config=ZERO,
                             policy="lpt")
        assert more.end <= fewer.end

    @settings(max_examples=40, deadline=None)
    @given(items=items_strategy)
    def test_lpt_within_4_3_of_lower_bound(self, items):
        # Graham's bound: LPT makespan <= (4/3 - 1/3m) * OPT; with the
        # trivial lower bounds max(item) and sum/m
        lpt = simulate_ncpu(items, n_cores=2, config=ZERO, policy="lpt")
        total = sum(i.total_cycles for i in items)
        lower = max(max(i.total_cycles for i in items), -(-total // 2))
        assert lpt.end <= (4 / 3) * lower + 1

    @settings(max_examples=30, deadline=None)
    @given(items=items_strategy)
    def test_policies_preserve_work(self, items):
        for policy in ("round_robin", "lpt"):
            timeline = simulate_ncpu(items, config=ZERO, policy=policy)
            busy = sum(timeline.busy_cycles(core)
                       for core in timeline.core_names())
            assert busy == sum(i.total_cycles for i in items)
