"""Tests for the SoC models (two-core NCPU and heterogeneous baseline)."""

import numpy as np
import pytest

from repro.bnn import BNNModel, binarize_sign
from repro.bnn.quantize import pack_bits, sign_to_bits
from repro.core import HeterogeneousSoC, NCPUSoC
from repro.cpu import CoreEnv
from repro.errors import ConfigurationError, SimulationError
from repro.isa import assemble


def small_model(seed=0):
    rng = np.random.default_rng(seed)
    return BNNModel.random([64, 32, 32, 32, 4], rng)


class TestNCPUSoC:
    def test_two_cores_share_l2(self):
        soc = NCPUSoC(n_cores=2)
        producer = assemble("li a0, 0x5a5a\nsw_l2 a0, 0x100(zero)\nebreak")
        consumer = assemble("lw_l2 a1, 0x100(zero)\nebreak")
        result0 = soc.core(0).run_cpu_program(producer)
        assert result0.halted
        core1 = soc.core(1)
        cpu_result = core1.run_cpu_program(consumer)
        assert cpu_result.halted
        # the consumer saw the producer's value through the shared L2
        assert soc.l2.load(0x100, 4) == 0x5A5A

    def test_core_count_validated(self):
        with pytest.raises(ConfigurationError):
            NCPUSoC(n_cores=0)

    def test_load_model_all(self):
        soc = NCPUSoC(n_cores=2)
        soc.load_model_all(small_model())
        assert all(core.model is not None for core in soc.cores)

    def test_parallel_classification(self):
        soc = NCPUSoC(n_cores=2)
        model = small_model()
        soc.load_model_all(model)
        rng = np.random.default_rng(1)
        xs = binarize_sign(rng.standard_normal((2, 64)))
        for core, x in zip(soc.cores, xs):
            words = pack_bits(sign_to_bits(x))
            core.memory.banks["image"].write_words(0, [int(w) for w in words])
            core.switch_to_bnn()
        predictions = [core.run_bnn(n_inputs=1)[0] for core in soc.cores]
        np.testing.assert_array_equal(predictions, model.predict_batch(xs))
        # both cores ran concurrently: makespan is a single core's time
        assert soc.makespan == max(core.clock for core in soc.cores)

    def test_merged_timeline(self):
        soc = NCPUSoC(n_cores=2)
        soc.core(0).run_cpu_program(assemble("nop\nebreak"))
        soc.core(1).run_cpu_program(assemble("nop\nnop\nebreak"))
        merged = soc.merged_timeline()
        assert set(merged.core_names()) == {"ncpu0", "ncpu1"}

    def test_utilizations(self):
        soc = NCPUSoC(n_cores=2)
        soc.core(0).run_cpu_program(assemble("nop\nebreak"))
        body = "\n".join(["nop"] * 50) + "\nebreak"
        soc.core(1).run_cpu_program(assemble(body))
        utils = soc.utilizations()
        assert utils["ncpu1"] == pytest.approx(1.0)
        assert utils["ncpu0"] < 0.5


class TestHeterogeneousSoC:
    def test_cpu_program_runs(self):
        soc = HeterogeneousSoC()
        result = soc.run_cpu_program(assemble("li a0, 1\nebreak"))
        assert result.halted
        assert soc.cpu_clock == result.stats.cycles

    def test_offload_requires_model(self):
        soc = HeterogeneousSoC()
        with pytest.raises(SimulationError):
            soc.offload_and_classify(0)

    def test_offload_and_classify(self):
        soc = HeterogeneousSoC()
        model = small_model()
        soc.device.load_model(model)
        x = binarize_sign(np.random.default_rng(2).standard_normal(64))
        words = pack_bits(sign_to_bits(x))
        soc.cpu_memory.write_words(0x2000, [int(w) for w in words])
        before = soc.cpu_clock
        soc.offload_and_classify(0x2000, n_inputs=1)
        assert soc.results() == [model.predict(x)]
        assert soc.cpu_clock > before  # the offload DMA blocked the CPU
        assert soc.device.free_at > soc.cpu_clock  # accelerator still running

    def test_accelerator_overlaps_next_cpu_work(self):
        soc = HeterogeneousSoC()
        model = small_model()
        soc.device.load_model(model)
        x = binarize_sign(np.random.default_rng(3).standard_normal(64))
        words = pack_bits(sign_to_bits(x))
        soc.cpu_memory.write_words(0x2000, [int(w) for w in words])
        soc.offload_and_classify(0x2000)
        cpu_after_offload = soc.cpu_clock
        soc.run_cpu_program(assemble("nop\nnop\nebreak"))
        # the CPU continued while the accelerator was busy
        assert soc.cpu_clock > cpu_after_offload
        assert soc.makespan >= soc.device.free_at

    def test_utilizations_shape(self):
        soc = HeterogeneousSoC()
        model = small_model()
        soc.device.load_model(model)
        x = binarize_sign(np.random.default_rng(4).standard_normal(64))
        words = pack_bits(sign_to_bits(x))
        soc.cpu_memory.write_words(0x2000, [int(w) for w in words])
        soc.run_cpu_program(assemble("\n".join(["nop"] * 600) + "\nebreak"))
        soc.offload_and_classify(0x2000)
        utils = soc.utilizations()
        assert 0 < utils["bnn"] < utils["cpu"] <= 1.0


class TestCrossCoreMessaging:
    def test_trigger_bnn_event_visible(self):
        # the baseline-style flow: CPU triggers the accelerator explicitly
        env_program = assemble("trigger_bnn 1\nebreak")
        soc = HeterogeneousSoC()
        result = soc.run_cpu_program(env_program)
        events = result.env.events_named("trigger_bnn")
        assert len(events) == 1

    def test_l2_roundtrip_through_env(self):
        soc = HeterogeneousSoC()
        program = assemble("li a0, 9\nsw_l2 a0, 4(zero)\nlw_l2 a1, 4(zero)\nebreak")
        result = soc.run_cpu_program(program)
        assert result.halted
        assert soc.l2.load(4, 4) == 9
        assert isinstance(soc.env, CoreEnv)
