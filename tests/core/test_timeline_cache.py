"""Timeline per-core memoization and resolution-aware power traces."""

import pytest

from repro.core.events import Timeline
from repro.errors import ConfigurationError
from repro.power import core_power_w


def make_timeline():
    timeline = Timeline()
    timeline.add("ncpu", "cpu", 0, 100)
    timeline.add("ncpu", "bnn", 100, 200)
    timeline.add("host", "cpu", 0, 150)
    return timeline


class TestCoreSegmentsMemoization:
    def test_repeated_queries_share_cached_list(self):
        timeline = make_timeline()
        assert timeline.core_segments("ncpu") is timeline.core_segments("ncpu")

    def test_add_invalidates(self):
        timeline = make_timeline()
        before = timeline.core_segments("ncpu")
        timeline.add("ncpu", "idle", 200, 250)
        after = timeline.core_segments("ncpu")
        assert after is not before
        assert len(after) == 3

    def test_direct_extend_invalidates(self):
        # NCPUSoC.merged_timeline() extends .segments without calling add()
        timeline = make_timeline()
        other = Timeline()
        other.add("dma", "dma", 0, 40)
        assert timeline.core_names() == ["ncpu", "host"]
        timeline.segments.extend(other.segments)
        assert "dma" in timeline.core_names()
        assert timeline.busy_cycles("dma", kinds=("dma",)) == 40

    def test_sorted_by_start(self):
        timeline = Timeline()
        timeline.add("c", "cpu", 50, 60)
        timeline.add("c", "cpu", 0, 10)
        assert [s.start for s in timeline.core_segments("c")] == [0, 50]


class TestPowerTraceResolution:
    F_HZ = 100e6

    def test_default_staircase_two_points_per_segment(self):
        timeline = make_timeline()
        trace = timeline.power_trace(1.0, self.F_HZ)
        assert len(trace["ncpu"]) == 4  # 2 segments x 2 points

    def test_resolution_resamples_uniformly(self):
        timeline = make_timeline()
        trace = timeline.power_trace(1.0, self.F_HZ, resolution=21)
        points = trace["ncpu"]
        assert len(points) == 21
        times = [t for t, _ in points]
        end_us = timeline.end / self.F_HZ * 1e6
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(end_us)
        steps = [b - a for a, b in zip(times, times[1:])]
        assert all(step == pytest.approx(steps[0]) for step in steps)

    def test_resampled_powers_follow_modes(self):
        timeline = make_timeline()
        points = timeline.power_trace(1.0, self.F_HZ, resolution=11)["ncpu"]
        cpu_mw = core_power_w("cpu", 1.0, self.F_HZ) * 1e3
        bnn_mw = core_power_w("bnn", 1.0, self.F_HZ) * 1e3
        # first half of the makespan runs CPU mode, second half BNN mode
        assert points[1][1] == pytest.approx(cpu_mw)
        assert points[9][1] == pytest.approx(bnn_mw)

    def test_gaps_sample_idle_leakage(self):
        timeline = Timeline()
        timeline.add("c", "cpu", 0, 10)
        timeline.add("c", "cpu", 90, 100)
        idle_mw = core_power_w("cpu", 1.0, self.F_HZ, active=False) * 1e3
        points = timeline.power_trace(1.0, self.F_HZ, resolution=101)["c"]
        mid = points[50]
        assert mid[1] == pytest.approx(idle_mw)

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ConfigurationError):
            make_timeline().power_trace(1.0, self.F_HZ, resolution=1)
