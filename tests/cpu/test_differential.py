"""Differential testing: the pipeline must match the functional golden model.

Random programs (ALU ops, memory ops into a confined window, forward
branches) are executed on both simulators; architectural state must agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import FlatMemory, FunctionalCPU, PipelinedCPU
from repro.isa import assemble

_REGS = ["a0", "a1", "a2", "a3", "a4", "t0", "t1"]
_ALU_R = ["add", "sub", "and", "or", "xor", "slt", "sltu", "sll", "srl", "sra", "mul"]
_ALU_I = ["addi", "andi", "ori", "xori", "slti", "sltiu"]
_SHIFT_I = ["slli", "srli", "srai"]
_BRANCHES = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]

# data window: [256, 288); the generator only produces offsets inside it
_BASE_REG = "s0"


@st.composite
def random_program(draw):
    lines = [f"li {_BASE_REG}, 256"]
    for i, reg in enumerate(_REGS):
        lines.append(f"li {reg}, {draw(st.integers(-100, 100))}")
    count = draw(st.integers(min_value=5, max_value=40))
    for index in range(count):
        kind = draw(st.sampled_from(["alu_r", "alu_i", "shift", "load", "store",
                                     "branch", "lui"]))
        rd = draw(st.sampled_from(_REGS))
        rs1 = draw(st.sampled_from(_REGS))
        rs2 = draw(st.sampled_from(_REGS))
        if kind == "alu_r":
            op = draw(st.sampled_from(_ALU_R))
            lines.append(f"{op} {rd}, {rs1}, {rs2}")
        elif kind == "alu_i":
            op = draw(st.sampled_from(_ALU_I))
            lines.append(f"{op} {rd}, {rs1}, {draw(st.integers(-512, 511))}")
        elif kind == "shift":
            op = draw(st.sampled_from(_SHIFT_I))
            lines.append(f"{op} {rd}, {rs1}, {draw(st.integers(0, 31))}")
        elif kind == "load":
            width = draw(st.sampled_from(["lw", "lh", "lhu", "lb", "lbu"]))
            offset = draw(st.integers(0, 6)) * 4
            lines.append(f"{width} {rd}, {offset}({_BASE_REG})")
        elif kind == "store":
            width = draw(st.sampled_from(["sw", "sh", "sb"]))
            offset = draw(st.integers(0, 6)) * 4
            lines.append(f"{width} {rs2}, {offset}({_BASE_REG})")
        elif kind == "lui":
            lines.append(f"lui {rd}, {draw(st.integers(0, 0xFFFFF))}")
        else:
            op = draw(st.sampled_from(_BRANCHES))
            skip = draw(st.integers(1, 3))
            lines.append(f"{op} {rs1}, {rs2}, L{index}")
            for sub in range(skip):
                filler_rd = draw(st.sampled_from(_REGS))
                lines.append(f"addi {filler_rd}, {filler_rd}, 1")
            lines.append(f"L{index}:")
    lines.append("ebreak")
    return "\n".join(lines)


@settings(max_examples=60, deadline=None)
@given(source=random_program())
def test_pipeline_matches_functional(source):
    program = assemble(source)

    f_mem = FlatMemory(size=512)
    p_mem = FlatMemory(size=512)
    functional = FunctionalCPU(program, memory=f_mem)
    pipelined = PipelinedCPU(program, memory=p_mem)

    f_result = functional.run(max_steps=20_000)
    p_result = pipelined.run(max_cycles=100_000)

    assert f_result.stop_reason == "halt"
    assert p_result.stop_reason == "halt"
    assert functional.regs.snapshot() == pipelined.regs.snapshot()
    assert f_mem.read_words(256, 8) == p_mem.read_words(256, 8)
    assert f_result.stats.instructions == p_result.stats.instructions
    # the pipeline can never be faster than one instruction per cycle
    assert p_result.stats.cycles >= f_result.stats.instructions


@settings(max_examples=30, deadline=None)
@given(source=random_program())
def test_pipeline_cycles_bounded_by_hazard_model(source):
    """cycles == instructions + fill + stalls + flushes exactly."""
    program = assemble(source)
    pipelined = PipelinedCPU(program, memory=FlatMemory(size=512))
    result = pipelined.run(max_cycles=100_000)
    stats = result.stats
    assert stats.cycles == stats.instructions + 4 + stats.stalls + stats.flushes


@st.composite
def looped_program(draw):
    """Programs with bounded countdown loops (possibly nested) whose bodies
    are random ALU/memory work — exercises repeated flushes, loop-carried
    dependencies, and store/load recurrences."""
    lines = [f"li {_BASE_REG}, 256"]
    for reg in _REGS:
        lines.append(f"li {reg}, {draw(st.integers(-50, 50))}")
    n_loops = draw(st.integers(1, 3))
    for loop_index in range(n_loops):
        iterations = draw(st.integers(1, 6))
        lines.append(f"li s1, {iterations}")
        lines.append(f"outer_{loop_index}:")
        body_len = draw(st.integers(1, 6))
        for sub in range(body_len):
            kind = draw(st.sampled_from(["alu", "mem", "inner"]))
            rd = draw(st.sampled_from(_REGS))
            rs = draw(st.sampled_from(_REGS))
            if kind == "alu":
                op = draw(st.sampled_from(_ALU_R))
                lines.append(f"{op} {rd}, {rs}, {draw(st.sampled_from(_REGS))}")
            elif kind == "mem":
                offset = draw(st.integers(0, 6)) * 4
                lines.append(f"sw {rs}, {offset}({_BASE_REG})")
                lines.append(f"lw {rd}, {offset}({_BASE_REG})")
            else:
                inner = draw(st.integers(1, 4))
                label = f"inner_{loop_index}_{sub}"
                lines.append(f"li s2, {inner}")
                lines.append(f"{label}:")
                lines.append(f"add {rd}, {rd}, {rs}")
                lines.append("addi s2, s2, -1")
                lines.append(f"bnez s2, {label}")
        lines.append("addi s1, s1, -1")
        lines.append(f"bnez s1, outer_{loop_index}")
    lines.append("ebreak")
    return "\n".join(lines)


@settings(max_examples=40, deadline=None)
@given(source=looped_program())
def test_looped_programs_match(source):
    program = assemble(source)
    f_mem = FlatMemory(size=512)
    p_mem = FlatMemory(size=512)
    functional = FunctionalCPU(program, memory=f_mem)
    pipelined = PipelinedCPU(program, memory=p_mem)
    f_result = functional.run(max_steps=200_000)
    p_result = pipelined.run(max_cycles=1_000_000)
    assert f_result.stop_reason == "halt"
    assert p_result.stop_reason == "halt"
    assert functional.regs.snapshot() == pipelined.regs.snapshot()
    assert f_mem.read_words(256, 8) == p_mem.read_words(256, 8)
    assert f_result.stats.instructions == p_result.stats.instructions


@settings(max_examples=15, deadline=None)
@given(source=looped_program())
def test_looped_programs_match_without_forwarding(source):
    """The ablated pipeline is slower but architecturally identical."""
    program = assemble(source)
    golden = FunctionalCPU(program, memory=FlatMemory(size=512))
    golden_result = golden.run(max_steps=200_000)
    ablated = PipelinedCPU(program, memory=FlatMemory(size=512),
                           forwarding=False)
    ablated_result = ablated.run(max_cycles=2_000_000)
    assert golden_result.stop_reason == ablated_result.stop_reason == "halt"
    assert golden.regs.snapshot() == ablated.regs.snapshot()
    assert ablated_result.stats.cycles >= golden_result.stats.instructions
